//! Two-party transport layer for the secure Yannakakis protocol suite.
//!
//! The paper's protocols are strictly two-party: Alice and Bob exchange
//! messages over an authenticated channel. This crate provides an in-process
//! realization of that channel: both parties run as real OS threads and
//! exchange owned, length-delimited byte messages through a duplex pipe that
//! meters every byte, message and communication round.
//!
//! Metering matters because the paper's evaluation (Figures 2–6) reports
//! *communication cost* alongside running time; the benchmark harness reads
//! the meters after each protocol run. Round counting (the number of
//! direction switches on the wire) lets tests check the paper's claim that
//! the number of rounds depends only on the query, not the data.
//!
//! Obliviousness testing also leans on this crate: a protocol is oblivious
//! only if its transcript (here: the sequence of message lengths in each
//! direction) is a function of the public parameters alone. See
//! [`Channel::transcript_lengths`].

//!
//! Round compression: sends are *staged* and coalesced — every run of
//! same-direction messages between genuine ping-pong dependencies travels
//! as one wire frame (a *super-round*), flushed automatically the moment
//! an endpoint would block on its peer. Logical rounds/bytes are metered
//! at stage time (so protocol-structure numbers and obliviousness
//! transcripts are unchanged by coalescing) while
//! [`CommStats::super_rounds`] counts what actually pays latency on the
//! wire. See [`Channel::stage`] / [`Channel::flush`].
//!
//! Fault tolerance: messages are framed and sequence-numbered on the wire,
//! so truncation, split writes, reordering and peer disconnects surface as
//! typed [`TransportError`]s instead of hangs or garbage reads. The
//! [`fault`] module injects exactly those faults deterministically, and
//! [`try_run_protocol`] / [`try_run_protocol_with_faults`] catch the typed
//! unwinds at the session boundary.

mod channel;
mod error;
pub mod fault;
pub mod handshake;
mod runner;
mod tcp;
mod wire;

pub use channel::{
    channel_pair, channel_pair_with_transcript, Channel, CommStats, NetModel, Phase, Role,
    TranscriptHandle, MAX_FRAME_SIZE,
};
pub use error::{ProtocolError, TransportError};
pub use fault::{fault_channel_pair, FaultKind, FaultPlan, FaultSpec};
pub use handshake::{ClientHello, HandshakeError, PROTOCOL_VERSION};
pub use runner::{
    catch_protocol, run_protocol, run_protocol_captured, run_protocol_captured_on, run_protocol_on,
    run_protocol_recorded, run_protocol_with_net, try_run_protocol, try_run_protocol_on,
    try_run_protocol_with_faults,
};
pub use tcp::{
    tcp_channel_pair, tcp_channel_pair_with_transcript, tcp_endpoint, tcp_pair_from_streams,
    TcpFault, TcpFaultKind, TcpFaultProxy, DEFAULT_IO_TIMEOUT,
};
pub use wire::{ReadExt, WriteExt};
