//! The metered duplex channel connecting Alice and Bob.
//!
//! # Staged sends and super-rounds
//!
//! Sends are *staged*, not written: [`Channel::send`] appends the message
//! to an outgoing super-frame buffer and returns immediately. The buffer
//! travels as one wire frame when the endpoint [`Channel::flush`]es —
//! explicitly, on a phase switch, on drop, or (the common case)
//! automatically the moment the endpoint would otherwise *block* on the
//! wire waiting for the peer. That last rule makes coalescing maximal and
//! deadlock-free by construction: whenever a party is blocked, everything
//! it has staged is already on the wire, so the classic ping-pong
//! dependency structure of a protocol is preserved while every run of
//! same-direction messages between two genuine dependencies collapses
//! into a single frame.
//!
//! On the wire a frame is: an 8-byte header (payload length and
//! per-direction sequence number, both little-endian `u32`) followed by
//! the staged messages, each prefixed by its own 4-byte little-endian
//! length so logical message boundaries survive coalescing. The header
//! and sub-headers are pure wire overhead: the byte meters and the
//! recorded transcript count logical payload bytes only, at *stage* time,
//! so communication-cost numbers and obliviousness transcripts are
//! independent of how messages happen to share frames. Wire-level
//! direction switches are metered separately as
//! [`CommStats::super_rounds`].
//!
//! The header is validated on every receive, so a truncated, split,
//! reordered, oversized or dropped write is *detected* and surfaced as a
//! typed [`TransportError`] instead of silently desynchronizing the
//! parties.

use crate::error::TransportError;
use crate::tcp::TcpPipe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Frame header size: payload length (`u32` LE) then sequence (`u32` LE).
pub(crate) const HEADER: usize = 8;

/// Per-message sub-header inside a frame: the message length (`u32` LE).
pub(crate) const SUB_HEADER: usize = 4;

/// Upper bound on a wire frame's payload. The sender auto-flushes before a
/// staged super-frame would exceed it, and the receiver rejects any frame
/// *declaring* more as [`TransportError::FrameTooLarge`] — so message
/// coalescing cannot be abused to smuggle an allocation bomb past the
/// declared-size hardening (`secyan-core`'s `MAX_DECLARED_SIZE` ties to
/// this same bound).
pub const MAX_FRAME_SIZE: usize = 1 << 28;

/// Most spare frame buffers an endpoint keeps for reuse.
const SPARE_BUFFERS: usize = 8;

/// The sequence word carries the phase tag in its top two bits; the low 30
/// bits are the per-direction sequence counter.
const SEQ_MASK: u32 = 0x3FFF_FFFF;

/// Which execution phase a frame belongs to (offline/online split).
///
/// Phase tags travel in the top two bits of each frame's sequence word and
/// are validated on receive: a frame whose tag disagrees with the receiving
/// endpoint's current phase surfaces as [`TransportError::PhaseMismatch`]
/// instead of silently crossing the offline/online boundary. The default
/// [`Phase::Single`] is the classic one-shot mode; `run_offline` /
/// `run_online` in `secyan-core` switch both endpoints in lock-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Classic single-phase execution (the default).
    #[default]
    Single,
    /// Data-independent precomputation keyed by the public query shape.
    Offline,
    /// Data-dependent execution consuming precomputed material.
    Online,
}

impl Phase {
    fn tag(self) -> u32 {
        match self {
            Phase::Single => 0,
            Phase::Offline => 1,
            Phase::Online => 2,
        }
    }

    fn from_tag(tag: u32) -> Option<Phase> {
        match tag {
            0 => Some(Phase::Single),
            1 => Some(Phase::Offline),
            2 => Some(Phase::Online),
            _ => None,
        }
    }
}

/// A simulated network: finite bandwidth plus per-round latency, applied
/// inside [`Channel::flush`] as real sleeps on the sending thread.
///
/// The model is deliberately simple and conservative: every flushed frame
/// blocks its sender for `payload_bytes * 8 / bandwidth_bits_per_sec`
/// (serialization delay; full-duplex, so simultaneous transfers in the two
/// directions do not contend), and the first frame after a direction
/// switch additionally blocks for `one_way_latency_us` (the propagation
/// delay the ping-pong pattern cannot pipeline away; subsequent frames in
/// the same direction stream behind it). Because latency is paid per
/// *super-round* — per wire frame after a direction switch — coalescing
/// staged messages directly shortens the modeled critical path.
/// Benchmarks use this to compare cold and warm executions under one
/// declared WAN model instead of the loopback's infinite bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    /// Link bandwidth in bits per second (applied per direction).
    pub bandwidth_bits_per_sec: u64,
    /// One-way propagation delay in microseconds, paid per direction
    /// switch.
    pub one_way_latency_us: u64,
}

impl NetModel {
    /// A conventional WAN point: `mbit_per_sec` Mbit/s symmetric with 1 ms
    /// one-way latency. MPC evaluations commonly report 10–100 Mbit/s.
    pub fn wan(mbit_per_sec: u64) -> NetModel {
        NetModel {
            bandwidth_bits_per_sec: mbit_per_sec * 1_000_000,
            one_way_latency_us: 1_000,
        }
    }
}

/// Which of the two parties an endpoint belongs to.
///
/// Following the paper's convention, *Alice* is the designated receiver of
/// the query results unless a protocol documents otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    Alice,
    Bob,
}

impl Role {
    /// The other party.
    pub fn peer(self) -> Role {
        match self {
            Role::Alice => Role::Bob,
            Role::Bob => Role::Alice,
        }
    }

    /// True for [`Role::Alice`].
    pub fn is_alice(self) -> bool {
        matches!(self, Role::Alice)
    }
}

/// The byte pipe underneath an endpoint: where flushed frames go and
/// where incoming frames come from.
///
/// Everything above this seam — staging, coalescing, metering, sequence
/// and phase validation, the transcript — is transport-independent by
/// construction: the [`Channel`] hands the pipe exactly one fully framed
/// super-frame per [`Channel::flush`] and receives whole frames (or
/// whatever prefix of one the wire could produce) back. Swapping the pipe
/// therefore cannot change logical meters or transcripts, which is what
/// lets the differential suite assert byte-identical transcripts across
/// the in-process and TCP transports.
pub(crate) enum Pipe {
    /// In-process duplex: frames travel as owned buffers over `mpsc`.
    Mpsc {
        tx: Sender<Vec<u8>>,
        rx: Receiver<Vec<u8>>,
    },
    /// A real TCP stream carrying the same length-prefixed frames.
    Tcp(TcpPipe),
}

impl Pipe {
    /// Ship one framed buffer. Returns the buffer back for recycling when
    /// the pipe copies it onto a wire (TCP); `None` when the pipe consumes
    /// it (mpsc hands ownership to the peer).
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<Option<Vec<u8>>, TransportError> {
        match self {
            Pipe::Mpsc { tx, .. } => {
                if tx.send(frame).is_err() {
                    return Err(TransportError::PeerClosed { during: "send" });
                }
                Ok(None)
            }
            Pipe::Tcp(tcp) => {
                tcp.send_frame(&frame)?;
                Ok(Some(frame))
            }
        }
    }

    /// Block for the next frame. `spare` offers recycled buffers for pipes
    /// that must read into owned memory (TCP). The returned buffer holds
    /// header + payload as received; validation is the caller's job —
    /// short or truncated reads come back as short buffers so the
    /// channel's header checks type the fault identically on every
    /// transport.
    fn recv_frame(&mut self, spare: &mut Vec<Vec<u8>>) -> Result<Vec<u8>, TransportError> {
        match self {
            Pipe::Mpsc { rx, .. } => rx
                .recv()
                .map_err(|_| TransportError::PeerClosed { during: "recv" }),
            Pipe::Tcp(tcp) => tcp.recv_frame(spare),
        }
    }

    /// Set (or clear) the I/O deadline on a socket-backed pipe. No-op for
    /// the in-process pipe, which cannot time out.
    fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        if let Pipe::Tcp(tcp) = self {
            tcp.set_io_timeout(timeout);
        }
    }
}

/// Shared counters observed by both endpoints and the harness.
#[derive(Debug, Default)]
struct Meter {
    bytes_alice_to_bob: AtomicU64,
    bytes_bob_to_alice: AtomicU64,
    messages_alice_to_bob: AtomicU64,
    messages_bob_to_alice: AtomicU64,
    rounds: AtomicU64,
    /// Encodes the direction of the previous message so a direction switch
    /// can be detected: 0 = none yet, 1 = Alice→Bob, 2 = Bob→Alice.
    last_dir: AtomicU64,
    /// Payload bytes sent while an endpoint was in [`Phase::Offline`].
    offline_bytes: AtomicU64,
    /// Payload bytes sent while an endpoint was in [`Phase::Online`].
    online_bytes: AtomicU64,
    /// Direction switches among offline-phase messages.
    offline_rounds: AtomicU64,
    /// Direction switches among online-phase messages.
    online_rounds: AtomicU64,
    /// `last_dir`, restricted to offline-phase traffic.
    last_dir_offline: AtomicU64,
    /// `last_dir`, restricted to online-phase traffic.
    last_dir_online: AtomicU64,
    /// Wire frames shipped by Alice (fault plans index these).
    frames_alice_to_bob: AtomicU64,
    /// Wire frames shipped by Bob.
    frames_bob_to_alice: AtomicU64,
    /// Wire-level direction switches (counted at flush time, per frame).
    super_rounds: AtomicU64,
    /// `last_dir` for wire frames.
    last_dir_wire: AtomicU64,
    /// Wire-level direction switches among offline-phase frames.
    offline_super_rounds: AtomicU64,
    /// Wire-level direction switches among online-phase frames.
    online_super_rounds: AtomicU64,
    /// `last_dir_wire`, restricted to offline-phase frames.
    last_dir_wire_offline: AtomicU64,
    /// `last_dir_wire`, restricted to online-phase frames.
    last_dir_wire_online: AtomicU64,
}

/// A snapshot of the communication counters after (or during) a protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Payload bytes sent from Alice to Bob.
    pub bytes_alice_to_bob: u64,
    /// Payload bytes sent from Bob to Alice.
    pub bytes_bob_to_alice: u64,
    /// Messages sent from Alice to Bob.
    pub messages_alice_to_bob: u64,
    /// Messages sent from Bob to Alice.
    pub messages_bob_to_alice: u64,
    /// Total number of messages in both directions.
    pub messages: u64,
    /// Number of *logical* communication rounds, counted as direction
    /// switches in the staged message order (a "round" in the MPC sense: a
    /// maximal run of messages flowing one way). This is the
    /// data-independent protocol structure; see [`CommStats::super_rounds`]
    /// for what actually hit the wire.
    pub rounds: u64,
    /// Payload bytes (both directions) sent during [`Phase::Offline`].
    pub offline_bytes: u64,
    /// Payload bytes (both directions) sent during [`Phase::Online`].
    pub online_bytes: u64,
    /// Rounds among offline-phase messages only.
    pub offline_rounds: u64,
    /// Rounds among online-phase messages only.
    pub online_rounds: u64,
    /// Wire frames actually shipped by Alice. Fault plans
    /// ([`crate::fault::FaultSpec::message_index`]) index these, not
    /// logical messages.
    pub frames_alice_to_bob: u64,
    /// Wire frames actually shipped by Bob.
    pub frames_bob_to_alice: u64,
    /// Wire-level rounds: direction switches among *flushed frames*. Each
    /// super-round is one latency payment under [`NetModel`]; message
    /// coalescing reduces this meter, never `rounds`.
    pub super_rounds: u64,
    /// Super-rounds among offline-phase frames only.
    pub offline_super_rounds: u64,
    /// Super-rounds among online-phase frames only.
    pub online_super_rounds: u64,
}

impl CommStats {
    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_alice_to_bob + self.bytes_bob_to_alice
    }

    /// Difference between two snapshots (counters only ever grow).
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            bytes_alice_to_bob: self.bytes_alice_to_bob - earlier.bytes_alice_to_bob,
            bytes_bob_to_alice: self.bytes_bob_to_alice - earlier.bytes_bob_to_alice,
            messages_alice_to_bob: self.messages_alice_to_bob - earlier.messages_alice_to_bob,
            messages_bob_to_alice: self.messages_bob_to_alice - earlier.messages_bob_to_alice,
            messages: self.messages - earlier.messages,
            rounds: self.rounds - earlier.rounds,
            offline_bytes: self.offline_bytes - earlier.offline_bytes,
            online_bytes: self.online_bytes - earlier.online_bytes,
            offline_rounds: self.offline_rounds - earlier.offline_rounds,
            online_rounds: self.online_rounds - earlier.online_rounds,
            frames_alice_to_bob: self.frames_alice_to_bob - earlier.frames_alice_to_bob,
            frames_bob_to_alice: self.frames_bob_to_alice - earlier.frames_bob_to_alice,
            super_rounds: self.super_rounds - earlier.super_rounds,
            offline_super_rounds: self.offline_super_rounds - earlier.offline_super_rounds,
            online_super_rounds: self.online_super_rounds - earlier.online_super_rounds,
        }
    }
}

/// One recorded message: sender, sender's phase, length, and — only when
/// payload capture was enabled before the message was staged — the bytes.
struct TranscriptEntry {
    role: Role,
    phase: Phase,
    len: usize,
    payload: Option<Vec<u8>>,
}

/// Shared transcript buffer. Lengths are always recorded; payload bytes are
/// captured only after a [`TranscriptHandle`] is attached, keeping the
/// default recording path allocation-free per message.
pub(crate) struct TranscriptBuf {
    entries: Mutex<Vec<TranscriptEntry>>,
    capture_payloads: AtomicBool,
}

pub(crate) type Transcript = Arc<TranscriptBuf>;

/// A handle onto a recording channel pair's transcript that outlives the
/// endpoints. Obtain one with [`Channel::transcript_handle`] before moving
/// the endpoints into party threads; read it after the protocol joins.
/// Attaching the handle switches the transcript into payload-capture mode
/// ([`TranscriptHandle::messages`] needs the bytes); length-only consumers
/// ([`Channel::transcript_lengths`]) never pay for payload clones.
///
/// Determinism tests compare [`TranscriptHandle::messages`] across runs
/// that differ only in thread count: a deterministic protocol produces
/// byte-identical transcripts.
#[derive(Clone)]
pub struct TranscriptHandle {
    inner: Transcript,
}

impl std::fmt::Debug for TranscriptHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranscriptHandle").finish()
    }
}

impl TranscriptHandle {
    /// Full transcript so far: `(sender, payload)` per message, in staged
    /// wire order.
    ///
    /// Panics if any message was recorded before this handle was attached
    /// (payload capture is enabled by [`Channel::transcript_handle`], so
    /// attach the handle before the protocol runs).
    pub fn messages(&self) -> Vec<(Role, Vec<u8>)> {
        self.inner
            .entries
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|e| {
                let payload = e.payload.as_ref().expect(
                    "payload was not captured: call transcript_handle() before the protocol runs",
                );
                (e.role, payload.clone())
            })
            .collect()
    }

    /// Per-message lengths, in wire order (the obliviousness view). Served
    /// from the recorded lengths — no payload clones.
    pub fn lengths(&self) -> Vec<(Role, usize)> {
        self.inner
            .entries
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|e| (e.role, e.len))
            .collect()
    }

    /// Per-message lengths with the sender's phase, in wire order. Phase
    /// transitions are protocol-synchronized (a mismatched frame is
    /// rejected on receive), so filtering by phase yields each phase's
    /// transcript shape — the per-phase obliviousness view.
    pub fn phased_lengths(&self) -> Vec<(Role, Phase, usize)> {
        self.inner
            .entries
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|e| (e.role, e.phase, e.len))
            .collect()
    }
}

/// One endpoint of the metered duplex channel.
///
/// Protocol code takes `&mut Channel` and is written from the perspective of
/// one party; [`Channel::role`] says which. Messages are owned byte vectors.
/// A transcript of per-direction message lengths can be recorded for
/// obliviousness tests via [`channel_pair_with_transcript`]; the default
/// [`channel_pair`] skips the per-message lock entirely.
pub struct Channel {
    role: Role,
    pipe: Pipe,
    meter: Arc<Meter>,
    transcript: Option<Transcript>,
    /// Staged outgoing super-frame: [`HEADER`] reserved bytes, then each
    /// staged message as `[u32 LE length | payload]`.
    out_buf: Vec<u8>,
    /// Number of messages staged in `out_buf` (0 = nothing to flush).
    out_msgs: u64,
    /// Current incoming frame, header included.
    in_buf: Vec<u8>,
    /// Read cursor into `in_buf` (always ≥ [`HEADER`] once a frame is
    /// loaded).
    in_pos: usize,
    /// Bytes remaining in the current partially consumed logical message.
    msg_left: usize,
    /// Recycled frame buffers: consumed incoming frames come back here and
    /// are reused for outgoing super-frames, so the steady state allocates
    /// no per-message or per-frame buffers.
    spare: Vec<Vec<u8>>,
    /// Sequence number stamped on the next outgoing frame.
    send_seq: u32,
    /// Sequence number expected on the next incoming frame.
    recv_seq: u32,
    /// Execution phase stamped on outgoing frames and demanded of incoming
    /// ones. Both endpoints switch phases at the same protocol points.
    phase: Phase,
    /// Optional simulated network applied to flushed frames.
    net: Option<NetModel>,
    /// Frame payload cap; [`MAX_FRAME_SIZE`] unless lowered for tests.
    frame_cap: usize,
    /// Uncoalesced mode: flush after every staged message, so each logical
    /// message ships as its own wire frame. Differential tests use this to
    /// prove coalescing changes only wire-level framing, never content.
    eager: bool,
    /// Meter *incoming* traffic too (at consume time, against the peer's
    /// direction). Off for paired endpoints sharing one meter — there the
    /// sender's stage-time metering already covers both directions and
    /// consume-time metering would double-count. On for a standalone
    /// remote endpoint (one process per party over TCP), whose local meter
    /// would otherwise only ever see its own sends.
    meter_rx: bool,
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel").field("role", &self.role).finish()
    }
}

/// Create a connected pair of endpoints: `(alice, bob)`. No transcript is
/// recorded — the hot path takes no lock per message.
pub fn channel_pair() -> (Channel, Channel) {
    make_pair(None)
}

/// Create a connected pair that records the transcript of `(sender, length)`
/// pairs, for obliviousness tests. Every send takes a shared lock; use
/// [`channel_pair`] everywhere else. Payload bytes are additionally captured
/// once a [`TranscriptHandle`] is attached.
pub fn channel_pair_with_transcript() -> (Channel, Channel) {
    make_pair(Some(new_transcript()))
}

fn make_pair(transcript: Option<Transcript>) -> (Channel, Channel) {
    let (a2b_tx, a2b_rx) = mpsc::channel();
    let (b2a_tx, b2a_rx) = mpsc::channel();
    let meter = Arc::new(Meter::default());
    let alice = Channel::from_parts(
        Role::Alice,
        Pipe::Mpsc {
            tx: a2b_tx,
            rx: b2a_rx,
        },
        Arc::clone(&meter),
        transcript.clone(),
    );
    let bob = Channel::from_parts(
        Role::Bob,
        Pipe::Mpsc {
            tx: b2a_tx,
            rx: a2b_rx,
        },
        meter,
        transcript,
    );
    (alice, bob)
}

/// Build a connected pair of endpoints over two already-connected TCP
/// streams (`alice`'s socket and `bob`'s socket), sharing one meter and
/// transcript exactly like [`channel_pair`] — the drop-in socket-backed
/// pair the TCP differential and fault tests run the full battery on.
/// Incoming traffic is not re-metered (`meter_rx` stays off): the shared
/// meter already sees every message at stage time, so all counters are
/// byte-for-byte comparable with the in-process pair.
pub(crate) fn tcp_pair_from_pipes(
    alice: TcpPipe,
    bob: TcpPipe,
    transcript: Option<Transcript>,
) -> (Channel, Channel) {
    let meter = Arc::new(Meter::default());
    let a = Channel::from_parts(
        Role::Alice,
        Pipe::Tcp(alice),
        Arc::clone(&meter),
        transcript.clone(),
    );
    let b = Channel::from_parts(Role::Bob, Pipe::Tcp(bob), meter, transcript);
    (a, b)
}

/// Build a standalone endpoint over a TCP stream for the party-per-process
/// deployment (`secyan-server` / `secyan-client`). The endpoint carries
/// its own meter and additionally meters *incoming* traffic at consume
/// time, so its local [`CommStats`] cover both directions without a
/// shared-memory peer.
pub(crate) fn tcp_endpoint_from_pipe(role: Role, pipe: TcpPipe) -> Channel {
    let mut ch = Channel::from_parts(role, Pipe::Tcp(pipe), Arc::new(Meter::default()), None);
    ch.meter_rx = true;
    ch
}

/// Fresh transcript buffer for a recording pair (see
/// [`channel_pair_with_transcript`]).
pub(crate) fn new_transcript() -> Transcript {
    Arc::new(TranscriptBuf {
        entries: Mutex::new(Vec::new()),
        capture_payloads: AtomicBool::new(false),
    })
}

/// The raw wires of a relayed pair: each direction's traffic flows
/// endpoint → relay (`*_in`) and relay → endpoint (`*_out`), so the
/// fault-injection relay (see [`crate::fault`]) can tamper with frames in
/// flight. Frames on these wires are complete framed messages unless a
/// fault deliberately violates that invariant.
pub(crate) struct RelayWires {
    /// Frames Alice sent, awaiting relay to Bob.
    pub(crate) a2b_in: Receiver<Vec<u8>>,
    /// Relay's output toward Bob's receiver.
    pub(crate) a2b_out: Sender<Vec<u8>>,
    /// Frames Bob sent, awaiting relay to Alice.
    pub(crate) b2a_in: Receiver<Vec<u8>>,
    /// Relay's output toward Alice's receiver.
    pub(crate) b2a_out: Sender<Vec<u8>>,
}

/// Create a pair whose two directions pass through external relay wires
/// instead of being directly connected.
pub(crate) fn relayed_pair(transcript: Option<Transcript>) -> (Channel, Channel, RelayWires) {
    let (a_tx, a2b_in) = mpsc::channel();
    let (a2b_out, b_rx) = mpsc::channel();
    let (b_tx, b2a_in) = mpsc::channel();
    let (b2a_out, a_rx) = mpsc::channel();
    let meter = Arc::new(Meter::default());
    let alice = Channel::from_parts(
        Role::Alice,
        Pipe::Mpsc { tx: a_tx, rx: a_rx },
        Arc::clone(&meter),
        transcript.clone(),
    );
    let bob = Channel::from_parts(
        Role::Bob,
        Pipe::Mpsc { tx: b_tx, rx: b_rx },
        meter,
        transcript,
    );
    let wires = RelayWires {
        a2b_in,
        a2b_out,
        b2a_in,
        b2a_out,
    };
    (alice, bob, wires)
}

impl Channel {
    fn from_parts(
        role: Role,
        pipe: Pipe,
        meter: Arc<Meter>,
        transcript: Option<Transcript>,
    ) -> Channel {
        Channel {
            role,
            pipe,
            meter,
            transcript,
            out_buf: vec![0u8; HEADER],
            out_msgs: 0,
            in_buf: Vec::new(),
            in_pos: 0,
            msg_left: 0,
            spare: Vec::new(),
            send_seq: 0,
            recv_seq: 0,
            phase: Phase::Single,
            net: None,
            frame_cap: MAX_FRAME_SIZE,
            eager: false,
            meter_rx: false,
        }
    }

    /// Set (or clear) the I/O deadline for socket-backed endpoints: any
    /// single blocked read or write past the deadline surfaces as a typed
    /// [`TransportError::Timeout`] instead of hanging the session thread.
    /// No-op on in-process endpoints (the mpsc pipe cannot stall — a dead
    /// peer closes it and surfaces as `PeerClosed` immediately).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        self.pipe.set_io_timeout(timeout);
    }

    /// Disable (or re-enable) message coalescing on this endpoint: in
    /// eager mode every staged message is flushed immediately as its own
    /// wire frame — the pre-super-round wire behavior. Logical meters and
    /// the transcript are unaffected (they are stage-time); only the
    /// frame/super-round counters change. Differential tests run a
    /// protocol both ways and assert identical results and transcripts.
    pub fn set_eager(&mut self, eager: bool) {
        self.eager = eager;
    }

    /// Install (or clear) a simulated network on this endpoint. Both
    /// endpoints of a pair should carry the same model; see
    /// [`crate::run_protocol_with_net`].
    pub fn set_net_model(&mut self, net: Option<NetModel>) {
        self.net = net;
    }

    /// Lower the frame payload cap below [`MAX_FRAME_SIZE`] (tests use this
    /// to exercise super-frame splitting without gigantic payloads). Both
    /// endpoints of a pair should agree. Clamped to `[64, MAX_FRAME_SIZE]`.
    pub fn set_frame_cap(&mut self, cap: usize) {
        self.frame_cap = cap.clamp(64, MAX_FRAME_SIZE);
    }

    /// The party this endpoint belongs to.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The current execution phase (stamped on outgoing frames).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Switch this endpoint into `phase`, flushing any staged messages
    /// under the old phase tag first (a frame carries exactly one phase).
    /// The peer must make the matching switch at the same protocol point: a
    /// frame tagged with a different phase than the receiver's current one
    /// is rejected as [`TransportError::PhaseMismatch`].
    pub fn set_phase(&mut self, phase: Phase) {
        if phase != self.phase {
            self.flush();
            self.phase = phase;
        }
    }

    /// Stage one message for the peer. Alias of [`Channel::send`] taking a
    /// slice; the message rides the next flushed super-frame.
    pub fn stage(&mut self, data: &[u8]) {
        self.send_with(data.len(), |buf| buf.copy_from_slice(data));
    }

    /// Stage one message to the peer. The message is metered and recorded
    /// now (stage order is the logical transcript order) but hits the wire
    /// only when the endpoint flushes — explicitly via [`Channel::flush`],
    /// or automatically as soon as this endpoint would block waiting for
    /// the peer, on a phase switch, and on drop.
    ///
    /// Raises a typed [`TransportError::PeerClosed`] unwind (caught by
    /// [`crate::try_run_protocol`]) if the peer is gone and a forced flush
    /// fails.
    pub fn send(&mut self, data: Vec<u8>) {
        self.stage(&data);
    }

    /// Stage a message of known length `len`, letting `fill` write the
    /// payload directly into the staging buffer — the zero-copy path for
    /// typed writers that would otherwise build a temporary `Vec`.
    pub fn send_with(&mut self, len: usize, fill: impl FnOnce(&mut [u8])) {
        assert!(
            SUB_HEADER + len <= self.frame_cap,
            "message of {len} bytes exceeds the frame cap {}",
            self.frame_cap
        );
        // Keep the super-frame under the cap: ship what is staged first.
        if self.out_buf.len() + SUB_HEADER + len > HEADER + self.frame_cap {
            self.flush();
        }
        let start = self.out_buf.len() + SUB_HEADER;
        self.out_buf.extend_from_slice(&(len as u32).to_le_bytes());
        self.out_buf.resize(start + len, 0);
        fill(&mut self.out_buf[start..]);
        self.out_msgs += 1;
        // Logical meters and transcript are per-message and stage-time:
        // coalescing must not change any reported byte count or the
        // obliviousness view.
        self.meter_message(self.role, len);
        if let Some(transcript) = &self.transcript {
            let payload = transcript
                .capture_payloads
                .load(Ordering::Relaxed)
                .then(|| self.out_buf[start..].to_vec());
            transcript
                .entries
                .lock()
                .expect("transcript lock poisoned")
                .push(TranscriptEntry {
                    role: self.role,
                    phase: self.phase,
                    len,
                    payload,
                });
        }
        if self.eager {
            self.flush();
        }
    }

    /// Logical per-message accounting for one message sent by `sender`.
    /// Called at stage time for this endpoint's own messages; a standalone
    /// remote endpoint (`meter_rx`) additionally calls it at consume time
    /// for the peer's messages, which is the only point a single process
    /// observes them.
    fn meter_message(&self, sender: Role, len: usize) {
        let blen = len as u64;
        match sender {
            Role::Alice => {
                self.meter
                    .bytes_alice_to_bob
                    .fetch_add(blen, Ordering::Relaxed);
                self.meter
                    .messages_alice_to_bob
                    .fetch_add(1, Ordering::Relaxed);
            }
            Role::Bob => {
                self.meter
                    .bytes_bob_to_alice
                    .fetch_add(blen, Ordering::Relaxed);
                self.meter
                    .messages_bob_to_alice
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let dir = match sender {
            Role::Alice => 1,
            Role::Bob => 2,
        };
        if self.meter.last_dir.swap(dir, Ordering::Relaxed) != dir {
            self.meter.rounds.fetch_add(1, Ordering::Relaxed);
        }
        match self.phase {
            Phase::Single => {}
            Phase::Offline => {
                self.meter.offline_bytes.fetch_add(blen, Ordering::Relaxed);
                if self.meter.last_dir_offline.swap(dir, Ordering::Relaxed) != dir {
                    self.meter.offline_rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
            Phase::Online => {
                self.meter.online_bytes.fetch_add(blen, Ordering::Relaxed);
                if self.meter.last_dir_online.swap(dir, Ordering::Relaxed) != dir {
                    self.meter.online_rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Wire-level per-frame accounting for one frame sent by `sender`.
    /// Returns whether the frame switched the wire direction (a
    /// super-round boundary — the latency payment under [`NetModel`]).
    fn meter_frame(&self, sender: Role) -> bool {
        let dir = match sender {
            Role::Alice => 1,
            Role::Bob => 2,
        };
        match sender {
            Role::Alice => &self.meter.frames_alice_to_bob,
            Role::Bob => &self.meter.frames_bob_to_alice,
        }
        .fetch_add(1, Ordering::Relaxed);
        let switched = self.meter.last_dir_wire.swap(dir, Ordering::Relaxed) != dir;
        if switched {
            self.meter.super_rounds.fetch_add(1, Ordering::Relaxed);
        }
        match self.phase {
            Phase::Single => {}
            Phase::Offline => {
                if self
                    .meter
                    .last_dir_wire_offline
                    .swap(dir, Ordering::Relaxed)
                    != dir
                {
                    self.meter
                        .offline_super_rounds
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Phase::Online => {
                if self.meter.last_dir_wire_online.swap(dir, Ordering::Relaxed) != dir {
                    self.meter
                        .online_super_rounds
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        switched
    }

    /// Ship the staged super-frame, if any. One wire frame per call; a
    /// no-op when nothing is staged. Called automatically whenever this
    /// endpoint is about to block on the wire (so a blocked party has, by
    /// construction, everything it owes the peer already in flight), on
    /// phase switches, and on drop.
    pub fn flush(&mut self) {
        self.try_flush().unwrap_or_else(|e| e.raise())
    }

    /// Fallible form of [`Channel::flush`].
    pub fn try_flush(&mut self) -> Result<(), TransportError> {
        if self.out_msgs == 0 {
            return Ok(());
        }
        // Wire-level (super-round) accounting happens per frame.
        let switched = self.meter_frame(self.role);
        let payload_len = self.out_buf.len() - HEADER;
        // Simulated network: block the sending thread for the modeled
        // serialization delay, plus propagation on a direction switch,
        // before the frame becomes visible to the peer. Latency is paid
        // once per super-round, which is exactly what coalescing buys.
        if let Some(net) = self.net {
            let bits = (payload_len as u64).saturating_mul(8);
            let mut delay_us = bits
                .saturating_mul(1_000_000)
                .div_euclid(net.bandwidth_bits_per_sec.max(1));
            if switched {
                delay_us += net.one_way_latency_us;
            }
            if delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
        }
        self.out_buf[0..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let seq_word = (self.send_seq & SEQ_MASK) | (self.phase.tag() << 30);
        self.out_buf[4..8].copy_from_slice(&seq_word.to_le_bytes());
        self.send_seq = self.send_seq.wrapping_add(1) & SEQ_MASK;
        let mut next = self.take_spare();
        next.resize(HEADER, 0);
        let frame = std::mem::replace(&mut self.out_buf, next);
        self.out_msgs = 0;
        if let Some(buf) = self.pipe.send_frame(frame)? {
            if self.spare.len() < SPARE_BUFFERS {
                self.spare.push(buf);
            }
        }
        Ok(())
    }

    /// Grab a recycled buffer (or a fresh one) for the next super-frame.
    fn take_spare(&mut self) -> Vec<u8> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Pull the next frame off the wire and validate its header, loading it
    /// as the current incoming buffer. Flushes staged messages first: an
    /// endpoint never blocks on the peer while holding data the peer may be
    /// waiting for.
    fn fetch_frame(&mut self) -> Result<(), TransportError> {
        self.try_flush()?;
        // Recycle the consumed frame for future outgoing super-frames.
        if !self.in_buf.is_empty() && self.spare.len() < SPARE_BUFFERS {
            let mut old = std::mem::take(&mut self.in_buf);
            old.clear();
            self.spare.push(old);
        }
        let frame = self.pipe.recv_frame(&mut self.spare)?;
        if frame.len() < HEADER {
            return Err(TransportError::Corrupt {
                detail: "frame shorter than its 8-byte header",
            });
        }
        let mut word = [0u8; 4];
        word.copy_from_slice(&frame[0..4]);
        let declared = u32::from_le_bytes(word) as usize;
        word.copy_from_slice(&frame[4..8]);
        let seq_word = u32::from_le_bytes(word);
        let seq = seq_word & SEQ_MASK;
        if seq != self.recv_seq {
            return Err(TransportError::OutOfOrder {
                expected: u64::from(self.recv_seq),
                got: u64::from(seq),
            });
        }
        let Some(phase) = Phase::from_tag(seq_word >> 30) else {
            return Err(TransportError::Corrupt {
                detail: "unknown phase tag in sequence word",
            });
        };
        if phase != self.phase {
            return Err(TransportError::PhaseMismatch {
                expected: self.phase,
                got: phase,
            });
        }
        self.recv_seq = self.recv_seq.wrapping_add(1) & SEQ_MASK;
        // Declared-size bound *before* the truncation check: an oversized
        // declaration is its own typed fault, whatever bytes follow.
        if declared > MAX_FRAME_SIZE {
            return Err(TransportError::FrameTooLarge {
                declared: declared as u64,
                limit: MAX_FRAME_SIZE as u64,
            });
        }
        let got = frame.len() - HEADER;
        if got != declared {
            return Err(TransportError::Truncated {
                expected: declared,
                got,
            });
        }
        if self.meter_rx {
            self.meter_frame(self.role.peer());
        }
        self.in_buf = frame;
        self.in_pos = HEADER;
        Ok(())
    }

    /// Advance to the next logical message in the incoming stream, fetching
    /// frames as needed. On success `msg_left` holds the message's length
    /// and `in_pos` sits on its first byte.
    fn next_sub(&mut self) -> Result<(), TransportError> {
        debug_assert_eq!(self.msg_left, 0);
        while self.in_pos >= self.in_buf.len() {
            self.fetch_frame()?;
        }
        if self.in_buf.len() - self.in_pos < SUB_HEADER {
            return Err(TransportError::Corrupt {
                detail: "message sub-header crosses the frame boundary",
            });
        }
        let mut word = [0u8; 4];
        word.copy_from_slice(&self.in_buf[self.in_pos..self.in_pos + SUB_HEADER]);
        let len = u32::from_le_bytes(word) as usize;
        self.in_pos += SUB_HEADER;
        let avail = self.in_buf.len() - self.in_pos;
        if len > avail {
            // The sender never splits one logical message across frames, so
            // a sub-length overrunning its frame is a wire fault.
            return Err(TransportError::Truncated {
                expected: len,
                got: avail,
            });
        }
        self.msg_left = len;
        if self.meter_rx {
            self.meter_message(self.role.peer(), len);
        }
        Ok(())
    }

    /// Receive one whole message from the peer, blocking until it arrives
    /// (and flushing staged messages first if it must block).
    ///
    /// Raises a typed [`TransportError`] unwind (caught by
    /// [`crate::try_run_protocol`]) on peer close or a malformed frame.
    /// Panics if a previous [`Channel::recv_into`] left a partially consumed
    /// message; mixing the two styles on one message is a protocol bug.
    pub fn recv(&mut self) -> Vec<u8> {
        self.try_recv().unwrap_or_else(|e| e.raise())
    }

    /// Fallible form of [`Channel::recv`].
    pub fn try_recv(&mut self) -> Result<Vec<u8>, TransportError> {
        assert!(
            self.msg_left == 0,
            "recv() called with {} unconsumed bytes of the current message",
            self.msg_left
        );
        self.next_sub()?;
        let out = self.in_buf[self.in_pos..self.in_pos + self.msg_left].to_vec();
        self.in_pos += self.msg_left;
        self.msg_left = 0;
        Ok(out)
    }

    /// Receive exactly `buf.len()` bytes, spanning message boundaries if
    /// needed. Useful for fixed-size framed protocols.
    ///
    /// Raises a typed [`TransportError`] unwind (caught by
    /// [`crate::try_run_protocol`]) on peer close or a malformed frame.
    pub fn recv_into(&mut self, buf: &mut [u8]) {
        self.try_recv_into(buf).unwrap_or_else(|e| e.raise())
    }

    /// Fallible form of [`Channel::recv_into`].
    pub fn try_recv_into(&mut self, buf: &mut [u8]) -> Result<(), TransportError> {
        let mut filled = 0;
        while filled < buf.len() {
            if self.msg_left == 0 {
                self.next_sub()?;
            }
            let take = self.msg_left.min(buf.len() - filled);
            buf[filled..filled + take]
                .copy_from_slice(&self.in_buf[self.in_pos..self.in_pos + take]);
            self.in_pos += take;
            self.msg_left -= take;
            filled += take;
        }
        Ok(())
    }

    /// Snapshot of the shared communication counters. Flush first if the
    /// super-round meters must include messages staged by this endpoint.
    pub fn stats(&self) -> CommStats {
        let m_a2b = self.meter.messages_alice_to_bob.load(Ordering::Relaxed);
        let m_b2a = self.meter.messages_bob_to_alice.load(Ordering::Relaxed);
        CommStats {
            bytes_alice_to_bob: self.meter.bytes_alice_to_bob.load(Ordering::Relaxed),
            bytes_bob_to_alice: self.meter.bytes_bob_to_alice.load(Ordering::Relaxed),
            messages_alice_to_bob: m_a2b,
            messages_bob_to_alice: m_b2a,
            messages: m_a2b + m_b2a,
            rounds: self.meter.rounds.load(Ordering::Relaxed),
            offline_bytes: self.meter.offline_bytes.load(Ordering::Relaxed),
            online_bytes: self.meter.online_bytes.load(Ordering::Relaxed),
            offline_rounds: self.meter.offline_rounds.load(Ordering::Relaxed),
            online_rounds: self.meter.online_rounds.load(Ordering::Relaxed),
            frames_alice_to_bob: self.meter.frames_alice_to_bob.load(Ordering::Relaxed),
            frames_bob_to_alice: self.meter.frames_bob_to_alice.load(Ordering::Relaxed),
            super_rounds: self.meter.super_rounds.load(Ordering::Relaxed),
            offline_super_rounds: self.meter.offline_super_rounds.load(Ordering::Relaxed),
            online_super_rounds: self.meter.online_super_rounds.load(Ordering::Relaxed),
        }
    }

    /// True if this endpoint records a transcript (built by
    /// [`channel_pair_with_transcript`]).
    pub fn records_transcript(&self) -> bool {
        self.transcript.is_some()
    }

    /// The transcript of `(sender, message length)` pairs so far, in wire
    /// order. Obliviousness tests compare this across different inputs of
    /// the same public size: an oblivious protocol yields identical
    /// transcripts.
    ///
    /// Panics unless the pair came from [`channel_pair_with_transcript`].
    pub fn transcript_lengths(&self) -> Vec<(Role, usize)> {
        let transcript = self
            .transcript
            .as_ref()
            .expect("transcript recording is opt-in: use channel_pair_with_transcript()");
        transcript
            .entries
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|e| (e.role, e.len))
            .collect()
    }

    /// A clonable handle onto the shared transcript, usable after the
    /// endpoint itself is consumed by a party thread. Attaching the handle
    /// enables payload capture for all subsequently staged messages (so
    /// [`TranscriptHandle::messages`] can return bytes); attach it before
    /// the protocol runs.
    ///
    /// Panics unless the pair came from [`channel_pair_with_transcript`].
    pub fn transcript_handle(&self) -> TranscriptHandle {
        let inner = Arc::clone(
            self.transcript
                .as_ref()
                .expect("transcript recording is opt-in: use channel_pair_with_transcript()"),
        );
        inner.capture_payloads.store(true, Ordering::Relaxed);
        TranscriptHandle { inner }
    }
}

impl Drop for Channel {
    /// Best-effort flush so a cleanly returning party never strands staged
    /// messages its peer is still reading toward. Errors (peer already
    /// gone) are ignored — drop must not panic.
    fn drop(&mut self) {
        if self.out_msgs > 0 {
            let _ = self.try_flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_and_meters() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            let m = b.recv();
            assert_eq!(m, vec![1, 2, 3]);
            b.send(vec![9; 10]);
            b.flush();
            b.stats()
        });
        a.send(vec![1, 2, 3]);
        let m = a.recv(); // auto-flushes the staged message before blocking
        assert_eq!(m, vec![9; 10]);
        let stats = h.join().unwrap();
        assert_eq!(stats.bytes_alice_to_bob, 3);
        assert_eq!(stats.bytes_bob_to_alice, 10);
        assert_eq!(stats.messages_alice_to_bob, 1);
        assert_eq!(stats.messages_bob_to_alice, 1);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.super_rounds, 2);
    }

    #[test]
    fn rounds_count_direction_switches() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
            b.recv();
            b.send(vec![0]);
            b.recv();
        });
        a.send(vec![0]);
        a.send(vec![0]); // same direction: still round 1
        a.recv();
        a.send(vec![0]);
        a.flush();
        h.join().unwrap();
        assert_eq!(a.stats().rounds, 3);
        // Same three direction switches on the wire; the two same-direction
        // messages shared one frame.
        assert_eq!(a.stats().super_rounds, 3);
    }

    #[test]
    fn staged_messages_coalesce_into_one_frame() {
        let (mut a, mut b, wires) = relayed_pair(None);
        a.send(vec![1, 2]);
        a.send(vec![3]);
        a.send(vec![4, 5, 6]);
        a.flush();
        // Exactly one frame on the wire...
        let frame = wires.a2b_in.recv().unwrap();
        assert!(wires.a2b_in.try_recv().is_err(), "expected a single frame");
        wires.a2b_out.send(frame).unwrap();
        // ...but three logical messages with intact boundaries.
        assert_eq!(b.recv(), vec![1, 2]);
        assert_eq!(b.recv(), vec![3]);
        assert_eq!(b.recv(), vec![4, 5, 6]);
        let stats = a.stats();
        assert_eq!(stats.messages_alice_to_bob, 3);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.super_rounds, 1);
    }

    #[test]
    fn flush_on_empty_stage_is_a_no_op() {
        let (mut a, _b) = channel_pair();
        a.flush();
        a.flush();
        assert_eq!(a.stats().super_rounds, 0);
    }

    #[test]
    fn frame_cap_splits_super_frames() {
        let (mut a, mut b, wires) = relayed_pair(None);
        a.set_frame_cap(64);
        for i in 0..10u8 {
            a.send(vec![i; 16]);
        }
        a.flush();
        let mut frames = 0;
        while let Ok(frame) = wires.a2b_in.try_recv() {
            assert!(frame.len() - HEADER <= 64, "cap violated: {}", frame.len());
            wires.a2b_out.send(frame).unwrap();
            frames += 1;
        }
        assert!(frames > 1, "cap must force splitting");
        for i in 0..10u8 {
            assert_eq!(b.recv(), vec![i; 16]);
        }
    }

    #[test]
    fn recv_into_spans_messages() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.send(vec![1, 2]);
            b.send(vec![3, 4, 5]);
            // Drop flushes the staged frame.
        });
        let mut buf = [0u8; 4];
        a.recv_into(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        let mut rest = [0u8; 1];
        a.recv_into(&mut rest);
        assert_eq!(rest, [5]);
        h.join().unwrap();
    }

    #[test]
    fn transcript_records_lengths_in_order() {
        let (mut a, mut b) = channel_pair_with_transcript();
        let h = thread::spawn(move || {
            b.recv();
            b.send(vec![7; 7]);
            b.flush();
        });
        a.send(vec![1; 4]);
        a.recv();
        h.join().unwrap();
        assert_eq!(
            a.transcript_lengths(),
            vec![(Role::Alice, 4), (Role::Bob, 7)]
        );
    }

    #[test]
    fn transcript_handle_records_payload_bytes() {
        let (mut a, mut b) = channel_pair_with_transcript();
        let handle = a.transcript_handle();
        let h = thread::spawn(move || {
            b.recv();
            b.send(vec![7; 3]);
            b.flush();
        });
        a.send(vec![1, 2]);
        a.recv();
        h.join().unwrap();
        assert_eq!(
            handle.messages(),
            vec![(Role::Alice, vec![1, 2]), (Role::Bob, vec![7, 7, 7])]
        );
        assert_eq!(handle.lengths(), vec![(Role::Alice, 2), (Role::Bob, 3)]);
    }

    #[test]
    fn payloads_not_captured_without_handle() {
        let (mut a, mut b) = channel_pair_with_transcript();
        a.send(vec![1, 2, 3]);
        a.flush();
        assert_eq!(b.recv(), vec![1, 2, 3]);
        // Lengths are recorded...
        assert_eq!(a.transcript_lengths(), vec![(Role::Alice, 3)]);
        // ...but the payload was never cloned; a late handle cannot see it.
        let handle = a.transcript_handle();
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.messages()));
        assert!(got.is_err(), "messages() must reject uncaptured payloads");
    }

    #[test]
    fn default_pair_skips_transcript() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
        });
        a.send(vec![1; 4]);
        a.flush();
        h.join().unwrap();
        assert!(!a.records_transcript());
    }

    #[test]
    #[should_panic(expected = "opt-in")]
    fn transcript_read_panics_when_disabled() {
        let (a, _b) = channel_pair();
        let _ = a.transcript_lengths();
    }

    /// Drive one direction by hand through relay wires: Alice sends and
    /// flushes, the test tampers with the frame, Bob's `try_recv` reports
    /// the fault.
    fn tampered_recv(
        tamper: impl FnOnce(Vec<u8>, &Sender<Vec<u8>>),
    ) -> Result<Vec<u8>, TransportError> {
        let (mut a, mut b, wires) = relayed_pair(None);
        a.send(vec![1, 2, 3, 4]);
        a.flush();
        let frame = wires.a2b_in.recv().unwrap();
        tamper(frame, &wires.a2b_out);
        drop(wires);
        drop(a);
        b.try_recv()
    }

    #[test]
    fn intact_frame_passes_validation() {
        let got = tampered_recv(|frame, out| out.send(frame).unwrap());
        assert_eq!(got.unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn truncated_frame_is_detected() {
        let got = tampered_recv(|frame, out| out.send(frame[..frame.len() - 2].to_vec()).unwrap());
        // Payload region = 4-byte sub-header + 4 message bytes.
        assert_eq!(
            got.unwrap_err(),
            TransportError::Truncated {
                expected: 8,
                got: 6
            }
        );
    }

    #[test]
    fn truncated_sub_message_is_detected() {
        // Outer header consistent, but the sub-length overruns the frame.
        let got = tampered_recv(|mut frame, out| {
            frame[HEADER..HEADER + 4].copy_from_slice(&100u32.to_le_bytes());
            out.send(frame).unwrap();
        });
        assert_eq!(
            got.unwrap_err(),
            TransportError::Truncated {
                expected: 100,
                got: 4
            }
        );
    }

    #[test]
    fn short_header_is_corrupt() {
        let got = tampered_recv(|frame, out| out.send(frame[..3].to_vec()).unwrap());
        assert_eq!(
            got.unwrap_err(),
            TransportError::Corrupt {
                detail: "frame shorter than its 8-byte header"
            }
        );
    }

    #[test]
    fn wrong_sequence_is_out_of_order() {
        let got = tampered_recv(|mut frame, out| {
            frame[4..8].copy_from_slice(&7u32.to_le_bytes());
            out.send(frame).unwrap();
        });
        assert_eq!(
            got.unwrap_err(),
            TransportError::OutOfOrder {
                expected: 0,
                got: 7
            }
        );
    }

    #[test]
    fn oversized_declaration_is_frame_too_large() {
        let got = tampered_recv(|mut frame, out| {
            let declared = (MAX_FRAME_SIZE as u32) + 1;
            frame[0..4].copy_from_slice(&declared.to_le_bytes());
            out.send(frame).unwrap();
        });
        assert_eq!(
            got.unwrap_err(),
            TransportError::FrameTooLarge {
                declared: MAX_FRAME_SIZE as u64 + 1,
                limit: MAX_FRAME_SIZE as u64,
            }
        );
    }

    #[test]
    fn dropped_peer_is_peer_closed() {
        let got = tampered_recv(|frame, _out| drop(frame));
        assert_eq!(
            got.unwrap_err(),
            TransportError::PeerClosed { during: "recv" }
        );
    }

    #[test]
    fn sequence_advances_per_direction() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            for i in 0..5u8 {
                assert_eq!(b.recv(), vec![i]);
            }
            b.send(vec![9]);
            b.flush();
        });
        for i in 0..5u8 {
            a.send(vec![i]);
        }
        assert_eq!(a.recv(), vec![9]);
        h.join().unwrap();
    }

    #[test]
    fn phase_tag_mismatch_is_detected() {
        let (mut a, mut b) = channel_pair();
        a.set_phase(Phase::Offline);
        a.send(vec![1, 2]);
        a.flush();
        // Receiver still in Single phase: typed error, no hang.
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::PhaseMismatch {
                expected: Phase::Single,
                got: Phase::Offline,
            }
        );
    }

    #[test]
    fn matching_phases_roundtrip_and_meter_separately() {
        let (mut a, mut b) = channel_pair();
        a.set_phase(Phase::Offline);
        b.set_phase(Phase::Offline);
        a.send(vec![0; 10]);
        a.flush();
        assert_eq!(b.recv(), vec![0; 10]);
        b.send(vec![0; 3]);
        b.flush();
        assert_eq!(a.recv(), vec![0; 3]);
        a.set_phase(Phase::Online);
        b.set_phase(Phase::Online);
        a.send(vec![0; 5]);
        a.flush();
        assert_eq!(b.recv(), vec![0; 5]);
        let stats = a.stats();
        assert_eq!(stats.offline_bytes, 13);
        assert_eq!(stats.online_bytes, 5);
        assert_eq!(stats.offline_rounds, 2);
        assert_eq!(stats.online_rounds, 1);
        assert_eq!(stats.total_bytes(), 18);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.super_rounds, 3);
        assert_eq!(stats.offline_super_rounds, 2);
        assert_eq!(stats.online_super_rounds, 1);
    }

    #[test]
    fn phase_switch_flushes_staged_messages() {
        let (mut a, mut b) = channel_pair();
        a.send(vec![1]);
        a.set_phase(Phase::Offline); // must flush the Single-phase frame
        b.recv();
        b.set_phase(Phase::Offline);
        a.send(vec![2]);
        a.flush();
        assert_eq!(b.recv(), vec![2]);
    }

    #[test]
    fn unknown_phase_tag_is_corrupt() {
        let got = tampered_recv(|mut frame, out| {
            frame[4..8].copy_from_slice(&(3u32 << 30).to_le_bytes());
            out.send(frame).unwrap();
        });
        assert_eq!(
            got.unwrap_err(),
            TransportError::Corrupt {
                detail: "unknown phase tag in sequence word",
            }
        );
    }

    #[test]
    fn net_model_delays_flushes() {
        // 80 kbit at 1 Mbit/s = 80 ms serialization, plus 5 ms latency on
        // the first (direction-switching) frame. Lower bound only: sleeps
        // may overshoot, never undershoot. The sleep happens at flush time;
        // staging is free.
        let (mut a, mut b) = channel_pair();
        let net = NetModel {
            bandwidth_bits_per_sec: 1_000_000,
            one_way_latency_us: 5_000,
        };
        a.set_net_model(Some(net));
        let h = thread::spawn(move || {
            assert_eq!(b.recv().len(), 10_000);
            assert_eq!(b.recv().len(), 10_000);
        });
        let t = std::time::Instant::now();
        a.send(vec![0u8; 10_000]);
        assert!(
            t.elapsed() < std::time::Duration::from_millis(50),
            "staging must not block"
        );
        a.flush();
        assert!(
            t.elapsed() >= std::time::Duration::from_millis(85),
            "shaped flush returned after only {:?}",
            t.elapsed()
        );
        // Clearing the model restores unshaped sends.
        a.set_net_model(None);
        let t = std::time::Instant::now();
        a.send(vec![0u8; 10_000]);
        a.flush();
        assert!(t.elapsed() < std::time::Duration::from_millis(50));
        h.join().unwrap();
    }

    #[test]
    fn meters_exclude_frame_and_sub_headers() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
            b.recv();
            b.stats()
        });
        a.send(vec![0; 5]);
        a.send(vec![0; 2]);
        a.flush();
        let stats = h.join().unwrap();
        assert_eq!(stats.bytes_alice_to_bob, 7);
        assert_eq!(stats.total_bytes(), 7);
    }
}
