//! The metered duplex channel connecting Alice and Bob.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Which of the two parties an endpoint belongs to.
///
/// Following the paper's convention, *Alice* is the designated receiver of
/// the query results unless a protocol documents otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    Alice,
    Bob,
}

impl Role {
    /// The other party.
    pub fn peer(self) -> Role {
        match self {
            Role::Alice => Role::Bob,
            Role::Bob => Role::Alice,
        }
    }

    /// True for [`Role::Alice`].
    pub fn is_alice(self) -> bool {
        matches!(self, Role::Alice)
    }
}

/// Shared counters observed by both endpoints and the harness.
#[derive(Debug, Default)]
struct Meter {
    bytes_alice_to_bob: AtomicU64,
    bytes_bob_to_alice: AtomicU64,
    messages_alice_to_bob: AtomicU64,
    messages_bob_to_alice: AtomicU64,
    rounds: AtomicU64,
    /// Encodes the direction of the previous message so a direction switch
    /// can be detected: 0 = none yet, 1 = Alice→Bob, 2 = Bob→Alice.
    last_dir: AtomicU64,
}

/// A snapshot of the communication counters after (or during) a protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Payload bytes sent from Alice to Bob.
    pub bytes_alice_to_bob: u64,
    /// Payload bytes sent from Bob to Alice.
    pub bytes_bob_to_alice: u64,
    /// Messages sent from Alice to Bob.
    pub messages_alice_to_bob: u64,
    /// Messages sent from Bob to Alice.
    pub messages_bob_to_alice: u64,
    /// Total number of messages in both directions.
    pub messages: u64,
    /// Number of communication rounds, counted as direction switches on the
    /// wire (a "round" in the MPC sense: a maximal run of messages flowing
    /// one way).
    pub rounds: u64,
}

impl CommStats {
    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_alice_to_bob + self.bytes_bob_to_alice
    }

    /// Difference between two snapshots (counters only ever grow).
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            bytes_alice_to_bob: self.bytes_alice_to_bob - earlier.bytes_alice_to_bob,
            bytes_bob_to_alice: self.bytes_bob_to_alice - earlier.bytes_bob_to_alice,
            messages_alice_to_bob: self.messages_alice_to_bob - earlier.messages_alice_to_bob,
            messages_bob_to_alice: self.messages_bob_to_alice - earlier.messages_bob_to_alice,
            messages: self.messages - earlier.messages,
            rounds: self.rounds - earlier.rounds,
        }
    }
}

/// Shared transcript buffer: `(sender, payload bytes)` per message.
type Transcript = Arc<Mutex<Vec<(Role, Vec<u8>)>>>;

/// A handle onto a recording channel pair's transcript that outlives the
/// endpoints. Obtain one with [`Channel::transcript_handle`] before moving
/// the endpoints into party threads; read it after the protocol joins.
///
/// Determinism tests compare [`TranscriptHandle::messages`] across runs
/// that differ only in thread count: a deterministic protocol produces
/// byte-identical transcripts.
#[derive(Debug, Clone)]
pub struct TranscriptHandle {
    inner: Transcript,
}

impl TranscriptHandle {
    /// Full transcript so far: `(sender, payload)` per message, in wire
    /// order.
    pub fn messages(&self) -> Vec<(Role, Vec<u8>)> {
        self.inner.lock().expect("transcript lock poisoned").clone()
    }

    /// Per-message lengths, in wire order (the obliviousness view).
    pub fn lengths(&self) -> Vec<(Role, usize)> {
        self.inner
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|(role, payload)| (*role, payload.len()))
            .collect()
    }
}

/// One endpoint of the metered duplex channel.
///
/// Protocol code takes `&mut Channel` and is written from the perspective of
/// one party; [`Channel::role`] says which. Messages are owned byte vectors.
/// A transcript of per-direction message lengths can be recorded for
/// obliviousness tests via [`channel_pair_with_transcript`]; the default
/// [`channel_pair`] skips the per-message lock entirely.
pub struct Channel {
    role: Role,
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    meter: Arc<Meter>,
    transcript: Option<Transcript>,
    /// Buffer holding the remainder of a partially consumed incoming message.
    pending: Vec<u8>,
    pending_pos: usize,
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel").field("role", &self.role).finish()
    }
}

/// Create a connected pair of endpoints: `(alice, bob)`. No transcript is
/// recorded — the hot path takes no lock per message.
pub fn channel_pair() -> (Channel, Channel) {
    make_pair(None)
}

/// Create a connected pair that records the transcript of `(sender, length)`
/// pairs, for obliviousness tests. Every send takes a shared lock; use
/// [`channel_pair`] everywhere else.
pub fn channel_pair_with_transcript() -> (Channel, Channel) {
    make_pair(Some(Arc::new(Mutex::new(Vec::new()))))
}

fn make_pair(transcript: Option<Transcript>) -> (Channel, Channel) {
    let (a2b_tx, a2b_rx) = mpsc::channel();
    let (b2a_tx, b2a_rx) = mpsc::channel();
    let meter = Arc::new(Meter::default());
    let alice = Channel {
        role: Role::Alice,
        tx: a2b_tx,
        rx: b2a_rx,
        meter: Arc::clone(&meter),
        transcript: transcript.clone(),
        pending: Vec::new(),
        pending_pos: 0,
    };
    let bob = Channel {
        role: Role::Bob,
        tx: b2a_tx,
        rx: a2b_rx,
        meter,
        transcript,
        pending: Vec::new(),
        pending_pos: 0,
    };
    (alice, bob)
}

impl Channel {
    /// The party this endpoint belongs to.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Send one message to the peer.
    pub fn send(&mut self, data: Vec<u8>) {
        let len = data.len() as u64;
        match self.role {
            Role::Alice => self
                .meter
                .bytes_alice_to_bob
                .fetch_add(len, Ordering::Relaxed),
            Role::Bob => self
                .meter
                .bytes_bob_to_alice
                .fetch_add(len, Ordering::Relaxed),
        };
        match self.role {
            Role::Alice => self
                .meter
                .messages_alice_to_bob
                .fetch_add(1, Ordering::Relaxed),
            Role::Bob => self
                .meter
                .messages_bob_to_alice
                .fetch_add(1, Ordering::Relaxed),
        };
        let dir = match self.role {
            Role::Alice => 1,
            Role::Bob => 2,
        };
        if self.meter.last_dir.swap(dir, Ordering::Relaxed) != dir {
            self.meter.rounds.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(transcript) = &self.transcript {
            transcript
                .lock()
                .expect("transcript lock poisoned")
                .push((self.role, data.clone()));
        }
        self.tx.send(data).expect("peer hung up during send");
    }

    /// Receive one whole message from the peer, blocking until it arrives.
    ///
    /// Panics if a previous [`Channel::recv_into`] left a partially consumed
    /// message; mixing the two styles on one message is a protocol bug.
    pub fn recv(&mut self) -> Vec<u8> {
        assert!(
            self.pending_pos == self.pending.len(),
            "recv() called with {} unconsumed buffered bytes",
            self.pending.len() - self.pending_pos
        );
        self.rx.recv().expect("peer hung up during recv")
    }

    /// Receive exactly `buf.len()` bytes, spanning message boundaries if
    /// needed. Useful for fixed-size framed protocols.
    pub fn recv_into(&mut self, buf: &mut [u8]) {
        let mut filled = 0;
        while filled < buf.len() {
            if self.pending_pos == self.pending.len() {
                self.pending = self.rx.recv().expect("peer hung up during recv");
                self.pending_pos = 0;
            }
            let avail = self.pending.len() - self.pending_pos;
            let take = avail.min(buf.len() - filled);
            buf[filled..filled + take]
                .copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + take]);
            self.pending_pos += take;
            filled += take;
        }
    }

    /// Snapshot of the shared communication counters.
    pub fn stats(&self) -> CommStats {
        let m_a2b = self.meter.messages_alice_to_bob.load(Ordering::Relaxed);
        let m_b2a = self.meter.messages_bob_to_alice.load(Ordering::Relaxed);
        CommStats {
            bytes_alice_to_bob: self.meter.bytes_alice_to_bob.load(Ordering::Relaxed),
            bytes_bob_to_alice: self.meter.bytes_bob_to_alice.load(Ordering::Relaxed),
            messages_alice_to_bob: m_a2b,
            messages_bob_to_alice: m_b2a,
            messages: m_a2b + m_b2a,
            rounds: self.meter.rounds.load(Ordering::Relaxed),
        }
    }

    /// True if this endpoint records a transcript (built by
    /// [`channel_pair_with_transcript`]).
    pub fn records_transcript(&self) -> bool {
        self.transcript.is_some()
    }

    /// The transcript of `(sender, message length)` pairs so far, in wire
    /// order. Obliviousness tests compare this across different inputs of
    /// the same public size: an oblivious protocol yields identical
    /// transcripts.
    ///
    /// Panics unless the pair came from [`channel_pair_with_transcript`].
    pub fn transcript_lengths(&self) -> Vec<(Role, usize)> {
        self.transcript_handle().lengths()
    }

    /// A clonable handle onto the shared transcript, usable after the
    /// endpoint itself is consumed by a party thread.
    ///
    /// Panics unless the pair came from [`channel_pair_with_transcript`].
    pub fn transcript_handle(&self) -> TranscriptHandle {
        TranscriptHandle {
            inner: Arc::clone(
                self.transcript
                    .as_ref()
                    .expect("transcript recording is opt-in: use channel_pair_with_transcript()"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_and_meters() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            let m = b.recv();
            assert_eq!(m, vec![1, 2, 3]);
            b.send(vec![9; 10]);
            b.stats()
        });
        a.send(vec![1, 2, 3]);
        let m = a.recv();
        assert_eq!(m, vec![9; 10]);
        let stats = h.join().unwrap();
        assert_eq!(stats.bytes_alice_to_bob, 3);
        assert_eq!(stats.bytes_bob_to_alice, 10);
        assert_eq!(stats.messages_alice_to_bob, 1);
        assert_eq!(stats.messages_bob_to_alice, 1);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn rounds_count_direction_switches() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
            b.recv();
            b.send(vec![0]);
            b.recv();
        });
        a.send(vec![0]);
        a.send(vec![0]); // same direction: still round 1
        a.recv();
        a.send(vec![0]);
        h.join().unwrap();
        assert_eq!(a.stats().rounds, 3);
    }

    #[test]
    fn recv_into_spans_messages() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.send(vec![1, 2]);
            b.send(vec![3, 4, 5]);
        });
        let mut buf = [0u8; 4];
        a.recv_into(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        let mut rest = [0u8; 1];
        a.recv_into(&mut rest);
        assert_eq!(rest, [5]);
        h.join().unwrap();
    }

    #[test]
    fn transcript_records_lengths_in_order() {
        let (mut a, mut b) = channel_pair_with_transcript();
        let h = thread::spawn(move || {
            b.recv();
            b.send(vec![7; 7]);
        });
        a.send(vec![1; 4]);
        a.recv();
        h.join().unwrap();
        assert_eq!(
            a.transcript_lengths(),
            vec![(Role::Alice, 4), (Role::Bob, 7)]
        );
    }

    #[test]
    fn transcript_handle_records_payload_bytes() {
        let (mut a, mut b) = channel_pair_with_transcript();
        let handle = a.transcript_handle();
        let h = thread::spawn(move || {
            b.recv();
            b.send(vec![7; 3]);
        });
        a.send(vec![1, 2]);
        a.recv();
        h.join().unwrap();
        assert_eq!(
            handle.messages(),
            vec![(Role::Alice, vec![1, 2]), (Role::Bob, vec![7, 7, 7])]
        );
        assert_eq!(handle.lengths(), vec![(Role::Alice, 2), (Role::Bob, 3)]);
    }

    #[test]
    fn default_pair_skips_transcript() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
        });
        a.send(vec![1; 4]);
        h.join().unwrap();
        assert!(!a.records_transcript());
    }

    #[test]
    #[should_panic(expected = "opt-in")]
    fn transcript_read_panics_when_disabled() {
        let (a, _b) = channel_pair();
        let _ = a.transcript_lengths();
    }
}
