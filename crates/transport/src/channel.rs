//! The metered duplex channel connecting Alice and Bob.
//!
//! Every message travels as one *frame*: an 8-byte header (payload length
//! and per-direction sequence number, both little-endian `u32`) followed by
//! the payload. The header is validated on every receive, so a truncated,
//! split, reordered or dropped write is *detected* and surfaced as a typed
//! [`TransportError`] instead of silently desynchronizing the parties. The
//! header is pure wire overhead: the byte meters and the recorded
//! transcript count payload bytes only, so communication-cost numbers and
//! obliviousness transcripts are unchanged by framing.

use crate::error::TransportError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Frame header size: payload length (`u32` LE) then sequence (`u32` LE).
pub(crate) const HEADER: usize = 8;

/// The sequence word carries the phase tag in its top two bits; the low 30
/// bits are the per-direction sequence counter.
const SEQ_MASK: u32 = 0x3FFF_FFFF;

/// Which execution phase a frame belongs to (offline/online split).
///
/// Phase tags travel in the top two bits of each frame's sequence word and
/// are validated on receive: a frame whose tag disagrees with the receiving
/// endpoint's current phase surfaces as [`TransportError::PhaseMismatch`]
/// instead of silently crossing the offline/online boundary. The default
/// [`Phase::Single`] is the classic one-shot mode; `run_offline` /
/// `run_online` in `secyan-core` switch both endpoints in lock-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Classic single-phase execution (the default).
    #[default]
    Single,
    /// Data-independent precomputation keyed by the public query shape.
    Offline,
    /// Data-dependent execution consuming precomputed material.
    Online,
}

impl Phase {
    fn tag(self) -> u32 {
        match self {
            Phase::Single => 0,
            Phase::Offline => 1,
            Phase::Online => 2,
        }
    }

    fn from_tag(tag: u32) -> Option<Phase> {
        match tag {
            0 => Some(Phase::Single),
            1 => Some(Phase::Offline),
            2 => Some(Phase::Online),
            _ => None,
        }
    }
}

/// A simulated network: finite bandwidth plus per-round latency, applied
/// inside [`Channel::send`] as real sleeps on the sending thread.
///
/// The model is deliberately simple and conservative: every sent frame
/// blocks its sender for `payload_bytes * 8 / bandwidth_bits_per_sec`
/// (serialization delay; full-duplex, so simultaneous transfers in the two
/// directions do not contend), and the first frame after a direction
/// switch additionally blocks for `one_way_latency_us` (the propagation
/// delay the ping-pong pattern cannot pipeline away; subsequent frames in
/// the same direction stream behind it). Benchmarks use this to compare
/// cold and warm executions under one declared WAN model instead of the
/// loopback's infinite bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    /// Link bandwidth in bits per second (applied per direction).
    pub bandwidth_bits_per_sec: u64,
    /// One-way propagation delay in microseconds, paid per direction
    /// switch.
    pub one_way_latency_us: u64,
}

impl NetModel {
    /// A conventional WAN point: `mbit_per_sec` Mbit/s symmetric with 1 ms
    /// one-way latency. MPC evaluations commonly report 10–100 Mbit/s.
    pub fn wan(mbit_per_sec: u64) -> NetModel {
        NetModel {
            bandwidth_bits_per_sec: mbit_per_sec * 1_000_000,
            one_way_latency_us: 1_000,
        }
    }
}

/// Which of the two parties an endpoint belongs to.
///
/// Following the paper's convention, *Alice* is the designated receiver of
/// the query results unless a protocol documents otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    Alice,
    Bob,
}

impl Role {
    /// The other party.
    pub fn peer(self) -> Role {
        match self {
            Role::Alice => Role::Bob,
            Role::Bob => Role::Alice,
        }
    }

    /// True for [`Role::Alice`].
    pub fn is_alice(self) -> bool {
        matches!(self, Role::Alice)
    }
}

/// Shared counters observed by both endpoints and the harness.
#[derive(Debug, Default)]
struct Meter {
    bytes_alice_to_bob: AtomicU64,
    bytes_bob_to_alice: AtomicU64,
    messages_alice_to_bob: AtomicU64,
    messages_bob_to_alice: AtomicU64,
    rounds: AtomicU64,
    /// Encodes the direction of the previous message so a direction switch
    /// can be detected: 0 = none yet, 1 = Alice→Bob, 2 = Bob→Alice.
    last_dir: AtomicU64,
    /// Payload bytes sent while an endpoint was in [`Phase::Offline`].
    offline_bytes: AtomicU64,
    /// Payload bytes sent while an endpoint was in [`Phase::Online`].
    online_bytes: AtomicU64,
    /// Direction switches among offline-phase messages.
    offline_rounds: AtomicU64,
    /// Direction switches among online-phase messages.
    online_rounds: AtomicU64,
    /// `last_dir`, restricted to offline-phase traffic.
    last_dir_offline: AtomicU64,
    /// `last_dir`, restricted to online-phase traffic.
    last_dir_online: AtomicU64,
}

/// A snapshot of the communication counters after (or during) a protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Payload bytes sent from Alice to Bob.
    pub bytes_alice_to_bob: u64,
    /// Payload bytes sent from Bob to Alice.
    pub bytes_bob_to_alice: u64,
    /// Messages sent from Alice to Bob.
    pub messages_alice_to_bob: u64,
    /// Messages sent from Bob to Alice.
    pub messages_bob_to_alice: u64,
    /// Total number of messages in both directions.
    pub messages: u64,
    /// Number of communication rounds, counted as direction switches on the
    /// wire (a "round" in the MPC sense: a maximal run of messages flowing
    /// one way).
    pub rounds: u64,
    /// Payload bytes (both directions) sent during [`Phase::Offline`].
    pub offline_bytes: u64,
    /// Payload bytes (both directions) sent during [`Phase::Online`].
    pub online_bytes: u64,
    /// Rounds among offline-phase messages only.
    pub offline_rounds: u64,
    /// Rounds among online-phase messages only.
    pub online_rounds: u64,
}

impl CommStats {
    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_alice_to_bob + self.bytes_bob_to_alice
    }

    /// Difference between two snapshots (counters only ever grow).
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            bytes_alice_to_bob: self.bytes_alice_to_bob - earlier.bytes_alice_to_bob,
            bytes_bob_to_alice: self.bytes_bob_to_alice - earlier.bytes_bob_to_alice,
            messages_alice_to_bob: self.messages_alice_to_bob - earlier.messages_alice_to_bob,
            messages_bob_to_alice: self.messages_bob_to_alice - earlier.messages_bob_to_alice,
            messages: self.messages - earlier.messages,
            rounds: self.rounds - earlier.rounds,
            offline_bytes: self.offline_bytes - earlier.offline_bytes,
            online_bytes: self.online_bytes - earlier.online_bytes,
            offline_rounds: self.offline_rounds - earlier.offline_rounds,
            online_rounds: self.online_rounds - earlier.online_rounds,
        }
    }
}

/// Shared transcript buffer: `(sender, sender's phase, payload bytes)` per
/// message.
type Transcript = Arc<Mutex<Vec<(Role, Phase, Vec<u8>)>>>;

/// A handle onto a recording channel pair's transcript that outlives the
/// endpoints. Obtain one with [`Channel::transcript_handle`] before moving
/// the endpoints into party threads; read it after the protocol joins.
///
/// Determinism tests compare [`TranscriptHandle::messages`] across runs
/// that differ only in thread count: a deterministic protocol produces
/// byte-identical transcripts.
#[derive(Debug, Clone)]
pub struct TranscriptHandle {
    inner: Transcript,
}

impl TranscriptHandle {
    /// Full transcript so far: `(sender, payload)` per message, in wire
    /// order.
    pub fn messages(&self) -> Vec<(Role, Vec<u8>)> {
        self.inner
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|(role, _, payload)| (*role, payload.clone()))
            .collect()
    }

    /// Per-message lengths, in wire order (the obliviousness view).
    pub fn lengths(&self) -> Vec<(Role, usize)> {
        self.inner
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|(role, _, payload)| (*role, payload.len()))
            .collect()
    }

    /// Per-message lengths with the sender's phase, in wire order. Phase
    /// transitions are protocol-synchronized (a mismatched frame is
    /// rejected on receive), so filtering by phase yields each phase's
    /// transcript shape — the per-phase obliviousness view.
    pub fn phased_lengths(&self) -> Vec<(Role, Phase, usize)> {
        self.inner
            .lock()
            .expect("transcript lock poisoned")
            .iter()
            .map(|(role, phase, payload)| (*role, *phase, payload.len()))
            .collect()
    }
}

/// One endpoint of the metered duplex channel.
///
/// Protocol code takes `&mut Channel` and is written from the perspective of
/// one party; [`Channel::role`] says which. Messages are owned byte vectors.
/// A transcript of per-direction message lengths can be recorded for
/// obliviousness tests via [`channel_pair_with_transcript`]; the default
/// [`channel_pair`] skips the per-message lock entirely.
pub struct Channel {
    role: Role,
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    meter: Arc<Meter>,
    transcript: Option<Transcript>,
    /// Buffer holding the remainder of a partially consumed incoming frame
    /// (header included; `pending_pos` starts past it).
    pending: Vec<u8>,
    pending_pos: usize,
    /// Sequence number stamped on the next outgoing frame.
    send_seq: u32,
    /// Sequence number expected on the next incoming frame.
    recv_seq: u32,
    /// Execution phase stamped on outgoing frames and demanded of incoming
    /// ones. Both endpoints switch phases at the same protocol points.
    phase: Phase,
    /// Optional simulated network applied to outgoing frames.
    net: Option<NetModel>,
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel").field("role", &self.role).finish()
    }
}

/// Create a connected pair of endpoints: `(alice, bob)`. No transcript is
/// recorded — the hot path takes no lock per message.
pub fn channel_pair() -> (Channel, Channel) {
    make_pair(None)
}

/// Create a connected pair that records the transcript of `(sender, length)`
/// pairs, for obliviousness tests. Every send takes a shared lock; use
/// [`channel_pair`] everywhere else.
pub fn channel_pair_with_transcript() -> (Channel, Channel) {
    make_pair(Some(Arc::new(Mutex::new(Vec::new()))))
}

fn make_pair(transcript: Option<Transcript>) -> (Channel, Channel) {
    let (a2b_tx, a2b_rx) = mpsc::channel();
    let (b2a_tx, b2a_rx) = mpsc::channel();
    let meter = Arc::new(Meter::default());
    let alice = Channel::from_parts(
        Role::Alice,
        a2b_tx,
        b2a_rx,
        Arc::clone(&meter),
        transcript.clone(),
    );
    let bob = Channel::from_parts(Role::Bob, b2a_tx, a2b_rx, meter, transcript);
    (alice, bob)
}

/// The raw wires of a relayed pair: each direction's traffic flows
/// endpoint → relay (`*_in`) and relay → endpoint (`*_out`), so the
/// fault-injection relay (see [`crate::fault`]) can tamper with frames in
/// flight. Frames on these wires are complete framed messages unless a
/// fault deliberately violates that invariant.
pub(crate) struct RelayWires {
    /// Frames Alice sent, awaiting relay to Bob.
    pub(crate) a2b_in: Receiver<Vec<u8>>,
    /// Relay's output toward Bob's receiver.
    pub(crate) a2b_out: Sender<Vec<u8>>,
    /// Frames Bob sent, awaiting relay to Alice.
    pub(crate) b2a_in: Receiver<Vec<u8>>,
    /// Relay's output toward Alice's receiver.
    pub(crate) b2a_out: Sender<Vec<u8>>,
}

/// Create a pair whose two directions pass through external relay wires
/// instead of being directly connected.
pub(crate) fn relayed_pair(transcript: Option<Transcript>) -> (Channel, Channel, RelayWires) {
    let (a_tx, a2b_in) = mpsc::channel();
    let (a2b_out, b_rx) = mpsc::channel();
    let (b_tx, b2a_in) = mpsc::channel();
    let (b2a_out, a_rx) = mpsc::channel();
    let meter = Arc::new(Meter::default());
    let alice = Channel::from_parts(
        Role::Alice,
        a_tx,
        a_rx,
        Arc::clone(&meter),
        transcript.clone(),
    );
    let bob = Channel::from_parts(Role::Bob, b_tx, b_rx, meter, transcript);
    let wires = RelayWires {
        a2b_in,
        a2b_out,
        b2a_in,
        b2a_out,
    };
    (alice, bob, wires)
}

impl Channel {
    fn from_parts(
        role: Role,
        tx: Sender<Vec<u8>>,
        rx: Receiver<Vec<u8>>,
        meter: Arc<Meter>,
        transcript: Option<Transcript>,
    ) -> Channel {
        Channel {
            role,
            tx,
            rx,
            meter,
            transcript,
            pending: Vec::new(),
            pending_pos: 0,
            send_seq: 0,
            recv_seq: 0,
            phase: Phase::Single,
            net: None,
        }
    }

    /// Install (or clear) a simulated network on this endpoint. Both
    /// endpoints of a pair should carry the same model; see
    /// [`crate::run_protocol_with_net`].
    pub fn set_net_model(&mut self, net: Option<NetModel>) {
        self.net = net;
    }

    /// The party this endpoint belongs to.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The current execution phase (stamped on outgoing frames).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Switch this endpoint into `phase`. The peer must make the matching
    /// switch at the same protocol point: a frame tagged with a different
    /// phase than the receiver's current one is rejected as
    /// [`TransportError::PhaseMismatch`].
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Send one message to the peer.
    ///
    /// Raises a typed [`TransportError::PeerClosed`] unwind (caught by
    /// [`crate::try_run_protocol`]) if the peer is gone.
    pub fn send(&mut self, data: Vec<u8>) {
        assert!(
            data.len() <= u32::MAX as usize,
            "message exceeds the u32 frame length"
        );
        let len = data.len() as u64;
        match self.role {
            Role::Alice => self
                .meter
                .bytes_alice_to_bob
                .fetch_add(len, Ordering::Relaxed),
            Role::Bob => self
                .meter
                .bytes_bob_to_alice
                .fetch_add(len, Ordering::Relaxed),
        };
        match self.role {
            Role::Alice => self
                .meter
                .messages_alice_to_bob
                .fetch_add(1, Ordering::Relaxed),
            Role::Bob => self
                .meter
                .messages_bob_to_alice
                .fetch_add(1, Ordering::Relaxed),
        };
        let dir = match self.role {
            Role::Alice => 1,
            Role::Bob => 2,
        };
        let switched = self.meter.last_dir.swap(dir, Ordering::Relaxed) != dir;
        if switched {
            self.meter.rounds.fetch_add(1, Ordering::Relaxed);
        }
        match self.phase {
            Phase::Single => {}
            Phase::Offline => {
                self.meter.offline_bytes.fetch_add(len, Ordering::Relaxed);
                if self.meter.last_dir_offline.swap(dir, Ordering::Relaxed) != dir {
                    self.meter.offline_rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
            Phase::Online => {
                self.meter.online_bytes.fetch_add(len, Ordering::Relaxed);
                if self.meter.last_dir_online.swap(dir, Ordering::Relaxed) != dir {
                    self.meter.online_rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(transcript) = &self.transcript {
            transcript.lock().expect("transcript lock poisoned").push((
                self.role,
                self.phase,
                data.clone(),
            ));
        }
        // Simulated network: block the sending thread for the modeled
        // serialization delay (plus propagation on a direction switch)
        // before the frame becomes visible to the peer.
        if let Some(net) = self.net {
            let bits = (data.len() as u64).saturating_mul(8);
            let mut delay_us = bits
                .saturating_mul(1_000_000)
                .div_euclid(net.bandwidth_bits_per_sec.max(1));
            if switched {
                delay_us += net.one_way_latency_us;
            }
            if delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
        }
        let mut frame = Vec::with_capacity(HEADER + data.len());
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        let seq_word = (self.send_seq & SEQ_MASK) | (self.phase.tag() << 30);
        frame.extend_from_slice(&seq_word.to_le_bytes());
        self.send_seq = self.send_seq.wrapping_add(1) & SEQ_MASK;
        frame.extend_from_slice(&data);
        if self.tx.send(frame).is_err() {
            TransportError::PeerClosed { during: "send" }.raise();
        }
    }

    /// Pull the next frame off the wire and validate its header. On success
    /// the returned vector is the whole frame (header still in front) and
    /// `recv_seq` has advanced.
    fn fetch_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let frame = self
            .rx
            .recv()
            .map_err(|_| TransportError::PeerClosed { during: "recv" })?;
        if frame.len() < HEADER {
            return Err(TransportError::Corrupt {
                detail: "frame shorter than its 8-byte header",
            });
        }
        let mut word = [0u8; 4];
        word.copy_from_slice(&frame[0..4]);
        let declared = u32::from_le_bytes(word) as usize;
        word.copy_from_slice(&frame[4..8]);
        let seq_word = u32::from_le_bytes(word);
        let seq = seq_word & SEQ_MASK;
        if seq != self.recv_seq {
            return Err(TransportError::OutOfOrder {
                expected: u64::from(self.recv_seq),
                got: u64::from(seq),
            });
        }
        let Some(phase) = Phase::from_tag(seq_word >> 30) else {
            return Err(TransportError::Corrupt {
                detail: "unknown phase tag in sequence word",
            });
        };
        if phase != self.phase {
            return Err(TransportError::PhaseMismatch {
                expected: self.phase,
                got: phase,
            });
        }
        self.recv_seq = self.recv_seq.wrapping_add(1) & SEQ_MASK;
        let got = frame.len() - HEADER;
        if got != declared {
            return Err(TransportError::Truncated {
                expected: declared,
                got,
            });
        }
        Ok(frame)
    }

    /// Receive one whole message from the peer, blocking until it arrives.
    ///
    /// Raises a typed [`TransportError`] unwind (caught by
    /// [`crate::try_run_protocol`]) on peer close or a malformed frame.
    /// Panics if a previous [`Channel::recv_into`] left a partially consumed
    /// message; mixing the two styles on one message is a protocol bug.
    pub fn recv(&mut self) -> Vec<u8> {
        self.try_recv().unwrap_or_else(|e| e.raise())
    }

    /// Fallible form of [`Channel::recv`].
    pub fn try_recv(&mut self) -> Result<Vec<u8>, TransportError> {
        assert!(
            self.pending_pos == self.pending.len(),
            "recv() called with {} unconsumed buffered bytes",
            self.pending.len() - self.pending_pos
        );
        let mut frame = self.fetch_frame()?;
        frame.drain(..HEADER);
        Ok(frame)
    }

    /// Receive exactly `buf.len()` bytes, spanning message boundaries if
    /// needed. Useful for fixed-size framed protocols.
    ///
    /// Raises a typed [`TransportError`] unwind (caught by
    /// [`crate::try_run_protocol`]) on peer close or a malformed frame.
    pub fn recv_into(&mut self, buf: &mut [u8]) {
        self.try_recv_into(buf).unwrap_or_else(|e| e.raise())
    }

    /// Fallible form of [`Channel::recv_into`].
    pub fn try_recv_into(&mut self, buf: &mut [u8]) -> Result<(), TransportError> {
        let mut filled = 0;
        while filled < buf.len() {
            if self.pending_pos == self.pending.len() {
                self.pending = self.fetch_frame()?;
                self.pending_pos = HEADER;
            }
            let avail = self.pending.len() - self.pending_pos;
            let take = avail.min(buf.len() - filled);
            buf[filled..filled + take]
                .copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + take]);
            self.pending_pos += take;
            filled += take;
        }
        Ok(())
    }

    /// Snapshot of the shared communication counters.
    pub fn stats(&self) -> CommStats {
        let m_a2b = self.meter.messages_alice_to_bob.load(Ordering::Relaxed);
        let m_b2a = self.meter.messages_bob_to_alice.load(Ordering::Relaxed);
        CommStats {
            bytes_alice_to_bob: self.meter.bytes_alice_to_bob.load(Ordering::Relaxed),
            bytes_bob_to_alice: self.meter.bytes_bob_to_alice.load(Ordering::Relaxed),
            messages_alice_to_bob: m_a2b,
            messages_bob_to_alice: m_b2a,
            messages: m_a2b + m_b2a,
            rounds: self.meter.rounds.load(Ordering::Relaxed),
            offline_bytes: self.meter.offline_bytes.load(Ordering::Relaxed),
            online_bytes: self.meter.online_bytes.load(Ordering::Relaxed),
            offline_rounds: self.meter.offline_rounds.load(Ordering::Relaxed),
            online_rounds: self.meter.online_rounds.load(Ordering::Relaxed),
        }
    }

    /// True if this endpoint records a transcript (built by
    /// [`channel_pair_with_transcript`]).
    pub fn records_transcript(&self) -> bool {
        self.transcript.is_some()
    }

    /// The transcript of `(sender, message length)` pairs so far, in wire
    /// order. Obliviousness tests compare this across different inputs of
    /// the same public size: an oblivious protocol yields identical
    /// transcripts.
    ///
    /// Panics unless the pair came from [`channel_pair_with_transcript`].
    pub fn transcript_lengths(&self) -> Vec<(Role, usize)> {
        self.transcript_handle().lengths()
    }

    /// A clonable handle onto the shared transcript, usable after the
    /// endpoint itself is consumed by a party thread.
    ///
    /// Panics unless the pair came from [`channel_pair_with_transcript`].
    pub fn transcript_handle(&self) -> TranscriptHandle {
        TranscriptHandle {
            inner: Arc::clone(
                self.transcript
                    .as_ref()
                    .expect("transcript recording is opt-in: use channel_pair_with_transcript()"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_and_meters() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            let m = b.recv();
            assert_eq!(m, vec![1, 2, 3]);
            b.send(vec![9; 10]);
            b.stats()
        });
        a.send(vec![1, 2, 3]);
        let m = a.recv();
        assert_eq!(m, vec![9; 10]);
        let stats = h.join().unwrap();
        assert_eq!(stats.bytes_alice_to_bob, 3);
        assert_eq!(stats.bytes_bob_to_alice, 10);
        assert_eq!(stats.messages_alice_to_bob, 1);
        assert_eq!(stats.messages_bob_to_alice, 1);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn rounds_count_direction_switches() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
            b.recv();
            b.send(vec![0]);
            b.recv();
        });
        a.send(vec![0]);
        a.send(vec![0]); // same direction: still round 1
        a.recv();
        a.send(vec![0]);
        h.join().unwrap();
        assert_eq!(a.stats().rounds, 3);
    }

    #[test]
    fn recv_into_spans_messages() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.send(vec![1, 2]);
            b.send(vec![3, 4, 5]);
        });
        let mut buf = [0u8; 4];
        a.recv_into(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        let mut rest = [0u8; 1];
        a.recv_into(&mut rest);
        assert_eq!(rest, [5]);
        h.join().unwrap();
    }

    #[test]
    fn transcript_records_lengths_in_order() {
        let (mut a, mut b) = channel_pair_with_transcript();
        let h = thread::spawn(move || {
            b.recv();
            b.send(vec![7; 7]);
        });
        a.send(vec![1; 4]);
        a.recv();
        h.join().unwrap();
        assert_eq!(
            a.transcript_lengths(),
            vec![(Role::Alice, 4), (Role::Bob, 7)]
        );
    }

    #[test]
    fn transcript_handle_records_payload_bytes() {
        let (mut a, mut b) = channel_pair_with_transcript();
        let handle = a.transcript_handle();
        let h = thread::spawn(move || {
            b.recv();
            b.send(vec![7; 3]);
        });
        a.send(vec![1, 2]);
        a.recv();
        h.join().unwrap();
        assert_eq!(
            handle.messages(),
            vec![(Role::Alice, vec![1, 2]), (Role::Bob, vec![7, 7, 7])]
        );
        assert_eq!(handle.lengths(), vec![(Role::Alice, 2), (Role::Bob, 3)]);
    }

    #[test]
    fn default_pair_skips_transcript() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
        });
        a.send(vec![1; 4]);
        h.join().unwrap();
        assert!(!a.records_transcript());
    }

    #[test]
    #[should_panic(expected = "opt-in")]
    fn transcript_read_panics_when_disabled() {
        let (a, _b) = channel_pair();
        let _ = a.transcript_lengths();
    }

    /// Drive one direction by hand through relay wires: Alice sends, the
    /// test tampers with the frame, Bob's `try_recv` reports the fault.
    fn tampered_recv(
        tamper: impl FnOnce(Vec<u8>, &Sender<Vec<u8>>),
    ) -> Result<Vec<u8>, TransportError> {
        let (mut a, mut b, wires) = relayed_pair(None);
        a.send(vec![1, 2, 3, 4]);
        let frame = wires.a2b_in.recv().unwrap();
        tamper(frame, &wires.a2b_out);
        drop(wires);
        drop(a);
        b.try_recv()
    }

    #[test]
    fn intact_frame_passes_validation() {
        let got = tampered_recv(|frame, out| out.send(frame).unwrap());
        assert_eq!(got.unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn truncated_frame_is_detected() {
        let got = tampered_recv(|frame, out| out.send(frame[..frame.len() - 2].to_vec()).unwrap());
        assert_eq!(
            got.unwrap_err(),
            TransportError::Truncated {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn short_header_is_corrupt() {
        let got = tampered_recv(|frame, out| out.send(frame[..3].to_vec()).unwrap());
        assert_eq!(
            got.unwrap_err(),
            TransportError::Corrupt {
                detail: "frame shorter than its 8-byte header"
            }
        );
    }

    #[test]
    fn wrong_sequence_is_out_of_order() {
        let got = tampered_recv(|mut frame, out| {
            frame[4..8].copy_from_slice(&7u32.to_le_bytes());
            out.send(frame).unwrap();
        });
        assert_eq!(
            got.unwrap_err(),
            TransportError::OutOfOrder {
                expected: 0,
                got: 7
            }
        );
    }

    #[test]
    fn dropped_peer_is_peer_closed() {
        let got = tampered_recv(|frame, _out| drop(frame));
        assert_eq!(
            got.unwrap_err(),
            TransportError::PeerClosed { during: "recv" }
        );
    }

    #[test]
    fn sequence_advances_per_direction() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            for i in 0..5u8 {
                assert_eq!(b.recv(), vec![i]);
            }
            b.send(vec![9]);
        });
        for i in 0..5u8 {
            a.send(vec![i]);
        }
        assert_eq!(a.recv(), vec![9]);
        h.join().unwrap();
    }

    #[test]
    fn phase_tag_mismatch_is_detected() {
        let (mut a, mut b) = channel_pair();
        a.set_phase(Phase::Offline);
        a.send(vec![1, 2]);
        // Receiver still in Single phase: typed error, no hang.
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::PhaseMismatch {
                expected: Phase::Single,
                got: Phase::Offline,
            }
        );
    }

    #[test]
    fn matching_phases_roundtrip_and_meter_separately() {
        let (mut a, mut b) = channel_pair();
        a.set_phase(Phase::Offline);
        b.set_phase(Phase::Offline);
        a.send(vec![0; 10]);
        assert_eq!(b.recv(), vec![0; 10]);
        b.send(vec![0; 3]);
        assert_eq!(a.recv(), vec![0; 3]);
        a.set_phase(Phase::Online);
        b.set_phase(Phase::Online);
        a.send(vec![0; 5]);
        assert_eq!(b.recv(), vec![0; 5]);
        let stats = a.stats();
        assert_eq!(stats.offline_bytes, 13);
        assert_eq!(stats.online_bytes, 5);
        assert_eq!(stats.offline_rounds, 2);
        assert_eq!(stats.online_rounds, 1);
        assert_eq!(stats.total_bytes(), 18);
        assert_eq!(stats.rounds, 3);
    }

    #[test]
    fn unknown_phase_tag_is_corrupt() {
        let got = tampered_recv(|mut frame, out| {
            frame[4..8].copy_from_slice(&(3u32 << 30).to_le_bytes());
            out.send(frame).unwrap();
        });
        assert_eq!(
            got.unwrap_err(),
            TransportError::Corrupt {
                detail: "unknown phase tag in sequence word",
            }
        );
    }

    #[test]
    fn net_model_delays_sends() {
        // 80 kbit at 1 Mbit/s = 80 ms serialization, plus 5 ms latency on
        // the first (direction-switching) frame. Lower bound only: sleeps
        // may overshoot, never undershoot.
        let (mut a, mut b) = channel_pair();
        let net = NetModel {
            bandwidth_bits_per_sec: 1_000_000,
            one_way_latency_us: 5_000,
        };
        a.set_net_model(Some(net));
        let h = thread::spawn(move || {
            assert_eq!(b.recv().len(), 10_000);
            assert_eq!(b.recv().len(), 10_000);
        });
        let t = std::time::Instant::now();
        a.send(vec![0u8; 10_000]);
        assert!(
            t.elapsed() >= std::time::Duration::from_millis(85),
            "shaped send returned after only {:?}",
            t.elapsed()
        );
        // Clearing the model restores unshaped sends.
        a.set_net_model(None);
        let t = std::time::Instant::now();
        a.send(vec![0u8; 10_000]);
        assert!(t.elapsed() < std::time::Duration::from_millis(50));
        h.join().unwrap();
    }

    #[test]
    fn meters_exclude_frame_headers() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            b.recv();
            b.stats()
        });
        a.send(vec![0; 5]);
        let stats = h.join().unwrap();
        assert_eq!(stats.bytes_alice_to_bob, 5);
        assert_eq!(stats.total_bytes(), 5);
    }
}
