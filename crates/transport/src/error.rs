//! Typed failures of the two-party transport and protocol layers.
//!
//! The protocols in this workspace are synchronous and framed: every
//! message's length and position in the conversation is a function of the
//! public parameters. A transport fault — a peer dying mid-round, a
//! truncated or split write, frames delivered out of order — therefore
//! never needs to be *tolerated*; it must be *detected* and surfaced as a
//! typed error so the caller can tear the session down without hanging and
//! without leaking (drop-time zeroization of secret material still runs on
//! the unwind path; see `secyan-crypto::secret`).
//!
//! Error propagation is by typed unwind: the infallible channel API used
//! throughout the protocol crates raises a [`ProtocolError`] panic payload
//! on a transport fault, and [`crate::try_run_protocol`] catches exactly
//! that payload at the session boundary, returning `Err(ProtocolError)`.
//! Any other panic is a genuine bug and is re-raised unchanged. Fallible
//! `try_*` channel methods are also available where a `Result` is more
//! convenient than an unwind.

/// A failure of the byte transport between the two parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer (or the network path to it) closed while a message was
    /// outstanding. `during` names the operation that observed the close.
    PeerClosed { during: &'static str },
    /// A frame's payload was shorter than its header declared — a
    /// truncated or split write on the wire.
    Truncated { expected: usize, got: usize },
    /// A frame arrived out of sequence — reordered, duplicated, or
    /// dropped traffic within a round.
    OutOfOrder { expected: u64, got: u64 },
    /// A frame failed structural validation (header too short to parse).
    Corrupt { detail: &'static str },
    /// A frame's phase tag disagrees with the receiving endpoint's current
    /// execution phase — offline traffic arriving during the online phase
    /// or vice versa (desynchronized phase switch, replay across phases).
    PhaseMismatch {
        expected: crate::channel::Phase,
        got: crate::channel::Phase,
    },
    /// A frame declared a payload beyond [`crate::MAX_FRAME_SIZE`]. The
    /// bound is checked before any allocation, so a coalesced super-frame
    /// (or a tampered header) cannot act as an allocation bomb.
    FrameTooLarge { declared: u64, limit: u64 },
    /// A socket read or write exceeded the endpoint's configured I/O
    /// deadline (see `Channel::set_io_timeout`). A stalled peer therefore
    /// surfaces as a typed error instead of blocking a session thread
    /// forever; only socket-backed channels can raise this — the
    /// in-process pipe has no deadline.
    Timeout { during: &'static str },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerClosed { during } => {
                write!(f, "peer closed the channel during {during}")
            }
            TransportError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: declared {expected} payload bytes, got {got}"
                )
            }
            TransportError::OutOfOrder { expected, got } => {
                write!(f, "frame out of order: expected seq {expected}, got {got}")
            }
            TransportError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
            TransportError::PhaseMismatch { expected, got } => {
                write!(
                    f,
                    "phase mismatch: endpoint in {expected:?} phase received a {got:?}-tagged frame"
                )
            }
            TransportError::FrameTooLarge { declared, limit } => {
                write!(
                    f,
                    "frame too large: declared {declared} payload bytes, limit {limit}"
                )
            }
            TransportError::Timeout { during } => {
                write!(f, "i/o deadline exceeded during {during}")
            }
        }
    }
}

impl TransportError {
    /// Raise this transport failure as a typed [`ProtocolError`] unwind
    /// (see [`ProtocolError::raise`]).
    pub fn raise(self) -> ! {
        ProtocolError::Transport(self).raise()
    }
}

impl std::error::Error for TransportError {}

/// A typed failure of a two-party protocol run: either the transport
/// broke underneath it, or the peer spoke the transport correctly but
/// sent data violating the public protocol contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The byte transport failed (close, truncation, reordering).
    Transport(TransportError),
    /// The peer's data violates the public protocol contract (e.g. a
    /// declared relation size beyond any sane bound). `context` says
    /// which check rejected it.
    Malformed { context: String },
}

impl ProtocolError {
    /// Raise this error as a typed unwind, to be caught by
    /// [`crate::try_run_protocol`] at the session boundary. Unwinding
    /// (rather than threading `Result` through every protocol signature)
    /// keeps the hot paths clean while still running every destructor —
    /// in particular the zeroize-on-drop of secret material.
    pub fn raise(self) -> ! {
        std::panic::panic_any(self)
    }

    /// Shorthand: raise a [`ProtocolError::Malformed`] with `context`.
    pub fn malformed(context: impl Into<String>) -> ! {
        ProtocolError::Malformed {
            context: context.into(),
        }
        .raise()
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> ProtocolError {
        ProtocolError::Transport(e)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Transport(e) => write!(f, "transport failure: {e}"),
            ProtocolError::Malformed { context } => {
                write!(f, "malformed peer input: {context}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Transport(e) => Some(e),
            ProtocolError::Malformed { .. } => None,
        }
    }
}

/// Interpret a caught panic payload: `Ok` for typed protocol errors,
/// `Err` with the original payload for anything else (a genuine bug).
pub(crate) fn try_downcast_panic(
    payload: Box<dyn std::any::Any + Send + 'static>,
) -> Result<ProtocolError, Box<dyn std::any::Any + Send + 'static>> {
    match payload.downcast::<ProtocolError>() {
        Ok(e) => Ok(*e),
        Err(payload) => match payload.downcast::<TransportError>() {
            Ok(e) => Ok(ProtocolError::Transport(*e)),
            Err(payload) => Err(payload),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TransportError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(e.to_string().contains("10"));
        let p = ProtocolError::from(e.clone());
        assert!(p.to_string().contains("transport"));
        let m = ProtocolError::Malformed {
            context: "size 2^63".into(),
        };
        assert!(m.to_string().contains("size 2^63"));
    }

    #[test]
    fn downcast_recovers_typed_payloads() {
        let p = std::panic::catch_unwind(|| {
            ProtocolError::malformed("bad");
        })
        .unwrap_err();
        assert_eq!(
            try_downcast_panic(p).expect("typed payload"),
            ProtocolError::Malformed {
                context: "bad".into()
            }
        );
        let t = std::panic::catch_unwind(|| {
            std::panic::panic_any(TransportError::PeerClosed { during: "recv" });
        })
        .unwrap_err();
        assert_eq!(
            try_downcast_panic(t).expect("typed payload"),
            ProtocolError::Transport(TransportError::PeerClosed { during: "recv" })
        );
    }

    #[test]
    fn downcast_rejects_foreign_panics() {
        let p = std::panic::catch_unwind(|| panic!("real bug")).unwrap_err();
        assert!(try_downcast_panic(p).is_err());
    }
}
