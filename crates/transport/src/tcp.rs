//! The socket-backed pipe: the same staged/coalesced channel surface over
//! a real TCP stream.
//!
//! Everything above the [`crate::channel::Pipe`] seam — `send_with`
//! staging, flush-before-block coalescing, eager mode, phase-tagged
//! sequence words, stage-time metering, transcripts — is shared with the
//! in-process transport, so a protocol run over TCP produces the same
//! logical transcript and meters byte for byte. What this module adds:
//!
//! * [`TcpPipe`] — length-prefixed frames over a `TcpStream` with
//!   configurable read/write deadlines. Short reads come back as short
//!   buffers so the channel's existing header validation types every wire
//!   fault (`Truncated`, `Corrupt`, `FrameTooLarge`, …) identically on
//!   both transports; only genuinely socket-specific conditions map to
//!   new errors ([`crate::TransportError::Timeout`] for a blown deadline,
//!   `PeerClosed` for EOF/reset).
//! * Paired constructors ([`tcp_channel_pair`], [`tcp_pair_from_streams`])
//!   for in-process tests that want both endpoints of a loopback socket
//!   with one shared meter/transcript — the drop-in replacement the
//!   differential battery compares against `channel_pair`.
//! * A standalone endpoint constructor ([`tcp_endpoint`]) for the real
//!   party-per-process deployment (`secyan-server` / `secyan-client`),
//!   metering both directions locally.
//! * [`TcpFaultProxy`] — a byte-level man-in-the-middle for fault tests:
//!   truncate, split writes, stall-past-deadline, and mid-frame
//!   disconnect, triggered at an exact wire-byte offset.
//!
//! An allocation-bomb note mirroring the in-process path: the pipe reads
//! the 8-byte header first and refuses to allocate for a payload declared
//! beyond [`MAX_FRAME_SIZE`] — it hands the bare header up instead, and
//! the channel's sequence/phase/size checks then surface the typed
//! `FrameTooLarge` in the same validation order as the mpsc transport.

use crate::channel::{
    new_transcript, tcp_endpoint_from_pipe, tcp_pair_from_pipes, Channel, Role, HEADER,
    MAX_FRAME_SIZE,
};
use crate::error::TransportError;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default I/O deadline on socket-backed endpoints. Generous enough for
/// any loopback or LAN protocol run; short enough that an abandoned
/// session thread frees itself. Override per endpoint with
/// [`Channel::set_io_timeout`].
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Map a socket error onto the transport's typed vocabulary. EOF and
/// reset conditions are the peer going away; a blown read/write deadline
/// is a stall; anything else is reported as a corrupt wire.
pub(crate) fn map_io(e: &io::Error, during: &'static str) -> TransportError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::Timeout { during },
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::NotConnected => TransportError::PeerClosed { during },
        _ => TransportError::Corrupt {
            detail: "socket i/o failed",
        },
    }
}

/// Read until `buf` is full or the stream hits EOF; returns bytes read.
/// A deadline or connection error surfaces typed; EOF does not — the
/// caller decides what a short frame means (the channel's validators do).
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> Result<usize, TransportError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(&e, "recv")),
        }
    }
    Ok(got)
}

/// One endpoint's socket, speaking the channel's wire format: each frame
/// is the 8-byte header (payload length, sequence word) followed by the
/// declared payload, exactly as staged by [`Channel::flush`].
pub(crate) struct TcpPipe {
    stream: TcpStream,
}

impl TcpPipe {
    /// Wrap a connected stream. Disables Nagle (the transport already
    /// coalesces maximally at the frame layer — delaying flushed frames
    /// only adds latency per super-round) and applies `timeout` to both
    /// directions.
    pub(crate) fn new(stream: TcpStream, timeout: Option<Duration>) -> io::Result<TcpPipe> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(TcpPipe { stream })
    }

    pub(crate) fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        let _ = self.stream.set_read_timeout(timeout);
        let _ = self.stream.set_write_timeout(timeout);
    }

    /// Write one complete frame (header already stamped by the channel).
    pub(crate) fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(frame).map_err(|e| map_io(&e, "send"))
    }

    /// Read the next frame: header first, then exactly the declared
    /// payload. Returns whatever prefix the wire produced on a premature
    /// EOF (the channel's header checks type the fault), and the bare
    /// header when the declaration exceeds [`MAX_FRAME_SIZE`] — the bound
    /// is enforced *before* the payload allocation, so a hostile header
    /// cannot act as an allocation bomb.
    pub(crate) fn recv_frame(
        &mut self,
        spare: &mut Vec<Vec<u8>>,
    ) -> Result<Vec<u8>, TransportError> {
        let mut buf = spare.pop().unwrap_or_default();
        buf.clear();
        buf.resize(HEADER, 0);
        let got = read_full(&mut self.stream, &mut buf)?;
        if got == 0 {
            return Err(TransportError::PeerClosed { during: "recv" });
        }
        if got < HEADER {
            buf.truncate(got);
            return Ok(buf);
        }
        let declared = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if declared > MAX_FRAME_SIZE {
            return Ok(buf);
        }
        buf.resize(HEADER + declared, 0);
        let got = read_full(&mut self.stream, &mut buf[HEADER..])?;
        buf.truncate(HEADER + got);
        Ok(buf)
    }
}

impl Drop for TcpPipe {
    /// Graceful shutdown: signal EOF to the peer so a blocked remote recv
    /// unblocks with a typed `PeerClosed` instead of waiting out its
    /// deadline. Closing the fd would do the same, but an explicit
    /// write-half shutdown also flushes promptly under `SO_LINGER`-less
    /// defaults.
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

/// A connected loopback stream pair `(connector, acceptor)`.
fn loopback_stream_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let a = TcpStream::connect(addr)?;
    let (b, _) = listener.accept()?;
    Ok((a, b))
}

/// [`crate::channel_pair`] over a real loopback TCP socket: both endpoints
/// share one meter (and optionally a transcript), so every counter and
/// recorded message is directly comparable with an in-process run. Frames
/// genuinely traverse the kernel's TCP stack. Endpoints start with
/// [`DEFAULT_IO_TIMEOUT`].
pub fn tcp_channel_pair() -> io::Result<(Channel, Channel)> {
    let (a, b) = loopback_stream_pair()?;
    tcp_pair_from_streams(a, b)
}

/// [`tcp_channel_pair`] with transcript recording (the socket-backed
/// [`crate::channel_pair_with_transcript`]).
pub fn tcp_channel_pair_with_transcript() -> io::Result<(Channel, Channel)> {
    let (a, b) = loopback_stream_pair()?;
    let alice = TcpPipe::new(a, Some(DEFAULT_IO_TIMEOUT))?;
    let bob = TcpPipe::new(b, Some(DEFAULT_IO_TIMEOUT))?;
    Ok(tcp_pair_from_pipes(alice, bob, Some(new_transcript())))
}

/// Build a shared-meter channel pair over two already-connected streams —
/// e.g. the two ends of a route through a [`TcpFaultProxy`]. `alice` is
/// Alice's socket, `bob` Bob's.
pub fn tcp_pair_from_streams(alice: TcpStream, bob: TcpStream) -> io::Result<(Channel, Channel)> {
    let alice = TcpPipe::new(alice, Some(DEFAULT_IO_TIMEOUT))?;
    let bob = TcpPipe::new(bob, Some(DEFAULT_IO_TIMEOUT))?;
    Ok(tcp_pair_from_pipes(alice, bob, None))
}

/// Build one standalone endpoint over a connected stream — the real
/// party-per-process deployment. The endpoint owns a private meter and
/// meters *both* directions locally (its own sends at stage time, the
/// peer's messages as they are consumed), so [`Channel::stats`] reports a
/// full communication profile without a shared-memory peer.
pub fn tcp_endpoint(
    role: Role,
    stream: TcpStream,
    io_timeout: Option<Duration>,
) -> io::Result<Channel> {
    Ok(tcp_endpoint_from_pipe(
        role,
        TcpPipe::new(stream, io_timeout)?,
    ))
}

/// Which wire fault a [`TcpFaultProxy`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpFaultKind {
    /// Forward `after_bytes`, then half-close the faulted direction: the
    /// receiver sees a clean EOF mid-frame (a truncated write), while the
    /// reverse direction stays up.
    Truncate,
    /// From `after_bytes` on, forward the stream in tiny delayed chunks.
    /// TCP reassembles, the pipe's exact-read loops span the splits — the
    /// run must *succeed*; this fault proves split writes are benign on a
    /// real socket, where the mpsc relay had to model them as errors.
    SplitWrite,
    /// Forward `after_bytes`, then swallow everything (reading and
    /// discarding, so the sender never blocks): the receiver's I/O
    /// deadline must fire as a typed `Timeout` — the fault class only a
    /// real socket can express.
    Stall,
    /// Forward `after_bytes`, then tear down both directions of the
    /// connection at once: a mid-frame connection loss.
    Disconnect,
}

/// One injected fault: direction (the *sender* whose traffic is faulted,
/// with the proxy's connecting side being Alice and its upstream side
/// Bob), a trigger offset in wire bytes, and the fault kind.
#[derive(Debug, Clone, Copy)]
pub struct TcpFault {
    pub dir: Role,
    pub after_bytes: u64,
    pub kind: TcpFaultKind,
}

/// A byte-level man-in-the-middle between two sockets. Listens on an
/// ephemeral loopback port, forwards one accepted connection to the
/// upstream address, and applies at most one [`TcpFault`] at an exact
/// byte offset. By convention the party connecting *to the proxy* is
/// Alice and the upstream listener is Bob.
pub struct TcpFaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpFaultProxy {
    /// Spawn the proxy. It serves exactly one connection and exits when
    /// both directions finish (or the fault kills them).
    pub fn spawn(upstream: SocketAddr, fault: Option<TcpFault>) -> io::Result<TcpFaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let Ok((client, _)) = listener.accept() else {
                return;
            };
            if stop2.load(Ordering::SeqCst) {
                return;
            }
            let Ok(server) = TcpStream::connect(upstream) else {
                let _ = client.shutdown(Shutdown::Both);
                return;
            };
            let _ = client.set_nodelay(true);
            let _ = server.set_nodelay(true);
            let pick = move |dir: Role| fault.filter(|f| f.dir == dir);
            let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                return;
            };
            let stop_a = Arc::clone(&stop2);
            let stop_b = Arc::clone(&stop2);
            // Alice direction: client -> server.
            let up = std::thread::spawn(move || {
                pump(c2, s2, pick(Role::Alice), &stop_a);
            });
            // Bob direction: server -> client.
            pump(server, client, pick(Role::Bob), &stop_b);
            let _ = up.join();
        });
        Ok(TcpFaultProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point Alice's connect here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TcpFaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake a proxy still blocked in accept(); harmless otherwise.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Forward `reader` to `writer`, applying `fault` at its byte offset.
/// Clean exit (EOF or fault) half-closes the forwarded direction so the
/// downstream receiver observes exactly what the fault modeled.
fn pump(mut reader: TcpStream, mut writer: TcpStream, fault: Option<TcpFault>, stop: &AtomicBool) {
    let mut forwarded: u64 = 0;
    let mut splitting = false;
    let mut buf = [0u8; 4096];
    loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        if let Some(f) = fault {
            if !splitting && forwarded + n as u64 > f.after_bytes {
                let clean = (f.after_bytes - forwarded) as usize;
                match f.kind {
                    TcpFaultKind::Truncate => {
                        let _ = writer.write_all(&chunk[..clean]);
                        let _ = writer.shutdown(Shutdown::Write);
                        let _ = reader.shutdown(Shutdown::Read);
                        return;
                    }
                    TcpFaultKind::Disconnect => {
                        let _ = writer.write_all(&chunk[..clean]);
                        let _ = writer.shutdown(Shutdown::Both);
                        let _ = reader.shutdown(Shutdown::Both);
                        return;
                    }
                    TcpFaultKind::Stall => {
                        let _ = writer.write_all(&chunk[..clean]);
                        swallow(&mut reader, stop);
                        return;
                    }
                    TcpFaultKind::SplitWrite => {
                        if writer.write_all(&chunk[..clean]).is_err() {
                            break;
                        }
                        chunk = &chunk[clean..];
                        splitting = true;
                    }
                }
            }
        }
        forwarded += n as u64;
        let ok = if splitting {
            write_split(&mut writer, chunk)
        } else {
            writer.write_all(chunk).is_ok()
        };
        if !ok {
            break;
        }
    }
    let _ = writer.shutdown(Shutdown::Write);
    let _ = reader.shutdown(Shutdown::Read);
}

/// Forward `chunk` in 3-byte writes separated by small sleeps, forcing
/// the receiving pipe to reassemble partial reads across header and
/// payload boundaries.
fn write_split(writer: &mut TcpStream, chunk: &[u8]) -> bool {
    for piece in chunk.chunks(3) {
        if writer.write_all(piece).is_err() {
            return false;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    true
}

/// Read and discard the rest of the stream (so the stalled sender never
/// blocks on backpressure — the *receiver's* deadline is what must fire),
/// holding the connection open until the proxy is dropped or the sender
/// goes away.
fn swallow(reader: &mut TcpStream, stop: &AtomicBool) {
    let _ = reader.set_read_timeout(Some(Duration::from_millis(25)));
    let mut sink = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        match reader.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Phase;
    use std::thread;

    #[test]
    fn tcp_roundtrip_and_shared_meters() {
        let (mut a, mut b) = tcp_channel_pair().unwrap();
        let h = thread::spawn(move || {
            let m = b.recv();
            assert_eq!(m, vec![1, 2, 3]);
            b.send(vec![9; 10]);
            b.flush();
            b.stats()
        });
        a.send(vec![1, 2, 3]);
        let m = a.recv();
        assert_eq!(m, vec![9; 10]);
        let stats = h.join().unwrap();
        assert_eq!(stats.bytes_alice_to_bob, 3);
        assert_eq!(stats.bytes_bob_to_alice, 10);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.super_rounds, 2);
    }

    #[test]
    fn tcp_coalesces_staged_messages() {
        let (mut a, mut b) = tcp_channel_pair().unwrap();
        let h = thread::spawn(move || {
            assert_eq!(b.recv(), vec![1, 2]);
            assert_eq!(b.recv(), vec![3]);
            assert_eq!(b.recv(), vec![4, 5, 6]);
            b.stats()
        });
        a.send(vec![1, 2]);
        a.send(vec![3]);
        a.send(vec![4, 5, 6]);
        a.flush();
        let stats = h.join().unwrap();
        assert_eq!(stats.messages_alice_to_bob, 3);
        assert_eq!(stats.frames_alice_to_bob, 1, "one super-frame expected");
        assert_eq!(stats.super_rounds, 1);
    }

    #[test]
    fn tcp_phase_tags_validated() {
        let (mut a, mut b) = tcp_channel_pair().unwrap();
        a.set_phase(Phase::Offline);
        a.send(vec![1, 2]);
        a.flush();
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::PhaseMismatch {
                expected: Phase::Single,
                got: Phase::Offline,
            }
        );
    }

    #[test]
    fn tcp_peer_drop_surfaces_peer_closed() {
        let (a, mut b) = tcp_channel_pair().unwrap();
        drop(a);
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::PeerClosed { during: "recv" }
        );
    }

    #[test]
    fn tcp_stalled_peer_times_out() {
        let (mut a, mut b) = tcp_channel_pair().unwrap();
        b.set_io_timeout(Some(Duration::from_millis(100)));
        let t = std::time::Instant::now();
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::Timeout { during: "recv" }
        );
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "deadline did not bound the wait"
        );
        // The pair is still connected: traffic flows after the timeout.
        a.send(vec![7]);
        a.flush();
        assert_eq!(b.recv(), vec![7]);
    }

    #[test]
    fn tcp_endpoint_meters_both_directions() {
        let (sa, sb) = loopback_stream_pair().unwrap();
        let mut a = tcp_endpoint(Role::Alice, sa, Some(DEFAULT_IO_TIMEOUT)).unwrap();
        let h = thread::spawn(move || {
            let mut b = tcp_endpoint(Role::Bob, sb, Some(DEFAULT_IO_TIMEOUT)).unwrap();
            let m = b.recv();
            b.send(vec![0; 5]);
            b.flush();
            (m, b.stats())
        });
        a.send(vec![1, 2, 3]);
        assert_eq!(a.recv(), vec![0; 5]);
        let (m, bob_stats) = h.join().unwrap();
        assert_eq!(m, vec![1, 2, 3]);
        // Each endpoint's local meter covers both directions.
        let alice_stats = a.stats();
        for stats in [alice_stats, bob_stats] {
            assert_eq!(stats.bytes_alice_to_bob, 3);
            assert_eq!(stats.bytes_bob_to_alice, 5);
            assert_eq!(stats.messages, 2);
            assert_eq!(stats.frames_alice_to_bob, 1);
            assert_eq!(stats.frames_bob_to_alice, 1);
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_allocation() {
        // Hand-craft a hostile header on a raw socket: u32::MAX declared
        // payload. The endpoint must surface FrameTooLarge without trying
        // to read (or allocate) 4 GiB.
        let (mut raw, sb) = loopback_stream_pair().unwrap();
        let mut b = tcp_endpoint(Role::Bob, sb, Some(DEFAULT_IO_TIMEOUT)).unwrap();
        let declared = u32::MAX;
        let mut header = Vec::new();
        header.extend_from_slice(&declared.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes()); // seq 0, Single phase
        raw.write_all(&header).unwrap();
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::FrameTooLarge {
                declared: u64::from(declared),
                limit: MAX_FRAME_SIZE as u64,
            }
        );
    }

    #[test]
    fn mid_header_eof_is_corrupt_and_mid_payload_eof_is_truncated() {
        // Header cut short.
        let (mut raw, sb) = loopback_stream_pair().unwrap();
        let mut b = tcp_endpoint(Role::Bob, sb, Some(DEFAULT_IO_TIMEOUT)).unwrap();
        raw.write_all(&[1, 0, 0]).unwrap();
        drop(raw);
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::Corrupt {
                detail: "frame shorter than its 8-byte header"
            }
        );
        // Payload cut short: declared 8 bytes, wrote 3.
        let (mut raw, sb) = loopback_stream_pair().unwrap();
        let mut b = tcp_endpoint(Role::Bob, sb, Some(DEFAULT_IO_TIMEOUT)).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&[9, 9, 9]);
        raw.write_all(&frame).unwrap();
        drop(raw);
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::Truncated {
                expected: 8,
                got: 3
            }
        );
    }

    #[test]
    fn split_written_frames_reassemble() {
        // A sender dribbling one byte at a time is indistinguishable from
        // a whole frame by the time the exact-read loop returns.
        let (mut raw, sb) = loopback_stream_pair().unwrap();
        let mut b = tcp_endpoint(Role::Bob, sb, Some(DEFAULT_IO_TIMEOUT)).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&7u32.to_le_bytes()); // payload: sub-header + 3
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&3u32.to_le_bytes());
        frame.extend_from_slice(&[5, 6, 7]);
        let h = thread::spawn(move || {
            for byte in frame {
                raw.write_all(&[byte]).unwrap();
                thread::sleep(Duration::from_micros(300));
            }
        });
        assert_eq!(b.recv(), vec![5, 6, 7]);
        h.join().unwrap();
    }

    #[test]
    fn transparent_proxy_forwards_both_directions() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let upstream = listener.local_addr().unwrap();
        let proxy = TcpFaultProxy::spawn(upstream, None).unwrap();
        let client = TcpStream::connect(proxy.addr()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let (mut a, mut b) = tcp_pair_from_streams(client, server).unwrap();
        let h = thread::spawn(move || {
            let m = b.recv();
            b.send(vec![2; 8]);
            b.flush();
            m
        });
        a.send(vec![1; 4]);
        assert_eq!(a.recv(), vec![2; 8]);
        assert_eq!(h.join().unwrap(), vec![1; 4]);
    }

    #[test]
    fn proxy_truncate_surfaces_typed() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let upstream = listener.local_addr().unwrap();
        let fault = TcpFault {
            dir: Role::Alice,
            after_bytes: 10, // inside the first frame's payload
            kind: TcpFaultKind::Truncate,
        };
        let proxy = TcpFaultProxy::spawn(upstream, Some(fault)).unwrap();
        let client = TcpStream::connect(proxy.addr()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let (mut a, mut b) = tcp_pair_from_streams(client, server).unwrap();
        a.send(vec![1; 32]);
        a.flush();
        let got = b.try_recv().unwrap_err();
        assert!(
            matches!(got, TransportError::Truncated { .. }),
            "expected a truncation, got {got:?}"
        );
    }
}
