//! Typed send/receive helpers layered over raw byte messages.
//!
//! All integers travel little-endian. Slices are sent *without* a length
//! prefix: the protocols in this workspace always know the expected lengths
//! from public parameters, which is itself part of the obliviousness story
//! (a secret-dependent length would be a leak).

use crate::channel::Channel;

/// Sending helpers for [`Channel`].
///
/// Zero-length payloads are silently skipped, mirroring the fact that the
/// receiving side's fixed-length reads consume nothing for a zero-length
/// request; this keeps empty batches from desynchronizing the stream.
pub trait WriteExt {
    fn send_u64(&mut self, v: u64);
    fn send_u64_slice(&mut self, vs: &[u64]);
    fn send_u128_slice(&mut self, vs: &[u128]);
    fn send_bool_slice(&mut self, vs: &[bool]);
    fn send_bytes(&mut self, vs: &[u8]);
}

/// Receiving helpers for [`Channel`]. Lengths are caller-supplied because
/// they are public knowledge.
pub trait ReadExt {
    fn recv_u64(&mut self) -> u64;
    fn recv_u64_vec(&mut self, n: usize) -> Vec<u64>;
    fn recv_u128_vec(&mut self, n: usize) -> Vec<u128>;
    fn recv_bool_vec(&mut self, n: usize) -> Vec<bool>;
    fn recv_bytes(&mut self, n: usize) -> Vec<u8>;
}

impl WriteExt for Channel {
    // All writers serialize straight into the channel's staging buffer via
    // `send_with`: no intermediate `Vec` per message.
    fn send_u64(&mut self, v: u64) {
        self.send_with(8, |buf| buf.copy_from_slice(&v.to_le_bytes()));
    }

    fn send_u64_slice(&mut self, vs: &[u64]) {
        if vs.is_empty() {
            return;
        }
        self.send_with(vs.len() * 8, |buf| {
            for (c, v) in buf.chunks_exact_mut(8).zip(vs) {
                c.copy_from_slice(&v.to_le_bytes());
            }
        });
    }

    fn send_u128_slice(&mut self, vs: &[u128]) {
        if vs.is_empty() {
            return;
        }
        self.send_with(vs.len() * 16, |buf| {
            for (c, v) in buf.chunks_exact_mut(16).zip(vs) {
                c.copy_from_slice(&v.to_le_bytes());
            }
        });
    }

    fn send_bool_slice(&mut self, vs: &[bool]) {
        if vs.is_empty() {
            return;
        }
        // Bit-packed: 8 booleans per byte, consistent with how an optimized
        // implementation would ship selection bits. `send_with` hands out a
        // zeroed buffer, so only the set bits need writing.
        self.send_with(vs.len().div_ceil(8), |buf| {
            for (i, &b) in vs.iter().enumerate() {
                if b {
                    buf[i / 8] |= 1 << (i % 8);
                }
            }
        });
    }

    fn send_bytes(&mut self, vs: &[u8]) {
        if vs.is_empty() {
            return;
        }
        self.stage(vs);
    }
}

impl ReadExt for Channel {
    fn recv_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.recv_into(&mut buf);
        u64::from_le_bytes(buf)
    }

    fn recv_u64_vec(&mut self, n: usize) -> Vec<u64> {
        let mut raw = vec![0u8; n * 8];
        self.recv_into(&mut raw);
        raw.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect()
    }

    fn recv_u128_vec(&mut self, n: usize) -> Vec<u128> {
        let mut raw = vec![0u8; n * 16];
        self.recv_into(&mut raw);
        raw.chunks_exact(16)
            .map(|c| u128::from_le_bytes(c.try_into().expect("chunk is 16 bytes")))
            .collect()
    }

    fn recv_bool_vec(&mut self, n: usize) -> Vec<bool> {
        let mut raw = vec![0u8; n.div_ceil(8)];
        self.recv_into(&mut raw);
        (0..n).map(|i| raw[i / 8] >> (i % 8) & 1 == 1).collect()
    }

    fn recv_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut raw = vec![0u8; n];
        self.recv_into(&mut raw);
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;
    use std::thread;

    #[test]
    fn typed_roundtrips() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || {
            assert_eq!(b.recv_u64(), 7);
            assert_eq!(b.recv_u64_vec(3), vec![1, 2, 3]);
            assert_eq!(b.recv_u128_vec(2), vec![u128::MAX, 5]);
            assert_eq!(b.recv_bool_vec(10), {
                let mut v = vec![false; 10];
                v[0] = true;
                v[9] = true;
                v
            });
            assert_eq!(b.recv_bytes(4), vec![9, 8, 7, 6]);
        });
        a.send_u64(7);
        a.send_u64_slice(&[1, 2, 3]);
        a.send_u128_slice(&[u128::MAX, 5]);
        let mut bools = vec![false; 10];
        bools[0] = true;
        bools[9] = true;
        a.send_bool_slice(&bools);
        a.send_bytes(&[9, 8, 7, 6]);
        a.flush();
        h.join().unwrap();
    }

    #[test]
    fn bool_packing_is_compact() {
        let (mut a, mut b) = channel_pair();
        let h = thread::spawn(move || b.recv_bool_vec(17));
        a.send_bool_slice(&[true; 17]);
        a.flush();
        assert_eq!(h.join().unwrap(), vec![true; 17]);
        // 17 bools travel in 3 bytes.
        assert_eq!(a.stats().bytes_alice_to_bob, 3);
    }
}
