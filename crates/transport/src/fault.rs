//! Deterministic fault injection for the two-party transport.
//!
//! [`fault_channel_pair`] builds a channel pair whose two directions pass
//! through a man-in-the-middle relay thread each. The relay forwards frames
//! verbatim except where a [`FaultPlan`] tells it to misbehave, modelling
//! the network failures a real deployment would see: truncated writes,
//! writes split across packets, reordering inside a round, and a peer
//! vanishing mid-protocol. Plans are plain data — built explicitly with
//! [`FaultPlan::single`] or derived from a seed with [`FaultPlan::from_seed`]
//! — so every injected fault is exactly reproducible.
//!
//! The contract under test: every injected fault must surface as a typed
//! [`crate::ProtocolError`] from [`crate::try_run_protocol_with_faults`] —
//! no panic escaping the runner, no deadlock, and drop-time zeroization of
//! secret material still performed on the unwind path.

use crate::channel::{relayed_pair, Channel, RelayWires, Role, HEADER};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// How long a relay holds a reordered frame waiting for a successor before
/// giving up and delivering it in order (prevents a held frame from
/// deadlocking a conversation that switches direction at that point).
const REORDER_FLUSH: Duration = Duration::from_millis(50);

/// The classes of transport misbehaviour the relay can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Deliver only a prefix of the frame, then close the direction — a
    /// connection dying mid-write.
    Truncate,
    /// Deliver the frame as two separate writes, violating the
    /// one-write-one-frame invariant the receiver checks.
    SplitWrite,
    /// Hold the frame and deliver its successor first — reordering inside
    /// a round.
    Reorder,
    /// Drop the frame and close the direction — the peer vanishing.
    Disconnect,
    /// Rewrite the frame header to declare a payload beyond
    /// [`crate::MAX_FRAME_SIZE`] — an oversized (coalesced) super-frame or
    /// a tampered length field.
    Oversize,
}

impl FaultKind {
    /// Every fault class, for exhaustive per-class tests.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Truncate,
        FaultKind::SplitWrite,
        FaultKind::Reorder,
        FaultKind::Disconnect,
        FaultKind::Oversize,
    ];
}

/// One planned fault: misbehave on the `message_index`-th frame (0-based)
/// sent by `direction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The party whose outgoing traffic is tampered with.
    pub direction: Role,
    /// 0-based index of the frame, counting that direction's frames only.
    pub message_index: u64,
    /// What to do to that frame.
    pub kind: FaultKind,
}

/// A deterministic schedule of transport faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// No faults: the relayed pair behaves exactly like [`crate::channel_pair`].
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single planned fault.
    pub fn single(direction: Role, message_index: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            faults: vec![FaultSpec {
                direction,
                message_index,
                kind,
            }],
        }
    }

    /// Add another fault to the plan.
    pub fn and(mut self, direction: Role, message_index: u64, kind: FaultKind) -> FaultPlan {
        self.faults.push(FaultSpec {
            direction,
            message_index,
            kind,
        });
        self
    }

    /// Derive a single-fault plan from a seed: direction, frame index in
    /// `[0, horizon)` and fault class are all functions of `seed` alone
    /// (SplitMix64), so a failing seed reproduces exactly.
    pub fn from_seed(seed: u64, horizon: u64) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let direction = if next() & 1 == 0 {
            Role::Alice
        } else {
            Role::Bob
        };
        let message_index = next() % horizon.max(1);
        let kind = FaultKind::ALL[(next() % FaultKind::ALL.len() as u64) as usize];
        FaultPlan::single(direction, message_index, kind)
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    fn for_direction(&self, direction: Role) -> Vec<(u64, FaultKind)> {
        self.faults
            .iter()
            .filter(|f| f.direction == direction)
            .map(|f| (f.message_index, f.kind))
            .collect()
    }
}

/// Create a connected pair whose traffic passes through fault-injecting
/// relays executing `plan`. With [`FaultPlan::none`] the pair is
/// behaviourally identical to [`crate::channel_pair`] (frames are forwarded
/// verbatim). The relay threads exit on their own once either endpoint
/// drops, so the pair needs no explicit teardown.
pub fn fault_channel_pair(plan: &FaultPlan) -> (Channel, Channel) {
    let (alice, bob, wires) = relayed_pair(None);
    let RelayWires {
        a2b_in,
        a2b_out,
        b2a_in,
        b2a_out,
    } = wires;
    spawn_relay(a2b_in, a2b_out, plan.for_direction(Role::Alice));
    spawn_relay(b2a_in, b2a_out, plan.for_direction(Role::Bob));
    (alice, bob)
}

fn spawn_relay(rx: Receiver<Vec<u8>>, tx: Sender<Vec<u8>>, faults: Vec<(u64, FaultKind)>) {
    std::thread::spawn(move || {
        Relay {
            rx,
            tx,
            faults,
            index: 0,
            held: None,
        }
        .run();
    });
}

struct Relay {
    rx: Receiver<Vec<u8>>,
    tx: Sender<Vec<u8>>,
    faults: Vec<(u64, FaultKind)>,
    /// Index of the next frame this relay will see.
    index: u64,
    /// Frame held back by a pending [`FaultKind::Reorder`].
    held: Option<Vec<u8>>,
}

impl Relay {
    fn run(mut self) {
        loop {
            let frame = if self.held.is_some() {
                // While holding a reordered frame, don't block forever: if
                // no successor arrives (the conversation turned around),
                // deliver the held frame in order and keep going.
                match self.rx.recv_timeout(REORDER_FLUSH) {
                    Ok(f) => f,
                    Err(RecvTimeoutError::Timeout) => {
                        if self.flush_held().is_err() {
                            return;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match self.rx.recv() {
                    Ok(f) => f,
                    Err(_) => break,
                }
            };
            let fault = self
                .faults
                .iter()
                .find(|(i, _)| *i == self.index)
                .map(|(_, k)| *k);
            self.index += 1;
            match fault {
                None => {
                    if self.tx.send(frame).is_err() {
                        return;
                    }
                    // A frame held for reordering is delivered right after
                    // the one that overtook it.
                    if self.flush_held().is_err() {
                        return;
                    }
                }
                Some(FaultKind::Truncate) => {
                    // Keep the header and half the payload if there is one,
                    // otherwise cut into the header itself.
                    let cut = if frame.len() > HEADER {
                        HEADER + (frame.len() - HEADER) / 2
                    } else {
                        frame.len() / 2
                    };
                    let _ = self.tx.send(frame[..cut].to_vec());
                    // Close the direction: a real connection dying mid-write
                    // delivers nothing further.
                    return;
                }
                Some(FaultKind::SplitWrite) => {
                    let cut = (frame.len() / 2).max(1).min(frame.len() - 1);
                    if self.tx.send(frame[..cut].to_vec()).is_err() {
                        return;
                    }
                    if self.tx.send(frame[cut..].to_vec()).is_err() {
                        return;
                    }
                    if self.flush_held().is_err() {
                        return;
                    }
                }
                Some(FaultKind::Reorder) => {
                    if let Some(prev) = self.held.replace(frame) {
                        // Two overlapping reorders: deliver the older held
                        // frame now rather than holding two.
                        if self.tx.send(prev).is_err() {
                            return;
                        }
                    }
                }
                Some(FaultKind::Disconnect) => return,
                Some(FaultKind::Oversize) => {
                    let mut frame = frame;
                    if frame.len() >= HEADER {
                        let declared = (crate::channel::MAX_FRAME_SIZE as u32).wrapping_add(1);
                        frame[0..4].copy_from_slice(&declared.to_le_bytes());
                    }
                    if self.tx.send(frame).is_err() {
                        return;
                    }
                    if self.flush_held().is_err() {
                        return;
                    }
                }
            }
        }
        // Input closed; deliver anything still held, then close the output.
        let _ = self.flush_held();
    }

    fn flush_held(&mut self) -> Result<(), ()> {
        if let Some(f) = self.held.take() {
            self.tx.send(f).map_err(|_| ())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TransportError;

    #[test]
    fn from_seed_is_deterministic_and_in_horizon() {
        for seed in 0..64 {
            let p1 = FaultPlan::from_seed(seed, 10);
            let p2 = FaultPlan::from_seed(seed, 10);
            assert_eq!(p1, p2);
            assert_eq!(p1.faults().len(), 1);
            assert!(p1.faults()[0].message_index < 10);
        }
        // All four classes and both directions appear across seeds.
        let plans: Vec<FaultSpec> = (0..64)
            .map(|s| FaultPlan::from_seed(s, 10).faults()[0])
            .collect();
        for kind in FaultKind::ALL {
            assert!(plans.iter().any(|f| f.kind == kind), "{kind:?} missing");
        }
        assert!(plans.iter().any(|f| f.direction == Role::Alice));
        assert!(plans.iter().any(|f| f.direction == Role::Bob));
    }

    #[test]
    fn no_fault_relay_is_transparent() {
        let (mut a, mut b) = fault_channel_pair(&FaultPlan::none());
        let h = std::thread::spawn(move || {
            let m = b.recv();
            b.send(vec![9; 9]);
            m
        });
        a.send(vec![1, 2, 3]);
        assert_eq!(a.recv(), vec![9; 9]);
        assert_eq!(h.join().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncate_fault_yields_truncated_error() {
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Alice, 0, FaultKind::Truncate));
        a.send(vec![1, 2, 3, 4]);
        drop(a); // drop flushes the staged frame
                 // Payload on the wire = 4-byte sub-header + 4 message bytes; the
                 // relay keeps the frame header and half of that payload.
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::Truncated {
                expected: 8,
                got: 4
            }
        );
    }

    #[test]
    fn split_write_fault_yields_framing_error() {
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Alice, 0, FaultKind::SplitWrite));
        a.send(vec![1, 2, 3, 4]);
        drop(a);
        // First fragment: header intact, payload short.
        assert!(matches!(
            b.try_recv().unwrap_err(),
            TransportError::Truncated { .. } | TransportError::Corrupt { .. }
        ));
    }

    #[test]
    fn reorder_fault_yields_out_of_order_error() {
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Alice, 0, FaultKind::Reorder));
        a.send(vec![1]);
        a.flush();
        a.send(vec![2]);
        a.flush();
        // Frame 1 (seq 1) overtakes frame 0 (seq 0).
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::OutOfOrder {
                expected: 0,
                got: 1
            }
        );
    }

    #[test]
    fn reorder_flushes_in_order_when_no_successor_arrives() {
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Alice, 0, FaultKind::Reorder));
        a.send(vec![42]);
        a.flush();
        // No successor: after REORDER_FLUSH the frame arrives in order.
        assert_eq!(b.try_recv().unwrap(), vec![42]);
    }

    #[test]
    fn disconnect_fault_yields_peer_closed() {
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Alice, 0, FaultKind::Disconnect));
        a.send(vec![1, 2, 3]);
        a.flush();
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::PeerClosed { during: "recv" }
        );
    }

    #[test]
    fn oversize_fault_yields_frame_too_large() {
        use crate::channel::MAX_FRAME_SIZE;
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Alice, 0, FaultKind::Oversize));
        a.send(vec![1, 2, 3]);
        drop(a);
        assert_eq!(
            b.try_recv().unwrap_err(),
            TransportError::FrameTooLarge {
                declared: MAX_FRAME_SIZE as u64 + 1,
                limit: MAX_FRAME_SIZE as u64,
            }
        );
    }

    #[test]
    fn fault_applies_only_to_planned_direction_and_index() {
        let (mut a, mut b) =
            fault_channel_pair(&FaultPlan::single(Role::Bob, 1, FaultKind::Disconnect));
        let h = std::thread::spawn(move || {
            let m = b.recv();
            b.send(vec![7]); // Bob frame 0: clean
            b.flush();
            b.send(vec![8]); // Bob frame 1: dropped, direction closed
            b.flush();
            m
        });
        a.send(vec![1]);
        assert_eq!(a.recv(), vec![7]);
        assert_eq!(
            a.try_recv().unwrap_err(),
            TransportError::PeerClosed { during: "recv" }
        );
        assert_eq!(h.join().unwrap(), vec![1]);
    }
}
