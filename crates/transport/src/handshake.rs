//! Versioned session-negotiation handshake for the networked runtime.
//!
//! Before a [`crate::Channel`] exists, client and server speak a tiny
//! self-delimiting preamble directly on the socket:
//!
//! ```text
//! ClientHello:  "SYH1" | version u32 | ell u32 | shape_key u64
//!               | payload_len u32 | payload bytes
//! ServerHello:  "SYA1" | version u32 | code u8
//!               | detail_len u32 | detail bytes (utf-8)
//! ```
//!
//! All integers little-endian. The payload is an opaque query
//! specification the server-side runtime decodes (`secyan-server`'s
//! `SessionRequest`); this crate only enforces the *transport* contract:
//! magic, protocol version, and hard byte bounds. The declared `ell` and
//! `shape_key` ride in the fixed header so a server can route the session
//! to its preprocessing pool before parsing anything variable-length.
//!
//! Hardening mirrors the channel layer: every variable-length field's
//! declared size is bounded *before* allocation
//! ([`MAX_HELLO_PAYLOAD`] / [`MAX_DETAIL_LEN`]), a garbage magic aborts
//! without reading further, and all reads inherit the socket's deadline —
//! so a half-open connect or a stalled hello surfaces as a typed error
//! within the timeout, never a hung accept thread.

use crate::error::TransportError;
use crate::tcp::map_io;
use std::io::{Read, Write};

/// Wire version of the hello + channel framing this build speaks. Bump on
/// any incompatible change to either.
pub const PROTOCOL_VERSION: u32 = 1;

/// Client-hello magic (`SYH1` = secure-yannakakis hello v1 framing).
pub const HELLO_MAGIC: [u8; 4] = *b"SYH1";

/// Server-hello magic (`SYA1` = answer).
pub const ANSWER_MAGIC: [u8; 4] = *b"SYA1";

/// Hard bound on the hello's variable-length payload. Query
/// specifications are tens of bytes; anything near this bound is hostile.
pub const MAX_HELLO_PAYLOAD: usize = 1 << 16;

/// Hard bound on a server-hello's rejection detail string.
pub const MAX_DETAIL_LEN: usize = 1 << 12;

/// Server verdict codes carried in the `ServerHello`.
pub const CODE_ACCEPT: u8 = 0;
/// The client's protocol version is not this server's.
pub const CODE_REJECT_VERSION: u8 = 1;
/// The hello parsed but its payload did not decode to a valid request.
pub const CODE_REJECT_MALFORMED: u8 = 2;
/// The declared `shape_key`/`ell` disagree with the request payload.
pub const CODE_REJECT_SHAPE: u8 = 3;

/// A parsed client hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    pub version: u32,
    /// Ring width ℓ the client wants the session to run at.
    pub ell: u32,
    /// The query's `ShapeKey` word (see `secyan-core`), declared up front
    /// for preprocessing-pool routing; the server re-derives it from the
    /// payload and rejects a mismatch ([`CODE_REJECT_SHAPE`]).
    pub shape_key: u64,
    /// Opaque query specification (decoded by the server runtime).
    pub payload: Vec<u8>,
}

/// Typed failure of the handshake preamble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// The socket failed underneath the handshake (EOF, reset, deadline).
    Transport(TransportError),
    /// The first four bytes were not the expected magic — the peer is not
    /// speaking this protocol at all.
    BadMagic { got: [u8; 4] },
    /// Both sides speak the preamble but different protocol versions.
    VersionMismatch { ours: u32, theirs: u32 },
    /// A variable-length field declared a size beyond its hard bound; the
    /// declaration is rejected before any allocation.
    TooLarge { declared: u64, limit: u64 },
    /// The server parsed the hello and refused it with a typed code.
    Rejected { code: u8, detail: String },
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Transport(e) => write!(f, "handshake transport failure: {e}"),
            HandshakeError::BadMagic { got } => {
                write!(f, "bad handshake magic: {got:02x?}")
            }
            HandshakeError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer's {theirs}")
            }
            HandshakeError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "handshake field too large: declared {declared} bytes, limit {limit}"
                )
            }
            HandshakeError::Rejected { code, detail } => {
                write!(f, "server rejected the session (code {code}): {detail}")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<TransportError> for HandshakeError {
    fn from(e: TransportError) -> HandshakeError {
        HandshakeError::Transport(e)
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), HandshakeError> {
    r.read_exact(buf)
        .map_err(|e| HandshakeError::Transport(map_io(&e, "handshake")))
}

fn write_all(w: &mut impl Write, buf: &[u8]) -> Result<(), HandshakeError> {
    w.write_all(buf)
        .map_err(|e| HandshakeError::Transport(map_io(&e, "handshake")))
}

fn read_u32(r: &mut impl Read) -> Result<u32, HandshakeError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, HandshakeError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Send a client hello. `hello.version` is caller-supplied so negative
/// tests can speak a wrong version deliberately; production callers pass
/// [`PROTOCOL_VERSION`].
pub fn write_client_hello(w: &mut impl Write, hello: &ClientHello) -> Result<(), HandshakeError> {
    assert!(
        hello.payload.len() <= MAX_HELLO_PAYLOAD,
        "hello payload exceeds MAX_HELLO_PAYLOAD"
    );
    let mut buf = Vec::with_capacity(24 + hello.payload.len());
    buf.extend_from_slice(&HELLO_MAGIC);
    buf.extend_from_slice(&hello.version.to_le_bytes());
    buf.extend_from_slice(&hello.ell.to_le_bytes());
    buf.extend_from_slice(&hello.shape_key.to_le_bytes());
    buf.extend_from_slice(&(hello.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&hello.payload);
    write_all(w, &buf)
}

/// Read and validate a client hello (server side). Magic, version, and
/// the payload bound are enforced here; the caller owns semantic
/// validation of the payload (and answers with [`write_server_hello`]).
pub fn read_client_hello(r: &mut impl Read) -> Result<ClientHello, HandshakeError> {
    let mut magic = [0u8; 4];
    read_exact(r, &mut magic)?;
    if magic != HELLO_MAGIC {
        return Err(HandshakeError::BadMagic { got: magic });
    }
    let version = read_u32(r)?;
    if version != PROTOCOL_VERSION {
        return Err(HandshakeError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let ell = read_u32(r)?;
    let shape_key = read_u64(r)?;
    let payload_len = read_u32(r)? as usize;
    if payload_len > MAX_HELLO_PAYLOAD {
        return Err(HandshakeError::TooLarge {
            declared: payload_len as u64,
            limit: MAX_HELLO_PAYLOAD as u64,
        });
    }
    let mut payload = vec![0u8; payload_len];
    read_exact(r, &mut payload)?;
    Ok(ClientHello {
        version,
        ell,
        shape_key,
        payload,
    })
}

/// Send the server's verdict: [`CODE_ACCEPT`] or a typed rejection with a
/// short human-readable detail.
pub fn write_server_hello(
    w: &mut impl Write,
    code: u8,
    detail: &str,
) -> Result<(), HandshakeError> {
    let detail = &detail.as_bytes()[..detail.len().min(MAX_DETAIL_LEN)];
    let mut buf = Vec::with_capacity(13 + detail.len());
    buf.extend_from_slice(&ANSWER_MAGIC);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    buf.push(code);
    buf.extend_from_slice(&(detail.len() as u32).to_le_bytes());
    buf.extend_from_slice(detail);
    write_all(w, &buf)
}

/// Read the server's verdict (client side): `Ok(())` on accept, a typed
/// [`HandshakeError::Rejected`] otherwise.
pub fn read_server_hello(r: &mut impl Read) -> Result<(), HandshakeError> {
    let mut magic = [0u8; 4];
    read_exact(r, &mut magic)?;
    if magic != ANSWER_MAGIC {
        return Err(HandshakeError::BadMagic { got: magic });
    }
    let version = read_u32(r)?;
    if version != PROTOCOL_VERSION {
        return Err(HandshakeError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let mut code = [0u8; 1];
    read_exact(r, &mut code)?;
    let detail_len = read_u32(r)? as usize;
    if detail_len > MAX_DETAIL_LEN {
        return Err(HandshakeError::TooLarge {
            declared: detail_len as u64,
            limit: MAX_DETAIL_LEN as u64,
        });
    }
    let mut detail = vec![0u8; detail_len];
    read_exact(r, &mut detail)?;
    if code[0] == CODE_ACCEPT {
        return Ok(());
    }
    Err(HandshakeError::Rejected {
        code: code[0],
        detail: String::from_utf8_lossy(&detail).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> ClientHello {
        ClientHello {
            version: PROTOCOL_VERSION,
            ell: 64,
            shape_key: 0xDEAD_BEEF_CAFE_F00D,
            payload: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn hello_roundtrips() {
        let mut wire = Vec::new();
        write_client_hello(&mut wire, &hello()).unwrap();
        let got = read_client_hello(&mut wire.as_slice()).unwrap();
        assert_eq!(got, hello());
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut wire = Vec::new();
        let mut h = hello();
        h.version = PROTOCOL_VERSION + 7;
        write_client_hello(&mut wire, &h).unwrap();
        assert_eq!(
            read_client_hello(&mut wire.as_slice()).unwrap_err(),
            HandshakeError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: PROTOCOL_VERSION + 7,
            }
        );
    }

    #[test]
    fn garbage_magic_is_typed() {
        let wire = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        assert_eq!(
            read_client_hello(&mut wire.as_slice()).unwrap_err(),
            HandshakeError::BadMagic { got: *b"GET " }
        );
    }

    #[test]
    fn oversized_payload_declaration_is_typed() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&HELLO_MAGIC);
        wire.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        wire.extend_from_slice(&64u32.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_client_hello(&mut wire.as_slice()).unwrap_err(),
            HandshakeError::TooLarge {
                declared: u64::from(u32::MAX),
                limit: MAX_HELLO_PAYLOAD as u64,
            }
        );
    }

    #[test]
    fn truncated_hello_is_transport_error() {
        let mut wire = Vec::new();
        write_client_hello(&mut wire, &hello()).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            read_client_hello(&mut wire.as_slice()).unwrap_err(),
            HandshakeError::Transport(TransportError::PeerClosed { .. })
        ));
    }

    #[test]
    fn verdicts_roundtrip() {
        let mut wire = Vec::new();
        write_server_hello(&mut wire, CODE_ACCEPT, "").unwrap();
        read_server_hello(&mut wire.as_slice()).unwrap();
        let mut wire = Vec::new();
        write_server_hello(&mut wire, CODE_REJECT_SHAPE, "shape key mismatch").unwrap();
        assert_eq!(
            read_server_hello(&mut wire.as_slice()).unwrap_err(),
            HandshakeError::Rejected {
                code: CODE_REJECT_SHAPE,
                detail: "shape key mismatch".into(),
            }
        );
    }
}
