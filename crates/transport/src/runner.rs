//! Run a two-party protocol: both parties as real threads.

use crate::channel::{channel_pair, channel_pair_with_transcript, Channel, CommStats};
use std::thread;

/// Execute a two-party protocol and return `(alice_output, bob_output, stats)`.
///
/// Each closure receives its endpoint of a fresh metered channel. Both run
/// concurrently on their own OS threads, exactly like the two machines in
/// the paper's experiments (minus the network latency). A panic in either
/// party propagates to the caller.
pub fn run_protocol<FA, FB, RA, RB>(alice: FA, bob: FB) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    run_on(channel_pair(), alice, bob)
}

/// Like [`run_protocol`], but on a transcript-recording channel pair
/// (see [`channel_pair_with_transcript`]) so obliviousness tests can read
/// `ch.transcript_lengths()` inside the party closures.
pub fn run_protocol_recorded<FA, FB, RA, RB>(alice: FA, bob: FB) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    run_on(channel_pair_with_transcript(), alice, bob)
}

fn run_on<FA, FB, RA, RB>(pair: (Channel, Channel), alice: FA, bob: FB) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let (mut ca, mut cb) = pair;
    let (ra, rb, stats) = thread::scope(|s| {
        let hb = s.spawn(move || {
            let out = bob(&mut cb);
            (out, cb.stats())
        });
        let ra = alice(&mut ca);
        let (rb, stats) = match hb.join() {
            Ok(x) => x,
            Err(e) => std::panic::resume_unwind(e),
        };
        (ra, rb, stats)
    });
    (ra, rb, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{ReadExt, WriteExt};

    #[test]
    fn two_party_sum() {
        // Toy protocol: Alice sends x, Bob replies with x + y.
        let (a, b, stats) = run_protocol(
            |ch| {
                ch.send_u64(20);
                ch.recv_u64()
            },
            |ch| {
                let x = ch.recv_u64();
                ch.send_u64(x + 22);
                x
            },
        );
        assert_eq!(a, 42);
        assert_eq!(b, 20);
        assert_eq!(stats.total_bytes(), 16);
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    #[should_panic]
    fn party_panic_propagates() {
        run_protocol(|_| panic!("alice exploded"), |_| ());
    }
}
