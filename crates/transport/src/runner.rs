//! Run a two-party protocol: both parties as real threads.
//!
//! Two families of entry points:
//!
//! * [`run_protocol`] / [`run_protocol_recorded`] — the happy path. Any
//!   panic in either party (including a typed transport unwind) propagates
//!   to the caller.
//! * [`try_run_protocol`] / [`try_run_protocol_with_faults`] — the
//!   fault-tolerant boundary. Typed [`ProtocolError`] unwinds raised by the
//!   channel layer (or by protocol validation via
//!   [`ProtocolError::malformed`]) are caught and returned as `Err`; any
//!   other panic is a genuine bug and is re-raised. When one party fails,
//!   its channel endpoint is dropped, which unblocks the peer with a typed
//!   [`crate::TransportError::PeerClosed`] — so a single fault terminates
//!   both parties without deadlock.

use crate::channel::{
    channel_pair, channel_pair_with_transcript, Channel, CommStats, NetModel, TranscriptHandle,
};
use crate::error::{try_downcast_panic, ProtocolError, TransportError};
use crate::fault::{fault_channel_pair, FaultPlan};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Execute a two-party protocol and return `(alice_output, bob_output, stats)`.
///
/// Each closure receives its endpoint of a fresh metered channel. Both run
/// concurrently on their own OS threads, exactly like the two machines in
/// the paper's experiments (minus the network latency). A panic in either
/// party propagates to the caller.
pub fn run_protocol<FA, FB, RA, RB>(alice: FA, bob: FB) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    run_on(channel_pair(), alice, bob)
}

/// Like [`run_protocol`], but both endpoints carry the given simulated
/// network (see [`NetModel`]): every send pays the modeled serialization
/// and per-round propagation delay as a real sleep, so wall-clock timings
/// taken inside the party closures reflect the declared WAN instead of
/// loopback.
pub fn run_protocol_with_net<FA, FB, RA, RB>(
    net: NetModel,
    alice: FA,
    bob: FB,
) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let (mut ca, mut cb) = channel_pair();
    ca.set_net_model(Some(net));
    cb.set_net_model(Some(net));
    run_on((ca, cb), alice, bob)
}

/// Like [`run_protocol`], but on a transcript-recording channel pair
/// (see [`channel_pair_with_transcript`]) so obliviousness tests can read
/// `ch.transcript_lengths()` inside the party closures. Only message
/// *lengths* are recorded; use [`run_protocol_captured`] when the test
/// needs payload bytes.
pub fn run_protocol_recorded<FA, FB, RA, RB>(alice: FA, bob: FB) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    run_on(channel_pair_with_transcript(), alice, bob)
}

/// Like [`run_protocol_recorded`], but payload capture is enabled *before*
/// either party starts and the attached [`TranscriptHandle`] is returned
/// alongside the outputs — so `handle.messages()` sees every byte with no
/// startup race. Determinism tests compare these transcripts across runs.
pub fn run_protocol_captured<FA, FB, RA, RB>(
    alice: FA,
    bob: FB,
) -> (RA, RB, CommStats, TranscriptHandle)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pair = channel_pair_with_transcript();
    let handle = pair.0.transcript_handle();
    let (ra, rb, stats) = run_on(pair, alice, bob);
    (ra, rb, stats, handle)
}

/// Execute a two-party protocol, catching typed failures.
///
/// Returns `Err` with a typed [`ProtocolError`] when either party fails;
/// secrets held by the failing party are dropped (and zeroized) during
/// its unwind. When both parties fail, the root cause is preferred: a
/// [`TransportError::PeerClosed`] is usually the *cascade* of the peer's
/// own unwind (dropping its endpoint closes the wires), so a
/// non-`PeerClosed` error from either side wins over a `PeerClosed` from
/// the other; ties keep Alice's error. Non-typed panics are genuine bugs
/// and propagate.
pub fn try_run_protocol<FA, FB, RA, RB>(
    alice: FA,
    bob: FB,
) -> Result<(RA, RB, CommStats), ProtocolError>
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    try_run_on(channel_pair(), alice, bob)
}

/// Like [`try_run_protocol`], but the channel pair routes through a
/// fault-injecting relay executing `plan` (see [`crate::fault`]).
pub fn try_run_protocol_with_faults<FA, FB, RA, RB>(
    plan: &FaultPlan,
    alice: FA,
    bob: FB,
) -> Result<(RA, RB, CommStats), ProtocolError>
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    try_run_on(fault_channel_pair(plan), alice, bob)
}

/// Like [`run_protocol`], but over a caller-supplied channel pair — e.g. a
/// socket-backed loopback pair from [`crate::tcp_channel_pair`]. The TCP
/// test battery uses this to run the exact protocol closures the
/// in-process runners take, over a real wire.
pub fn run_protocol_on<FA, FB, RA, RB>(
    pair: (Channel, Channel),
    alice: FA,
    bob: FB,
) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    run_on(pair, alice, bob)
}

/// Like [`run_protocol_captured`], but over a caller-supplied channel pair
/// built with a transcript (e.g. [`crate::tcp_channel_pair_with_transcript`]).
/// Panics if the pair records no transcript.
pub fn run_protocol_captured_on<FA, FB, RA, RB>(
    pair: (Channel, Channel),
    alice: FA,
    bob: FB,
) -> (RA, RB, CommStats, TranscriptHandle)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let handle = pair.0.transcript_handle();
    let (ra, rb, stats) = run_on(pair, alice, bob);
    (ra, rb, stats, handle)
}

/// Like [`try_run_protocol`], but over a caller-supplied channel pair —
/// the entry point the TCP fault tests use to drive a session through a
/// fault-injecting proxy and still get typed, hang-free failure reporting
/// with the same root-cause selection as the in-process runner.
pub fn try_run_protocol_on<FA, FB, RA, RB>(
    pair: (Channel, Channel),
    alice: FA,
    bob: FB,
) -> Result<(RA, RB, CommStats), ProtocolError>
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    try_run_on(pair, alice, bob)
}

/// Run one party's protocol body, converting typed [`ProtocolError`]
/// unwinds into `Err` while re-raising anything else. This is the
/// single-endpoint analogue of [`try_run_protocol`] for party-per-process
/// deployments (`secyan-server` session threads, `secyan-client`): each
/// process holds only its own [`Channel`], so the session boundary lives
/// here instead of around a thread pair.
pub fn catch_protocol<R>(body: impl FnOnce() -> R) -> Result<R, ProtocolError> {
    catch_unwind(AssertUnwindSafe(body))
        .map_err(|p| try_downcast_panic(p).unwrap_or_else(|bug| std::panic::resume_unwind(bug)))
}

fn try_run_on<FA, FB, RA, RB>(
    pair: (Channel, Channel),
    alice: FA,
    bob: FB,
) -> Result<(RA, RB, CommStats), ProtocolError>
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let (mut ca, mut cb) = pair;
    thread::scope(|s| {
        let hb = s.spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(|| bob(&mut cb)));
            // Ship anything Bob staged but never flushed (no-op after an
            // unwind that already flushed, harmless if the peer is gone) so
            // the stats snapshot includes every super-round.
            let _ = cb.try_flush();
            let stats = cb.stats();
            // Dropping Bob's endpoint closes both wires from his side, so
            // an Alice blocked in recv/send unwinds with PeerClosed instead
            // of hanging.
            drop(cb);
            (out, stats)
        });
        let ra = catch_unwind(AssertUnwindSafe(|| alice(&mut ca)));
        let _ = ca.try_flush();
        // Symmetrically unblock Bob before joining him.
        drop(ca);
        let (rb, stats) = hb.join().expect("bob runner thread itself panicked");
        // Re-raise any non-typed panic first: a real bug must not be masked
        // by the peer's typed cascade error.
        let ra = ra.map_err(|p| {
            try_downcast_panic(p).unwrap_or_else(|bug| std::panic::resume_unwind(bug))
        });
        let rb = rb.map_err(|p| {
            try_downcast_panic(p).unwrap_or_else(|bug| std::panic::resume_unwind(bug))
        });
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => Ok((ra, rb, stats)),
            (Err(ea), Err(eb)) => Err(root_cause(ea, eb)),
            (Err(e), Ok(_)) | (Ok(_), Err(e)) => Err(e),
        }
    })
}

/// Pick the diagnostic root cause when both parties fail: the party that
/// detected the fault raises a specific error (Malformed, Truncated, …)
/// while its peer unwinds with a cascade `PeerClosed` once the failing
/// endpoint drops, so a non-`PeerClosed` error wins regardless of which
/// side raised it. Ties (both specific, or both cascades) keep Alice's.
fn root_cause(alice: ProtocolError, bob: ProtocolError) -> ProtocolError {
    let is_cascade = |e: &ProtocolError| {
        matches!(
            e,
            ProtocolError::Transport(TransportError::PeerClosed { .. })
        )
    };
    if is_cascade(&alice) && !is_cascade(&bob) {
        bob
    } else {
        alice
    }
}

fn run_on<FA, FB, RA, RB>(pair: (Channel, Channel), alice: FA, bob: FB) -> (RA, RB, CommStats)
where
    FA: FnOnce(&mut Channel) -> RA + Send,
    FB: FnOnce(&mut Channel) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let (mut ca, mut cb) = pair;
    let (ra, rb, stats) = thread::scope(|s| {
        let hb = s.spawn(move || {
            let out = bob(&mut cb);
            // Flush before the snapshot so trailing staged messages are
            // metered as wire frames (ignore a peer that already left).
            let _ = cb.try_flush();
            (out, cb.stats())
        });
        let ra = alice(&mut ca);
        let _ = ca.try_flush();
        let (rb, stats) = match hb.join() {
            Ok(x) => x,
            Err(e) => std::panic::resume_unwind(e),
        };
        (ra, rb, stats)
    });
    (ra, rb, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{ReadExt, WriteExt};

    #[test]
    fn two_party_sum() {
        // Toy protocol: Alice sends x, Bob replies with x + y.
        let (a, b, stats) = run_protocol(
            |ch| {
                ch.send_u64(20);
                ch.recv_u64()
            },
            |ch| {
                let x = ch.recv_u64();
                ch.send_u64(x + 22);
                x
            },
        );
        assert_eq!(a, 42);
        assert_eq!(b, 20);
        assert_eq!(stats.total_bytes(), 16);
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    #[should_panic]
    fn party_panic_propagates() {
        run_protocol(|_| panic!("alice exploded"), |_| ());
    }

    #[test]
    fn try_run_protocol_happy_path() {
        let out = try_run_protocol(
            |ch| {
                ch.send_u64(1);
                ch.recv_u64()
            },
            |ch| {
                let x = ch.recv_u64();
                ch.send_u64(x + 1);
            },
        );
        let (a, (), stats) = out.expect("clean run");
        assert_eq!(a, 2);
        assert_eq!(stats.total_bytes(), 16);
    }

    #[test]
    fn typed_unwind_becomes_err_and_unblocks_peer() {
        // Alice raises a typed error while Bob is blocked waiting for her
        // message; Bob must terminate via PeerClosed, not hang, and the
        // caller must see Alice's root cause, not Bob's cascade.
        let out = try_run_protocol(
            |_ch: &mut Channel| -> u64 {
                ProtocolError::malformed("alice rejected peer input");
            },
            |ch: &mut Channel| ch.recv_u64(),
        );
        match out.unwrap_err() {
            ProtocolError::Malformed { context } => {
                assert!(context.contains("alice rejected"));
            }
            other => panic!("cascade masked the root cause: {other:?}"),
        }
    }

    #[test]
    fn bobs_root_cause_preferred_over_alices_cascade() {
        // Mirror image: Bob detects the fault while Alice blocks on recv
        // and unwinds with a cascade PeerClosed. The caller must still see
        // Bob's Malformed, not Alice's PeerClosed.
        let out = try_run_protocol(
            |ch: &mut Channel| ch.recv_u64(),
            |_ch: &mut Channel| -> u64 {
                ProtocolError::malformed("bob rejected declared size");
            },
        );
        match out.unwrap_err() {
            ProtocolError::Malformed { context } => {
                assert!(context.contains("bob rejected"));
            }
            other => panic!("cascade masked the root cause: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "genuine bug")]
    fn foreign_panic_still_propagates_from_try_runner() {
        let _ = try_run_protocol(
            |_ch: &mut Channel| -> () { panic!("genuine bug") },
            |_ch: &mut Channel| (),
        );
    }
}
