//! Annotated relations and their operators (paper §3.1).

use crate::semiring::Semiring;
use std::collections::HashMap;

/// An annotated relation: a bag of tuples over a named schema, each tuple
/// carrying a semiring annotation. Attribute values are `u64` (dictionary
/// encoding is the workload generator's job).
#[derive(Debug, Clone)]
pub struct Relation<S: Semiring> {
    pub semiring: S,
    pub schema: Vec<String>,
    pub tuples: Vec<Vec<u64>>,
    pub annots: Vec<S::El>,
}

impl<S: Semiring> Relation<S> {
    /// Empty relation over `schema`.
    pub fn new(semiring: S, schema: Vec<String>) -> Relation<S> {
        Relation {
            semiring,
            schema,
            tuples: Vec::new(),
            annots: Vec::new(),
        }
    }

    /// Build from rows of `(tuple, annotation)`.
    pub fn from_rows(
        semiring: S,
        schema: Vec<String>,
        rows: Vec<(Vec<u64>, S::El)>,
    ) -> Relation<S> {
        let mut r = Relation::new(semiring, schema);
        for (t, a) in rows {
            r.push(t, a);
        }
        r
    }

    /// Append a tuple.
    pub fn push(&mut self, tuple: Vec<u64>, annot: S::El) {
        assert_eq!(tuple.len(), self.schema.len(), "tuple arity");
        self.tuples.push(tuple);
        self.annots.push(annot);
    }

    /// Number of tuples (including zero-annotated dummies).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Column positions of `attrs` in this schema (panics if missing).
    pub fn positions(&self, attrs: &[String]) -> Vec<usize> {
        attrs
            .iter()
            .map(|a| {
                self.schema
                    .iter()
                    .position(|s| s == a)
                    .unwrap_or_else(|| panic!("attribute {a} not in schema {:?}", self.schema))
            })
            .collect()
    }

    /// Attributes shared with `other`, in this relation's schema order.
    pub fn common_attrs(&self, other: &Relation<S>) -> Vec<String> {
        self.schema
            .iter()
            .filter(|a| other.schema.contains(a))
            .cloned()
            .collect()
    }

    /// Project a tuple onto column positions.
    fn key_of(tuple: &[u64], pos: &[usize]) -> Vec<u64> {
        pos.iter().map(|&p| tuple[p]).collect()
    }

    /// Annotated projection-aggregation π⊕_attrs(R): distinct values on
    /// `attrs`, each annotated with the ⊕-aggregate of its group.
    pub fn project_agg(&self, attrs: &[String]) -> Relation<S> {
        let pos = self.positions(attrs);
        let mut groups: HashMap<Vec<u64>, S::El> = HashMap::new();
        let mut order: Vec<Vec<u64>> = Vec::new();
        for (t, a) in self.tuples.iter().zip(&self.annots) {
            let key = Self::key_of(t, &pos);
            match groups.get_mut(&key) {
                Some(acc) => *acc = self.semiring.add(acc, a),
                None => {
                    groups.insert(key.clone(), a.clone());
                    order.push(key);
                }
            }
        }
        let mut out = Relation::new(self.semiring.clone(), attrs.to_vec());
        for key in order {
            let a = groups.remove(&key).expect("group exists");
            out.push(key, a);
        }
        out
    }

    /// π¹_attrs(R): distinct `attrs`-values among *nonzero-annotated*
    /// tuples, all annotated 1 (paper's support projection).
    pub fn project_support(&self, attrs: &[String]) -> Relation<S> {
        let pos = self.positions(attrs);
        let mut seen: HashMap<Vec<u64>, ()> = HashMap::new();
        let mut out = Relation::new(self.semiring.clone(), attrs.to_vec());
        for (t, a) in self.tuples.iter().zip(&self.annots) {
            if self.semiring.is_zero(a) {
                continue;
            }
            let key = Self::key_of(t, &pos);
            if seen.insert(key.clone(), ()).is_none() {
                let one = self.semiring.one();
                out.push(key, one);
            }
        }
        out
    }

    /// Annotated natural join R ⋈⊗ R': tuples consistent on the shared
    /// attributes, annotations multiplied.
    pub fn join(&self, other: &Relation<S>) -> Relation<S> {
        let common = self.common_attrs(other);
        let my_pos = self.positions(&common);
        let other_pos = other.positions(&common);
        // Index the smaller side.
        let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for (i, t) in other.tuples.iter().enumerate() {
            index
                .entry(Self::key_of(t, &other_pos))
                .or_default()
                .push(i);
        }
        let extra: Vec<usize> = other
            .schema
            .iter()
            .enumerate()
            .filter(|(_, a)| !self.schema.contains(a))
            .map(|(i, _)| i)
            .collect();
        let mut schema = self.schema.clone();
        schema.extend(extra.iter().map(|&i| other.schema[i].clone()));
        let mut out = Relation::new(self.semiring.clone(), schema);
        for (t, a) in self.tuples.iter().zip(&self.annots) {
            if let Some(matches) = index.get(&Self::key_of(t, &my_pos)) {
                for &j in matches {
                    let mut tuple = t.clone();
                    tuple.extend(extra.iter().map(|&i| other.tuples[j][i]));
                    out.push(tuple, self.semiring.mul(a, &other.annots[j]));
                }
            }
        }
        out
    }

    /// Annotated semijoin R ⋉⊗ R' = R ⋈⊗ π¹(R'): keeps the tuples of R
    /// that join with at least one nonzero-annotated tuple of R',
    /// preserving their annotations.
    pub fn semijoin(&self, other: &Relation<S>) -> Relation<S> {
        let common = self.common_attrs(other);
        let support = other.project_support(&common);
        self.join(&support)
    }

    /// Drop zero-annotated tuples (used when revealing results).
    pub fn drop_zero(&self) -> Relation<S> {
        let mut out = Relation::new(self.semiring.clone(), self.schema.clone());
        for (t, a) in self.tuples.iter().zip(&self.annots) {
            if !self.semiring.is_zero(a) {
                out.push(t.clone(), a.clone());
            }
        }
        out
    }

    /// Canonical sorted form for equality checks in tests: rows sorted by
    /// tuple, zero-annotated rows dropped, attributes sorted by name.
    pub fn canonical(&self) -> Vec<(Vec<u64>, S::El)> {
        let mut attr_order: Vec<usize> = (0..self.schema.len()).collect();
        attr_order.sort_by(|&a, &b| self.schema[a].cmp(&self.schema[b]));
        let mut rows: Vec<(Vec<u64>, S::El)> = self
            .tuples
            .iter()
            .zip(&self.annots)
            .filter(|(_, a)| !self.semiring.is_zero(a))
            .map(|(t, a)| {
                (
                    attr_order.iter().map(|&i| t[i]).collect::<Vec<u64>>(),
                    a.clone(),
                )
            })
            .collect();
        rows.sort_by(|x, y| x.0.cmp(&y.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSemiring, CountSemiring, NaturalRing};

    fn ring() -> NaturalRing {
        NaturalRing::paper_default()
    }

    fn rel(schema: &[&str], rows: &[(&[u64], u64)]) -> Relation<NaturalRing> {
        Relation::from_rows(
            ring(),
            schema.iter().map(|s| s.to_string()).collect(),
            rows.iter().map(|(t, a)| (t.to_vec(), *a)).collect(),
        )
    }

    #[test]
    fn project_agg_groups_and_sums() {
        let r = rel(&["a", "b"], &[(&[1, 10], 5), (&[1, 20], 7), (&[2, 30], 1)]);
        let p = r.project_agg(&["a".into()]);
        assert_eq!(p.canonical(), vec![(vec![1], 12), (vec![2], 1)]);
    }

    #[test]
    fn project_agg_empty_attrs_is_grand_total() {
        let r = rel(&["a"], &[(&[1], 5), (&[2], 7)]);
        let p = r.project_agg(&[]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.annots[0], 12);
    }

    #[test]
    fn project_support_skips_zero() {
        let r = rel(&["a", "b"], &[(&[1, 10], 0), (&[1, 20], 7), (&[1, 30], 3)]);
        let p = r.project_support(&["a".into()]);
        assert_eq!(p.canonical(), vec![(vec![1], 1)]);
    }

    #[test]
    fn join_multiplies_annotations() {
        let r = rel(&["a", "b"], &[(&[1, 10], 2), (&[2, 20], 3)]);
        let s = rel(
            &["b", "c"],
            &[(&[10, 100], 5), (&[10, 200], 7), (&[99, 1], 1)],
        );
        let j = r.join(&s);
        assert_eq!(j.schema, vec!["a", "b", "c"]);
        assert_eq!(
            j.canonical(),
            vec![(vec![1, 10, 100], 10), (vec![1, 10, 200], 14)]
        );
    }

    #[test]
    fn join_with_no_common_attrs_is_cartesian() {
        let r = rel(&["a"], &[(&[1], 2), (&[2], 3)]);
        let s = rel(&["b"], &[(&[7], 5)]);
        let j = r.join(&s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.canonical(), vec![(vec![1, 7], 10), (vec![2, 7], 15)]);
    }

    #[test]
    fn semijoin_filters_by_nonzero_partner() {
        let r = rel(&["a", "b"], &[(&[1, 10], 2), (&[2, 20], 3), (&[3, 30], 4)]);
        let s = rel(&["b"], &[(&[10], 1), (&[20], 0)]);
        let sj = r.semijoin(&s);
        // b=20 partner is zero-annotated: dropped. Annotations preserved.
        assert_eq!(sj.canonical(), vec![(vec![1, 10], 2)]);
    }

    #[test]
    fn bool_semiring_join_behaves_like_sql() {
        let b = BoolSemiring;
        let r = Relation::from_rows(b, vec!["x".into()], vec![(vec![1], true), (vec![2], true)]);
        let s = Relation::from_rows(b, vec!["x".into()], vec![(vec![2], true)]);
        let j = r.join(&s);
        assert_eq!(j.canonical(), vec![(vec![2], true)]);
    }

    #[test]
    fn count_semiring_counts_join_sizes() {
        let c = CountSemiring;
        let r = Relation::from_rows(c, vec!["x".into()], vec![(vec![1], 1), (vec![1], 1)]);
        let s = Relation::from_rows(c, vec!["x".into()], vec![(vec![1], 1)]);
        let total = r.join(&s).project_agg(&[]);
        assert_eq!(total.annots[0], 2);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn missing_attribute_panics() {
        rel(&["a"], &[]).positions(&["zzz".into()]);
    }
}
