//! Query hypergraphs: acyclicity and the free-connex property (§3.1).
//!
//! A join query is a hypergraph whose vertices are attributes and whose
//! hyperedges are relation schemas. It is *acyclic* iff it has a join tree;
//! we find one via the classical maximal-spanning-tree characterization
//! (Bernstein–Goodman): weight every relation pair by the size of its
//! shared attribute set, take a maximum spanning tree, and verify the
//! running-intersection property.
//!
//! Free-connexity (condition (2) of §3.1) is checked per candidate root:
//! for output attribute A and non-output attribute B, TOP(B) must not be a
//! strict ancestor of TOP(A). [`find_free_connex_tree`] searches all roots
//! of the discovered join tree; callers with handcrafted trees (the TPC-H
//! queries ship theirs) can validate them with [`check_free_connex`].

use crate::tree::JoinTree;
use std::collections::HashSet;

/// A query hypergraph: one attribute-name set per relation.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    pub edges: Vec<Vec<String>>,
}

impl Hypergraph {
    /// Build from relation schemas.
    pub fn new(edges: Vec<Vec<String>>) -> Hypergraph {
        Hypergraph { edges }
    }

    /// All attributes.
    pub fn attributes(&self) -> HashSet<String> {
        self.edges.iter().flatten().cloned().collect()
    }

    fn shared(&self, i: usize, j: usize) -> usize {
        self.edges[i]
            .iter()
            .filter(|a| self.edges[j].contains(a))
            .count()
    }
}

/// Find a join tree for an acyclic hypergraph (None if cyclic). The root
/// of the returned tree is arbitrary; use [`find_free_connex_tree`] when a
/// specific rooting is required.
pub fn find_join_tree(h: &Hypergraph) -> Option<JoinTree> {
    let n = h.edges.len();
    if n == 0 {
        return None;
    }
    // Prim's algorithm for a maximum spanning tree on the intersection
    // graph (edges of weight 0 still connect: cartesian products are
    // acyclic too).
    let mut in_tree = vec![false; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut best: Vec<(usize, usize)> = (0..n).map(|i| (h.shared(i, 0), 0)).collect();
    in_tree[0] = true;
    for _ in 1..n {
        let next = (0..n)
            .filter(|&i| !in_tree[i])
            .max_by_key(|&i| best[i].0)
            .expect("nodes remain");
        in_tree[next] = true;
        parent[next] = Some(best[next].1);
        for i in 0..n {
            if !in_tree[i] {
                let w = h.shared(i, next);
                if w > best[i].0 {
                    best[i] = (w, next);
                }
            }
        }
    }
    let tree = JoinTree::new(parent);
    if satisfies_running_intersection(h, &tree) {
        Some(tree)
    } else {
        None
    }
}

/// Running-intersection property: for every attribute, the nodes containing
/// it induce a connected subtree.
pub fn satisfies_running_intersection(h: &Hypergraph, tree: &JoinTree) -> bool {
    for attr in h.attributes() {
        let holders: Vec<usize> = (0..h.edges.len())
            .filter(|&i| h.edges[i].contains(&attr))
            .collect();
        // Walk each holder toward the root; the attribute must persist
        // along the path until the subtree's top holder.
        let top = top_node(h, tree, &attr).expect("attribute has a holder");
        for &v in &holders {
            let mut cur = v;
            while cur != top {
                match tree.parent(cur) {
                    Some(p) => {
                        if !h.edges[p].contains(&attr) {
                            return false;
                        }
                        cur = p;
                    }
                    None => return false,
                }
            }
        }
    }
    true
}

/// TOP(attr): the holder of `attr` closest to the root (unique under
/// running intersection; for violating trees returns the closest holder).
fn top_node(h: &Hypergraph, tree: &JoinTree, attr: &str) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (depth, node)
    for i in 0..h.edges.len() {
        if h.edges[i].iter().any(|a| a == attr) {
            let mut depth = 0;
            let mut cur = i;
            while let Some(p) = tree.parent(cur) {
                depth += 1;
                cur = p;
            }
            if best.is_none_or(|(d, _)| depth < d) {
                best = Some((depth, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

/// Check condition (2) of the free-connex definition for a concrete rooted
/// tree: no TOP(non-output) is a strict ancestor of a TOP(output).
pub fn check_free_connex(h: &Hypergraph, tree: &JoinTree, output: &[String]) -> bool {
    if !satisfies_running_intersection(h, tree) {
        return false;
    }
    let attrs = h.attributes();
    let out_set: HashSet<&String> = output.iter().collect();
    let out_tops: Vec<usize> = attrs
        .iter()
        .filter(|a| out_set.contains(a))
        .filter_map(|a| top_node(h, tree, a))
        .collect();
    let non_out_tops: Vec<usize> = attrs
        .iter()
        .filter(|a| !out_set.contains(a))
        .filter_map(|a| top_node(h, tree, a))
        .collect();
    for &b in &non_out_tops {
        for &a in &out_tops {
            if tree.is_strict_ancestor(b, a) {
                return false;
            }
        }
    }
    true
}

/// Re-root an (undirected view of a) join tree at `root`.
fn reroot(tree: &JoinTree, root: usize) -> JoinTree {
    let n = tree.len();
    // Undirected adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        if let Some(p) = tree.parent(i) {
            adj[i].push(p);
            adj[p].push(i);
        }
    }
    let mut parent = vec![None; n];
    let mut visited = vec![false; n];
    let mut stack = vec![root];
    visited[root] = true;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !visited[w] {
                visited[w] = true;
                parent[w] = Some(v);
                stack.push(w);
            }
        }
    }
    JoinTree::new(parent)
}

/// Find a join tree witnessing free-connexity, searching over all rootings
/// of the discovered join tree. Returns None if the hypergraph is cyclic
/// or no rooting of that tree satisfies condition (2) — callers may still
/// supply a handcrafted tree and validate via [`check_free_connex`].
pub fn find_free_connex_tree(h: &Hypergraph, output: &[String]) -> Option<JoinTree> {
    let base = find_join_tree(h)?;
    for root in 0..base.len() {
        let candidate = reroot(&base, root);
        if check_free_connex(h, &candidate, output) {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(edges: &[&[&str]]) -> Hypergraph {
        Hypergraph::new(
            edges
                .iter()
                .map(|e| e.iter().map(|s| s.to_string()).collect())
                .collect(),
        )
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn chain_query_is_acyclic() {
        // Example 1.1: R1(person, coins, state), R2(person, disease, cost),
        // R3(disease, class).
        let h = hg(&[
            &["person", "coins", "state"],
            &["person", "disease", "cost"],
            &["disease", "class"],
        ]);
        let t = find_join_tree(&h).expect("acyclic");
        assert!(satisfies_running_intersection(&h, &t));
    }

    #[test]
    fn triangle_is_cyclic() {
        let h = hg(&[&["a", "b"], &["b", "c"], &["a", "c"]]);
        assert!(find_join_tree(&h).is_none());
    }

    #[test]
    fn example_1_1_is_free_connex_for_class() {
        let h = hg(&[
            &["person", "coins", "state"],
            &["person", "disease", "cost"],
            &["disease", "class"],
        ]);
        let t = find_free_connex_tree(&h, &strings(&["class"])).expect("free-connex");
        // The witnessing root must be R3 (index 2), per the paper.
        assert_eq!(t.root(), 2);
    }

    #[test]
    fn figure_1_query_is_free_connex() {
        // Figure 1 (reconstructed from Example 3.2's reduce/semijoin
        // trace): R1(A,B), R2(A,C), R3(B,D,E), R4(D,F,G), R5(D,E),
        // output {B, D, E, F}.
        let h = hg(&[
            &["A", "B"],
            &["A", "C"],
            &["B", "D", "E"],
            &["D", "F", "G"],
            &["D", "E"],
        ]);
        let out = strings(&["B", "D", "E", "F"]);
        let t = find_free_connex_tree(&h, &out).expect("paper says free-connex");
        assert!(check_free_connex(&h, &t, &out));
    }

    #[test]
    fn group_by_everything_is_free_connex() {
        let h = hg(&[&["a", "b"], &["b", "c"]]);
        assert!(find_free_connex_tree(&h, &strings(&["a", "b", "c"])).is_some());
    }

    #[test]
    fn full_aggregation_is_free_connex() {
        // O = ∅ always satisfies condition (2).
        let h = hg(&[&["a", "b"], &["b", "c"], &["c", "d"]]);
        assert!(find_free_connex_tree(&h, &[]).is_some());
    }

    #[test]
    fn non_free_connex_example() {
        // Example 1.1 variant: group by {class, coins} is NOT free-connex,
        // per the paper.
        let h = hg(&[
            &["person", "coins", "state"],
            &["person", "disease", "cost"],
            &["disease", "class"],
        ]);
        assert!(find_free_connex_tree(&h, &strings(&["class", "coins"])).is_none());
    }

    #[test]
    fn cartesian_product_has_a_tree() {
        let h = hg(&[&["a"], &["b"]]);
        assert!(find_join_tree(&h).is_some());
    }
}
