//! Annotated relations and the plaintext Yannakakis algorithm (paper §3).
//!
//! Everything in this crate is *non-private*: it is (a) the data model the
//! secure protocol operates on, (b) the query-plan layer (hypergraphs, join
//! trees, the free-connex property), (c) the modified 3-phase Yannakakis
//! algorithm of §3.2 that the secure protocol mirrors step for step, and
//! (d) a brute-force join-aggregate oracle used to cross-check everything.
//!
//! It also plays the role MySQL plays in the paper's figures: the
//! non-private baseline whose running time the secure protocol is compared
//! against.
//!
//! Attribute values are dictionary-encoded `u64`s; annotations live in a
//! pluggable [`Semiring`] — the paper's framework from Green et al., with
//! the arithmetic ring Z_{2^ℓ} used by the secure layer, the boolean
//! semiring used by π¹, and a couple of extras exercised in tests.

pub mod hypergraph;
pub mod naive;
pub mod relation;
pub mod semiring;
pub mod tree;
pub mod yannakakis;

pub use hypergraph::{check_free_connex, find_free_connex_tree, find_join_tree, Hypergraph};
pub use relation::Relation;
pub use semiring::{BoolSemiring, CountSemiring, MinPlus, NaturalRing, Semiring};
pub use tree::JoinTree;
pub use yannakakis::yannakakis;
