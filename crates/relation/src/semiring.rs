//! Commutative semirings for annotated relations (paper §3.1).
//!
//! A query's aggregates are expressed by annotating every tuple with a
//! semiring element: ⊗ combines annotations across a join, ⊕ aggregates
//! them in a projection. The paper fixes the ground set to Z_{2^ℓ} for the
//! secure protocol (elements are "merely identifiers"); the plaintext layer
//! stays generic so tests can exercise several algebras.

use secyan_crypto::RingCtx;

/// A commutative semiring (S, ⊕, ⊗) with identities 0 and 1.
pub trait Semiring: Clone {
    /// The ground set.
    type El: Clone + std::fmt::Debug + PartialEq;

    /// The ⊕-identity (annotation of dummy tuples).
    fn zero(&self) -> Self::El;
    /// The ⊗-identity.
    fn one(&self) -> Self::El;
    /// ⊕ ("addition", used by projection-aggregation).
    fn add(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// ⊗ ("multiplication", used by joins).
    fn mul(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Whether an element is the ⊕-identity (dangling/dummy test).
    fn is_zero(&self, a: &Self::El) -> bool {
        *a == self.zero()
    }
}

/// The ring (Z_{2^ℓ}, +, ×) — the algebra of the secure protocol and of
/// SUM aggregates. ℓ = 32 matches the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaturalRing(pub RingCtx);

impl NaturalRing {
    /// The paper's default ring Z_{2^32}.
    pub fn paper_default() -> NaturalRing {
        NaturalRing(RingCtx::paper_default())
    }
}

impl Semiring for NaturalRing {
    type El = u64;
    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        self.0.add(*a, *b)
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        self.0.mul(*a, *b)
    }
}

/// The boolean semiring ({false, true}, ∨, ∧): plain relational semantics;
/// also what π¹ uses internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type El = bool;
    fn zero(&self) -> bool {
        false
    }
    fn one(&self) -> bool {
        true
    }
    fn add(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// The counting semiring (ℕ, +, ×) on saturating u64 — COUNT aggregates
/// without modular wrap-around; used by tests as an overflow-free oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountSemiring;

impl Semiring for CountSemiring {
    type El = u64;
    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_mul(*b)
    }
}

/// The tropical (min, +) semiring — shortest-path-style aggregation,
/// demonstrating that the framework is not tied to sums. 0̄ = ∞ (u64::MAX),
/// 1̄ = 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type El = u64;
    fn zero(&self) -> u64 {
        u64::MAX
    }
    fn one(&self) -> u64 {
        0
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        (*a).min(*b)
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_axioms<S: Semiring>(s: &S, samples: &[S::El]) {
        for a in samples {
            assert_eq!(s.add(a, &s.zero()), *a);
            assert_eq!(s.mul(a, &s.one()), *a);
            assert_eq!(s.mul(a, &s.zero()), s.zero());
            for b in samples {
                assert_eq!(s.add(a, b), s.add(b, a));
                assert_eq!(s.mul(a, b), s.mul(b, a));
                for c in samples {
                    assert_eq!(s.add(&s.add(a, b), c), s.add(a, &s.add(b, c)));
                    assert_eq!(s.mul(&s.mul(a, b), c), s.mul(a, &s.mul(b, c)));
                    // Distributivity.
                    assert_eq!(s.mul(a, &s.add(b, c)), s.add(&s.mul(a, b), &s.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn natural_ring_axioms() {
        let s = NaturalRing::paper_default();
        check_axioms(&s, &[0, 1, 2, 5, 1 << 31, (1 << 32) - 1]);
    }

    #[test]
    fn bool_semiring_axioms() {
        check_axioms(&BoolSemiring, &[false, true]);
    }

    #[test]
    fn count_semiring_axioms() {
        check_axioms(&CountSemiring, &[0, 1, 2, 7]);
    }

    #[test]
    fn min_plus_axioms() {
        // Note: MinPlus distributivity holds because min distributes over +.
        check_axioms(&MinPlus, &[0, 1, 5, 100, MinPlus.zero()]);
    }

    #[test]
    fn is_zero_matches_zero() {
        assert!(NaturalRing::paper_default().is_zero(&0));
        assert!(!NaturalRing::paper_default().is_zero(&3));
        assert!(MinPlus.is_zero(&u64::MAX));
    }
}
