//! The modified 3-phase Yannakakis algorithm (paper §3.2).
//!
//! Phase 1 (*reduce*) folds non-output attributes away bottom-up,
//! phase 2 (*semijoin*) removes dangling tuples with two passes,
//! phase 3 (*full join*) assembles the output — O(IN + OUT) in total for
//! free-connex queries. The secure protocol in `secyan-core` mirrors this
//! structure operator for operator; this plaintext version doubles as the
//! non-private baseline of the paper's figures and as the reference the
//! secure results are tested against.

use crate::relation::Relation;
use crate::semiring::Semiring;
use crate::tree::JoinTree;

/// Evaluate the free-connex join-aggregate query
/// π⊕_output(⋈⊗ relations) along `tree`.
///
/// `tree` must be a join tree for the relations' schemas whose rooting
/// witnesses free-connexity (see `hypergraph::check_free_connex`); the
/// TPC-H plans in `secyan-tpch` carry validated trees.
pub fn yannakakis<S: Semiring>(
    relations: &[Relation<S>],
    tree: &JoinTree,
    output: &[String],
) -> Relation<S> {
    assert_eq!(relations.len(), tree.len());
    let mut rels: Vec<Relation<S>> = relations.to_vec();
    let mut removed = vec![false; rels.len()];
    let mut kept_below = vec![false; rels.len()];
    let root = tree.root();

    // Phase 1: reduce.
    for i in tree.bottom_up() {
        if i == root {
            // Fold the root's non-output attributes (if any remain).
            let f_prime: Vec<String> = rels[i]
                .schema
                .iter()
                .filter(|a| output.contains(a))
                .cloned()
                .collect();
            if f_prime.len() != rels[i].schema.len() {
                rels[i] = rels[i].project_agg(&f_prime);
            }
            continue;
        }
        let p = tree.parent(i).expect("non-root has a parent");
        let parent_schema = rels[p].schema.clone();
        let f_prime: Vec<String> = rels[i]
            .schema
            .iter()
            .filter(|a| output.contains(a) || parent_schema.contains(a))
            .cloned()
            .collect();
        let mergeable = !kept_below[i] && f_prime.iter().all(|a| parent_schema.contains(a));
        if mergeable {
            // R_p ← R_p ⋈⊗ π⊕_F'(R_i); since F' ⊆ F_p this is
            // semijoin-shaped and cannot grow R_p.
            let folded = rels[i].project_agg(&f_prime);
            rels[p] = rels[p].join(&folded);
            removed[i] = true;
        } else {
            // The reduce stops going upward on this branch: keep the node
            // with its non-output attributes aggregated away. In a
            // free-connex tree everything from here up is output-only.
            if f_prime.len() != rels[i].schema.len() {
                rels[i] = rels[i].project_agg(&f_prime);
            }
            kept_below[p] = true;
        }
    }

    let survives = |i: usize| !removed[i];

    // Phase 2: semijoins (bottom-up, then top-down) over surviving nodes.
    // A kept node's parent is never merged, so the original parent pointers
    // restricted to survivors remain a valid tree.
    for i in tree.bottom_up() {
        if !survives(i) || i == root {
            continue;
        }
        let p = tree.parent(i).expect("non-root");
        debug_assert!(survives(p));
        rels[p] = rels[p].semijoin(&rels[i]);
    }
    for i in tree.top_down() {
        if !survives(i) || i == root {
            continue;
        }
        let p = tree.parent(i).expect("non-root");
        let parent_rel = rels[p].clone();
        rels[i] = rels[i].semijoin(&parent_rel);
    }

    // Phase 3: full join, bottom-up into the root.
    for i in tree.bottom_up() {
        if !survives(i) || i == root {
            continue;
        }
        let p = tree.parent(i).expect("non-root");
        let child = rels[i].clone();
        rels[p] = rels[p].join(&child);
    }

    rels[root].project_agg(output).drop_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::{find_free_connex_tree, Hypergraph};
    use crate::naive::naive_join_aggregate;
    use crate::semiring::{CountSemiring, NaturalRing};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn example_1_1() -> Vec<Relation<NaturalRing>> {
        let ring = NaturalRing::paper_default();
        vec![
            Relation::from_rows(
                ring,
                strings(&["person"]),
                vec![(vec![1], 80), (vec![2], 50)],
            ),
            Relation::from_rows(
                ring,
                strings(&["person", "disease"]),
                vec![(vec![1, 10], 1000), (vec![1, 11], 500), (vec![2, 10], 2000)],
            ),
            Relation::from_rows(
                ring,
                strings(&["disease", "class"]),
                vec![(vec![10, 7], 1), (vec![11, 8], 1)],
            ),
        ]
    }

    #[test]
    fn example_1_1_matches_naive() {
        let rels = example_1_1();
        let tree = JoinTree::chain(3); // R1 − R2 − R3 rooted at R3
        let got = yannakakis(&rels, &tree, &strings(&["class"]));
        let want = naive_join_aggregate(&rels, &strings(&["class"]));
        assert_eq!(got.canonical(), want.canonical());
    }

    #[test]
    fn dangling_tuples_are_dropped() {
        let ring = NaturalRing::paper_default();
        let r1 = Relation::from_rows(
            ring,
            strings(&["a", "b"]),
            vec![(vec![1, 1], 3), (vec![2, 2], 5)],
        );
        let r2 = Relation::from_rows(ring, strings(&["b", "c"]), vec![(vec![1, 9], 7)]);
        let tree = JoinTree::chain(2);
        let got = yannakakis(&[r1.clone(), r2.clone()], &tree, &strings(&["c"]));
        let want = naive_join_aggregate(&[r1, r2], &strings(&["c"]));
        assert_eq!(got.canonical(), want.canonical());
        assert_eq!(got.canonical(), vec![(vec![9], 21)]);
    }

    #[test]
    fn figure_1_query_matches_naive() {
        // The 5-relation query of Figure 1 with output {B, D, E, F},
        // using the free-connex tree the planner discovers.
        let mut rng = StdRng::seed_from_u64(41);
        let ring = NaturalRing::paper_default();
        let schemas: Vec<Vec<String>> = vec![
            strings(&["A", "B"]),
            strings(&["A", "C"]),
            strings(&["B", "D", "E"]),
            strings(&["D", "F", "G"]),
            strings(&["D", "E"]),
        ];
        let rels: Vec<Relation<NaturalRing>> = schemas
            .iter()
            .map(|schema| {
                let rows = (0..30)
                    .map(|_| {
                        (
                            schema.iter().map(|_| rng.gen_range(0..4u64)).collect(),
                            rng.gen_range(1..10u64),
                        )
                    })
                    .collect();
                Relation::from_rows(ring, schema.clone(), rows)
            })
            .collect();
        let out = strings(&["B", "D", "E", "F"]);
        let h = Hypergraph::new(schemas);
        let tree = find_free_connex_tree(&h, &out).expect("free-connex");
        let got = yannakakis(&rels, &tree, &out);
        let want = naive_join_aggregate(&rels, &out);
        assert_eq!(got.canonical(), want.canonical());
    }

    #[test]
    fn full_aggregation_single_scalar() {
        // O = ∅: COUNT(*) of the join under the counting semiring.
        let c = CountSemiring;
        let r1 = Relation::from_rows(
            c,
            strings(&["a"]),
            vec![(vec![1], 1), (vec![2], 1), (vec![3], 1)],
        );
        let r2 = Relation::from_rows(
            c,
            strings(&["a", "b"]),
            vec![(vec![1, 1], 1), (vec![1, 2], 1), (vec![3, 1], 1)],
        );
        let got = yannakakis(&[r1, r2], &JoinTree::chain(2), &[]);
        assert_eq!(got.len(), 1);
        assert_eq!(got.annots[0], 3);
    }

    #[test]
    fn single_relation_query() {
        let ring = NaturalRing::paper_default();
        let r = Relation::from_rows(
            ring,
            strings(&["a", "b"]),
            vec![(vec![1, 5], 2), (vec![1, 6], 3), (vec![2, 7], 4)],
        );
        let t = JoinTree::chain(1);
        let got = yannakakis(&[r], &t, &strings(&["a"]));
        assert_eq!(got.canonical(), vec![(vec![1], 5), (vec![2], 4)]);
    }

    #[test]
    fn random_chain_queries_match_naive() {
        let mut rng = StdRng::seed_from_u64(42);
        let ring = NaturalRing::paper_default();
        for trial in 0..20 {
            // Chain R0(x0,x1) − R1(x1,x2) − R2(x2,x3), random outputs that
            // keep the query free-connex w.r.t. some rooting.
            let schemas = vec![
                strings(&["x0", "x1"]),
                strings(&["x1", "x2"]),
                strings(&["x2", "x3"]),
            ];
            let rels: Vec<Relation<NaturalRing>> = schemas
                .iter()
                .map(|schema| {
                    let rows = (0..15)
                        .map(|_| {
                            (
                                vec![rng.gen_range(0..4u64), rng.gen_range(0..4u64)],
                                rng.gen_range(0..5u64),
                            )
                        })
                        .collect();
                    Relation::from_rows(ring, schema.clone(), rows)
                })
                .collect();
            for out in [
                vec![],
                strings(&["x1"]),
                strings(&["x0", "x1"]),
                strings(&["x2", "x3"]),
            ] {
                let h = Hypergraph::new(schemas.clone());
                if let Some(tree) = find_free_connex_tree(&h, &out) {
                    let got = yannakakis(&rels, &tree, &out);
                    let want = naive_join_aggregate(&rels, &out);
                    assert_eq!(
                        got.canonical(),
                        want.canonical(),
                        "trial {trial} out {out:?}"
                    );
                }
            }
        }
    }
}
