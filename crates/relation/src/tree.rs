//! Join trees (paper §3.1).

/// A rooted join tree over relations `0..n`: `parent[i]` is `None` exactly
/// for the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    parent: Vec<Option<usize>>,
}

impl JoinTree {
    /// Build from parent pointers, validating that there is exactly one
    /// root and no cycles.
    pub fn new(parent: Vec<Option<usize>>) -> JoinTree {
        let roots = parent.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1, "join tree must have exactly one root");
        let t = JoinTree { parent };
        // Cycle check: every node must reach the root.
        for i in 0..t.len() {
            let mut cur = i;
            let mut steps = 0;
            while let Some(p) = t.parent[cur] {
                cur = p;
                steps += 1;
                assert!(steps <= t.len(), "cycle in join tree");
            }
        }
        t
    }

    /// A chain r_0 → r_1 → … with the *last* node as root (matching the
    /// paper's Example 1.1 tree R1 − R2 − R3 rooted at R3).
    pub fn chain(n: usize) -> JoinTree {
        assert!(n >= 1);
        JoinTree::new(
            (0..n)
                .map(|i| if i + 1 < n { Some(i + 1) } else { None })
                .collect(),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree has no nodes (never valid once constructed).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.parent
            .iter()
            .position(|p| p.is_none())
            .expect("validated at construction")
    }

    /// Parent of `i` (None at the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Children of `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&c| self.parent[c] == Some(i))
            .collect()
    }

    /// Nodes in a bottom-up order (every node before its parent).
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut visited = vec![false; self.len()];
        // Repeatedly emit nodes whose children are all emitted.
        while order.len() < self.len() {
            for i in 0..self.len() {
                if visited[i] {
                    continue;
                }
                if self.children(i).iter().all(|&c| visited[c]) {
                    visited[i] = true;
                    order.push(i);
                }
            }
        }
        order
    }

    /// Nodes in a top-down order (every node after its parent).
    pub fn top_down(&self) -> Vec<usize> {
        let mut order = self.bottom_up();
        order.reverse();
        order
    }

    /// True if `anc` is a strict ancestor of `node`.
    pub fn is_strict_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = node;
        while let Some(p) = self.parent[cur] {
            if p == anc {
                return true;
            }
            cur = p;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let t = JoinTree::chain(3);
        assert_eq!(t.root(), 2);
        assert_eq!(t.parent(0), Some(1));
        assert_eq!(t.children(2), vec![1]);
        assert_eq!(t.bottom_up(), vec![0, 1, 2]);
        assert_eq!(t.top_down(), vec![2, 1, 0]);
    }

    #[test]
    fn star_orders() {
        // Root 0 with children 1, 2, 3.
        let t = JoinTree::new(vec![None, Some(0), Some(0), Some(0)]);
        let bu = t.bottom_up();
        assert_eq!(*bu.last().unwrap(), 0);
        assert!(t.is_strict_ancestor(0, 3));
        assert!(!t.is_strict_ancestor(3, 0));
        assert!(!t.is_strict_ancestor(1, 1));
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_panic() {
        JoinTree::new(vec![None, None]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        JoinTree::new(vec![Some(1), Some(0), None]);
    }
}
