//! Brute-force join-aggregate evaluation — the correctness oracle.
//!
//! Joins all relations pairwise (no trees, no semijoins), then aggregates
//! onto the output attributes. Exponential in general; only suitable for
//! the small instances tests use, which is the point: its simplicity makes
//! it trustworthy.

use crate::relation::Relation;
use crate::semiring::Semiring;

/// Evaluate π⊕_output(⋈⊗ relations) by folding pairwise joins.
pub fn naive_join_aggregate<S: Semiring>(
    relations: &[Relation<S>],
    output: &[String],
) -> Relation<S> {
    assert!(!relations.is_empty());
    let mut acc = relations[0].clone();
    for r in &relations[1..] {
        acc = acc.join(r);
    }
    acc.project_agg(output).drop_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::NaturalRing;

    #[test]
    fn example_1_1_by_hand() {
        let ring = NaturalRing::paper_default();
        // R1(person, coinsurance%) — annotation = 100·(1−coinsurance).
        let r1 = Relation::from_rows(
            ring,
            vec!["person".into()],
            vec![(vec![1], 80), (vec![2], 50)],
        );
        // R2(person, disease) — annotation = cost.
        let r2 = Relation::from_rows(
            ring,
            vec!["person".into(), "disease".into()],
            vec![(vec![1, 10], 1000), (vec![1, 11], 500), (vec![2, 10], 2000)],
        );
        // R3(disease, class) — annotation 1.
        let r3 = Relation::from_rows(
            ring,
            vec!["disease".into(), "class".into()],
            vec![(vec![10, 7], 1), (vec![11, 8], 1)],
        );
        let out = naive_join_aggregate(&[r1, r2, r3], &["class".into()]);
        // class 7: 80·1000 + 50·2000 = 180000; class 8: 80·500 = 40000.
        assert_eq!(out.canonical(), vec![(vec![7], 180_000), (vec![8], 40_000)]);
    }
}
