//! A runnable naive-GC join: the whole Cartesian product in one circuit.
//!
//! Chain joins only (R₁ ⋈ R₂ ⋈ … on successive keys), which covers the
//! paper's baseline experiment (Q3's three-relation chain). Every relation
//! row enters as (left key, right key, annotation); the circuit enumerates
//! all combinations, tests the join predicates, multiplies annotations,
//! and sums everything into one aggregate revealed to both parties.
//!
//! Only feasible for tiny inputs — which is the entire point: the
//! benchmark harness measures it small and extrapolates with
//! [`crate::circuit_model`], exactly as the paper did.

use rand::Rng;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit, Word};
use secyan_crypto::TweakHasher;
use secyan_gc::{evaluate_circuit, garble_circuit, OutputMode};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::{Channel, Role};

/// One relation's public shape and private rows for the naive protocol.
/// `rows[i] = (left_key, right_key, annotation)`; ends of the chain ignore
/// the unused key.
pub type NaiveRows = Vec<(u64, u64, u64)>;

/// Build the product circuit. Alice-owned relations' inputs come first
/// (builder requirement), in relation order within each owner.
fn build_circuit(sizes: &[usize], owners: &[Role], key_bits: usize, ell: usize) -> Circuit {
    assert_eq!(sizes.len(), owners.len());
    let mut b = Builder::new();
    let declare = |b: &mut Builder, owner: Role, n: usize| -> Vec<(Word, Word, Word)> {
        (0..n)
            .map(|_| match owner {
                Role::Alice => (
                    b.alice_word(key_bits),
                    b.alice_word(key_bits),
                    b.alice_word(ell),
                ),
                Role::Bob => (b.bob_word(key_bits), b.bob_word(key_bits), b.bob_word(ell)),
            })
            .collect()
    };
    let mut rels: Vec<Option<Vec<(Word, Word, Word)>>> = vec![None; sizes.len()];
    for pass in [Role::Alice, Role::Bob] {
        for (i, (&n, &o)) in sizes.iter().zip(owners).enumerate() {
            if o == pass {
                rels[i] = Some(declare(&mut b, o, n));
            }
        }
    }
    let rels: Vec<Vec<(Word, Word, Word)>> =
        rels.into_iter().map(|r| r.expect("declared")).collect();
    // Enumerate all combinations with an odometer.
    let k = sizes.len();
    let mut idx = vec![0usize; k];
    let mut acc = b.const_word(0, ell);
    loop {
        // Join predicate: right key of relation j == left key of j+1.
        let eqs: Vec<_> = (0..k - 1)
            .map(|j| {
                let right = &rels[j][idx[j]].1;
                let left = &rels[j + 1][idx[j + 1]].0;
                b.eq_words(right, left)
            })
            .collect();
        let ind = b.and_tree(&eqs);
        // Annotation product, gated by the indicator.
        let mut prod = rels[0][idx[0]].2.clone();
        for (j, ids) in idx.iter().enumerate().skip(1) {
            let next = rels[j][*ids].2.clone();
            prod = b.mul_words(&prod, &next);
        }
        let gated = b.and_word_bit(&prod, ind);
        acc = b.add_words(&acc, &gated);
        // Odometer increment.
        let mut pos = 0;
        loop {
            idx[pos] += 1;
            if idx[pos] < sizes[pos] {
                break;
            }
            idx[pos] = 0;
            pos += 1;
            if pos == k {
                break;
            }
        }
        if pos == k {
            break;
        }
    }
    b.output_word(&acc);
    b.finish()
}

/// Pack one party's rows into input bits, following the circuit layout.
fn pack_bits(
    sizes: &[usize],
    owners: &[Role],
    me: Role,
    my_rows: &[Option<NaiveRows>],
    key_bits: usize,
    ell: usize,
) -> Vec<bool> {
    let mut bits = Vec::new();
    for pass in [Role::Alice, Role::Bob] {
        if pass != me {
            continue;
        }
        for (i, &o) in owners.iter().enumerate() {
            if o != me {
                continue;
            }
            let rows = my_rows[i].as_ref().expect("owner supplies rows");
            assert_eq!(rows.len(), sizes[i]);
            for &(l, r, a) in rows {
                bits.extend(u64_to_bits(l, key_bits));
                bits.extend(u64_to_bits(r, key_bits));
                bits.extend(u64_to_bits(a, ell));
            }
        }
    }
    bits
}

/// Garbler (Alice) side of the naive protocol. Returns the aggregate.
#[allow(clippy::too_many_arguments)]
pub fn naive_gc_garbler<R: Rng + ?Sized>(
    ch: &mut Channel,
    sizes: &[usize],
    owners: &[Role],
    my_rows: &[Option<NaiveRows>],
    key_bits: usize,
    ell: usize,
    ot: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
) -> u64 {
    let circuit = build_circuit(sizes, owners, key_bits, ell);
    let bits = pack_bits(sizes, owners, Role::Alice, my_rows, key_bits, ell);
    let out = garble_circuit(ch, &circuit, &bits, ot, hasher, rng, OutputMode::RevealBoth)
        .expect("reveal-both returns to garbler");
    bits_to_u64(&out)
}

/// Evaluator (Bob) side. Returns the aggregate.
#[allow(clippy::too_many_arguments)]
pub fn naive_gc_evaluator(
    ch: &mut Channel,
    sizes: &[usize],
    owners: &[Role],
    my_rows: &[Option<NaiveRows>],
    key_bits: usize,
    ell: usize,
    ot: &mut OtReceiver,
    hasher: TweakHasher,
) -> u64 {
    let circuit = build_circuit(sizes, owners, key_bits, ell);
    let bits = pack_bits(sizes, owners, Role::Bob, my_rows, key_bits, ell);
    let out = evaluate_circuit(ch, &circuit, &bits, ot, hasher, OutputMode::RevealBoth)
        .expect("reveal-both returns to evaluator");
    bits_to_u64(&out)
}

/// The exact AND-gate count of the runnable circuit (used to calibrate the
/// extrapolation model against measured instances).
pub fn circuit_and_gates(sizes: &[usize], owners: &[Role], key_bits: usize, ell: usize) -> u64 {
    build_circuit(sizes, owners, key_bits, ell).and_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::run_protocol;

    /// The one hasher choice shared by OT setup and garbling in these tests.
    const HASHER: TweakHasher = TweakHasher::Aes;

    fn run_naive(
        sizes: Vec<usize>,
        owners: Vec<Role>,
        alice_rows: Vec<Option<NaiveRows>>,
        bob_rows: Vec<Option<NaiveRows>>,
    ) -> (u64, u64) {
        let (s2, o2) = (sizes.clone(), owners.clone());
        let (a, b, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(61);
                let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                naive_gc_garbler(
                    ch,
                    &sizes,
                    &owners,
                    &alice_rows,
                    16,
                    16,
                    &mut ot,
                    HASHER,
                    &mut rng,
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(62);
                let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                naive_gc_evaluator(ch, &s2, &o2, &bob_rows, 16, 16, &mut ot, HASHER)
            },
        );
        assert_eq!(a, b, "both parties decode the same aggregate");
        (a, b)
    }

    #[test]
    fn two_relation_join_sum() {
        // R1: rows keyed on right key; R2 keyed on left key.
        let r1: NaiveRows = vec![(0, 1, 10), (0, 2, 20)];
        let r2: NaiveRows = vec![(1, 0, 3), (1, 0, 4), (9, 0, 100)];
        // Join matches: (k=1 ⋈ k=1): 10·3 + 10·4 = 70.
        let (a, _) = run_naive(
            vec![2, 3],
            vec![Role::Alice, Role::Bob],
            vec![Some(r1), None],
            vec![None, Some(r2)],
        );
        assert_eq!(a, 70);
    }

    #[test]
    fn three_relation_chain() {
        let r1: NaiveRows = vec![(0, 5, 2)];
        let r2: NaiveRows = vec![(5, 7, 3), (5, 8, 1)];
        let r3: NaiveRows = vec![(7, 0, 10), (8, 0, 100)];
        // 2·3·10 (via key 7) + 2·1·100 (via key 8) = 60 + 200 = 260.
        let (a, _) = run_naive(
            vec![1, 2, 2],
            vec![Role::Alice, Role::Bob, Role::Alice],
            vec![Some(r1), None, Some(r3)],
            vec![None, Some(r2), None],
        );
        assert_eq!(a, 260);
    }

    #[test]
    fn empty_join_sums_to_zero() {
        let r1: NaiveRows = vec![(0, 1, 5)];
        let r2: NaiveRows = vec![(2, 0, 7)];
        let (a, _) = run_naive(
            vec![1, 1],
            vec![Role::Alice, Role::Bob],
            vec![Some(r1), None],
            vec![None, Some(r2)],
        );
        assert_eq!(a, 0);
    }

    #[test]
    fn runnable_gate_count_tracks_model() {
        // The runnable circuit and the analytic model agree on the scaling
        // law (both linear in the number of combinations).
        let owners = vec![Role::Alice, Role::Bob];
        let g1 = circuit_and_gates(&[2, 3], &owners, 32, 32);
        let g2 = circuit_and_gates(&[4, 6], &owners, 32, 32);
        let ratio = g2 as f64 / g1 as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }
}
