//! The naive garbled-circuit baseline (paper §8.2's SMCQL stand-in).
//!
//! The paper could not run SMCQL beyond its bundled examples, so the
//! authors wrote "a garbled circuit … to just compute the Cartesian
//! product of the relations and apply join conditions on it, while
//! ignoring all other operators", measured it on the smallest dataset and
//! *extrapolated* by exact circuit size. We reproduce exactly that:
//!
//! * [`circuit_model`] — the exact gate/byte counts of the product
//!   circuit as a function of the relation sizes, used for extrapolation;
//! * [`protocol`] — an actually runnable two-party version for small
//!   inputs (it garbles the full N₁·N₂·…·N_k product), so the model's
//!   constants can be calibrated against reality.

pub mod circuit_model;
pub mod protocol;

pub use circuit_model::{CartesianCostModel, GcCost};
pub use protocol::{naive_gc_evaluator, naive_gc_garbler, NaiveRows};
