//! Exact cost model of the Cartesian-product garbled circuit.
//!
//! For k relations of sizes N₁..N_k with join predicates over `key_bits`
//! join columns and `ell`-bit annotations, the circuit enumerates all
//! ∏Nᵢ combinations; each combination needs (k−1) key-equality tests and
//! (k−1) annotation multiplications gated by the tests, then a global
//! aggregation tree. The paper's point is that this is Θ(∏Nᵢ) — we count
//! it exactly so that measured small instances extrapolate faithfully
//! ("this is actually very accurate, since the cost is proportional to
//! the size of the circuit, which we know exactly", §8.3).

/// Gate and traffic totals for one garbled-circuit execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcCost {
    pub and_gates: u128,
    /// Bytes of garbled tables (32 per AND under half-gates).
    pub table_bytes: u128,
    /// Total combinations enumerated (the join-state space).
    pub combinations: u128,
}

impl GcCost {
    /// Extrapolated wall-clock seconds given a measured per-AND-gate rate.
    pub fn seconds_at(&self, and_gates_per_sec: f64) -> f64 {
        self.and_gates as f64 / and_gates_per_sec
    }
}

/// The model, parameterized like the runnable protocol.
#[derive(Debug, Clone, Copy)]
pub struct CartesianCostModel {
    /// Bit width of a join key comparison.
    pub key_bits: u32,
    /// Bit width of annotations (the paper's ℓ = 32).
    pub ell: u32,
}

impl Default for CartesianCostModel {
    fn default() -> Self {
        CartesianCostModel {
            key_bits: 32,
            ell: 32,
        }
    }
}

impl CartesianCostModel {
    /// AND gates for one `bits`-wide equality test.
    fn eq_ands(&self) -> u128 {
        (self.key_bits - 1) as u128
    }

    /// AND gates for one ℓ-bit multiplication (schoolbook: ℓ²/2 partial
    /// products + ℓ adders of ℓ−1 ANDs, matching `secyan-circuit`).
    fn mul_ands(&self) -> u128 {
        let l = self.ell as u128;
        // Partial products: sum_{j} (l - j) = l(l+1)/2; adders: l·(l−1).
        l * (l + 1) / 2 + l * (l - 1)
    }

    /// Cost of the product circuit over relations of the given sizes with
    /// `joins` join predicates per combination (typically `sizes.len()-1`).
    pub fn cost(&self, sizes: &[usize]) -> GcCost {
        assert!(!sizes.is_empty());
        let combos: u128 = sizes.iter().map(|&n| n as u128).product();
        let joins = (sizes.len() - 1) as u128;
        // Per combination: `joins` equality tests, an AND-tree over the
        // test bits (joins−1 ANDs), one ℓ-bit gate of the combined
        // indicator onto the annotation product (ℓ ANDs), and the
        // annotation product itself ((k−1) multiplications).
        let per_combo = joins * self.eq_ands()
            + joins.saturating_sub(1)
            + self.ell as u128
            + joins * self.mul_ands();
        // Aggregating all combinations: one ℓ-bit adder each.
        let agg = combos * (self.ell as u128 - 1);
        let and_gates = combos * per_combo + agg;
        GcCost {
            and_gates,
            table_bytes: and_gates * 32,
            combinations: combos,
        }
    }

    /// The paper's headline numbers for context: at 100 MB, Q3's three
    /// relations hold ~765k tuples, whose product is ~10^16 combinations.
    pub fn paper_q3_100mb(&self) -> GcCost {
        self.cost(&[15_000, 150_000, 600_000])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_multiplicative_in_sizes() {
        let m = CartesianCostModel::default();
        let c1 = m.cost(&[10, 10]);
        let c2 = m.cost(&[10, 100]);
        assert_eq!(c1.combinations, 100);
        assert_eq!(c2.combinations, 1000);
        // 10× the combinations → 10× the gates (the per-combo work is
        // identical).
        assert_eq!(c2.and_gates, 10 * c1.and_gates);
    }

    #[test]
    fn single_relation_costs_only_aggregation() {
        let m = CartesianCostModel::default();
        let c = m.cost(&[50]);
        assert_eq!(c.combinations, 50);
        assert_eq!(c.and_gates, 50 * 31 + 50 * 32); // adders + indicator gating
    }

    #[test]
    fn paper_scale_is_astronomical() {
        let m = CartesianCostModel::default();
        let c = m.paper_q3_100mb();
        // ~10^15 combinations, ~10^18 AND gates: the "300 years / 1 EB"
        // regime the paper reports.
        assert!(c.combinations > 1_000_000_000_000_000u128);
        assert!(c.table_bytes > 1u128 << 60); // more than an exabyte/8
                                              // At an (optimistic) 10^7 AND/s this is centuries.
        assert!(c.seconds_at(1e7) > 100.0 * 365.0 * 86_400.0);
    }

    #[test]
    fn extrapolation_helper() {
        let c = GcCost {
            and_gates: 1_000_000,
            table_bytes: 32_000_000,
            combinations: 0,
        };
        assert!((c.seconds_at(1e6) - 1.0).abs() < 1e-9);
    }
}
