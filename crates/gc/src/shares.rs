//! Yao-to-arithmetic share conversion (paper §5.2) and shared inputs.
//!
//! The secure Yannakakis operators feed secret-shared annotations *into*
//! garbled circuits and need the results back *as shares*, never in the
//! clear. Two pieces make that work:
//!
//! * **Shared inputs** ([`SharedInput`]): a value v = v_A + v_B (mod 2^ℓ)
//!   enters the circuit as one input word per party; an in-circuit adder
//!   reconstructs v. This is exactly the paper's
//!   "(⟦v⟧₁ + ⟦v⟧₂) computed inside the circuit" pattern (Example 5.1).
//!
//! * **Shared outputs** ([`with_shared_outputs`] + the run helpers): for
//!   each output word W the garbler feeds a fresh random mask r as an extra
//!   input; the circuit reveals W + r (mod 2^ℓ) to the evaluator only.
//!   The evaluator's share is W + r, the garbler's is −r: a fresh additive
//!   sharing of W, with neither party learning W. This is the standard
//!   Yao-share → arithmetic-share conversion the paper cites from ABY.

use rand::Rng;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit, Word};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::Channel;

use crate::protocol::{
    evaluate_begin, evaluate_finish, garble_circuit, garble_online, EvalMaterial, EvalPending,
    GarbleMaterial, OutputMode,
};

/// A secret-shared ℓ-bit input: one word from each party.
pub struct SharedInput {
    a: Word,
    b: Word,
}

impl SharedInput {
    /// Declare the two halves. Must be called during the input-declaration
    /// phase; Alice halves of all shared inputs come while Alice inputs are
    /// still being declared.
    pub fn declare_alice_half(builder: &mut Builder, bits: usize) -> Word {
        builder.alice_word(bits)
    }

    /// Declare Bob's half (after all Alice inputs).
    pub fn declare_bob_half(builder: &mut Builder, bits: usize) -> Word {
        builder.bob_word(bits)
    }

    /// Pair two declared halves.
    pub fn new(a: Word, b: Word) -> SharedInput {
        assert_eq!(a.bits(), b.bits());
        SharedInput { a, b }
    }

    /// Reconstruct the secret inside the circuit (one adder).
    pub fn reconstruct(&self, builder: &mut Builder) -> Word {
        builder.add_words(&self.a, &self.b)
    }
}

/// Widths of the output words that must leave the circuit as arithmetic
/// shares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedOutputSpec {
    pub widths: Vec<usize>,
}

impl SharedOutputSpec {
    /// Spec for `n` words of `bits` bits each.
    pub fn uniform(n: usize, bits: usize) -> SharedOutputSpec {
        SharedOutputSpec {
            widths: vec![bits; n],
        }
    }

    /// Total output bits.
    pub fn total_bits(&self) -> usize {
        self.widths.iter().sum()
    }
}

/// Build a circuit whose result words leave as arithmetic shares.
///
/// `f` declares the circuit's own inputs and computes the result words
/// (widths must match `spec`). This helper prepends one garbler mask word
/// per output and appends the mask adders, so the *same* function produces
/// the identical circuit on both sides.
pub fn with_shared_outputs(
    spec: &SharedOutputSpec,
    f: impl FnOnce(&mut Builder) -> Vec<Word>,
) -> Circuit {
    let mut b = Builder::new();
    let masks: Vec<Word> = spec.widths.iter().map(|&w| b.alice_word(w)).collect();
    let words = f(&mut b);
    assert_eq!(words.len(), spec.widths.len(), "output word count");
    for ((word, mask), &w) in words.iter().zip(&masks).zip(&spec.widths) {
        assert_eq!(word.bits(), w, "output word width");
        let masked = b.add_words(word, mask);
        b.output_word(&masked);
    }
    b.finish()
}

/// Garbler side of a shared-output circuit. `my_inputs` are the bits of the
/// circuit's own garbler inputs (excluding masks, which this function draws
/// from `rng`). Returns the garbler's arithmetic shares, one per output
/// word.
pub fn garble_shared<R: Rng + ?Sized>(
    ch: &mut Channel,
    circuit: &Circuit,
    spec: &SharedOutputSpec,
    my_inputs: &[bool],
    ot: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
) -> Vec<u64> {
    let (mask_bits, shares) = draw_masks(spec, my_inputs, rng);
    let out = garble_circuit(
        ch,
        circuit,
        &mask_bits,
        ot,
        hasher,
        rng,
        OutputMode::RevealToEvaluator,
    );
    debug_assert!(out.is_none());
    shares
}

/// Online-phase variant of [`garble_shared`]: the circuit was pre-garbled
/// offline ([`crate::protocol::garble_offline`]) and its tables already
/// shipped; only input labels, decode bits, and OT remain. The output
/// masks are drawn fresh here — they are garbler inputs, so banking them
/// was never needed.
pub fn garble_shared_online<R: Rng + ?Sized>(
    ch: &mut Channel,
    circuit: &Circuit,
    material: GarbleMaterial,
    spec: &SharedOutputSpec,
    my_inputs: &[bool],
    ot: &mut OtSender,
    rng: &mut R,
) -> Vec<u64> {
    let (mask_bits, shares) = draw_masks(spec, my_inputs, rng);
    let out = garble_online(
        ch,
        circuit,
        material,
        &mask_bits,
        ot,
        OutputMode::RevealToEvaluator,
    );
    debug_assert!(out.is_none());
    shares
}

/// Prepend the fresh random mask words to the garbler's own inputs; the
/// garbler's shares are the mask negations.
fn draw_masks<R: Rng + ?Sized>(
    spec: &SharedOutputSpec,
    my_inputs: &[bool],
    rng: &mut R,
) -> (Vec<bool>, Vec<u64>) {
    let mut mask_bits = Vec::new();
    let mut shares = Vec::with_capacity(spec.widths.len());
    for &w in &spec.widths {
        let ring = RingCtx::new(w as u32);
        let r = ring.random(rng);
        mask_bits.extend(u64_to_bits(r, w));
        shares.push(ring.neg(r));
    }
    mask_bits.extend_from_slice(my_inputs);
    (mask_bits, shares)
}

/// First half of the shared-output evaluator: stage the OT corrections
/// for `my_inputs` (send-only — see [`evaluate_begin`]) so further
/// dependency-free messages can share the outbound super-frame before
/// [`evaluate_shared_finish`] blocks on the garbler. Pass the pre-received
/// tables when the circuit was planned offline, `None` for inline tables.
pub fn evaluate_shared_begin(
    ch: &mut Channel,
    circuit: &Circuit,
    material: Option<EvalMaterial>,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
) -> EvalPending {
    evaluate_begin(ch, circuit, material, my_inputs, ot)
}

/// Second half of the shared-output evaluator: receive and evaluate,
/// returning the evaluator's arithmetic shares, one per output word.
pub fn evaluate_shared_finish(
    ch: &mut Channel,
    circuit: &Circuit,
    pending: EvalPending,
    spec: &SharedOutputSpec,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
) -> Vec<u64> {
    let bits = evaluate_finish(
        ch,
        circuit,
        pending,
        my_inputs,
        ot,
        hasher,
        OutputMode::RevealToEvaluator,
    )
    .expect("shared-output circuits reveal to the evaluator");
    unpack_shares(spec, &bits)
}

/// Evaluator side of a shared-output circuit. Returns the evaluator's
/// arithmetic shares, one per output word.
pub fn evaluate_shared(
    ch: &mut Channel,
    circuit: &Circuit,
    spec: &SharedOutputSpec,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
) -> Vec<u64> {
    let pending = evaluate_shared_begin(ch, circuit, None, my_inputs, ot);
    evaluate_shared_finish(ch, circuit, pending, spec, my_inputs, ot, hasher)
}

/// Online-phase variant of [`evaluate_shared`]: the tables were received
/// offline ([`crate::protocol::evaluate_offline`]).
pub fn evaluate_shared_online(
    ch: &mut Channel,
    circuit: &Circuit,
    material: EvalMaterial,
    spec: &SharedOutputSpec,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
) -> Vec<u64> {
    let pending = evaluate_shared_begin(ch, circuit, Some(material), my_inputs, ot);
    evaluate_shared_finish(ch, circuit, pending, spec, my_inputs, ot, hasher)
}

/// Split the revealed masked-output bits back into per-word shares.
fn unpack_shares(spec: &SharedOutputSpec, bits: &[bool]) -> Vec<u64> {
    let mut shares = Vec::with_capacity(spec.widths.len());
    let mut pos = 0;
    for &w in &spec.widths {
        shares.push(bits_to_u64(&bits[pos..pos + w]));
        pos += w;
    }
    debug_assert_eq!(pos, bits.len());
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::run_protocol;

    /// Circuit: multiply a shared input by a garbler-private factor,
    /// outputting the product as shares — the §6.2 annotation-product shape.
    fn product_circuit(bits: usize) -> (Circuit, SharedOutputSpec) {
        let spec = SharedOutputSpec::uniform(1, bits);
        let c = with_shared_outputs(&spec, |b| {
            let factor = b.alice_word(bits);
            let va = SharedInput::declare_alice_half(b, bits);
            let vb = SharedInput::declare_bob_half(b, bits);
            let v = SharedInput::new(va, vb).reconstruct(b);
            vec![b.mul_words(&v, &factor)]
        });
        (c, spec)
    }

    #[test]
    fn shared_product_reconstructs() {
        let bits = 32;
        let ring = RingCtx::new(32);
        let mut setup_rng = StdRng::seed_from_u64(42);
        let secret = 777u64;
        let factor = 1001u64;
        let (sa, sb) = ring.share(secret, &mut setup_rng);
        let (c, spec) = product_circuit(bits);
        let (c2, spec2) = (c.clone(), spec.clone());
        let (ga, gb, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Sha256);
                let mut inputs = u64_to_bits(factor, bits);
                inputs.extend(u64_to_bits(sa, bits));
                garble_shared(
                    ch,
                    &c,
                    &spec,
                    &inputs,
                    &mut ot,
                    TweakHasher::Sha256,
                    &mut rng,
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Sha256);
                evaluate_shared(
                    ch,
                    &c2,
                    &spec2,
                    &u64_to_bits(sb, bits),
                    &mut ot,
                    TweakHasher::Sha256,
                )
            },
        );
        assert_eq!(ring.reconstruct(ga[0], gb[0]), ring.mul(secret, factor));
        // Individual shares are not the product itself (overwhelmingly).
        assert_ne!(ga[0], ring.mul(secret, factor));
    }

    #[test]
    fn multiple_output_words() {
        // Two shared outputs of different widths in one circuit.
        let spec = SharedOutputSpec {
            widths: vec![16, 8],
        };
        let c = with_shared_outputs(&spec, |b| {
            let x = b.alice_word(16);
            let y = b.bob_word(8);
            let y16 = b.resize_word(&y, 16);
            let sum = b.add_words(&x, &y16);
            let y2 = b.add_words(&y, &y);
            vec![sum, y2]
        });
        let spec2 = spec.clone();
        let c2 = c.clone();
        let (ga, gb, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Sha256);
                garble_shared(
                    ch,
                    &c,
                    &spec,
                    &u64_to_bits(1000, 16),
                    &mut ot,
                    TweakHasher::Sha256,
                    &mut rng,
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(4);
                let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Sha256);
                evaluate_shared(
                    ch,
                    &c2,
                    &spec2,
                    &u64_to_bits(77, 8),
                    &mut ot,
                    TweakHasher::Sha256,
                )
            },
        );
        let r16 = RingCtx::new(16);
        let r8 = RingCtx::new(8);
        assert_eq!(r16.reconstruct(ga[0], gb[0]), 1077);
        assert_eq!(r8.reconstruct(ga[1], gb[1]), 154);
    }
}
