//! The two-party garbled-circuit protocol.
//!
//! One invocation = one garbled circuit: the garbler garbles and ships
//! tables + its own input labels; the evaluator obtains its input labels
//! through IKNP OT, evaluates, and the outputs are decoded toward the
//! party/parties the caller selects. Constant rounds per invocation, as the
//! paper requires of every building block.

use rand::Rng;
use secyan_circuit::Circuit;
use secyan_crypto::{Block, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::{Channel, ReadExt, WriteExt};

use crate::scheme::{eval, garble, EvalTables};

/// Who learns the cleartext circuit outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Only the evaluator decodes the outputs.
    RevealToEvaluator,
    /// Only the garbler learns the outputs (the evaluator sends back the
    /// color bits, which are meaningless without the permute bits).
    RevealToGarbler,
    /// Both parties learn the outputs.
    RevealBoth,
}

/// Garbler side. `my_inputs` are the cleartext values of the circuit's
/// Alice (garbler) input wires. Returns the outputs if `mode` reveals them
/// to the garbler, else `None`.
pub fn garble_circuit<R: Rng + ?Sized>(
    ch: &mut Channel,
    circuit: &Circuit,
    my_inputs: &[bool],
    ot: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    assert_eq!(my_inputs.len(), circuit.alice_inputs, "garbler input arity");
    let g = garble(circuit, hasher, rng);
    // Tables.
    let table_blocks = EvalTables {
        tables: g.tables.clone(),
    }
    .to_blocks();
    ch.send_u128_slice(&table_blocks);
    // Garbler input labels.
    let my_labels: Vec<u128> = my_inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| g.input_label(i, b).0)
        .collect();
    ch.send_u128_slice(&my_labels);
    // Decode bits for the evaluator.
    if matches!(mode, OutputMode::RevealToEvaluator | OutputMode::RevealBoth) {
        ch.send_bool_slice(&g.decode_bits());
    }
    // Evaluator input labels via OT.
    let eval_pairs: Vec<(Block, Block)> = (0..circuit.bob_inputs)
        .map(|j| {
            let i = circuit.alice_inputs + j;
            (g.input_label(i, false), g.input_label(i, true))
        })
        .collect();
    ot.send_blocks(ch, &eval_pairs);
    // Output decoding toward the garbler.
    if matches!(mode, OutputMode::RevealToGarbler | OutputMode::RevealBoth) {
        let colors = ch.recv_bool_vec(circuit.outputs.len());
        let decode = g.decode_bits();
        Some(colors.iter().zip(&decode).map(|(&c, &d)| c ^ d).collect())
    } else {
        None
    }
}

/// Evaluator side. `my_inputs` are the cleartext values of the circuit's
/// Bob (evaluator) input wires. Returns the outputs if `mode` reveals them
/// to the evaluator, else `None`.
pub fn evaluate_circuit(
    ch: &mut Channel,
    circuit: &Circuit,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    assert_eq!(my_inputs.len(), circuit.bob_inputs, "evaluator input arity");
    let tables = EvalTables::from_blocks(&ch.recv_u128_vec(2 * circuit.and_count() as usize));
    let garbler_labels: Vec<Block> = ch
        .recv_u128_vec(circuit.alice_inputs)
        .into_iter()
        .map(Block)
        .collect();
    let decode = if matches!(mode, OutputMode::RevealToEvaluator | OutputMode::RevealBoth) {
        Some(ch.recv_bool_vec(circuit.outputs.len()))
    } else {
        None
    };
    let my_labels = ot.recv_blocks(ch, my_inputs);
    let mut labels = garbler_labels;
    labels.extend(my_labels);
    let out_labels = eval(circuit, &tables, &labels, hasher);
    let colors: Vec<bool> = out_labels.iter().map(|l| l.lsb()).collect();
    if matches!(mode, OutputMode::RevealToGarbler | OutputMode::RevealBoth) {
        ch.send_bool_slice(&colors);
    }
    decode.map(|d| colors.iter().zip(&d).map(|(&c, &dd)| c ^ dd).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_circuit::{bits_to_u64, u64_to_bits, Builder};
    use secyan_transport::run_protocol;

    fn adder_circuit(bits: usize) -> Circuit {
        let mut b = Builder::new();
        let x = b.alice_word(bits);
        let y = b.bob_word(bits);
        let s = b.add_words(&x, &y);
        b.output_word(&s);
        b.finish()
    }

    fn run_gc(
        circuit: &Circuit,
        a_bits: Vec<bool>,
        b_bits: Vec<bool>,
        mode: OutputMode,
    ) -> (Option<Vec<bool>>, Option<Vec<bool>>) {
        let ca = circuit.clone();
        let cb = circuit.clone();
        let (ra, rb, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(100);
                let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Sha256);
                garble_circuit(
                    ch,
                    &ca,
                    &a_bits,
                    &mut ot,
                    TweakHasher::Sha256,
                    &mut rng,
                    mode,
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(101);
                let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Sha256);
                evaluate_circuit(ch, &cb, &b_bits, &mut ot, TweakHasher::Sha256, mode)
            },
        );
        (ra, rb)
    }

    #[test]
    fn reveal_to_evaluator() {
        let c = adder_circuit(32);
        let (ra, rb) = run_gc(
            &c,
            u64_to_bits(1_000_000, 32),
            u64_to_bits(2_345, 32),
            OutputMode::RevealToEvaluator,
        );
        assert!(ra.is_none());
        assert_eq!(bits_to_u64(&rb.unwrap()), 1_002_345);
    }

    #[test]
    fn reveal_to_garbler() {
        let c = adder_circuit(16);
        let (ra, rb) = run_gc(
            &c,
            u64_to_bits(40, 16),
            u64_to_bits(2, 16),
            OutputMode::RevealToGarbler,
        );
        assert_eq!(bits_to_u64(&ra.unwrap()), 42);
        assert!(rb.is_none());
    }

    #[test]
    fn reveal_both() {
        let c = adder_circuit(8);
        let (ra, rb) = run_gc(
            &c,
            u64_to_bits(200, 8),
            u64_to_bits(100, 8),
            OutputMode::RevealBoth,
        );
        // 300 mod 256 = 44.
        assert_eq!(bits_to_u64(&ra.unwrap()), 44);
        assert_eq!(bits_to_u64(&rb.unwrap()), 44);
    }

    #[test]
    fn multiple_circuits_one_session() {
        // The OT state amortizes across invocations, as the Yannakakis
        // driver requires.
        let c1 = adder_circuit(16);
        let c2 = adder_circuit(16);
        let (c1a, c2a) = (c1.clone(), c2.clone());
        let (_, rb, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(5);
                let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Sha256);
                for (c, x) in [(&c1a, 1u64), (&c2a, 2)] {
                    garble_circuit(
                        ch,
                        c,
                        &u64_to_bits(x, 16),
                        &mut ot,
                        TweakHasher::Sha256,
                        &mut rng,
                        OutputMode::RevealToEvaluator,
                    );
                }
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(6);
                let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Sha256);
                let mut outs = Vec::new();
                for (c, y) in [(&c1, 10u64), (&c2, 20)] {
                    let o = evaluate_circuit(
                        ch,
                        c,
                        &u64_to_bits(y, 16),
                        &mut ot,
                        TweakHasher::Sha256,
                        OutputMode::RevealToEvaluator,
                    );
                    outs.push(bits_to_u64(&o.unwrap()));
                }
                outs
            },
        );
        assert_eq!(rb, vec![11, 22]);
    }

    #[test]
    fn no_evaluator_inputs() {
        // A circuit whose inputs all belong to the garbler still runs.
        let mut b = Builder::new();
        let x = b.alice_word(8);
        let one = b.const_word(1, 8);
        let s = b.add_words(&x, &one);
        b.output_word(&s);
        let c = b.finish();
        let (_, rb) = run_gc(
            &c,
            u64_to_bits(41, 8),
            vec![],
            OutputMode::RevealToEvaluator,
        );
        assert_eq!(bits_to_u64(&rb.unwrap()), 42);
    }
}
