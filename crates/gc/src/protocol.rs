//! The two-party garbled-circuit protocol.
//!
//! One invocation = one garbled circuit: the garbler garbles and ships
//! tables + its own input labels; the evaluator obtains its input labels
//! through IKNP OT, evaluates, and the outputs are decoded toward the
//! party/parties the caller selects. Constant rounds per invocation, as the
//! paper requires of every building block.

use rand::Rng;
use secyan_circuit::{Circuit, Gate};
use secyan_crypto::{Block, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::{Channel, ReadExt, WriteExt};
use std::collections::VecDeque;

use crate::scheme::{eval, garble, EvalTables, Garbling};

/// Who learns the cleartext circuit outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Only the evaluator decodes the outputs.
    RevealToEvaluator,
    /// Only the garbler learns the outputs (the evaluator sends back the
    /// color bits, which are meaningless without the permute bits).
    RevealToGarbler,
    /// Both parties learn the outputs.
    RevealBoth,
}

/// A cheap structural fingerprint of a public circuit, used to pair
/// pre-garbled material with the circuit an online call presents. Both
/// parties derive it locally from the same public circuit, so it is a
/// bookkeeping key, not a security boundary: a mismatch merely routes the
/// call to the inline (offline-then-online) fallback.
pub fn circuit_digest(circuit: &Circuit) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    let mut h = mix(0xC19C_0317_D16E_5700u64, circuit.num_wires as u64);
    h = mix(h, circuit.alice_inputs as u64);
    h = mix(h, circuit.bob_inputs as u64);
    for g in &circuit.gates {
        h = match *g {
            Gate::Xor { a, b, out } => mix(mix(mix(mix(h, 1), a as u64), b as u64), out as u64),
            Gate::And { a, b, out } => mix(mix(mix(mix(h, 2), a as u64), b as u64), out as u64),
            Gate::Inv { a, out } => mix(mix(mix(h, 3), a as u64), out as u64),
        };
    }
    for &o in &circuit.outputs {
        h = mix(h, o as u64);
    }
    h
}

/// Garbler-side offline material: a pre-garbled circuit whose tables have
/// already been shipped to the evaluator. The key material inside the
/// [`Garbling`] is `Secret`-wrapped and zeroizes when the material drops,
/// used or not.
pub struct GarbleMaterial {
    garbling: Garbling,
    digest: u64,
}

impl GarbleMaterial {
    /// Fingerprint of the circuit this material was garbled for.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// Evaluator-side offline material: the tables received during the
/// offline phase. Tables are ciphertexts (public given the wire), but the
/// pairing digest keeps consumption aligned with the garbler.
pub struct EvalMaterial {
    tables: EvalTables,
    digest: u64,
}

impl EvalMaterial {
    /// Fingerprint of the circuit these tables belong to.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// Pop the front of a garbler-side material queue iff it was pre-garbled
/// for exactly `circuit` (by digest). Anything else — empty queue, or a
/// schedule the offline planner did not foresee — returns `None`, routing
/// the caller to the inline fallback. Both parties derive the digest from
/// the same public circuit, so their pop-vs-fallback decisions mirror.
pub fn take_garble(
    queue: &mut VecDeque<GarbleMaterial>,
    circuit: &Circuit,
) -> Option<GarbleMaterial> {
    if queue
        .front()
        .is_some_and(|m| m.digest() == circuit_digest(circuit))
    {
        queue.pop_front()
    } else {
        None
    }
}

/// Evaluator-side counterpart of [`take_garble`].
pub fn take_eval(queue: &mut VecDeque<EvalMaterial>, circuit: &Circuit) -> Option<EvalMaterial> {
    if queue
        .front()
        .is_some_and(|m| m.digest() == circuit_digest(circuit))
    {
        queue.pop_front()
    } else {
        None
    }
}

/// Offline half of [`garble_circuit`]: garble and ship the tables — the
/// only message of the protocol that is independent of both parties'
/// private inputs.
pub fn garble_offline<R: Rng + ?Sized>(
    ch: &mut Channel,
    circuit: &Circuit,
    hasher: TweakHasher,
    rng: &mut R,
) -> GarbleMaterial {
    let g = garble(circuit, hasher, rng);
    let table_blocks = EvalTables {
        tables: g.tables.clone(),
    }
    .to_blocks();
    ch.send_u128_slice(&table_blocks);
    GarbleMaterial {
        garbling: g,
        digest: circuit_digest(circuit),
    }
}

/// Online half of [`garble_circuit`]: input labels, decode bits, OT and
/// garbler-side decoding, against material produced by
/// [`garble_offline`] for the same circuit.
pub fn garble_online(
    ch: &mut Channel,
    circuit: &Circuit,
    material: GarbleMaterial,
    my_inputs: &[bool],
    ot: &mut OtSender,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    assert_eq!(my_inputs.len(), circuit.alice_inputs, "garbler input arity");
    assert_eq!(
        material.digest,
        circuit_digest(circuit),
        "pre-garbled material is for a different circuit"
    );
    let g = material.garbling;
    // Garbler input labels.
    let my_labels: Vec<u128> = my_inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| g.input_label(i, b).0)
        .collect();
    ch.send_u128_slice(&my_labels);
    // Decode bits for the evaluator.
    if matches!(mode, OutputMode::RevealToEvaluator | OutputMode::RevealBoth) {
        ch.send_bool_slice(&g.decode_bits());
    }
    // Evaluator input labels via OT.
    let eval_pairs: Vec<(Block, Block)> = (0..circuit.bob_inputs)
        .map(|j| {
            let i = circuit.alice_inputs + j;
            (g.input_label(i, false), g.input_label(i, true))
        })
        .collect();
    ot.send_blocks(ch, &eval_pairs);
    // Output decoding toward the garbler.
    if matches!(mode, OutputMode::RevealToGarbler | OutputMode::RevealBoth) {
        let colors = ch.recv_bool_vec(circuit.outputs.len());
        let decode = g.decode_bits();
        Some(colors.iter().zip(&decode).map(|(&c, &d)| c ^ d).collect())
    } else {
        None
    }
}

/// Offline half of [`evaluate_circuit`]: receive the tables.
pub fn evaluate_offline(ch: &mut Channel, circuit: &Circuit) -> EvalMaterial {
    let tables = EvalTables::from_blocks(&ch.recv_u128_vec(2 * circuit.and_count() as usize));
    EvalMaterial {
        tables,
        digest: circuit_digest(circuit),
    }
}

/// Evaluator-side in-flight state between [`evaluate_begin`] and
/// [`evaluate_finish`]: the OT pads drawn for the evaluator's choice bits
/// and the tables (pre-received, or `None` when they travel inline and
/// will be received at finish time).
pub struct EvalPending {
    material: Option<EvalMaterial>,
    pads: Vec<Block>,
}

/// First half of the evaluator protocol: stage the OT correction bits for
/// `my_inputs` and return without blocking. Everything the evaluator must
/// *send* for this circuit is staged here, so a caller can stage further
/// dependency-free messages (e.g. the OSN corrections of a follow-up OEP
/// whose routing is already known) into the same outbound super-frame
/// before [`evaluate_finish`] blocks on the garbler. The garbler reads the
/// corrections inside `ot.send_blocks` only after staging tables, labels
/// and decode bits, so per-direction FIFO order is unchanged.
pub fn evaluate_begin(
    ch: &mut Channel,
    circuit: &Circuit,
    material: Option<EvalMaterial>,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
) -> EvalPending {
    assert_eq!(my_inputs.len(), circuit.bob_inputs, "evaluator input arity");
    if let Some(m) = &material {
        assert_eq!(
            m.digest,
            circuit_digest(circuit),
            "pre-received tables are for a different circuit"
        );
    }
    let pads = ot.begin_recv(ch, my_inputs);
    EvalPending { material, pads }
}

/// Second half of the evaluator protocol: receive tables (when they travel
/// inline), garbler labels, decode bits and the OT correction messages,
/// then evaluate. Receive-only until the optional color-bit reply.
pub fn evaluate_finish(
    ch: &mut Channel,
    circuit: &Circuit,
    pending: EvalPending,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    let EvalPending { material, pads } = pending;
    let tables = match material {
        Some(m) => m.tables,
        None => evaluate_offline(ch, circuit).tables,
    };
    let garbler_labels: Vec<Block> = ch
        .recv_u128_vec(circuit.alice_inputs)
        .into_iter()
        .map(Block)
        .collect();
    let decode = if matches!(mode, OutputMode::RevealToEvaluator | OutputMode::RevealBoth) {
        Some(ch.recv_bool_vec(circuit.outputs.len()))
    } else {
        None
    };
    let my_labels = ot.finish_recv_blocks(ch, &pads, my_inputs);
    let mut labels = garbler_labels;
    labels.extend(my_labels);
    let out_labels = eval(circuit, &tables, &labels, hasher);
    let colors: Vec<bool> = out_labels.iter().map(|l| l.lsb()).collect();
    if matches!(mode, OutputMode::RevealToGarbler | OutputMode::RevealBoth) {
        ch.send_bool_slice(&colors);
    }
    decode.map(|d| colors.iter().zip(&d).map(|(&c, &dd)| c ^ dd).collect())
}

/// Online half of [`evaluate_circuit`], against material produced by
/// [`evaluate_offline`] for the same circuit. Implemented as
/// [`evaluate_begin`] + [`evaluate_finish`]: the OT correction bits are
/// staged *before* blocking on the garbler's labels, so one GC evaluation
/// costs a single ping-pong on the wire instead of three direction
/// switches.
pub fn evaluate_online(
    ch: &mut Channel,
    circuit: &Circuit,
    material: EvalMaterial,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    let pending = evaluate_begin(ch, circuit, Some(material), my_inputs, ot);
    evaluate_finish(ch, circuit, pending, my_inputs, ot, hasher, mode)
}

/// Garbler side. `my_inputs` are the cleartext values of the circuit's
/// Alice (garbler) input wires. Returns the outputs if `mode` reveals them
/// to the garbler, else `None`.
///
/// Implemented as [`garble_offline`] immediately followed by
/// [`garble_online`]; the wire format is identical to the historical
/// single-phase protocol, so transcripts and tests are unchanged.
pub fn garble_circuit<R: Rng + ?Sized>(
    ch: &mut Channel,
    circuit: &Circuit,
    my_inputs: &[bool],
    ot: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    assert_eq!(my_inputs.len(), circuit.alice_inputs, "garbler input arity");
    let material = garble_offline(ch, circuit, hasher, rng);
    garble_online(ch, circuit, material, my_inputs, ot, mode)
}

/// Evaluator side. `my_inputs` are the cleartext values of the circuit's
/// Bob (evaluator) input wires. Returns the outputs if `mode` reveals them
/// to the evaluator, else `None`.
///
/// Implemented as [`evaluate_begin`] + [`evaluate_finish`] with inline
/// tables: the OT corrections are staged before the tables are received,
/// matching the banked path's round structure. Per-direction message
/// order (and hence the transcript content) is unchanged from the
/// historical single-phase protocol; only the direction interleaving
/// tightens.
pub fn evaluate_circuit(
    ch: &mut Channel,
    circuit: &Circuit,
    my_inputs: &[bool],
    ot: &mut OtReceiver,
    hasher: TweakHasher,
    mode: OutputMode,
) -> Option<Vec<bool>> {
    let pending = evaluate_begin(ch, circuit, None, my_inputs, ot);
    evaluate_finish(ch, circuit, pending, my_inputs, ot, hasher, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_circuit::{bits_to_u64, u64_to_bits, Builder};
    use secyan_transport::run_protocol;

    fn adder_circuit(bits: usize) -> Circuit {
        let mut b = Builder::new();
        let x = b.alice_word(bits);
        let y = b.bob_word(bits);
        let s = b.add_words(&x, &y);
        b.output_word(&s);
        b.finish()
    }

    fn run_gc(
        circuit: &Circuit,
        a_bits: Vec<bool>,
        b_bits: Vec<bool>,
        mode: OutputMode,
    ) -> (Option<Vec<bool>>, Option<Vec<bool>>) {
        let ca = circuit.clone();
        let cb = circuit.clone();
        let (ra, rb, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(100);
                let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Sha256);
                garble_circuit(
                    ch,
                    &ca,
                    &a_bits,
                    &mut ot,
                    TweakHasher::Sha256,
                    &mut rng,
                    mode,
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(101);
                let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Sha256);
                evaluate_circuit(ch, &cb, &b_bits, &mut ot, TweakHasher::Sha256, mode)
            },
        );
        (ra, rb)
    }

    #[test]
    fn reveal_to_evaluator() {
        let c = adder_circuit(32);
        let (ra, rb) = run_gc(
            &c,
            u64_to_bits(1_000_000, 32),
            u64_to_bits(2_345, 32),
            OutputMode::RevealToEvaluator,
        );
        assert!(ra.is_none());
        assert_eq!(bits_to_u64(&rb.unwrap()), 1_002_345);
    }

    #[test]
    fn reveal_to_garbler() {
        let c = adder_circuit(16);
        let (ra, rb) = run_gc(
            &c,
            u64_to_bits(40, 16),
            u64_to_bits(2, 16),
            OutputMode::RevealToGarbler,
        );
        assert_eq!(bits_to_u64(&ra.unwrap()), 42);
        assert!(rb.is_none());
    }

    #[test]
    fn reveal_both() {
        let c = adder_circuit(8);
        let (ra, rb) = run_gc(
            &c,
            u64_to_bits(200, 8),
            u64_to_bits(100, 8),
            OutputMode::RevealBoth,
        );
        // 300 mod 256 = 44.
        assert_eq!(bits_to_u64(&ra.unwrap()), 44);
        assert_eq!(bits_to_u64(&rb.unwrap()), 44);
    }

    #[test]
    fn multiple_circuits_one_session() {
        // The OT state amortizes across invocations, as the Yannakakis
        // driver requires.
        let c1 = adder_circuit(16);
        let c2 = adder_circuit(16);
        let (c1a, c2a) = (c1.clone(), c2.clone());
        let (_, rb, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(5);
                let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Sha256);
                for (c, x) in [(&c1a, 1u64), (&c2a, 2)] {
                    garble_circuit(
                        ch,
                        c,
                        &u64_to_bits(x, 16),
                        &mut ot,
                        TweakHasher::Sha256,
                        &mut rng,
                        OutputMode::RevealToEvaluator,
                    );
                }
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(6);
                let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Sha256);
                let mut outs = Vec::new();
                for (c, y) in [(&c1, 10u64), (&c2, 20)] {
                    let o = evaluate_circuit(
                        ch,
                        c,
                        &u64_to_bits(y, 16),
                        &mut ot,
                        TweakHasher::Sha256,
                        OutputMode::RevealToEvaluator,
                    );
                    outs.push(bits_to_u64(&o.unwrap()));
                }
                outs
            },
        );
        assert_eq!(rb, vec![11, 22]);
    }

    #[test]
    fn no_evaluator_inputs() {
        // A circuit whose inputs all belong to the garbler still runs.
        let mut b = Builder::new();
        let x = b.alice_word(8);
        let one = b.const_word(1, 8);
        let s = b.add_words(&x, &one);
        b.output_word(&s);
        let c = b.finish();
        let (_, rb) = run_gc(
            &c,
            u64_to_bits(41, 8),
            vec![],
            OutputMode::RevealToEvaluator,
        );
        assert_eq!(bits_to_u64(&rb.unwrap()), 42);
    }
}
