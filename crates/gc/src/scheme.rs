//! The garbling scheme: free-XOR, half-gates, point-and-permute.
//!
//! Channel-free: [`garble`] turns a circuit into tables + label metadata on
//! the garbler side, [`eval`] consumes tables + input labels on the
//! evaluator side. The two-party protocol in [`crate::protocol`] moves the
//! bytes.

use rand::Rng;
use secyan_circuit::{Circuit, Gate, LevelSchedule};
use secyan_crypto::{Block, CtChoice, CtEq, Secret, TweakHasher, Zeroize};
use secyan_par as par;

/// Minimum AND-gate count before garbling/evaluation builds a level
/// schedule. The levelized path batches every level's gate hashes into
/// one wide AES dispatch (`TweakHasher::hash_each`), which already wins
/// at a single thread; below this the per-gate serial loop's lack of
/// schedule-building overhead wins.
const GC_PAR_MIN_ANDS: usize = 512;

/// Minimum AND gates handed to one worker within a level. One garbled AND
/// is ~70ns of work while a pool dispatch costs tens of microseconds in
/// wake/park round trips, so a level must carry well over a thousand ANDs
/// per extra worker before fan-out beats the serial loop. Levels below
/// this threshold run inline on the calling thread (`Pool::ranges`
/// collapses to one part), which keeps the 1-thread path from ever losing.
const GC_ANDS_PER_PART: usize = 2048;

/// Spawn pool workers only if some level is at least this wide. Spawning
/// is the expensive part (thread create + park/wake per level): a circuit
/// whose widest level still collapses to one part would pay it for
/// nothing — exactly the "garbling 0.44x at 4 threads" regression the
/// bench history recorded when the old code spawned on total AND count.
fn schedule_worth_pool(sched: &LevelSchedule) -> bool {
    sched.levels.iter().map(|l| l.ands.len()).max().unwrap_or(0) >= 2 * GC_ANDS_PER_PART
}

/// Garbler-side result of garbling a circuit.
///
/// Δ and the zero-labels are the scheme's key material: anyone holding a
/// wire label *and* Δ can flip the encoded bit, and the input zero-labels
/// decode every garbler input. They live in [`Secret`] wrappers — no
/// `Debug`, zeroized on drop — and leave only through the explicit label
/// accessors below. The tables are ciphertexts and stay public.
pub struct Garbling {
    /// The global free-XOR offset Δ (lsb forced to 1 for point-and-permute).
    pub delta: Secret<Block>,
    /// Zero-label of every input wire, in wire order (Alice inputs first).
    pub input_zero_labels: Secret<Vec<Block>>,
    /// Zero-label of every output wire, in output order.
    pub output_zero_labels: Secret<Vec<Block>>,
    /// Two ciphertexts per AND gate, in gate order.
    pub tables: Vec<(Block, Block)>,
}

impl Garbling {
    /// The label encoding bit `b` on input wire `i`, selected branchlessly
    /// (the bit is a party's private input).
    pub fn input_label(&self, i: usize, b: bool) -> Block {
        let delta = self.delta.expose_block().ct_masked(CtChoice::from_bool(b));
        self.input_zero_labels.expose()[i] ^ delta
    }

    /// Decode bits: lsb of each output zero-label. The evaluator XORs these
    /// with the color bits of its output labels to learn the outputs.
    pub fn decode_bits(&self) -> Vec<bool> {
        self.output_zero_labels
            .expose()
            .iter()
            .map(|l| l.lsb())
            .collect()
    }

    /// Decode an output label the evaluator computed back to a cleartext
    /// bit (garbler-side check; panics on a label that matches neither).
    /// Both candidates are compared with [`CtEq`] — no short-circuit on key
    /// material.
    pub fn decode_output(&self, idx: usize, label: Block) -> bool {
        let zero = self.output_zero_labels.expose()[idx];
        let one = zero ^ self.delta.expose_block();
        let is_zero = label.ct_eq(&zero);
        let is_one = label.ct_eq(&one);
        assert!(
            is_zero.or(is_one).to_bool(),
            "output label matches neither candidate"
        );
        is_one.to_bool()
    }
}

/// Evaluator-side view of the tables (what travels over the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalTables {
    /// Two ciphertexts per AND gate, in gate order.
    pub tables: Vec<(Block, Block)>,
}

impl EvalTables {
    /// Serialize for the channel: 32 bytes per AND gate.
    pub fn to_blocks(&self) -> Vec<u128> {
        self.tables.iter().flat_map(|&(a, b)| [a.0, b.0]).collect()
    }

    /// Deserialize.
    pub fn from_blocks(raw: &[u128]) -> EvalTables {
        assert_eq!(raw.len() % 2, 0);
        EvalTables {
            tables: raw
                .chunks_exact(2)
                .map(|c| (Block(c[0]), Block(c[1])))
                .collect(),
        }
    }
}

/// Garble `circuit`, drawing labels from `rng`.
pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, hasher: TweakHasher, rng: &mut R) -> Garbling {
    let delta = Block::random(rng).with_lsb(true);
    let n_in = circuit.alice_inputs + circuit.bob_inputs;
    let mut zero = vec![Block::ZERO; circuit.num_wires];
    for z in zero.iter_mut().take(n_in) {
        *z = Block::random(rng);
    }
    let n_ands = circuit.and_count() as usize;
    let mut tables = vec![(Block::ZERO, Block::ZERO); n_ands];
    // The levelized path pays off even at one thread (full AES batches per
    // level); whether it also *spawns workers* is decided inside from the
    // schedule's widest level.
    if n_ands >= GC_PAR_MIN_ANDS {
        garble_levels(circuit, hasher, delta, &mut zero, &mut tables);
    } else {
        let mut and_idx = 0u64;
        for g in &circuit.gates {
            match *g {
                Gate::Xor { a, b, out } => zero[out] = zero[a] ^ zero[b],
                Gate::Inv { a, out } => zero[out] = zero[a] ^ delta,
                Gate::And { a, b, out } => {
                    let (wg, we, tg, te) = garble_and(zero[a], zero[b], delta, hasher, and_idx);
                    tables[and_idx as usize] = (tg, te);
                    zero[out] = wg ^ we;
                    and_idx += 1;
                }
            }
        }
    }
    let input_zero_labels = Secret::new(zero[..n_in].to_vec());
    let output_zero_labels = Secret::new(circuit.outputs.iter().map(|&o| zero[o]).collect());
    // The full wire-label buffer holds every intermediate label — key
    // material. Scrub it before the allocation is released.
    zero.zeroize();
    Garbling {
        delta: Secret::new(delta),
        input_zero_labels,
        output_zero_labels,
        tables,
    }
}

/// Half-gates garbling of one AND gate. Returns the two halves of the
/// output zero-label and the two table ciphertexts.
///
/// The permute bits p_a, p_b are secret (they encode the label↔bit map), so
/// the conditional XORs of the half-gates construction are done with
/// [`Block::ct_masked`] rather than `if` — the gate garbles in the same
/// instruction sequence whatever the permute bits are.
fn garble_and(
    wa0: Block,
    wb0: Block,
    delta: Block,
    hasher: TweakHasher,
    and_idx: u64,
) -> (Block, Block, Block, Block) {
    let j_g = 2 * and_idx;
    let j_e = 2 * and_idx + 1;
    // All four hashes of the gate in one kernel dispatch.
    let h = hasher.hash4([wa0, wa0 ^ delta, wb0, wb0 ^ delta], [j_g, j_g, j_e, j_e]);
    garble_and_from_hashes(wa0, wb0, delta, h)
}

/// The algebra of one garbled AND given its four precomputed hashes
/// (`[H(wa0,j_g), H(wa1,j_g), H(wb0,j_e), H(wb1,j_e)]`). Split out so the
/// levelized path can hash a whole level in one batch first.
fn garble_and_from_hashes(
    wa0: Block,
    wb0: Block,
    delta: Block,
    h: [Block; 4],
) -> (Block, Block, Block, Block) {
    let pa = CtChoice::from_bool(wa0.lsb());
    let pb = CtChoice::from_bool(wb0.lsb());
    let [h_a0, h_a1, h_b0, h_b1] = h;
    // Generator half-gate.
    let t_g = h_a0 ^ h_a1 ^ delta.ct_masked(pb);
    let w_g = h_a0 ^ t_g.ct_masked(pa);
    // Evaluator half-gate.
    let t_e = h_b0 ^ h_b1 ^ wa0;
    let w_e = h_b0 ^ (t_e ^ wa0).ct_masked(pb);
    (w_g, w_e, t_g, t_e)
}

/// Level-parallel garbling: free gates run serially in circuit order;
/// each level's AND gates — mutually independent by construction of the
/// [`LevelSchedule`] — fan out across the pool. `garble_and` is a pure
/// function of `(zero[a], zero[b], delta, and_idx)`, and every AND reads
/// only wires settled in earlier steps, so the produced tables and wire
/// labels are byte-identical to the serial loop at any thread count.
fn garble_levels(
    circuit: &Circuit,
    hasher: TweakHasher,
    delta: Block,
    zero: &mut [Block],
    tables: &mut [(Block, Block)],
) {
    let sched = LevelSchedule::build(circuit);
    par::with_pool_if(par::threads() > 1 && schedule_worth_pool(&sched), |pool| {
        for level in &sched.levels {
            for &gi in &level.free {
                match circuit.gates[gi] {
                    Gate::Xor { a, b, out } => zero[out] = zero[a] ^ zero[b],
                    Gate::Inv { a, out } => zero[out] = zero[a] ^ delta,
                    Gate::And { .. } => unreachable!("AND scheduled as free gate"),
                }
            }
            if level.ands.is_empty() {
                continue;
            }
            let zero_ro: &[Block] = zero;
            // [w_out, t_g, t_e] per AND, in level order. Each worker
            // assembles its chunk's 4-per-gate hash inputs into one flat
            // batch so the AES kernel sees full pipelines, then applies
            // the half-gates algebra per gate.
            let mut results: Vec<[Block; 3]> = vec![[Block::ZERO; 3]; level.ands.len()];
            pool.chunks_mut(&mut results, 1, GC_ANDS_PER_PART, |off, chunk| {
                let ands = &level.ands[off..off + chunk.len()];
                let mut xs: Vec<Block> = Vec::with_capacity(4 * ands.len());
                let mut tweaks: Vec<u64> = Vec::with_capacity(4 * ands.len());
                for and in ands {
                    let (wa0, wb0) = (zero_ro[and.a], zero_ro[and.b]);
                    let j_g = 2 * and.and_idx as u64;
                    xs.extend([wa0, wa0 ^ delta, wb0, wb0 ^ delta]);
                    tweaks.extend([j_g, j_g, j_g + 1, j_g + 1]);
                }
                let mut hs = hasher.hash_each(&xs, &tweaks);
                for (i, and) in ands.iter().enumerate() {
                    let h: [Block; 4] = hs[4 * i..4 * i + 4].try_into().expect("4 hashes");
                    let (wg, we, tg, te) =
                        garble_and_from_hashes(zero_ro[and.a], zero_ro[and.b], delta, h);
                    chunk[i] = [wg ^ we, tg, te];
                }
                // The staging buffers hold labels and their hashes — key
                // material.
                xs.zeroize();
                hs.zeroize();
            });
            // Indexed by position rather than zipped with `results`: the
            // gate descriptors are public topology and must not alias the
            // secret label buffer in the dataflow (xtask taint).
            for (i, and) in level.ands.iter().enumerate() {
                zero[and.out] = results[i][0];
                tables[and.and_idx] = (results[i][1], results[i][2]);
            }
            // The staging buffer holds output zero-labels — key material.
            results.zeroize();
        }
    });
}

/// Evaluate garbled `circuit` given one label per input wire. Returns one
/// label per output wire.
pub fn eval(
    circuit: &Circuit,
    tables: &EvalTables,
    input_labels: &[Block],
    hasher: TweakHasher,
) -> Vec<Block> {
    let n_in = circuit.alice_inputs + circuit.bob_inputs;
    assert_eq!(input_labels.len(), n_in, "one label per input wire");
    assert_eq!(tables.tables.len() as u64, circuit.and_count());
    let mut wires = vec![Block::ZERO; circuit.num_wires];
    wires[..n_in].copy_from_slice(input_labels);
    // Mirrors `garble`: levelize for batching whenever the circuit is big
    // enough; worker spawning is a separate, width-based decision inside.
    if tables.tables.len() >= GC_PAR_MIN_ANDS {
        eval_levels(circuit, tables, hasher, &mut wires);
    } else {
        let mut and_idx = 0u64;
        for g in &circuit.gates {
            match *g {
                Gate::Xor { a, b, out } => wires[out] = wires[a] ^ wires[b],
                // INV is free: the garbler flipped the semantics of the labels.
                Gate::Inv { a, out } => wires[out] = wires[a],
                Gate::And { a, b, out } => {
                    wires[out] = eval_and(&wires, tables, a, b, and_idx, hasher);
                    and_idx += 1;
                }
            }
        }
    }
    let outs = circuit.outputs.iter().map(|&o| wires[o]).collect();
    // Intermediate labels are correlated with cleartext wire values; scrub
    // the evaluation buffer before it is released.
    wires.zeroize();
    outs
}

/// Evaluate one AND gate's output label from the current wire state.
///
/// Both hashes of the gate run in one kernel dispatch. The color bits
/// gate the table ciphertexts through `ct_masked` — the labels are
/// correlated with the cleartext wire values, so no control flow may
/// depend on them.
fn eval_and(
    wires: &[Block],
    tables: &EvalTables,
    a: usize,
    b: usize,
    and_idx: u64,
    hasher: TweakHasher,
) -> Block {
    let (t_g, t_e) = tables.tables[and_idx as usize];
    let (wa, wb) = (wires[a], wires[b]);
    let j_g = 2 * and_idx;
    let j_e = 2 * and_idx + 1;
    let (h_g, h_e) = hasher.hash_pair(wa, j_g, wb, j_e);
    eval_and_from_hashes(wa, wb, t_g, t_e, h_g, h_e)
}

/// The algebra of one evaluated AND given its two precomputed hashes.
/// Split out so the levelized path can hash a whole level in one batch.
fn eval_and_from_hashes(
    wa: Block,
    wb: Block,
    t_g: Block,
    t_e: Block,
    h_g: Block,
    h_e: Block,
) -> Block {
    let w_g = h_g ^ t_g.ct_masked(CtChoice::from_bool(wa.lsb()));
    let w_e = h_e ^ (t_e ^ wa).ct_masked(CtChoice::from_bool(wb.lsb()));
    w_g ^ w_e
}

/// Level-parallel evaluation, mirroring [`garble_levels`]: free gates run
/// serially, each level's AND gates evaluate concurrently ([`eval_and`]
/// is pure given the settled wire labels), and the output labels write
/// back in level order. Both parties derive the same public schedule, so
/// the wire values match the serial loop bit for bit.
fn eval_levels(circuit: &Circuit, tables: &EvalTables, hasher: TweakHasher, wires: &mut [Block]) {
    let sched = LevelSchedule::build(circuit);
    par::with_pool_if(par::threads() > 1 && schedule_worth_pool(&sched), |pool| {
        for level in &sched.levels {
            for &gi in &level.free {
                match circuit.gates[gi] {
                    Gate::Xor { a, b, out } => wires[out] = wires[a] ^ wires[b],
                    Gate::Inv { a, out } => wires[out] = wires[a],
                    Gate::And { .. } => unreachable!("AND scheduled as free gate"),
                }
            }
            if level.ands.is_empty() {
                continue;
            }
            let wires_ro: &[Block] = wires;
            // Each worker hashes its chunk's 2-per-gate inputs as one flat
            // batch (full AES pipelines), then applies the table algebra.
            let mut results: Vec<Block> = vec![Block::ZERO; level.ands.len()];
            pool.chunks_mut(&mut results, 1, GC_ANDS_PER_PART, |off, chunk| {
                let ands = &level.ands[off..off + chunk.len()];
                let mut xs: Vec<Block> = Vec::with_capacity(2 * ands.len());
                let mut tweaks: Vec<u64> = Vec::with_capacity(2 * ands.len());
                for and in ands {
                    let j_g = 2 * and.and_idx as u64;
                    xs.extend([wires_ro[and.a], wires_ro[and.b]]);
                    tweaks.extend([j_g, j_g + 1]);
                }
                let mut hs = hasher.hash_each(&xs, &tweaks);
                for (i, and) in ands.iter().enumerate() {
                    let (t_g, t_e) = tables.tables[and.and_idx];
                    chunk[i] = eval_and_from_hashes(
                        wires_ro[and.a],
                        wires_ro[and.b],
                        t_g,
                        t_e,
                        hs[2 * i],
                        hs[2 * i + 1],
                    );
                }
                // Labels and their hashes are wire-value-correlated; scrub.
                xs.zeroize();
                hs.zeroize();
            });
            for (and, &r) in level.ands.iter().zip(&results) {
                wires[and.out] = r;
            }
            // Staged output labels are correlated with wire values; scrub.
            results.zeroize();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_circuit::{bits_to_u64, evaluate as plain_eval, u64_to_bits, Builder};

    /// Garble + evaluate `circuit` on cleartext inputs; compare to plaintext.
    fn check(circuit: &Circuit, alice: &[bool], bob: &[bool], hasher: TweakHasher, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = garble(circuit, hasher, &mut rng);
        let labels: Vec<Block> = alice
            .iter()
            .chain(bob)
            .enumerate()
            .map(|(i, &b)| g.input_label(i, b))
            .collect();
        let tables = EvalTables {
            tables: g.tables.clone(),
        };
        let out_labels = eval(circuit, &tables, &labels, hasher);
        let expect = plain_eval(circuit, alice, bob);
        // Decode both ways: garbler-side exact check and evaluator-side
        // color-bit decode.
        let decode = g.decode_bits();
        for (i, &lbl) in out_labels.iter().enumerate() {
            assert_eq!(g.decode_output(i, lbl), expect[i], "garbler decode {i}");
            assert_eq!(lbl.lsb() ^ decode[i], expect[i], "color decode {i}");
        }
    }

    #[test]
    fn single_gates_exhaustive() {
        for hasher in [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast] {
            for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
                for op in 0..4 {
                    let mut b = Builder::new();
                    let a = b.alice_input();
                    let c = b.bob_input();
                    let o = match op {
                        0 => b.and(a, c),
                        1 => b.xor(a, c),
                        2 => b.or(a, c),
                        _ => {
                            let n = b.not(a);
                            b.and(n, c)
                        }
                    };
                    b.output(o);
                    let circ = b.finish();
                    check(&circ, &[x], &[y], hasher, 1 + op as u64);
                }
            }
        }
    }

    #[test]
    fn adder_circuit_matches_plaintext() {
        let mut b = Builder::new();
        let x = b.alice_word(32);
        let y = b.bob_word(32);
        let s = b.add_words(&x, &y);
        b.output_word(&s);
        let circ = b.finish();
        for (x, y) in [(3u64, 5u64), (0xffff_ffff, 1), (123456, 654321)] {
            check(
                &circ,
                &u64_to_bits(x, 32),
                &u64_to_bits(y, 32),
                TweakHasher::Sha256,
                7,
            );
        }
    }

    #[test]
    fn multiplier_circuit_matches_plaintext() {
        let mut b = Builder::new();
        let x = b.alice_word(16);
        let y = b.bob_word(16);
        let s = b.mul_words(&x, &y);
        b.output_word(&s);
        let circ = b.finish();
        for hasher in [TweakHasher::Sha256, TweakHasher::Aes] {
            check(
                &circ,
                &u64_to_bits(1234, 16),
                &u64_to_bits(4321, 16),
                hasher,
                8,
            );
        }
    }

    #[test]
    fn eval_output_value_via_colors() {
        // End-to-end decode of a word output using only evaluator knowledge.
        let mut b = Builder::new();
        let x = b.alice_word(16);
        let y = b.bob_word(16);
        let s = b.sub_words(&x, &y);
        b.output_word(&s);
        let circ = b.finish();
        let mut rng = StdRng::seed_from_u64(9);
        let g = garble(&circ, TweakHasher::Sha256, &mut rng);
        let labels: Vec<Block> = u64_to_bits(500, 16)
            .iter()
            .chain(&u64_to_bits(123, 16))
            .enumerate()
            .map(|(i, &bit)| g.input_label(i, bit))
            .collect();
        let outs = eval(
            &circ,
            &EvalTables {
                tables: g.tables.clone(),
            },
            &labels,
            TweakHasher::Sha256,
        );
        let decode = g.decode_bits();
        let bits: Vec<bool> = outs
            .iter()
            .zip(&decode)
            .map(|(l, &d)| l.lsb() ^ d)
            .collect();
        assert_eq!(bits_to_u64(&bits), 500 - 123);
    }

    #[test]
    fn garbling_is_thread_count_invariant() {
        // Wide enough to cross GC_PAR_MIN_ANDS and take the levelized
        // path; same RNG seed, so tables/labels must match bit for bit.
        let mut b = Builder::new();
        let x = b.alice_word(32);
        let y = b.bob_word(32);
        let p = b.mul_words(&x, &y);
        b.output_word(&p);
        let circ = b.finish();
        assert!(
            circ.and_count() as usize >= super::GC_PAR_MIN_ANDS,
            "test circuit too small to exercise the parallel path"
        );
        let run_at = |t: usize| {
            par::set_threads(t);
            let mut rng = StdRng::seed_from_u64(77);
            let g = garble(&circ, TweakHasher::Fast, &mut rng);
            let labels: Vec<Block> = u64_to_bits(0xdead_beef, 32)
                .iter()
                .chain(&u64_to_bits(0x1234_5678, 32))
                .enumerate()
                .map(|(i, &bit)| g.input_label(i, bit))
                .collect();
            let outs = eval(
                &circ,
                &EvalTables {
                    tables: g.tables.clone(),
                },
                &labels,
                TweakHasher::Fast,
            );
            par::set_threads(0);
            let decode = g.decode_bits();
            (g.tables, decode, outs)
        };
        let serial = run_at(1);
        for t in [2, 4] {
            assert_eq!(run_at(t), serial, "thread count {t} diverged");
        }
    }

    #[test]
    fn tables_serialize_roundtrip() {
        let t = EvalTables {
            tables: vec![(Block(1), Block(2)), (Block(3), Block(4))],
        };
        assert_eq!(EvalTables::from_blocks(&t.to_blocks()), t);
    }

    proptest::proptest! {
        #[test]
        fn prop_garbled_eq_plaintext(x in 0u64..1<<16, y in 0u64..1<<16, seed: u64) {
            let mut b = Builder::new();
            let xw = b.alice_word(16);
            let yw = b.bob_word(16);
            let sum = b.add_words(&xw, &yw);
            let prod = b.mul_words(&xw, &yw);
            let eqb = b.eq_words(&xw, &yw);
            let lt = b.lt_words(&xw, &yw);
            b.output_word(&sum);
            b.output_word(&prod);
            b.output(eqb);
            b.output(lt);
            let circ = b.finish();
            check(&circ, &u64_to_bits(x, 16), &u64_to_bits(y, 16), TweakHasher::Aes, seed);
        }
    }
}
