//! Garbled circuits: free-XOR + half-gates, as a two-party protocol.
//!
//! The secure Yannakakis protocol never garbles a whole query (that is the
//! SMCQL approach the paper improves on); it garbles *small* circuits at
//! precise points — aggregation merge gates, annotation multiplication,
//! PSI equality tests, average/ratio post-processing — and stitches them
//! together with secret sharing and OEP. This crate is that garbling
//! engine:
//!
//! * [`scheme`] — the garbling scheme itself (free-XOR, half-gates AND,
//!   point-and-permute), independent of any channel: garble to tables,
//!   evaluate tables. Property-tested against the plaintext evaluator.
//! * [`protocol`] — the two-party wrapper: table + input-label transfer,
//!   evaluator inputs via IKNP OT, and output decoding toward either or
//!   both parties.
//! * [`shares`] — Yao-to-arithmetic conversion (paper §5.2): circuits whose
//!   word outputs are masked by garbler-chosen randomness so the cleartext
//!   never materializes; the parties end with additive shares mod 2^ℓ.

pub mod protocol;
pub mod scheme;
pub mod shares;

pub use protocol::{
    circuit_digest, evaluate_begin, evaluate_circuit, evaluate_finish, evaluate_offline,
    evaluate_online, garble_circuit, garble_offline, garble_online, take_eval, take_garble,
    EvalMaterial, EvalPending, GarbleMaterial, OutputMode,
};
pub use scheme::{EvalTables, Garbling};
pub use shares::{
    evaluate_shared, evaluate_shared_begin, evaluate_shared_finish, evaluate_shared_online,
    garble_shared, garble_shared_online, with_shared_outputs, SharedInput, SharedOutputSpec,
};
