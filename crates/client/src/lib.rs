//! The networked client: Alice as a process.
//!
//! [`run_session`] connects to a `secyan-server`, performs the versioned
//! hello (declaring protocol version, ℓ, and the query's `ShapeKey` so
//! the server can route the session before parsing the request), and —
//! once accepted — runs the requested executions of the query with the
//! client playing Alice, the designated receiver. The revealed result is
//! returned canonicalized (sorted rows, zero rows dropped) together with
//! the endpoint's local communication profile, which covers both
//! directions (standalone endpoints meter incoming traffic at consume
//! time).
//!
//! Every failure is typed: connection and socket setup problems as
//! [`ClientError::Io`], a refused or malformed negotiation as
//! [`ClientError::Handshake`] (carrying the server's verdict code when
//! one arrived), and any protocol-layer fault as
//! [`ClientError::Protocol`] — the client never hangs past its deadlines
//! and never panics on hostile peers.

use secyan_core::secure_yannakakis;
use secyan_core::{run_offline, run_online, run_online_pooled, PreprocPool, Session, ShapeKey};
use secyan_crypto::TweakHasher;
use secyan_server::{RunMode, SessionRequest};
use secyan_testkit::{canonical_result, session_seeds, Rows};
use secyan_transport::handshake::{
    read_server_hello, write_client_hello, ClientHello, HandshakeError, PROTOCOL_VERSION,
};
use secyan_transport::{catch_protocol, tcp_endpoint, CommStats, ProtocolError, Role};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Deadline for connecting and for the whole hello exchange.
    pub hello_timeout: Duration,
    /// Per-read/write deadline on the session channel once accepted.
    pub io_timeout: Duration,
    /// Protocol version to declare. Production callers leave the default
    /// [`PROTOCOL_VERSION`]; negative tests declare wrong versions to
    /// exercise the server's typed rejection.
    pub version: u32,
}

impl ClientConfig {
    /// Defaults against `addr`: 3 s hello deadline, 10 s I/O deadline,
    /// the current protocol version.
    pub fn new(addr: SocketAddr) -> ClientConfig {
        ClientConfig {
            addr,
            hello_timeout: Duration::from_secs(3),
            io_timeout: Duration::from_secs(10),
            version: PROTOCOL_VERSION,
        }
    }
}

/// Typed failure of a client session.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or configuring the socket failed.
    Io(std::io::Error),
    /// The hello exchange failed or the server refused the session.
    Handshake(HandshakeError),
    /// The accepted session ended in a typed protocol fault.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Handshake(e) => write!(f, "handshake failed: {e}"),
            ClientError::Protocol(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What an accepted, completed session produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Canonicalized revealed result of the last run (all runs of a
    /// session evaluate the same instance).
    pub rows: Rows,
    /// Public output size as revealed by the protocol.
    pub out_size: usize,
    /// This endpoint's communication profile, both directions.
    pub stats: CommStats,
}

/// Connect, negotiate, and run the session to completion.
pub fn run_session(cfg: &ClientConfig, req: &SessionRequest) -> Result<RunOutcome, ClientError> {
    let inst = req.spec.instance();
    let query = inst.query();
    let sizes = inst.sizes();
    let ring = inst.ring_ctx();
    let key = ShapeKey::of(&query, &sizes, Role::Alice, inst.ell as usize);
    let mut stream =
        TcpStream::connect_timeout(&cfg.addr, cfg.hello_timeout).map_err(ClientError::Io)?;
    stream
        .set_read_timeout(Some(cfg.hello_timeout))
        .and_then(|()| stream.set_write_timeout(Some(cfg.hello_timeout)))
        .map_err(ClientError::Io)?;
    write_client_hello(
        &mut stream,
        &ClientHello {
            version: cfg.version,
            ell: inst.ell,
            shape_key: key.0,
            payload: req.encode(),
        },
    )
    .map_err(ClientError::Handshake)?;
    read_server_hello(&mut stream).map_err(ClientError::Handshake)?;
    let mut ch =
        tcp_endpoint(Role::Alice, stream, Some(cfg.io_timeout)).map_err(ClientError::Io)?;
    let (sa, _sb) = session_seeds(&inst);
    let rels = inst.party_relations(Role::Alice);
    let hasher = TweakHasher::default();
    let mut pool = PreprocPool::new();
    let ran = catch_protocol(|| {
        let mut last = None;
        match req.mode {
            RunMode::Single => {
                for i in 0..u64::from(req.runs) {
                    let mut sess = Session::new(&mut ch, ring, hasher, sa.wrapping_add(i));
                    last = Some(secure_yannakakis(&mut sess, &query, &rels, Role::Alice));
                }
            }
            RunMode::PhaseSplit => {
                for i in 0..u64::from(req.runs) {
                    let m = run_offline(
                        &mut ch,
                        &query,
                        &sizes,
                        Role::Alice,
                        ring,
                        hasher,
                        sa.wrapping_add(i),
                    );
                    last = Some(run_online(
                        &mut ch,
                        &query,
                        &rels,
                        Role::Alice,
                        ring,
                        hasher,
                        m,
                    ));
                }
            }
            RunMode::Pooled => {
                for i in 0..u64::from(req.runs) {
                    pool.provision(
                        &mut ch,
                        &query,
                        &sizes,
                        Role::Alice,
                        ring,
                        hasher,
                        sa.wrapping_add(i),
                    );
                }
                for i in 0..u64::from(req.runs) {
                    last = Some(run_online_pooled(
                        &mut pool,
                        &mut ch,
                        &query,
                        &sizes,
                        &rels,
                        Role::Alice,
                        ring,
                        hasher,
                        sa.wrapping_add(i),
                    ));
                }
            }
        }
        last.expect("runs >= 1 is enforced by SessionRequest::decode")
    });
    let res = ran.map_err(ClientError::Protocol)?;
    let _ = ch.try_flush();
    Ok(RunOutcome {
        rows: canonical_result(ring, &res),
        out_size: res.out_size,
        stats: ch.stats(),
    })
}
