//! `secyan-client` — run one query session against a `secyan-server`.
//!
//! ```text
//! secyan-client --addr 127.0.0.1:7979 [--family random|chain] [--seed N]
//!               [--mode single|phase-split|pooled] [--runs N] [--check]
//! ```
//!
//! Prints the revealed rows and the session's communication profile.
//! `--check` additionally evaluates the plaintext oracle locally and
//! exits nonzero if the revealed result disagrees.

use secyan_client::{run_session, ClientConfig};
use secyan_server::{QuerySpec, RunMode, SessionRequest};
use secyan_testkit::oracle;

fn usage() -> ! {
    eprintln!(
        "usage: secyan-client --addr HOST:PORT [--family random|chain] [--seed N] \
         [--mode single|phase-split|pooled] [--runs N] [--check]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr = None;
    let mut family = "random".to_string();
    let mut seed = 0u64;
    let mut mode = RunMode::Single;
    let mut runs = 1u32;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--check" {
            check = true;
            continue;
        }
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => addr = Some(value.parse().unwrap_or_else(|_| usage())),
            "--family" => family = value,
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                mode = match value.as_str() {
                    "single" => RunMode::Single,
                    "phase-split" => RunMode::PhaseSplit,
                    "pooled" => RunMode::Pooled,
                    _ => usage(),
                }
            }
            "--runs" => runs = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let spec = match family.as_str() {
        "random" => QuerySpec::Random { seed },
        "chain" => QuerySpec::Chain { seed },
        _ => usage(),
    };
    let req = SessionRequest { spec, mode, runs };
    let cfg = ClientConfig::new(addr);
    let out = match run_session(&cfg, &req) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("secyan-client: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "revealed {} row(s) (public out_size {}):",
        out.rows.len(),
        out.out_size
    );
    for (tuple, value) in &out.rows {
        println!("  {tuple:?} -> {value}");
    }
    println!(
        "comm: {} bytes ({} a->b, {} b->a), {} messages, {} rounds, {} super-rounds",
        out.stats.total_bytes(),
        out.stats.bytes_alice_to_bob,
        out.stats.bytes_bob_to_alice,
        out.stats.messages,
        out.stats.rounds,
        out.stats.super_rounds,
    );
    if check {
        let expected = oracle(&req.spec.instance());
        if out.rows == expected {
            println!("check: revealed result matches the plaintext oracle");
        } else {
            eprintln!("check: MISMATCH against the plaintext oracle");
            eprintln!("  expected: {expected:?}");
            eprintln!("  revealed: {:?}", out.rows);
            std::process::exit(1);
        }
    }
}
