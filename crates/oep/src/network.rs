//! Permutation networks and the extended-permutation decomposition.
//!
//! A Beneš network on n = 2^k wires realizes any permutation with
//! n·(log₂ n − ½) binary switches. Arbitrary sizes are padded up to the
//! next power of two — the topology depends only on the (public) size, as
//! obliviousness requires. An *extended* permutation (duplicates allowed)
//! decomposes as permute → duplicate-chain → permute, following
//! Mohassel–Sadeghian.

/// A switching network: an ordered list of conditional swaps over an array
/// of `size` positions. Control bit `true` = swap.
#[derive(Debug, Clone)]
pub struct PermNetwork {
    size: usize,
    /// `(i, j)` position pairs, in evaluation order.
    switches: Vec<(usize, usize)>,
}

impl PermNetwork {
    /// Build the Beneš network topology for `n` logical wires (padded to a
    /// power of two internally).
    pub fn new(n: usize) -> PermNetwork {
        let size = n.next_power_of_two().max(1);
        let mut switches = Vec::new();
        build_benes(0, 1, size, &mut switches);
        PermNetwork { size, switches }
    }

    /// Padded size (power of two).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The switch list (position pairs in evaluation order).
    pub fn switches(&self) -> &[(usize, usize)] {
        &self.switches
    }

    /// Partition the switch list into *layers* of position-disjoint
    /// switches: switch s lands in the earliest layer after every earlier
    /// switch touching one of its positions. Two switches that share a
    /// position keep their serial relative order across layers, and
    /// switches within one layer touch disjoint positions, so evaluating
    /// layers in order — switches within a layer in any order — computes
    /// exactly what the serial switch order computes. The layering is a
    /// pure function of the (public) topology, so both parties derive the
    /// same schedule. Returned entries are indices into [`switches`].
    ///
    /// [`switches`]: PermNetwork::switches
    pub fn layers(&self) -> Vec<Vec<usize>> {
        // next[p] = first layer in which position p is free again.
        let mut next = vec![0usize; self.size];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (s, &(i, j)) in self.switches.iter().enumerate() {
            let l = next[i].max(next[j]);
            if layers.len() <= l {
                layers.resize_with(l + 1, Vec::new);
            }
            layers[l].push(s);
            next[i] = l + 1;
            next[j] = l + 1;
        }
        layers
    }

    /// Compute control bits realizing `perm`, where `perm[o] = i` means
    /// output position `o` receives input position `i`'s value.
    /// `perm` must be a bijection on `0..n` for some n ≤ size; missing
    /// positions are routed identically.
    pub fn route(&self, perm: &[usize]) -> Vec<bool> {
        assert!(perm.len() <= self.size);
        // Extend to a bijection on the padded size: unused inputs map to
        // the unused output positions in order.
        let mut full = vec![usize::MAX; self.size];
        let mut used = vec![false; self.size];
        for (o, &i) in perm.iter().enumerate() {
            assert!(i < perm.len(), "perm entry out of range");
            assert!(!used[i], "perm is not a bijection");
            used[i] = true;
            full[o] = i;
        }
        let mut free_inputs = (0..self.size).filter(|&i| !used[i]);
        for slot in full.iter_mut() {
            if *slot == usize::MAX {
                *slot = free_inputs.next().expect("padding input available");
            }
        }
        let mut bits = Vec::with_capacity(self.switches.len());
        route_benes(&full, &mut bits);
        debug_assert_eq!(bits.len(), self.switches.len());
        bits
    }

    /// Apply the network to `values` under `bits` (plaintext reference
    /// semantics; the oblivious evaluation lives in [`crate::osn`]).
    pub fn apply<T: Clone>(&self, values: &[T], bits: &[bool], pad: T) -> Vec<T> {
        assert!(values.len() <= self.size);
        assert_eq!(bits.len(), self.switches.len());
        let mut v: Vec<T> = values.to_vec();
        v.resize(self.size, pad);
        for (&(i, j), &b) in self.switches.iter().zip(bits) {
            if b {
                v.swap(i, j);
            }
        }
        v
    }
}

/// Recursive Beneš topology over positions `offset + k·stride`,
/// `k = 0..n`. Input layer, two half-size subnetworks (even/odd legs),
/// output layer.
fn build_benes(offset: usize, stride: usize, n: usize, out: &mut Vec<(usize, usize)>) {
    if n < 2 {
        return;
    }
    if n == 2 {
        out.push((offset, offset + stride));
        return;
    }
    for k in 0..n / 2 {
        out.push((offset + 2 * k * stride, offset + (2 * k + 1) * stride));
    }
    build_benes(offset, 2 * stride, n / 2, out);
    build_benes(offset + stride, 2 * stride, n / 2, out);
    for k in 0..n / 2 {
        out.push((offset + 2 * k * stride, offset + (2 * k + 1) * stride));
    }
}

/// Recursive Beneš routing. `perm[o] = i` (bijection on 0..n, n a power of
/// two). Emits bits in the same order `build_benes` emits switches.
fn route_benes(perm: &[usize], bits: &mut Vec<bool>) {
    let n = perm.len();
    if n < 2 {
        return;
    }
    if n == 2 {
        bits.push(perm[0] == 1);
        return;
    }
    let half = n / 2;
    // inv[i] = o with perm[o] = i.
    let mut inv = vec![0usize; n];
    for (o, &i) in perm.iter().enumerate() {
        inv[i] = o;
    }
    let mut in_bits: Vec<Option<bool>> = vec![None; half];
    let mut out_bits: Vec<Option<bool>> = vec![None; half];
    // Standard looping algorithm: fix an undecided output switch, chase the
    // induced constraints through input switches until the cycle closes.
    for start in 0..half {
        if out_bits[start].is_some() {
            continue;
        }
        out_bits[start] = Some(false);
        // Output 2·start is served by the upper subnetwork; follow the
        // constraint chain.
        let mut o = 2 * start; // this output must come via UPPER
        loop {
            let i = perm[o];
            // Input i must be routed to the upper subnetwork:
            // straight sends even leg up, so cross iff i is odd.
            let k = i / 2;
            in_bits[k] = Some(i % 2 == 1);
            // The partner input goes to the lower subnetwork.
            let partner = i ^ 1;
            let o2 = inv[partner]; // this output comes via LOWER
            let j = o2 / 2;
            // Lower reaches output 2j+1 when straight; cross iff o2 even.
            let need = o2.is_multiple_of(2);
            if let Some(existing) = out_bits[j] {
                debug_assert_eq!(existing, need, "routing conflict");
                break;
            }
            out_bits[j] = Some(need);
            // The other output of switch j is served by the upper subnet.
            o = o2 ^ 1;
        }
    }
    let in_bits: Vec<bool> = in_bits.into_iter().map(|b| b.unwrap_or(false)).collect();
    let out_bits: Vec<bool> = out_bits.into_iter().map(|b| b.unwrap_or(false)).collect();
    // Subnetwork permutations. Upper subnet output position j carries the
    // final output 2j (straight) or 2j+1 (crossed); its value originates at
    // input perm[o], which sits at upper-subnet input position perm[o]/2.
    let mut upper = vec![0usize; half];
    let mut lower = vec![0usize; half];
    for j in 0..half {
        let o_up = 2 * j + out_bits[j] as usize;
        let o_lo = 2 * j + 1 - out_bits[j] as usize;
        upper[j] = perm[o_up] / 2;
        lower[j] = perm[o_lo] / 2;
    }
    bits.extend_from_slice(&in_bits);
    route_benes(&upper, bits);
    route_benes(&lower, bits);
    bits.extend_from_slice(&out_bits);
}

/// The permute–duplicate–permute decomposition of an extended permutation
/// ξ : [n_out] → [n_in].
///
/// All three stages operate on `k = max(n_in, n_out)` logical wires:
/// 1. `p1` routes the first occurrence of every needed input to the start
///    of its duplication run,
/// 2. the duplication chain copies position k−1 into position k wherever
///    `dup_bits[k]` is set,
/// 3. `p2` routes run positions to their final output positions.
#[derive(Debug, Clone)]
pub struct EpNetwork {
    /// Logical wire count of every stage.
    pub k: usize,
    pub n_in: usize,
    pub n_out: usize,
    pub p1: PermNetwork,
    pub p2: PermNetwork,
}

/// Alice-side routing of an [`EpNetwork`]: the control bits of all stages.
#[derive(Debug, Clone)]
pub struct EpRouting {
    pub p1_bits: Vec<bool>,
    pub dup_bits: Vec<bool>,
    pub p2_bits: Vec<bool>,
}

impl EpNetwork {
    /// Topology for maps [n_out] → [n_in]; depends only on the public
    /// sizes.
    pub fn new(n_in: usize, n_out: usize) -> EpNetwork {
        let k = n_in.max(n_out).max(1);
        EpNetwork {
            k,
            n_in,
            n_out,
            p1: PermNetwork::new(k),
            p2: PermNetwork::new(k),
        }
    }

    /// Padded stage width.
    pub fn width(&self) -> usize {
        self.p1.size()
    }

    /// Compute the routing for a concrete map `xi` (`xi[o] < n_in`).
    pub fn route(&self, xi: &[usize]) -> EpRouting {
        assert_eq!(xi.len(), self.n_out);
        let k = self.k;
        // Sort output positions by source input (stable), grouping
        // duplicates into runs.
        let mut order: Vec<usize> = (0..self.n_out).collect();
        order.sort_by_key(|&o| xi[o]);
        // Stage 1 permutation: position t takes input xi[order[t]] if t is
        // first-of-run; remaining inputs fill the other positions.
        let mut p1_perm = vec![usize::MAX; k];
        let mut dup_bits = vec![false; self.width()];
        for t in 0..self.n_out {
            let src = xi[order[t]];
            assert!(src < self.n_in, "xi entry out of range");
            let first = t == 0 || xi[order[t - 1]] != src;
            if first {
                p1_perm[t] = src;
            } else {
                dup_bits[t] = true;
            }
        }
        // Mark used inputs.
        let mut used = vec![false; k];
        for &src in p1_perm.iter().filter(|&&s| s != usize::MAX) {
            used[src] = true;
        }
        let mut free = (0..k).filter(|&i| !used[i]);
        for slot in p1_perm.iter_mut() {
            if *slot == usize::MAX {
                *slot = free.next().expect("free input");
            }
        }
        // Stage 2: output position order[t] receives run position t.
        let mut p2_perm = vec![usize::MAX; k];
        for (t, &o) in order.iter().enumerate() {
            p2_perm[o] = t;
        }
        let mut taken = vec![false; k];
        for &t in p2_perm.iter().filter(|&&t| t != usize::MAX) {
            taken[t] = true;
        }
        let mut free = (0..k).filter(|&t| !taken[t]);
        for slot in p2_perm.iter_mut() {
            if *slot == usize::MAX {
                *slot = free.next().expect("free run position");
            }
        }
        EpRouting {
            p1_bits: self.p1.route(&p1_perm),
            dup_bits,
            p2_bits: self.p2.route(&p2_perm),
        }
    }

    /// Plaintext reference semantics: apply the routed network to values.
    pub fn apply<T: Clone + Default>(&self, values: &[T], routing: &EpRouting) -> Vec<T> {
        assert_eq!(values.len(), self.n_in);
        let mut v = self.p1.apply(values, &routing.p1_bits, T::default());
        for t in 1..v.len() {
            if routing.dup_bits[t] {
                v[t] = v[t - 1].clone();
            }
        }
        let v = self.p2.apply(&v, &routing.p2_bits, T::default());
        v[..self.n_out].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    #[test]
    fn benes_routes_every_small_permutation() {
        // Exhaustive over all permutations of sizes 1..=5 (covers padding).
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        for n in 1..=5 {
            let net = PermNetwork::new(n);
            for perm in perms(n) {
                let bits = net.route(&perm);
                let values: Vec<u64> = (0..n as u64).collect();
                let got = net.apply(&values, &bits, u64::MAX);
                for (o, &i) in perm.iter().enumerate() {
                    assert_eq!(got[o], i as u64, "n={n} perm={perm:?}");
                }
            }
        }
    }

    #[test]
    fn benes_routes_random_large_permutations() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [8usize, 13, 64, 100, 257] {
            let net = PermNetwork::new(n);
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let bits = net.route(&perm);
            let values: Vec<u64> = (0..n as u64).map(|v| v * 7 + 1).collect();
            let got = net.apply(&values, &bits, 0);
            for (o, &i) in perm.iter().enumerate() {
                assert_eq!(got[o], values[i], "n={n}");
            }
        }
    }

    #[test]
    fn switch_count_is_n_log_n() {
        let net = PermNetwork::new(8);
        // Beneš on 8 wires: 8/2 * (2*3 - 1) = 20 switches.
        assert_eq!(net.switches().len(), 20);
    }

    #[test]
    fn layers_partition_switches_disjointly() {
        for n in [2usize, 8, 13, 64, 100] {
            let net = PermNetwork::new(n);
            let layers = net.layers();
            // Every switch appears exactly once.
            let mut seen = vec![false; net.switches().len()];
            for layer in &layers {
                let mut touched = std::collections::HashSet::new();
                for &s in layer {
                    assert!(!seen[s], "switch {s} scheduled twice");
                    seen[s] = true;
                    let (i, j) = net.switches()[s];
                    assert!(touched.insert(i), "position {i} reused in layer");
                    assert!(touched.insert(j), "position {j} reused in layer");
                }
            }
            assert!(seen.iter().all(|&b| b), "layering drops switches");
            // Shared-position switches keep serial order across layers.
            let mut layer_of = vec![0usize; net.switches().len()];
            for (l, layer) in layers.iter().enumerate() {
                for &s in layer {
                    layer_of[s] = l;
                }
            }
            for (s2, &(i2, j2)) in net.switches().iter().enumerate() {
                for (s1, &(i1, j1)) in net.switches()[..s2].iter().enumerate() {
                    if i1 == i2 || i1 == j2 || j1 == i2 || j1 == j2 {
                        assert!(
                            layer_of[s1] < layer_of[s2],
                            "conflicting switches {s1},{s2} share a layer order"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn layered_evaluation_matches_serial() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in [8usize, 31, 64] {
            let net = PermNetwork::new(n);
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let bits = net.route(&perm);
            let values: Vec<u64> = (0..net.size() as u64).collect();
            let serial = net.apply(&values[..n], &bits, u64::MAX);
            // Re-evaluate layer by layer (switch order within a layer
            // reversed, to prove in-layer order is immaterial).
            let mut v: Vec<u64> = values[..n].to_vec();
            v.resize(net.size(), u64::MAX);
            for layer in net.layers() {
                for &s in layer.iter().rev() {
                    if bits[s] {
                        let (i, j) = net.switches()[s];
                        v.swap(i, j);
                    }
                }
            }
            assert_eq!(v, serial, "n={n}");
        }
    }

    #[test]
    fn ep_network_identity_and_duplicates() {
        let net = EpNetwork::new(4, 6);
        let xi = vec![2, 0, 0, 3, 2, 2];
        let routing = net.route(&xi);
        let values = vec![10u64, 20, 30, 40];
        let got = net.apply(&values, &routing);
        assert_eq!(got, vec![30, 10, 10, 40, 30, 30]);
    }

    #[test]
    fn ep_network_shrinking_map() {
        // More inputs than outputs; some inputs dropped.
        let net = EpNetwork::new(8, 3);
        let xi = vec![7, 7, 1];
        let routing = net.route(&xi);
        let values: Vec<u64> = (0..8).map(|v| v * 100).collect();
        assert_eq!(net.apply(&values, &routing), vec![700, 700, 100]);
    }

    #[test]
    fn ep_network_random_maps() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let n_in = rng.gen_range(1..40);
            let n_out = rng.gen_range(1..40);
            let net = EpNetwork::new(n_in, n_out);
            let xi: Vec<usize> = (0..n_out).map(|_| rng.gen_range(0..n_in)).collect();
            let routing = net.route(&xi);
            let values: Vec<u64> = (0..n_in as u64).map(|v| v + 1000).collect();
            let got = net.apply(&values, &routing);
            for (o, &src) in xi.iter().enumerate() {
                assert_eq!(got[o], values[src], "n_in={n_in} n_out={n_out} xi={xi:?}");
            }
        }
    }

    #[test]
    fn singleton_sizes() {
        let net = EpNetwork::new(1, 1);
        let routing = net.route(&[0]);
        assert_eq!(net.apply(&[42u64], &routing), vec![42]);
    }
}

#[cfg(test)]
mod proptests {
    // The offline `proptest` stand-in expands property bodies to nothing,
    // which orphans these imports; the real crate uses them.
    #![allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any permutation of any size up to 64 routes correctly.
        #[test]
        fn prop_benes_routes_any_permutation(perm in proptest::collection::vec(0usize..64, 1..64)
            .prop_map(|v| {
                // Turn an arbitrary vector into a permutation by sorting
                // indices by value (stable, hence bijective).
                let n = v.len();
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by_key(|&i| (v[i], i));
                idx
            })) {
            let n = perm.len();
            let net = PermNetwork::new(n);
            let bits = net.route(&perm);
            let values: Vec<u64> = (0..n as u64).map(|x| x * 31 + 5).collect();
            let got = net.apply(&values, &bits, u64::MAX);
            for (o, &i) in perm.iter().enumerate() {
                prop_assert_eq!(got[o], values[i]);
            }
        }

        /// Any extended permutation (duplicates, drops, expansion) applies
        /// correctly through the permute–duplicate–permute decomposition.
        #[test]
        fn prop_ep_network_any_map(
            n_in in 1usize..40,
            xi_raw in proptest::collection::vec(0usize..1000, 1..40),
        ) {
            let xi: Vec<usize> = xi_raw.iter().map(|&v| v % n_in).collect();
            let net = EpNetwork::new(n_in, xi.len());
            let routing = net.route(&xi);
            let values: Vec<u64> = (0..n_in as u64).map(|v| v + 7).collect();
            let got = net.apply(&values, &routing);
            for (o, &src) in xi.iter().enumerate() {
                prop_assert_eq!(got[o], values[src]);
            }
        }
    }
}
