//! Oblivious Extended Permutation (paper §5.4, Mohassel–Sadeghian).
//!
//! The "glue" of the secure Yannakakis protocol: Alice holds an extended
//! permutation ξ : [N] → [M] (a map from output positions to input
//! positions, duplicates and drops allowed); Bob holds a value vector
//! x₁..x_M. OEP delivers fresh additive shares of y_i = x_{ξ(i)} without
//! revealing ξ to Bob or x to Alice.
//!
//! Construction, bottom-up:
//! * [`network`] — Beneš permutation networks (arbitrary sizes handled by
//!   padding to a power of two) with the classic recursive routing
//!   algorithm, plus the permute–duplicate–permute decomposition of an
//!   extended permutation.
//! * [`osn`] — the oblivious switching network: one 1-out-of-2 OT per
//!   switch translates Bob's additively masked values through the network
//!   while only Alice knows the switch settings. Õ(M + N) total cost.
//! * [`protocol`] — the user-facing OEP: plain (Bob knows x) and shared
//!   (x itself is secret-shared, the case the paper needs for intermediate
//!   annotations).

pub mod network;
pub mod osn;
pub mod protocol;

pub use network::{EpNetwork, PermNetwork};
pub use osn::{osn_perm_holder, osn_perm_holder_begin, osn_perm_holder_finish, OsnPending};
pub use protocol::{
    oep_perm_holder, oep_perm_holder_begin, oep_perm_holder_finish, oep_value_holder,
    shared_oep_other, shared_oep_perm_holder, shared_oep_perm_holder_begin,
    shared_oep_perm_holder_finish, OepPending,
};
