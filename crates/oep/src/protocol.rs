//! The user-facing OEP protocols (paper §5.4).
//!
//! Two flavours:
//!
//! * **Plain OEP** — Bob knows the values x₁..x_M in the clear, Alice holds
//!   ξ : [N] → [M]; they end with fresh shares of x_{ξ(i)}. Direct wrapper
//!   over the oblivious switching network.
//! * **Shared OEP** — the values are themselves secret-shared (the usual
//!   situation for intermediate annotations). Following the paper: run
//!   plain OEP on Bob's shares, then Alice locally adds her own permuted
//!   shares; the OSN's fresh masks re-randomize everything, so neither
//!   party links old and new shares.

use rand::Rng;
use secyan_crypto::RingCtx;
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::Channel;

use crate::network::{EpNetwork, EpRouting};
use crate::osn::{osn_perm_holder_begin, osn_perm_holder_finish, osn_value_holder, OsnPending};

/// Plain OEP, value-holder side (Bob). Returns Bob's output shares.
pub fn oep_value_holder<R: Rng + ?Sized>(
    ch: &mut Channel,
    values: &[u64],
    n_out: usize,
    ring: RingCtx,
    ot: &mut OtSender,
    rng: &mut R,
) -> Vec<u64> {
    let net = EpNetwork::new(values.len(), n_out);
    osn_value_holder(ch, &net, values, ring, ot, rng)
}

/// Permutation-holder state between [`oep_perm_holder_begin`] and
/// [`oep_perm_holder_finish`]: the derived network, routing, ξ, and the
/// staged OSN corrections.
pub struct OepPending {
    net: EpNetwork,
    routing: EpRouting,
    xi: Vec<usize>,
    osn: OsnPending,
}

/// First half of the permutation-holder side: derive the network from the
/// public dimensions, route ξ through it, and stage the OT correction
/// bits. Send-only — the caller can stage further dependency-free
/// messages (e.g. a later operator's corrections) into the same outbound
/// super-frame before [`oep_perm_holder_finish`] blocks on the value
/// holder's masked values.
pub fn oep_perm_holder_begin(
    ch: &mut Channel,
    xi: &[usize],
    n_in: usize,
    ot: &mut OtReceiver,
) -> OepPending {
    let net = EpNetwork::new(n_in, xi.len());
    let routing = net.route(xi);
    let osn = osn_perm_holder_begin(ch, &routing, ot);
    OepPending {
        net,
        routing,
        xi: xi.to_vec(),
        osn,
    }
}

/// Second half of the permutation-holder side: receive and walk the
/// network. Receive-only.
pub fn oep_perm_holder_finish(
    ch: &mut Channel,
    pending: OepPending,
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    osn_perm_holder_finish(ch, &pending.net, &pending.routing, pending.osn, ring, ot)
}

/// Plain OEP, permutation-holder side (Alice). `xi[o]` is the input index
/// feeding output `o`; `n_in` is Bob's (public) vector length. Returns
/// Alice's output shares.
pub fn oep_perm_holder(
    ch: &mut Channel,
    xi: &[usize],
    n_in: usize,
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    let pending = oep_perm_holder_begin(ch, xi, n_in, ot);
    oep_perm_holder_finish(ch, pending, ring, ot)
}

/// First half of the shared-OEP permutation-holder side: identical wire
/// behavior to [`oep_perm_holder_begin`]; the share addition happens at
/// finish time.
pub fn shared_oep_perm_holder_begin(
    ch: &mut Channel,
    xi: &[usize],
    n_in: usize,
    ot: &mut OtReceiver,
) -> OepPending {
    oep_perm_holder_begin(ch, xi, n_in, ot)
}

/// Second half of the shared-OEP permutation-holder side: finish the OSN
/// walk and locally add the ξ-permutation of `my_shares`.
pub fn shared_oep_perm_holder_finish(
    ch: &mut Channel,
    pending: OepPending,
    my_shares: &[u64],
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    assert_eq!(my_shares.len(), pending.net.n_in, "share vector arity");
    let xi = pending.xi.clone();
    let fresh = oep_perm_holder_finish(ch, pending, ring, ot);
    // Locally add the permutation of her own shares (she knows ξ).
    fresh
        .iter()
        .zip(&xi)
        .map(|(&f, &src)| ring.add(f, my_shares[src]))
        .collect()
}

/// Shared OEP, permutation-holder side: Alice holds ξ *and* her shares of
/// the input vector. Returns Alice's shares of the permuted vector.
pub fn shared_oep_perm_holder(
    ch: &mut Channel,
    xi: &[usize],
    my_shares: &[u64],
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    let pending = shared_oep_perm_holder_begin(ch, xi, my_shares.len(), ot);
    shared_oep_perm_holder_finish(ch, pending, my_shares, ring, ot)
}

/// Shared OEP, other side: Bob holds only his shares of the input vector.
/// Returns Bob's shares of the permuted vector.
pub fn shared_oep_other<R: Rng + ?Sized>(
    ch: &mut Channel,
    my_shares: &[u64],
    n_out: usize,
    ring: RingCtx,
    ot: &mut OtSender,
    rng: &mut R,
) -> Vec<u64> {
    oep_value_holder(ch, my_shares, n_out, ring, ot, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_crypto::TweakHasher;
    use secyan_transport::run_protocol;

    /// The one hasher choice shared by every OT setup in these tests.
    const HASHER: TweakHasher = TweakHasher::Aes;

    #[test]
    fn shared_oep_permutes_the_secret() {
        let ring = RingCtx::new(32);
        let mut setup = StdRng::seed_from_u64(1);
        let secrets: Vec<u64> = (0..12).map(|i| 100 + i).collect();
        let (alice_in, bob_in) = ring.share_vec(&secrets, &mut setup);
        let xi = vec![3usize, 3, 0, 11, 7, 7, 7, 2];
        let xi2 = xi.clone();
        let (a_out, b_out, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                shared_oep_perm_holder(ch, &xi, &alice_in, ring, &mut ot)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                shared_oep_other(ch, &bob_in, 8, ring, &mut ot, &mut rng)
            },
        );
        let got = ring.reconstruct_vec(&a_out, &b_out);
        let want: Vec<u64> = xi2.iter().map(|&i| secrets[i]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn shared_oep_refreshes_shares() {
        // Identity permutation must still produce *different* shares
        // (fresh randomness), per the paper's remark.
        let ring = RingCtx::new(32);
        let mut setup = StdRng::seed_from_u64(4);
        let secrets = vec![5u64, 6, 7];
        let (alice_in, bob_in) = ring.share_vec(&secrets, &mut setup);
        let a_in = alice_in.clone();
        let b_in = bob_in.clone();
        let (a_out, b_out, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(5);
                let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                shared_oep_perm_holder(ch, &[0, 1, 2], &alice_in, ring, &mut ot)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(6);
                let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                shared_oep_other(ch, &bob_in, 3, ring, &mut ot, &mut rng)
            },
        );
        assert_eq!(ring.reconstruct_vec(&a_out, &b_out), secrets);
        assert_ne!(a_out, a_in);
        assert_ne!(b_out, b_in);
    }

    #[test]
    fn plain_oep_matches_indexing() {
        let ring = RingCtx::new(16);
        let values = vec![11u64, 22, 33];
        let xi = vec![2usize, 0, 2, 1, 1];
        let v2 = values.clone();
        let xi2 = xi.clone();
        let (a_out, b_out, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                oep_perm_holder(ch, &xi, 3, ring, &mut ot)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(8);
                let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                oep_value_holder(ch, &v2, 5, ring, &mut ot, &mut rng)
            },
        );
        let got = ring.reconstruct_vec(&a_out, &b_out);
        let want: Vec<u64> = xi2.iter().map(|&i| values[i]).collect();
        assert_eq!(got, want);
    }
}
