//! Oblivious switching: evaluating a routed network on masked values.
//!
//! Bob (the value holder) walks his values through the network under
//! additive masks; Alice (the routing holder) obtains, via one OT per
//! switch, exactly the mask-correction pair matching her control bit. At
//! the end Alice holds `x_{route(i)} + m_i` and Bob holds `−m_i`: a fresh
//! additive sharing of the routed vector. Bob learns nothing about the
//! control bits (OT security); Alice learns nothing about the values
//! (everything she sees is masked by fresh uniform masks).
//!
//! One round of OT (batched over all switches) plus one message of masked
//! values — constant rounds, Õ(n log n) traffic for the whole network.

use rand::Rng;
use secyan_crypto::RingCtx;
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::{Channel, ReadExt, WriteExt};

use crate::network::{EpNetwork, EpRouting};

/// Serialize a correction pair (two ring elements) into an OT message.
fn enc_pair(a: u64, b: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&a.to_le_bytes());
    v.extend_from_slice(&b.to_le_bytes());
    v
}

fn dec_pair(raw: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
    )
}

/// Bob's side: push `values` (padded internally) through the extended
/// permutation network. Returns Bob's output shares (one per output).
pub fn osn_value_holder<R: Rng + ?Sized>(
    ch: &mut Channel,
    net: &EpNetwork,
    values: &[u64],
    ring: RingCtx,
    ot: &mut OtSender,
    rng: &mut R,
) -> Vec<u64> {
    assert_eq!(values.len(), net.n_in);
    let width = net.width();
    // Current mask of every position; Bob tracks masks, Alice tracks
    // masked values.
    let mut masks: Vec<u64> = (0..width).map(|_| ring.random(rng)).collect();
    // Initial masked values to Alice (pad positions carry masked zeros).
    let mut padded = values.to_vec();
    padded.resize(width, 0);
    let init: Vec<u64> = padded
        .iter()
        .zip(&masks)
        .map(|(&x, &m)| ring.add(x, m))
        .collect();
    ch.send_u64_slice(&init);

    // Build every switch's OT message pair, updating masks as we go.
    let mut ot_msgs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    // Stage 1: permutation switches.
    for &(i, j) in net.p1.switches() {
        let (u, v) = (ring.random(rng), ring.random(rng));
        // straight (bit 0): out_i = in_i, out_j = in_j;
        // crossed  (bit 1): out_i = in_j, out_j = in_i.
        let straight = enc_pair(ring.sub(u, masks[i]), ring.sub(v, masks[j]));
        let crossed = enc_pair(ring.sub(u, masks[j]), ring.sub(v, masks[i]));
        ot_msgs.push((straight, crossed));
        masks[i] = u;
        masks[j] = v;
    }
    // Stage 2: duplication chain (position t either keeps its own value or
    // copies position t−1's post-duplication value).
    for t in 1..width {
        let u = ring.random(rng);
        let keep = enc_pair(ring.sub(u, masks[t]), 0);
        let copy = enc_pair(ring.sub(u, masks[t - 1]), 0);
        ot_msgs.push((keep, copy));
        masks[t] = u;
    }
    // Stage 3: permutation switches.
    for &(i, j) in net.p2.switches() {
        let (u, v) = (ring.random(rng), ring.random(rng));
        let straight = enc_pair(ring.sub(u, masks[i]), ring.sub(v, masks[j]));
        let crossed = enc_pair(ring.sub(u, masks[j]), ring.sub(v, masks[i]));
        ot_msgs.push((straight, crossed));
        masks[i] = u;
        masks[j] = v;
    }
    ot.send_bytes(ch, &ot_msgs);
    // Bob's shares: −(final mask) on the first n_out positions.
    masks[..net.n_out].iter().map(|&m| ring.neg(m)).collect()
}

/// Alice's side: walk the masked values through the network using her
/// routing. Returns Alice's output shares.
pub fn osn_perm_holder(
    ch: &mut Channel,
    net: &EpNetwork,
    routing: &EpRouting,
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    let width = net.width();
    let mut vals = ch.recv_u64_vec(width);
    // Choice bits in the same order Bob built the messages.
    let mut choices: Vec<bool> = Vec::new();
    choices.extend_from_slice(&routing.p1_bits);
    choices.extend_from_slice(&routing.dup_bits[1..]);
    choices.extend_from_slice(&routing.p2_bits);
    let corrections = ot.recv_bytes(ch, &choices, 16);
    let mut idx = 0;
    for (&(i, j), &b) in net.p1.switches().iter().zip(&routing.p1_bits) {
        let (c1, c2) = dec_pair(&corrections[idx]);
        idx += 1;
        let (src1, src2) = if b {
            (vals[j], vals[i])
        } else {
            (vals[i], vals[j])
        };
        vals[i] = ring.add(src1, c1);
        vals[j] = ring.add(src2, c2);
    }
    for t in 1..width {
        let (c1, _) = dec_pair(&corrections[idx]);
        idx += 1;
        let src = if routing.dup_bits[t] {
            vals[t - 1]
        } else {
            vals[t]
        };
        vals[t] = ring.add(src, c1);
    }
    for (&(i, j), &b) in net.p2.switches().iter().zip(&routing.p2_bits) {
        let (c1, c2) = dec_pair(&corrections[idx]);
        idx += 1;
        let (src1, src2) = if b {
            (vals[j], vals[i])
        } else {
            (vals[i], vals[j])
        };
        vals[i] = ring.add(src1, c1);
        vals[j] = ring.add(src2, c2);
    }
    debug_assert_eq!(idx, corrections.len());
    vals.truncate(net.n_out);
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_crypto::TweakHasher;
    use secyan_transport::run_protocol;

    /// The one hasher choice shared by every OT setup in these tests.
    const HASHER: TweakHasher = TweakHasher::Aes;

    fn run_osn(values: Vec<u64>, xi: Vec<usize>, ell: u32) -> Vec<u64> {
        let ring = RingCtx::new(ell);
        let net = EpNetwork::new(values.len(), xi.len());
        let net2 = net.clone();
        let (bob_sh, alice_sh, _) = run_protocol(
            move |ch| {
                // Bob-as-Alice-thread naming aside: this closure is the
                // value holder.
                let mut rng = StdRng::seed_from_u64(7);
                let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                osn_value_holder(ch, &net, &values, ring, &mut ot, &mut rng)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(8);
                let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                let routing = net2.route(&xi);
                osn_perm_holder(ch, &net2, &routing, ring, &mut ot)
            },
        );
        ring.reconstruct_vec(&alice_sh, &bob_sh)
    }

    #[test]
    fn identity_map() {
        let got = run_osn(vec![10, 20, 30, 40], vec![0, 1, 2, 3], 32);
        assert_eq!(got, vec![10, 20, 30, 40]);
    }

    #[test]
    fn permutation_with_duplicates_and_drops() {
        let got = run_osn(vec![10, 20, 30, 40, 50], vec![4, 4, 0, 2], 32);
        assert_eq!(got, vec![50, 50, 10, 30]);
    }

    #[test]
    fn expanding_map() {
        let got = run_osn(vec![7, 9], vec![1, 1, 0, 1, 0, 0, 1], 16);
        assert_eq!(got, vec![9, 9, 7, 9, 7, 7, 9]);
    }

    #[test]
    fn single_element() {
        assert_eq!(run_osn(vec![42], vec![0], 32), vec![42]);
    }

    #[test]
    fn random_maps_reconstruct() {
        let mut rng = StdRng::seed_from_u64(99);
        use rand::Rng;
        for _ in 0..10 {
            let n_in = rng.gen_range(1..30);
            let n_out = rng.gen_range(1..30);
            let ring = RingCtx::new(32);
            let values: Vec<u64> = (0..n_in).map(|_| ring.random(&mut rng)).collect();
            let xi: Vec<usize> = (0..n_out).map(|_| rng.gen_range(0..n_in)).collect();
            let want: Vec<u64> = xi.iter().map(|&i| values[i]).collect();
            assert_eq!(run_osn(values, xi, 32), want);
        }
    }
}
