//! Oblivious switching: evaluating a routed network on masked values.
//!
//! Bob (the value holder) walks his values through the network under
//! additive masks; Alice (the routing holder) obtains, via one OT per
//! switch, exactly the mask-correction pair matching her control bit. At
//! the end Alice holds `x_{route(i)} + m_i` and Bob holds `−m_i`: a fresh
//! additive sharing of the routed vector. Bob learns nothing about the
//! control bits (OT security); Alice learns nothing about the values
//! (everything she sees is masked by fresh uniform masks).
//!
//! One round of OT (batched over all switches) plus one message of masked
//! values — constant rounds, Õ(n log n) traffic for the whole network.

use rand::Rng;
use secyan_crypto::{Block, RingCtx, Zeroize};
use secyan_ot::{OtReceiver, OtSender};
use secyan_par as par;
use secyan_transport::{Channel, ReadExt, WriteExt};

use crate::network::{EpNetwork, EpRouting};

/// Minimum network width before the permutation stages fan their switch
/// layers out across the worker pool. Below this the per-layer dispatch
/// overhead dominates the ring arithmetic.
const OSN_PAR_MIN_WIDTH: usize = 512;

/// Minimum switches handed to one worker within a layer.
const SWITCHES_PER_PART: usize = 64;

/// Serialize a correction pair (two ring elements) into an OT message.
fn enc_pair(a: u64, b: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&a.to_le_bytes());
    v.extend_from_slice(&b.to_le_bytes());
    v
}

fn dec_pair(raw: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
    )
}

/// Bob's side: push `values` (padded internally) through the extended
/// permutation network. Returns Bob's output shares (one per output).
pub fn osn_value_holder<R: Rng + ?Sized>(
    ch: &mut Channel,
    net: &EpNetwork,
    values: &[u64],
    ring: RingCtx,
    ot: &mut OtSender,
    rng: &mut R,
) -> Vec<u64> {
    assert_eq!(values.len(), net.n_in);
    let width = net.width();
    // Current mask of every position; Bob tracks masks, Alice tracks
    // masked values.
    let mut masks: Vec<u64> = (0..width).map(|_| ring.random(rng)).collect();
    // Initial masked values to Alice (pad positions carry masked zeros).
    let mut padded = values.to_vec();
    padded.resize(width, 0);
    let init: Vec<u64> = padded
        .iter()
        .zip(&masks)
        .map(|(&x, &m)| ring.add(x, m))
        .collect();
    ch.send_u64_slice(&init);

    // Pre-draw every switch's fresh masks *serially*, in the exact order
    // the serial walk would draw them — the RNG stream (and hence the
    // transcript) is independent of the thread count.
    let mut r1: Vec<(u64, u64)> = net
        .p1
        .switches()
        .iter()
        .map(|_| (ring.random(rng), ring.random(rng)))
        .collect();
    let mut rdup: Vec<u64> = (1..width).map(|_| ring.random(rng)).collect();
    let mut r2: Vec<(u64, u64)> = net
        .p2
        .switches()
        .iter()
        .map(|_| (ring.random(rng), ring.random(rng)))
        .collect();

    // Build every switch's OT message pair, updating masks as we go. The
    // message vector is indexed by absolute switch position, so the wire
    // layout matches the serial evaluation order exactly.
    let n_p1 = net.p1.switches().len();
    let n_dup = width - 1;
    let n_total = n_p1 + n_dup + net.p2.switches().len();
    let mut ot_msgs: Vec<(Vec<u8>, Vec<u8>)> = vec![(Vec::new(), Vec::new()); n_total];
    par::with_pool_if(par::threads() > 1 && width >= OSN_PAR_MIN_WIDTH, |pool| {
        // Stage 1: permutation switches, layer-parallel.
        holder_stage(pool, &net.p1, &r1, ring, &mut masks, &mut ot_msgs[..n_p1]);
        // Stage 2: duplication chain (position t either keeps its own value
        // or copies position t−1's post-duplication value) — inherently a
        // serial scan through the masks.
        for t in 1..width {
            let u = rdup[t - 1];
            let keep = enc_pair(ring.sub(u, masks[t]), 0);
            let copy = enc_pair(ring.sub(u, masks[t - 1]), 0);
            ot_msgs[n_p1 + t - 1] = (keep, copy);
            masks[t] = u;
        }
        // Stage 3: permutation switches, layer-parallel.
        holder_stage(
            pool,
            &net.p2,
            &r2,
            ring,
            &mut masks,
            &mut ot_msgs[n_p1 + n_dup..],
        );
    });
    // The pre-drawn values are mask material; scrub once consumed.
    r1.zeroize();
    rdup.zeroize();
    r2.zeroize();
    ot.send_bytes(ch, &ot_msgs);
    // Bob's shares: −(final mask) on the first n_out positions.
    masks[..net.n_out].iter().map(|&m| ring.neg(m)).collect()
}

/// One permutation stage on the value holder's side: build each switch's
/// correction pair (straight: out_i = in_i, out_j = in_j; crossed:
/// out_i = in_j, out_j = in_i) and advance the masks.
///
/// Switch layers run in order; within a layer the switches touch disjoint
/// positions ([`PermNetwork::layers`]), so each pair is computed from the
/// pre-layer masks in parallel and the mask updates write back serially.
/// The result is byte-identical to the serial switch walk.
///
/// [`PermNetwork::layers`]: crate::network::PermNetwork::layers
fn holder_stage(
    pool: &par::Pool<'_>,
    net: &crate::network::PermNetwork,
    r: &[(u64, u64)],
    ring: RingCtx,
    masks: &mut [u64],
    out: &mut [(Vec<u8>, Vec<u8>)],
) {
    let switches = net.switches();
    for layer in net.layers() {
        let masks_ro: &[u64] = masks;
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = pool.map(&layer, SWITCHES_PER_PART, |_, &s| {
            let (i, j) = switches[s];
            let (u, v) = r[s];
            let straight = enc_pair(ring.sub(u, masks_ro[i]), ring.sub(v, masks_ro[j]));
            let crossed = enc_pair(ring.sub(u, masks_ro[j]), ring.sub(v, masks_ro[i]));
            (straight, crossed)
        });
        for (&s, pair) in layer.iter().zip(pairs) {
            let (i, j) = switches[s];
            let (u, v) = r[s];
            masks[i] = u;
            masks[j] = v;
            out[s] = pair;
        }
    }
}

/// Routing-holder state between [`osn_perm_holder_begin`] and
/// [`osn_perm_holder_finish`]: the OT choice bits (switch controls) and
/// their staged pads.
pub struct OsnPending {
    choices: Vec<bool>,
    pads: Vec<Block>,
}

/// First half of the routing-holder side: stage the OT correction bits
/// for every switch. Send-only — the routing is known before any incoming
/// data, so the corrections ride the current outbound super-frame, and a
/// caller may stage further dependency-free messages before
/// [`osn_perm_holder_finish`] blocks on the masked values. The value
/// holder reads the corrections inside `ot.send_bytes` only after staging
/// init + pairs, so per-direction FIFO order is unchanged.
pub fn osn_perm_holder_begin(
    ch: &mut Channel,
    routing: &EpRouting,
    ot: &mut OtReceiver,
) -> OsnPending {
    let mut choices: Vec<bool> = Vec::new();
    choices.extend_from_slice(&routing.p1_bits);
    choices.extend_from_slice(&routing.dup_bits[1..]);
    choices.extend_from_slice(&routing.p2_bits);
    let pads = ot.begin_recv(ch, &choices);
    OsnPending { choices, pads }
}

/// Second half of the routing-holder side: receive the masked values and
/// correction messages, then walk the network. Receive-only.
pub fn osn_perm_holder_finish(
    ch: &mut Channel,
    net: &EpNetwork,
    routing: &EpRouting,
    pending: OsnPending,
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    let width = net.width();
    let OsnPending { choices, pads } = pending;
    let mut vals = ch.recv_u64_vec(width);
    let corrections = ot.finish_recv_bytes(ch, &pads, &choices, 16);
    let n_p1 = net.p1.switches().len();
    let n_dup = width - 1;
    par::with_pool_if(par::threads() > 1 && width >= OSN_PAR_MIN_WIDTH, |pool| {
        perm_stage(
            pool,
            &net.p1,
            &routing.p1_bits,
            &corrections[..n_p1],
            ring,
            &mut vals,
        );
        // Duplication chain: a serial scan (each position may read its
        // predecessor's fresh value).
        for t in 1..width {
            let (c1, _) = dec_pair(&corrections[n_p1 + t - 1]);
            let src = if routing.dup_bits[t] {
                vals[t - 1]
            } else {
                vals[t]
            };
            vals[t] = ring.add(src, c1);
        }
        perm_stage(
            pool,
            &net.p2,
            &routing.p2_bits,
            &corrections[n_p1 + n_dup..],
            ring,
            &mut vals,
        );
    });
    vals.truncate(net.n_out);
    vals
}

/// Alice's side: walk the masked values through the network using her
/// routing. Returns Alice's output shares. Implemented as
/// [`osn_perm_holder_begin`] + [`osn_perm_holder_finish`].
pub fn osn_perm_holder(
    ch: &mut Channel,
    net: &EpNetwork,
    routing: &EpRouting,
    ring: RingCtx,
    ot: &mut OtReceiver,
) -> Vec<u64> {
    let pending = osn_perm_holder_begin(ch, routing, ot);
    osn_perm_holder_finish(ch, net, routing, pending, ring, ot)
}

/// One permutation stage on the routing holder's side, mirroring
/// [`holder_stage`]: within a layer every switch reads the pre-layer
/// values of its two (disjoint) positions, so the corrected values are
/// computed in parallel and written back serially — identical to the
/// serial walk at any thread count.
fn perm_stage(
    pool: &par::Pool<'_>,
    net: &crate::network::PermNetwork,
    bits: &[bool],
    corrections: &[Vec<u8>],
    ring: RingCtx,
    vals: &mut [u64],
) {
    let switches = net.switches();
    for layer in net.layers() {
        let vals_ro: &[u64] = vals;
        let outs: Vec<(u64, u64)> = pool.map(&layer, SWITCHES_PER_PART, |_, &s| {
            let (i, j) = switches[s];
            let (c1, c2) = dec_pair(&corrections[s]);
            let (src1, src2) = if bits[s] {
                (vals_ro[j], vals_ro[i])
            } else {
                (vals_ro[i], vals_ro[j])
            };
            (ring.add(src1, c1), ring.add(src2, c2))
        });
        for (&s, (v1, v2)) in layer.iter().zip(outs) {
            let (i, j) = switches[s];
            vals[i] = v1;
            vals[j] = v2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_crypto::TweakHasher;
    use secyan_transport::run_protocol;

    /// The one hasher choice shared by every OT setup in these tests.
    const HASHER: TweakHasher = TweakHasher::Aes;

    fn run_osn(values: Vec<u64>, xi: Vec<usize>, ell: u32) -> Vec<u64> {
        let ring = RingCtx::new(ell);
        let net = EpNetwork::new(values.len(), xi.len());
        let net2 = net.clone();
        let (bob_sh, alice_sh, _) = run_protocol(
            move |ch| {
                // Bob-as-Alice-thread naming aside: this closure is the
                // value holder.
                let mut rng = StdRng::seed_from_u64(7);
                let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                osn_value_holder(ch, &net, &values, ring, &mut ot, &mut rng)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(8);
                let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                let routing = net2.route(&xi);
                osn_perm_holder(ch, &net2, &routing, ring, &mut ot)
            },
        );
        ring.reconstruct_vec(&alice_sh, &bob_sh)
    }

    #[test]
    fn identity_map() {
        let got = run_osn(vec![10, 20, 30, 40], vec![0, 1, 2, 3], 32);
        assert_eq!(got, vec![10, 20, 30, 40]);
    }

    #[test]
    fn permutation_with_duplicates_and_drops() {
        let got = run_osn(vec![10, 20, 30, 40, 50], vec![4, 4, 0, 2], 32);
        assert_eq!(got, vec![50, 50, 10, 30]);
    }

    #[test]
    fn expanding_map() {
        let got = run_osn(vec![7, 9], vec![1, 1, 0, 1, 0, 0, 1], 16);
        assert_eq!(got, vec![9, 9, 7, 9, 7, 7, 9]);
    }

    #[test]
    fn single_element() {
        assert_eq!(run_osn(vec![42], vec![0], 32), vec![42]);
    }

    #[test]
    fn osn_is_thread_count_invariant() {
        // Width pads to exactly OSN_PAR_MIN_WIDTH so the layered parallel
        // path runs; fixed seeds make the whole exchange deterministic, so
        // both parties' share vectors must match across thread counts.
        let n_in = 500usize;
        let n_out = 512usize;
        let ring = RingCtx::new(32);
        let values: Vec<u64> = (0..n_in as u64)
            .map(|v| v.wrapping_mul(2654435761) >> 3)
            .collect();
        let xi: Vec<usize> = (0..n_out).map(|o| (o * 131) % n_in).collect();
        let run_at = |t: usize| {
            secyan_par::set_threads(t);
            let net = EpNetwork::new(n_in, n_out);
            let net2 = net.clone();
            let vals = values.clone();
            let map = xi.clone();
            let (bob_sh, alice_sh, _) = run_protocol(
                move |ch| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut ot = OtSender::setup(ch, &mut rng, HASHER);
                    osn_value_holder(ch, &net, &vals, ring, &mut ot, &mut rng)
                },
                move |ch| {
                    let mut rng = StdRng::seed_from_u64(8);
                    let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
                    let routing = net2.route(&map);
                    osn_perm_holder(ch, &net2, &routing, ring, &mut ot)
                },
            );
            secyan_par::set_threads(0);
            (bob_sh, alice_sh)
        };
        let serial = run_at(1);
        assert_eq!(run_at(4), serial, "4-thread OSN diverged from serial");
        let want: Vec<u64> = xi.iter().map(|&i| ring.reduce(values[i])).collect();
        assert_eq!(ring.reconstruct_vec(&serial.1, &serial.0), want);
    }

    #[test]
    fn random_maps_reconstruct() {
        let mut rng = StdRng::seed_from_u64(99);
        use rand::Rng;
        for _ in 0..10 {
            let n_in = rng.gen_range(1..30);
            let n_out = rng.gen_range(1..30);
            let ring = RingCtx::new(32);
            let values: Vec<u64> = (0..n_in).map(|_| ring.random(&mut rng)).collect();
            let xi: Vec<usize> = (0..n_out).map(|_| rng.gen_range(0..n_in)).collect();
            let want: Vec<u64> = xi.iter().map(|&i| values[i]).collect();
            assert_eq!(run_osn(values, xi, 32), want);
        }
    }
}
