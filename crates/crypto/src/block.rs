//! 128-bit blocks: the unit of wire labels, OT messages, and PRG seeds.

use rand::Rng;

/// A 128-bit block with XOR as the group operation.
///
/// Garbled-circuit wire labels, OT extension rows, and OPRF outputs are all
/// `Block`s. The wrapper keeps label arithmetic (`^`) distinct from the
/// arithmetic shares of the annotation ring, which live in `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Block(pub u128);

impl Block {
    /// The all-zero block.
    pub const ZERO: Block = Block(0);

    /// Sample a uniform block.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Block {
        Block(rng.gen())
    }

    /// Little-endian byte representation.
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Parse from little-endian bytes.
    pub fn from_bytes(b: [u8; 16]) -> Block {
        Block(u128::from_le_bytes(b))
    }

    /// The least-significant bit, used as the point-and-permute color bit of
    /// garbled-circuit labels.
    pub fn lsb(self) -> bool {
        self.0 & 1 == 1
    }

    /// Force the least-significant bit to `bit` (used when assigning color
    /// bits to freshly drawn labels).
    pub fn with_lsb(self, bit: bool) -> Block {
        Block((self.0 & !1) | bit as u128)
    }
}

impl std::ops::BitXor for Block {
    type Output = Block;
    fn bitxor(self, rhs: Block) -> Block {
        Block(self.0 ^ rhs.0)
    }
}

impl std::ops::BitXorAssign for Block {
    fn bitxor_assign(&mut self, rhs: Block) {
        self.0 ^= rhs.0;
    }
}

impl From<u128> for Block {
    fn from(v: u128) -> Block {
        Block(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xor_is_involutive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Block::random(&mut rng);
        let b = Block::random(&mut rng);
        assert_eq!(a ^ b ^ b, a);
        assert_eq!(a ^ Block::ZERO, a);
    }

    #[test]
    fn lsb_manipulation() {
        let b = Block(0b1010);
        assert!(!b.lsb());
        assert!(b.with_lsb(true).lsb());
        assert_eq!(b.with_lsb(true).with_lsb(false), b);
    }

    #[test]
    fn byte_roundtrip() {
        let b = Block(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(Block::from_bytes(b.to_bytes()), b);
    }
}
