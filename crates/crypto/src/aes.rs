//! From-scratch AES-128, specialized for fixed-key use.
//!
//! Garbling and OT extension hash one 128-bit block per gate / per row, and
//! production systems (EMP, SECYAN's backend) get their per-gate speed from
//! fixed-key AES used as a correlation-robust permutation. This module
//! provides that permutation without any external dependency:
//!
//! * a FIPS-197 key schedule computed **once** per key (the hot path uses a
//!   single process-wide fixed key, see [`fixed_key`]);
//! * table-based rounds (four 1 KiB T-tables, generated at compile time
//!   from the GF(2^8) algebra, so no 256-entry constants are transcribed by
//!   hand);
//! * a hardware AES-NI path on x86_64, selected once at runtime, which
//!   pipelines 8 blocks per dispatch;
//! * batched APIs ([`Aes128::encrypt_blocks`]) so callers amortize the
//!   dispatch and let independent blocks overlap in the pipeline.
//!
//! This is an *encryption-only* AES: the MMO hash construction in
//! [`crate::hashers`] never decrypts. Like the rest of the crate, the
//! software path is not constant-time (table lookups are key- and
//! data-dependent); see the security caveat in DESIGN.md §3.

/// Number of round keys (AES-128: 10 rounds + initial whitening).
const ROUND_KEYS: usize = 11;

/// The batch width the hardware path pipelines per dispatch: 8 AESENC
/// chains in flight covers the instruction's latency on every AES-NI core
/// shipped to date. Callers that assemble their own batches (the hashers,
/// OT row hashing, KKRT masking) should size buffers in multiples of this
/// so the round loops always present full batches.
pub const PIPELINE_WIDTH: usize = 8;

/// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        let carry = a & 0x80;
        a <<= 1;
        if carry != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) as x^254 (0 maps to 0).
const fn ginv(x: u8) -> u8 {
    let mut result = 1u8;
    let mut base = x;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        e >>= 1;
    }
    result
}

/// The AES S-box: affine transform of the field inverse.
const fn sbox_entry(x: u8) -> u8 {
    let i = ginv(x);
    i ^ i.rotate_left(1) ^ i.rotate_left(2) ^ i.rotate_left(3) ^ i.rotate_left(4) ^ 0x63
}

const fn generate_sbox() -> [u8; 256] {
    let mut s = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        s[i] = sbox_entry(i as u8);
        i += 1;
    }
    s
}

/// SubBytes table.
static SBOX: [u8; 256] = generate_sbox();

/// T-table 0: `Te0[x]` packs `(2·S(x), S(x), S(x), 3·S(x))` big-endian, so
/// one lookup performs SubBytes + MixColumns for one state byte. Tables
/// 1–3 are byte rotations of table 0.
const fn generate_te0() -> [u32; 256] {
    let sbox = generate_sbox();
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = sbox[i];
        t[i] = ((gmul(s, 2) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (gmul(s, 3) as u32);
        i += 1;
    }
    t
}

static TE0: [u32; 256] = generate_te0();

const fn rotate_table(t: [u32; 256], r: u32) -> [u32; 256] {
    let mut out = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        out[i] = t[i].rotate_right(r);
        i += 1;
    }
    out
}

static TE1: [u32; 256] = rotate_table(generate_te0(), 8);
static TE2: [u32; 256] = rotate_table(generate_te0(), 16);
static TE3: [u32; 256] = rotate_table(generate_te0(), 24);

/// An expanded AES-128 key. Construct once, encrypt many: the whole point
/// of the fixed-key design is that the schedule and table lookups are paid
/// per process, not per gate.
#[derive(Clone)]
pub struct Aes128 {
    /// Round keys as big-endian u32 words (software T-table path).
    rk: [u32; 4 * ROUND_KEYS],
    /// Round keys as raw bytes (hardware path loads these directly).
    rk_bytes: [[u8; 16]; ROUND_KEYS],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("use_ni", &crate::cpu::features().aes)
            .finish()
    }
}

impl Aes128 {
    /// Expand `key` into the round-key schedule (FIPS-197 §5.2).
    pub fn new(key: [u8; 16]) -> Aes128 {
        let mut rk = [0u32; 4 * ROUND_KEYS];
        for i in 0..4 {
            rk[i] =
                u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon: u8 = 1;
        for i in 4..4 * ROUND_KEYS {
            let mut t = rk[i - 1];
            if i % 4 == 0 {
                t = sub_word(t.rotate_left(8)) ^ ((rcon as u32) << 24);
                rcon = gmul(rcon, 2);
            }
            rk[i] = rk[i - 4] ^ t;
        }
        let mut rk_bytes = [[0u8; 16]; ROUND_KEYS];
        for (r, out) in rk_bytes.iter_mut().enumerate() {
            for c in 0..4 {
                out[4 * c..4 * c + 4].copy_from_slice(&rk[4 * r + c].to_be_bytes());
            }
        }
        Aes128 { rk, rk_bytes }
    }

    /// Encrypt one 16-byte block. Dispatch is per call (a relaxed atomic
    /// load via [`crate::cpu::features`]), so `SECYAN_FORCE_SCALAR` and the
    /// test override apply even to long-lived keys like [`fixed_key`].
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        #[cfg(target_arch = "x86_64")]
        if crate::cpu::features().aes {
            // SAFETY: gated on the runtime CPUID probe (aes+sse2).
            return unsafe { ni::encrypt1(&self.rk_bytes, block) };
        }
        self.encrypt_soft(block)
    }

    /// Encrypt a block given as a `u128` in the [`crate::Block`] convention
    /// (little-endian byte order).
    #[inline]
    pub fn encrypt_u128(&self, x: u128) -> u128 {
        u128::from_le_bytes(self.encrypt(x.to_le_bytes()))
    }

    /// Encrypt every block of `xs` in place (the batched hot-path entry:
    /// independent blocks overlap in the pipeline; the hardware path runs
    /// [`PIPELINE_WIDTH`]-wide software-pipelined rounds, with the
    /// remainder still pipelined at widths 4/2/1).
    pub fn encrypt_blocks(&self, xs: &mut [u128]) {
        #[cfg(target_arch = "x86_64")]
        if crate::cpu::features().aes {
            // SAFETY: gated on the runtime CPUID probe (aes+sse2).
            unsafe { ni::encrypt_many(&self.rk_bytes, xs) };
            return;
        }
        for x in xs.iter_mut() {
            *x = u128::from_le_bytes(self.encrypt_soft(x.to_le_bytes()));
        }
    }

    /// Software T-table rounds.
    fn encrypt_soft(&self, block: [u8; 16]) -> [u8; 16] {
        let rk = &self.rk;
        let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
        let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
        let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
        let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];
        for round in 1..ROUND_KEYS - 1 {
            let t0 = TE0[(s0 >> 24) as usize]
                ^ TE1[((s1 >> 16) & 0xff) as usize]
                ^ TE2[((s2 >> 8) & 0xff) as usize]
                ^ TE3[(s3 & 0xff) as usize]
                ^ rk[4 * round];
            let t1 = TE0[(s1 >> 24) as usize]
                ^ TE1[((s2 >> 16) & 0xff) as usize]
                ^ TE2[((s3 >> 8) & 0xff) as usize]
                ^ TE3[(s0 & 0xff) as usize]
                ^ rk[4 * round + 1];
            let t2 = TE0[(s2 >> 24) as usize]
                ^ TE1[((s3 >> 16) & 0xff) as usize]
                ^ TE2[((s0 >> 8) & 0xff) as usize]
                ^ TE3[(s1 & 0xff) as usize]
                ^ rk[4 * round + 2];
            let t3 = TE0[(s3 >> 24) as usize]
                ^ TE1[((s0 >> 16) & 0xff) as usize]
                ^ TE2[((s1 >> 8) & 0xff) as usize]
                ^ TE3[(s2 & 0xff) as usize]
                ^ rk[4 * round + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows only.
        let base = 4 * (ROUND_KEYS - 1);
        let t0 = final_word(s0, s1, s2, s3) ^ rk[base];
        let t1 = final_word(s1, s2, s3, s0) ^ rk[base + 1];
        let t2 = final_word(s2, s3, s0, s1) ^ rk[base + 2];
        let t3 = final_word(s3, s0, s1, s2) ^ rk[base + 3];
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&t0.to_be_bytes());
        out[4..8].copy_from_slice(&t1.to_be_bytes());
        out[8..12].copy_from_slice(&t2.to_be_bytes());
        out[12..16].copy_from_slice(&t3.to_be_bytes());
        out
    }
}

/// SubBytes on each byte of a word (key schedule).
fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// One output word of the final round, assembled from the shifted rows.
#[inline]
fn final_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(d & 0xff) as usize] as u32)
}

/// The process-wide fixed key used by the tweakable hash. The value is a
/// nothing-up-my-sleeve constant (the first 32 hex digits of π, as used by
/// several fixed-key garbling implementations); any public constant works —
/// security rests on the tweak schedule, not key secrecy.
pub fn fixed_key() -> &'static Aes128 {
    static FIXED: std::sync::OnceLock<Aes128> = std::sync::OnceLock::new();
    FIXED.get_or_init(|| {
        Aes128::new([
            0x24, 0x3f, 0x6a, 0x88, 0x85, 0xa3, 0x08, 0xd3, 0x13, 0x19, 0x8a, 0x2e, 0x03, 0x70,
            0x73, 0x44,
        ])
    })
}

/// Hardware AES on x86_64. Feature gating lives in [`crate::cpu`]: every
/// entry point here assumes the caller checked `cpu::features().aes`. On
/// other architectures the module is absent and the T-table path runs
/// everywhere.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::ROUND_KEYS;
    use std::arch::x86_64::*;

    #[inline]
    fn load_keys(rk: &[[u8; 16]; ROUND_KEYS]) -> [__m128i; ROUND_KEYS] {
        // SAFETY: sse2 is baseline on x86_64, and each unaligned load reads
        // 16 bytes from a valid `[u8; 16]` borrowed for the call.
        unsafe {
            let mut k = [_mm_setzero_si128(); ROUND_KEYS];
            for (dst, src) in k.iter_mut().zip(rk) {
                *dst = _mm_loadu_si128(src.as_ptr() as *const __m128i);
            }
            k
        }
    }

    /// # Safety
    ///
    /// The caller must have verified the `aes` target feature is available
    /// (check [`available`]).
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt1(rk: &[[u8; 16]; ROUND_KEYS], block: [u8; 16]) -> [u8; 16] {
        let k = load_keys(rk);
        // SAFETY: the enclosing fn's contract guarantees the `aes` feature;
        // all loads/stores are 16-byte accesses into locals valid for the
        // whole call.
        unsafe {
            let mut b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            b = _mm_xor_si128(b, k[0]);
            for key in k.iter().take(ROUND_KEYS - 1).skip(1) {
                b = _mm_aesenc_si128(b, *key);
            }
            b = _mm_aesenclast_si128(b, k[ROUND_KEYS - 1]);
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, b);
            out
        }
    }

    /// Software-pipelined rounds at compile-time width `W`: all `W` states
    /// advance through each round together, so `W` independent AESENC
    /// dependency chains are in flight at once.
    ///
    /// # Safety
    ///
    /// The caller must have verified the `aes` target feature is available
    /// (check [`crate::cpu::features`]).
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_w<const W: usize>(k: &[__m128i; ROUND_KEYS], chunk: &mut [u128]) {
        debug_assert_eq!(chunk.len(), W);
        // SAFETY: the enclosing fn's contract guarantees the `aes` feature;
        // every load/store dereferences a `&u128`/`&mut u128` from the
        // chunk, which is valid and exclusive for the call.
        unsafe {
            let mut b = [_mm_setzero_si128(); W];
            for (dst, src) in b.iter_mut().zip(chunk.iter()) {
                *dst = _mm_loadu_si128(src as *const u128 as *const __m128i);
            }
            for lane in b.iter_mut() {
                *lane = _mm_xor_si128(*lane, k[0]);
            }
            for key in k.iter().take(ROUND_KEYS - 1).skip(1) {
                for lane in b.iter_mut() {
                    *lane = _mm_aesenc_si128(*lane, *key);
                }
            }
            for lane in b.iter_mut() {
                *lane = _mm_aesenclast_si128(*lane, k[ROUND_KEYS - 1]);
            }
            for (dst, src) in chunk.iter_mut().zip(b.iter()) {
                _mm_storeu_si128(dst as *mut u128 as *mut __m128i, *src);
            }
        }
    }

    /// Encrypt a slice of blocks: [`super::PIPELINE_WIDTH`]-wide pipelined
    /// groups, then a remainder that stays pipelined at widths 4/2/1
    /// instead of serializing block-at-a-time.
    ///
    /// # Safety
    ///
    /// The caller must have verified the `aes` target feature is available
    /// (check [`crate::cpu::features`]).
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_many(rk: &[[u8; 16]; ROUND_KEYS], xs: &mut [u128]) {
        let k = load_keys(rk);
        let mut rest = xs;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at_mut(8);
            // SAFETY: forwarded from this function's own contract.
            unsafe { encrypt_w::<8>(&k, chunk) };
            rest = tail;
        }
        if rest.len() >= 4 {
            let (chunk, tail) = rest.split_at_mut(4);
            // SAFETY: forwarded from this function's own contract.
            unsafe { encrypt_w::<4>(&k, chunk) };
            rest = tail;
        }
        if rest.len() >= 2 {
            let (chunk, tail) = rest.split_at_mut(2);
            // SAFETY: forwarded from this function's own contract.
            unsafe { encrypt_w::<2>(&k, chunk) };
            rest = tail;
        }
        if !rest.is_empty() {
            // SAFETY: forwarded from this function's own contract.
            unsafe { encrypt_w::<1>(&k, rest) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: full cipher example.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let cipher = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(key).encrypt(plain), cipher);
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer vector.
    #[test]
    fn fips197_appendix_c1() {
        let key = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plain = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let cipher = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(key).encrypt(plain), cipher);
    }

    /// The generated S-box must match the spot values in FIPS-197 Figure 7.
    #[test]
    fn sbox_spot_values() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    /// The software path and (when present) the hardware path agree.
    #[test]
    fn soft_and_hw_paths_agree() {
        let aes = Aes128::new(*b"0123456789abcdef");
        for i in 0..64u128 {
            let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834);
            let soft = u128::from_le_bytes(aes.encrypt_soft(x.to_le_bytes()));
            assert_eq!(aes.encrypt_u128(x), soft, "block {i}");
        }
    }

    /// Batched encryption equals per-block encryption for every chunk shape
    /// (the hardware path splits into 8-wide chunks plus a remainder).
    #[test]
    fn batch_matches_single() {
        let aes = fixed_key();
        for n in [0usize, 1, 7, 8, 9, 16, 23] {
            let mut batch: Vec<u128> = (0..n as u128).map(|i| i * 0x1234_5678_9abc_def1).collect();
            let singles: Vec<u128> = batch.iter().map(|&x| aes.encrypt_u128(x)).collect();
            aes.encrypt_blocks(&mut batch);
            assert_eq!(batch, singles, "batch size {n}");
        }
    }

    /// The wide pipeline must equal the forced-scalar (T-table) arm on
    /// every chunk shape, including the 4/2/1 pipelined remainders.
    #[test]
    fn wide_pipeline_matches_forced_scalar() {
        let _guard = crate::cpu::override_lock();
        let aes = fixed_key();
        for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 64] {
            let mk = |_: ()| -> Vec<u128> {
                (0..n as u128)
                    .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834))
                    .collect()
            };
            crate::cpu::set_force_scalar(true);
            let mut want = mk(());
            aes.encrypt_blocks(&mut want);
            crate::cpu::set_force_scalar(false);
            let mut got = mk(());
            aes.encrypt_blocks(&mut got);
            crate::cpu::clear_force_scalar();
            assert_eq!(got, want, "batch size {n}");
        }
    }

    /// Encryption is a permutation: distinct inputs give distinct outputs
    /// (sanity over a small sample).
    #[test]
    fn injective_on_sample() {
        let aes = fixed_key();
        let outs: std::collections::HashSet<u128> =
            (0..1000u128).map(|i| aes.encrypt_u128(i)).collect();
        assert_eq!(outs.len(), 1000);
    }
}
