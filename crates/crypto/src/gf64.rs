//! The binary field GF(2^64) and polynomial interpolation over it.
//!
//! The OPPRF used by circuit PSI (crate `secyan-psi`) programs, per cuckoo
//! bin, a polynomial "hint" that corrects the sender's OPRF outputs to the
//! programmed target values. Those hints are polynomials over GF(2^64):
//! 64-bit outputs give a per-evaluation collision probability of 2^{-64},
//! comfortably below the paper's statistical security target σ = 40 even
//! after a union bound over all bins of a 100 MB workload.
//!
//! Reduction polynomial: x^64 + x^4 + x^3 + x + 1 (the standard GF(2^64)
//! pentanomial, 0x1B).

/// Field element of GF(2^64) (coefficients of x^0..x^63).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf64(pub u64);

/// Low 64 bits of the reduction polynomial x^64 + x^4 + x^3 + x + 1.
const POLY: u64 = 0x1b;

// Inherent add/mul keep field arithmetic explicit at call sites; no
// operator-trait imports needed.
#[allow(clippy::should_implement_trait)]
impl Gf64 {
    /// Additive identity.
    pub const ZERO: Gf64 = Gf64(0);
    /// Multiplicative identity.
    pub const ONE: Gf64 = Gf64(1);

    /// Field addition = XOR.
    pub fn add(self, rhs: Gf64) -> Gf64 {
        Gf64(self.0 ^ rhs.0)
    }

    /// Carry-less multiplication followed by modular reduction.
    pub fn mul(self, rhs: Gf64) -> Gf64 {
        let (lo, hi) = clmul(self.0, rhs.0);
        Gf64(reduce(lo, hi))
    }

    /// Multiplicative inverse via x^(2^64 − 2) (panics on zero).
    pub fn inv(self) -> Gf64 {
        assert_ne!(self.0, 0, "inverse of zero in GF(2^64)");
        // Square-and-multiply on the fixed exponent 2^64 - 2 =
        // 0b111...110 (63 ones followed by a zero).
        let mut acc = Gf64::ONE;
        let mut base = self;
        // bit 0 of the exponent is 0: skip one squaring of `base` into acc.
        base = base.mul(base);
        for _ in 1..64 {
            acc = acc.mul(base);
            base = base.mul(base);
        }
        acc
    }
}

/// 64×64 carry-less multiply → 128-bit product `(lo, hi)`.
///
/// Dispatches to the hardware `pclmulqdq` instruction when
/// [`crate::cpu::features`] reports it, else the portable windowed
/// fallback. The two paths are bit-exact — asserted by the KATs below —
/// so the choice is purely a speed matter: one instruction vs. ~16 table
/// lookups per multiply, on the OPPRF interpolation hot path.
fn clmul(a: u64, b: u64) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::cpu::features().pclmulqdq {
            // SAFETY: gated on the runtime CPUID probe (pclmulqdq+sse2).
            return unsafe { pclmul::clmul(a, b) };
        }
    }
    clmul_scalar(a, b)
}

/// One multiply on the portable path only — the guaranteed-scalar arm the
/// batch fallbacks use so they never re-dispatch per element.
fn mul_scalar_one(a: u64, b: u64) -> u64 {
    let (lo, hi) = clmul_scalar(a, b);
    let (flo, fhi) = clmul_scalar(hi, POLY);
    let (flo2, _) = clmul_scalar(fhi, POLY);
    lo ^ flo ^ flo2
}

/// Hardware carry-less multiply kernels (x86_64 `pclmulqdq`). Feature
/// gating lives in [`crate::cpu`]; everything here assumes the caller
/// checked `cpu::features().pclmulqdq`.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use super::{Gf64, POLY};
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure `pclmulqdq` and `sse2` are supported (see
    /// [`crate::cpu::features`]).
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub unsafe fn clmul(a: u64, b: u64) -> (u64, u64) {
        let va = _mm_set_epi64x(0, a as i64);
        let vb = _mm_set_epi64x(0, b as i64);
        let prod = _mm_clmulepi64_si128::<0x00>(va, vb);
        let lo = _mm_cvtsi128_si64(prod) as u64;
        // High half via unpack (SSE2) — avoids an SSE4.1 extract.
        let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(prod, prod)) as u64;
        (lo, hi)
    }

    /// Four independent field multiplies, interleaved so the three
    /// `pclmulqdq` rounds (product, first fold, second fold) of all four
    /// lanes overlap in the pipeline instead of serializing behind the
    /// instruction's latency. Reduction is deferred: all four 128-bit
    /// products are formed first, then every product is folded modulo
    /// x^64 + x^4 + x^3 + x + 1.
    ///
    /// # Safety
    /// Caller must ensure `pclmulqdq` and `sse2` are supported.
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub unsafe fn mul4(a: &[Gf64; 4], b: &[Gf64; 4]) -> [Gf64; 4] {
        let vpoly = _mm_set_epi64x(0, POLY as i64);
        let mut p = [_mm_setzero_si128(); 4];
        for (pi, (ai, bi)) in p.iter_mut().zip(a.iter().zip(b.iter())) {
            let va = _mm_set_epi64x(0, ai.0 as i64);
            let vb = _mm_set_epi64x(0, bi.0 as i64);
            *pi = _mm_clmulepi64_si128::<0x00>(va, vb);
        }
        // First fold: f1 = hi(p) · POLY (imm 0x01 selects p's high qword).
        let mut f1 = [_mm_setzero_si128(); 4];
        for (fi, pi) in f1.iter_mut().zip(p.iter()) {
            *fi = _mm_clmulepi64_si128::<0x01>(*pi, vpoly);
        }
        // Second fold (hi(f1) ≤ 4 bits, so hi(f2) = 0) and combine: the
        // reduced value is lo(p) ^ lo(f1) ^ lo(f2).
        let mut out = [Gf64::ZERO; 4];
        for (oi, (pi, fi)) in out.iter_mut().zip(p.iter().zip(f1.iter())) {
            let f2 = _mm_clmulepi64_si128::<0x01>(*fi, vpoly);
            let r = _mm_xor_si128(_mm_xor_si128(*pi, *fi), f2);
            *oi = Gf64(_mm_cvtsi128_si64(r) as u64);
        }
        out
    }

    /// `xs[i] <- xs[i] * ys[i]` over the hardware path, 4-wide.
    ///
    /// # Safety
    /// Caller must ensure `pclmulqdq` and `sse2` are supported.
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub unsafe fn mul_slice(xs: &mut [Gf64], ys: &[Gf64]) {
        let n4 = xs.len() / 4 * 4;
        for i in (0..n4).step_by(4) {
            let a = [xs[i], xs[i + 1], xs[i + 2], xs[i + 3]];
            let b = [ys[i], ys[i + 1], ys[i + 2], ys[i + 3]];
            // SAFETY: same features as this function's own contract.
            let r = unsafe { mul4(&a, &b) };
            xs[i..i + 4].copy_from_slice(&r);
        }
        for i in n4..xs.len() {
            // SAFETY: same features as this function's own contract.
            let (lo, hi) = unsafe { clmul(xs[i].0, ys[i].0) };
            // SAFETY: same features as this function's own contract.
            let (flo, fhi) = unsafe { clmul(hi, POLY) };
            // SAFETY: same features as this function's own contract.
            let (flo2, _) = unsafe { clmul(fhi, POLY) };
            xs[i] = Gf64(lo ^ flo ^ flo2);
        }
    }

    /// `xs[i] <- xs[i] * k` over the hardware path, 4-wide.
    ///
    /// # Safety
    /// Caller must ensure `pclmulqdq` and `sse2` are supported.
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub unsafe fn mul_slice_by(xs: &mut [Gf64], k: Gf64) {
        let ks = [k; 4];
        let n4 = xs.len() / 4 * 4;
        for i in (0..n4).step_by(4) {
            let a = [xs[i], xs[i + 1], xs[i + 2], xs[i + 3]];
            // SAFETY: same features as this function's own contract.
            let r = unsafe { mul4(&a, &ks) };
            xs[i..i + 4].copy_from_slice(&r);
        }
        for x in xs[n4..].iter_mut() {
            // SAFETY: same features as this function's own contract.
            let (lo, hi) = unsafe { clmul(x.0, k.0) };
            // SAFETY: same features as this function's own contract.
            let (flo, fhi) = unsafe { clmul(hi, POLY) };
            // SAFETY: same features as this function's own contract.
            let (flo2, _) = unsafe { clmul(fhi, POLY) };
            *x = Gf64(lo ^ flo ^ flo2);
        }
    }
}

/// Elementwise field product: `xs[i] <- xs[i] * ys[i]`.
///
/// The hardware arm runs 4-way interleaved `pclmulqdq` with deferred
/// reduction — one dispatch decision per *slice*, not per multiply. The
/// portable arm uses the windowed scalar multiply directly (again no
/// per-element dispatch). Both arms are bit-exact.
pub fn mul_slice(xs: &mut [Gf64], ys: &[Gf64]) {
    assert_eq!(xs.len(), ys.len());
    #[cfg(target_arch = "x86_64")]
    {
        if crate::cpu::features().pclmulqdq {
            // SAFETY: gated on the runtime CPUID probe (pclmulqdq+sse2).
            unsafe { pclmul::mul_slice(xs, ys) };
            return;
        }
    }
    for (x, y) in xs.iter_mut().zip(ys) {
        *x = Gf64(mul_scalar_one(x.0, y.0));
    }
}

/// Uniform field product: `xs[i] <- xs[i] * k`. Same dispatch contract as
/// [`mul_slice`].
pub fn mul_slice_by(xs: &mut [Gf64], k: Gf64) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::cpu::features().pclmulqdq {
            // SAFETY: gated on the runtime CPUID probe (pclmulqdq+sse2).
            unsafe { pclmul::mul_slice_by(xs, k) };
            return;
        }
    }
    for x in xs.iter_mut() {
        *x = Gf64(mul_scalar_one(x.0, k.0));
    }
}

/// Portable 4-bit windowed implementation (no CLMUL intrinsic dependence).
fn clmul_scalar(a: u64, b: u64) -> (u64, u64) {
    // Precompute a · w for every 4-bit w as 128-bit values (a·w has at
    // most 67 bits, kept as (lo, hi)). Built incrementally: each entry is
    // the XOR of a power-of-two entry and a smaller one.
    let mut table = [(0u64, 0u64); 16];
    table[1] = (a, 0);
    table[2] = (a << 1, a >> 63);
    table[4] = (a << 2, a >> 62);
    table[8] = (a << 3, a >> 61);
    for w in [3usize, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15] {
        let lowbit = w & w.wrapping_neg();
        let (l1, h1) = table[lowbit];
        let (l2, h2) = table[w ^ lowbit];
        table[w] = (l1 ^ l2, h1 ^ h2);
    }
    let mut lo = 0u64;
    let mut hi = 0u64;
    // Process b in 4-bit windows from the top so a single 4-bit shift of the
    // accumulator suffices per step.
    for i in (0..16).rev() {
        // Shift accumulator left by 4.
        hi = (hi << 4) | (lo >> 60);
        lo <<= 4;
        let w = (b >> (i * 4)) & 0xf;
        let (tlo, thi) = table[w as usize];
        lo ^= tlo;
        hi ^= thi;
    }
    (lo, hi)
}

/// Reduce a 128-bit carry-less product modulo x^64 + x^4 + x^3 + x + 1.
fn reduce(lo: u64, hi: u64) -> u64 {
    // x^64 ≡ x^4 + x^3 + x + 1, so fold `hi` down twice (folding can spill
    // at most 4 bits back above position 64).
    let (flo, fhi) = clmul(hi, POLY);
    let lo2 = lo ^ flo;
    let hi2 = fhi; // ≤ 4 bits
    let (flo2, _) = clmul(hi2, POLY);
    lo2 ^ flo2
}

/// Evaluate a polynomial (coefficients low-degree first) at `x` by Horner.
pub fn poly_eval(coeffs: &[Gf64], x: Gf64) -> Gf64 {
    let mut acc = Gf64::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc.mul(x).add(c);
    }
    acc
}

/// Evaluate many same-degree polynomials, each at its own point, by
/// running all the Horner recurrences in lockstep over [`mul_slice`].
///
/// `coeffs_flat` holds `xs.len()` polynomials of `degree` coefficients
/// each (low-degree first), polynomial `b` at
/// `coeffs_flat[b * degree .. (b + 1) * degree]` — exactly the flat OPPRF
/// hint layout. Returns `out[b] = p_b(xs[b])`, equal to per-polynomial
/// [`poly_eval`] bit-for-bit; the batching only removes the per-multiply
/// dispatch and exposes 4-way CLMUL interleaving.
pub fn poly_eval_batch(coeffs_flat: &[Gf64], degree: usize, xs: &[Gf64]) -> Vec<Gf64> {
    assert_eq!(coeffs_flat.len(), degree * xs.len());
    let mut acc = vec![Gf64::ZERO; xs.len()];
    for j in (0..degree).rev() {
        mul_slice(&mut acc, xs);
        for (b, a) in acc.iter_mut().enumerate() {
            *a = a.add(coeffs_flat[b * degree + j]);
        }
    }
    acc
}

/// Batch inversion (Montgomery's trick): one field inversion plus 3(n−1)
/// multiplications for n nonzero elements. Inversion costs ~127 muls, so
/// this is the difference between O(n²) and O(n) inversions in the
/// interpolator — the OPPRF hot path.
pub fn batch_invert(xs: &[Gf64]) -> Vec<Gf64> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Gf64::ONE;
    for &x in xs {
        assert_ne!(x, Gf64::ZERO, "batch_invert of zero");
        prefix.push(acc);
        acc = acc.mul(x);
    }
    let mut inv_acc = acc.inv();
    let mut out = vec![Gf64::ZERO; n];
    for i in (0..n).rev() {
        out[i] = inv_acc.mul(prefix[i]);
        inv_acc = inv_acc.mul(xs[i]);
    }
    out
}

/// Interpolate the unique polynomial of degree < n through `points`
/// (pairwise-distinct x coordinates), returning its coefficients
/// low-degree first. Newton's divided differences, O(n²) field
/// multiplications and O(n) inversions (via [`batch_invert`]).
pub fn poly_interpolate(points: &[(Gf64, Gf64)]) -> Vec<Gf64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Every level's denominators x_{i+level} + x_i depend only on the x
    // coordinates, so they are all known upfront: one batch inversion
    // (one ~127-mul field inversion total) covers the whole table instead
    // of one per Newton level.
    let mut dens: Vec<Gf64> = Vec::with_capacity(n * (n - 1) / 2);
    for level in 1..n {
        for i in 0..n - level {
            let den = points[i + level].0.add(points[i].0);
            assert_ne!(den, Gf64::ZERO, "duplicate x coordinate");
            dens.push(den);
        }
    }
    let invs = batch_invert(&dens);
    // Newton coefficients c_k = f[x_0..x_k]. Each level's updates are
    // independent across i, so the level is one batched elementwise
    // multiply (subtraction == addition over GF(2)).
    let mut table: Vec<Gf64> = points.iter().map(|&(_, y)| y).collect();
    let mut newton = vec![table[0]];
    let mut off = 0;
    for level in 1..n {
        let w = n - level;
        for i in 0..w {
            table[i] = table[i + 1].add(table[i]);
        }
        mul_slice(&mut table[..w], &invs[off..off + w]);
        off += w;
        newton.push(table[0]);
    }
    // Expand the Newton form into monomial coefficients:
    // p(x) = c_0 + (x - x_0)(c_1 + (x - x_1)(c_2 + ...)).
    // Per step: coeffs <- coeffs * (x - x_k) + c_k, i.e. one uniform
    // batched multiply by x_k followed by a shifted XOR of the pre-step
    // coefficients (saved in `scratch`; over GF(2), -x_k == x_k).
    let mut coeffs = vec![Gf64::ZERO; n];
    let mut scratch = vec![Gf64::ZERO; n];
    coeffs[0] = newton[n - 1];
    let mut deg = 0;
    for k in (0..n - 1).rev() {
        let xk = points[k].0;
        deg += 1;
        scratch[..deg].copy_from_slice(&coeffs[..deg]);
        mul_slice_by(&mut coeffs[..=deg], xk);
        for i in 1..=deg {
            coeffs[i] = coeffs[i].add(scratch[i - 1]);
        }
        coeffs[0] = coeffs[0].add(newton[k]);
    }
    coeffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clmul_small_cases() {
        // (x+1)(x+1) = x^2 + 1 in GF(2)[x].
        assert_eq!(clmul(0b11, 0b11), (0b101, 0));
        // x^63 * x = x^64.
        assert_eq!(clmul(1 << 63, 0b10), (0, 1));
    }

    /// Known-answer tests for the carry-less multiply, run against the
    /// scalar path explicitly (the dispatching `clmul` is covered by the
    /// agreement test below, so a CPU without `pclmulqdq` still checks
    /// every vector).
    #[test]
    fn clmul_known_answers() {
        // (a, b, lo, hi) — products computed by GF(2)[x] long multiplication.
        let kats: [(u64, u64, u64, u64); 6] = [
            (0, 0xffff_ffff_ffff_ffff, 0, 0),
            (1, 0xdead_beef_cafe_f00d, 0xdead_beef_cafe_f00d, 0),
            (1 << 63, 1 << 63, 0, 1 << 62),
            (0xffff_ffff_ffff_ffff, 0x3, 0x0000_0000_0000_0001, 0x1),
            // x^32 · x^32 = x^64.
            (1 << 32, 1 << 32, 0, 1),
            // (x^4+x+1)(x^4+x^2+1) = x^8+x^6+x^5+x^3+x^2+x+1 (CRC-style toy).
            (0b1_0011, 0b1_0101, 0b1_0110_1111, 0),
        ];
        for &(a, b, lo, hi) in &kats {
            assert_eq!(clmul_scalar(a, b), (lo, hi), "scalar {a:#x}·{b:#x}");
            assert_eq!(clmul(a, b), (lo, hi), "dispatch {a:#x}·{b:#x}");
        }
    }

    /// The hardware and scalar paths must agree bit-exactly on every
    /// input. Skips silently (scalar-only) on CPUs without `pclmulqdq`.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn clmul_hardware_matches_scalar() {
        if !crate::cpu::features().pclmulqdq {
            eprintln!("pclmulqdq not available; hardware path untested here");
            return;
        }
        let mut rng = StdRng::seed_from_u64(8);
        let edge = [0u64, 1, 2, u64::MAX, 1 << 63, 0x8000_0000_0000_0001];
        for &a in &edge {
            for &b in &edge {
                assert_eq!(
                    // SAFETY: pclmul::available() checked at function entry.
                    unsafe { pclmul::clmul(a, b) },
                    clmul_scalar(a, b),
                    "edge {a:#x}·{b:#x}"
                );
            }
        }
        for _ in 0..10_000 {
            let a = rng.gen::<u64>();
            let b = rng.gen::<u64>();
            assert_eq!(
                // SAFETY: pclmulqdq presence checked at function entry.
                unsafe { pclmul::clmul(a, b) },
                clmul_scalar(a, b),
                "{a:#x}·{b:#x}"
            );
        }
    }

    /// The batched slice primitives must match per-element `Gf64::mul` on
    /// both arms, including the KAT vectors and ragged (non-multiple-of-4)
    /// lengths that exercise the kernel remainders.
    #[test]
    fn batch_ops_match_scalar() {
        let _guard = crate::cpu::override_lock();
        let mut rng = StdRng::seed_from_u64(9);
        let edge = [0u64, 1, 2, u64::MAX, 1 << 63, 0x8000_0000_0000_0001];
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64, 65] {
            let xs: Vec<Gf64> = (0..len)
                .map(|i| {
                    if i < edge.len() {
                        Gf64(edge[i])
                    } else {
                        Gf64(rng.gen())
                    }
                })
                .collect();
            let ys: Vec<Gf64> = (0..len).map(|_| Gf64(rng.gen())).collect();
            let k = Gf64(rng.gen());
            let want_mul: Vec<Gf64> = xs.iter().zip(&ys).map(|(x, y)| x.mul(*y)).collect();
            let want_by: Vec<Gf64> = xs.iter().map(|x| x.mul(k)).collect();
            for force in [false, true] {
                crate::cpu::set_force_scalar(force);
                let mut got = xs.clone();
                mul_slice(&mut got, &ys);
                assert_eq!(got, want_mul, "mul_slice len={len} force={force}");
                let mut got = xs.clone();
                mul_slice_by(&mut got, k);
                assert_eq!(got, want_by, "mul_slice_by len={len} force={force}");
            }
            crate::cpu::clear_force_scalar();
        }
    }

    /// Lockstep Horner over many bins equals per-bin `poly_eval`, on both
    /// dispatch arms.
    #[test]
    fn poly_eval_batch_matches_single() {
        let _guard = crate::cpu::override_lock();
        let mut rng = StdRng::seed_from_u64(10);
        for (bins, degree) in [(0usize, 5usize), (1, 1), (3, 4), (7, 24), (33, 11)] {
            let flat: Vec<Gf64> = (0..bins * degree).map(|_| Gf64(rng.gen())).collect();
            let xs: Vec<Gf64> = (0..bins).map(|_| Gf64(rng.gen())).collect();
            let want: Vec<Gf64> = (0..bins)
                .map(|b| poly_eval(&flat[b * degree..(b + 1) * degree], xs[b]))
                .collect();
            for force in [false, true] {
                crate::cpu::set_force_scalar(force);
                let got = poly_eval_batch(&flat, degree, &xs);
                assert_eq!(got, want, "bins={bins} degree={degree} force={force}");
            }
            crate::cpu::clear_force_scalar();
        }
    }

    /// Interpolation output is identical on the forced-scalar and SIMD
    /// arms (it is one deterministic function either way).
    #[test]
    fn interpolation_arms_agree() {
        let _guard = crate::cpu::override_lock();
        let mut rng = StdRng::seed_from_u64(13);
        for n in [1usize, 2, 3, 5, 8, 24, 40] {
            let points: Vec<(Gf64, Gf64)> = (1..=n as u64)
                .map(|x| (Gf64(x.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Gf64(rng.gen())))
                .collect();
            crate::cpu::set_force_scalar(true);
            let want = poly_interpolate(&points);
            crate::cpu::set_force_scalar(false);
            let got = poly_interpolate(&points);
            crate::cpu::clear_force_scalar();
            assert_eq!(got, want, "n={n}");
            for &(x, y) in &points {
                assert_eq!(poly_eval(&got, x), y);
            }
        }
    }

    #[test]
    fn field_axioms_hold_on_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = Gf64(rng.gen());
            let b = Gf64(rng.gen());
            let c = Gf64(rng.gen());
            assert_eq!(a.mul(b), b.mul(a));
            assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
            assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            assert_eq!(a.mul(Gf64::ONE), a);
            assert_eq!(a.mul(Gf64::ZERO), Gf64::ZERO);
        }
    }

    #[test]
    fn inverse_is_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let a = Gf64(rng.gen::<u64>() | 1);
            assert_eq!(a.mul(a.inv()), Gf64::ONE);
        }
        assert_eq!(Gf64::ONE.inv(), Gf64::ONE);
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 1..12usize {
            let coeffs: Vec<Gf64> = (0..n).map(|_| Gf64(rng.gen())).collect();
            // Distinct x values 1..=n.
            let points: Vec<(Gf64, Gf64)> = (1..=n as u64)
                .map(|x| (Gf64(x), poly_eval(&coeffs, Gf64(x))))
                .collect();
            let got = poly_interpolate(&points);
            assert_eq!(got, coeffs, "degree {n}");
        }
    }

    #[test]
    fn interpolation_passes_through_points() {
        let mut rng = StdRng::seed_from_u64(6);
        let points: Vec<(Gf64, Gf64)> = (0..20u64)
            .map(|i| (Gf64(i * 7 + 1), Gf64(rng.gen())))
            .collect();
        let coeffs = poly_interpolate(&points);
        for &(x, y) in &points {
            assert_eq!(poly_eval(&coeffs, x), y);
        }
    }

    #[test]
    fn batch_invert_matches_individual() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<Gf64> = (0..20).map(|_| Gf64(rng.gen::<u64>() | 1)).collect();
        let got = batch_invert(&xs);
        for (x, inv) in xs.iter().zip(&got) {
            assert_eq!(*inv, x.inv());
        }
        assert!(batch_invert(&[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn duplicate_x_panics() {
        poly_interpolate(&[(Gf64(1), Gf64(2)), (Gf64(1), Gf64(3))]);
    }
}
