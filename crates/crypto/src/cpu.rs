//! Unified CPU feature dispatch for the SIMD kernel layer.
//!
//! Every accelerated kernel in this crate — the movemask bit-matrix
//! transpose ([`crate::transpose`]), batched carry-less multiplication
//! ([`crate::gf64`]) and AES-NI pipelining ([`crate::aes`]) — selects its
//! implementation through this one module instead of carrying a private
//! `available()` probe. Centralizing the probe buys three things:
//!
//! 1. **One probe.** CPUID runs once (per feature set, cached in a
//!    `OnceLock`); kernels pay a single relaxed atomic load per *batch*
//!    call, never per element.
//! 2. **One override.** `SECYAN_FORCE_SCALAR=1` in the environment (read
//!    at first use) or [`set_force_scalar`] (takes effect immediately,
//!    for in-process differential tests) disables every SIMD path at
//!    once, so the portable arm of each kernel stays continuously
//!    exercised — in CI as a dedicated job, under Miri (which cannot
//!    execute vendor intrinsics), and in the scalar-vs-SIMD equivalence
//!    suites.
//! 3. **One determinism argument.** All kernels are bit-exact across
//!    arms (enforced by tests), so dispatch affects speed only — wire
//!    transcripts never depend on the CPU, the override, or the thread
//!    count.
//!
//! Dispatch state is *public* in the protocol's threat model: which CPU
//! runs a party is not a secret input, so branching on [`Features`] is
//! not a constant-time violation (and the taint linter agrees — no
//! secret ever flows into this module).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The instruction-set extensions the kernel layer can use. All fields
/// are `false` on non-x86_64 targets and whenever scalar operation is
/// forced, so call sites need no `cfg` of their own to stay portable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Features {
    /// SSE2 (128-bit integer ops; `movemask` transpose kernel).
    pub sse2: bool,
    /// SSSE3 (byte shuffles; reserved for future kernels).
    pub ssse3: bool,
    /// AVX2 (256-bit integer ops; wide transpose kernel).
    pub avx2: bool,
    /// Carry-less multiply (`pclmulqdq`; GF(2^64) kernels).
    pub pclmulqdq: bool,
    /// AES round instructions (`aesenc`; fixed-key hashing kernels).
    pub aes: bool,
}

impl Features {
    /// No extensions: every kernel takes its portable scalar arm.
    pub const NONE: Features = Features {
        sse2: false,
        ssse3: false,
        avx2: false,
        pclmulqdq: false,
        aes: false,
    };
}

/// CPUID probe result, computed once.
static PROBED: OnceLock<Features> = OnceLock::new();

/// `SECYAN_FORCE_SCALAR` environment setting, read once.
static ENV_FORCE: OnceLock<bool> = OnceLock::new();

/// Programmatic override: 0 = follow the environment, 1 = force scalar,
/// 2 = allow SIMD. Unlike the env var this takes effect immediately,
/// which is what the in-process differential tests need to flip arms
/// without re-execing.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn probe() -> Features {
    #[cfg(target_arch = "x86_64")]
    {
        Features {
            sse2: std::arch::is_x86_feature_detected!("sse2"),
            ssse3: std::arch::is_x86_feature_detected!("ssse3"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            pclmulqdq: std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse2"),
            aes: std::arch::is_x86_feature_detected!("aes")
                && std::arch::is_x86_feature_detected!("sse2"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Features::NONE
    }
}

/// Is scalar operation currently forced (override, else environment)?
pub fn force_scalar() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_FORCE.get_or_init(|| {
            std::env::var("SECYAN_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
        }),
    }
}

/// Force (or re-allow) the scalar arms from inside the process. Takes
/// precedence over `SECYAN_FORCE_SCALAR`; intended for differential
/// tests and benches that compare both arms in one run.
pub fn set_force_scalar(force: bool) {
    OVERRIDE.store(if force { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drop any [`set_force_scalar`] override and follow the environment
/// again.
pub fn clear_force_scalar() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// Serialize tests (and benches) that flip the process-global override:
/// hold the guard across the toggle-and-compare so concurrent tests in
/// the same binary never observe a half-flipped arm. Correctness never
/// depends on this — the arms are bit-exact — but timing-sensitive
/// comparisons do.
#[doc(hidden)]
pub fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The features the kernel layer may use *right now*: the cached CPUID
/// probe, masked to [`Features::NONE`] while scalar is forced. Cost is
/// one relaxed atomic load plus a `OnceLock` read — fine per batch, not
/// meant per element.
pub fn features() -> Features {
    if force_scalar() {
        Features::NONE
    } else {
        *PROBED.get_or_init(probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_masks_everything() {
        let _guard = override_lock();
        let probed = *PROBED.get_or_init(probe);
        set_force_scalar(true);
        assert_eq!(features(), Features::NONE);
        set_force_scalar(false);
        assert_eq!(features(), probed);
        clear_force_scalar();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn probe_is_consistent() {
        // pclmulqdq/aes imply sse2 by construction of `probe`.
        let f = *PROBED.get_or_init(probe);
        if f.pclmulqdq || f.aes {
            assert!(f.sse2);
        }
    }
}
