//! Additive secret sharing over Z_{2^ℓ} (paper §5.1).
//!
//! A value v ∈ Z_{2^ℓ} is split as v = s_A + s_B (mod 2^ℓ) with s_A uniform.
//! All intermediate annotations in the secure Yannakakis protocol live in
//! this form; neither party's share reveals anything about v.
//!
//! [`RingCtx`] carries the bit-length ℓ so every operation stays reduced.
//! The paper uses ℓ = 32; we default to that but support any ℓ ≤ 64.

use rand::Rng;

/// The ring Z_{2^ℓ}: context object for modular arithmetic and sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingCtx {
    ell: u32,
    mask: u64,
}

impl RingCtx {
    /// The ring Z_{2^ℓ}. `ell` must be in 1..=64.
    pub fn new(ell: u32) -> RingCtx {
        assert!((1..=64).contains(&ell), "ell must be in 1..=64");
        let mask = if ell == 64 {
            u64::MAX
        } else {
            (1u64 << ell) - 1
        };
        RingCtx { ell, mask }
    }

    /// The paper's default: ℓ = 32-bit annotations.
    pub fn paper_default() -> RingCtx {
        RingCtx::new(32)
    }

    /// Bit length ℓ.
    pub fn bits(&self) -> u32 {
        self.ell
    }

    /// Reduce an arbitrary u64 into the ring.
    pub fn reduce(&self, v: u64) -> u64 {
        v & self.mask
    }

    /// Addition mod 2^ℓ.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & self.mask
    }

    /// Subtraction mod 2^ℓ.
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & self.mask
    }

    /// Negation mod 2^ℓ.
    pub fn neg(&self, a: u64) -> u64 {
        a.wrapping_neg() & self.mask
    }

    /// Multiplication mod 2^ℓ.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        a.wrapping_mul(b) & self.mask
    }

    /// Uniform ring element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen::<u64>() & self.mask
    }

    /// Split `v` into `(alice_share, bob_share)` with the Alice share
    /// uniform. `v` must already be reduced.
    pub fn share<R: Rng + ?Sized>(&self, v: u64, rng: &mut R) -> (u64, u64) {
        debug_assert_eq!(v, self.reduce(v));
        let s1 = self.random(rng);
        (s1, self.sub(v, s1))
    }

    /// Reconstruct from the two shares.
    pub fn reconstruct(&self, s1: u64, s2: u64) -> u64 {
        self.add(s1, s2)
    }

    /// Share a whole vector; returns `(alice_shares, bob_shares)`.
    pub fn share_vec<R: Rng + ?Sized>(&self, vs: &[u64], rng: &mut R) -> (Vec<u64>, Vec<u64>) {
        let mut a = Vec::with_capacity(vs.len());
        let mut b = Vec::with_capacity(vs.len());
        for &v in vs {
            let (s1, s2) = self.share(v, rng);
            a.push(s1);
            b.push(s2);
        }
        (a, b)
    }

    /// Reconstruct a whole vector.
    pub fn reconstruct_vec(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.reconstruct(x, y))
            .collect()
    }

    /// Interpret a reduced value as a signed integer in
    /// [−2^{ℓ−1}, 2^{ℓ−1}): used when annotations encode differences
    /// (e.g. TPC-H Q9's `amount` can be negative).
    pub fn to_signed(&self, v: u64) -> i64 {
        let v = self.reduce(v);
        if self.ell < 64 && v >> (self.ell - 1) & 1 == 1 {
            // Sign-extend by filling the bits above ℓ (avoids the shift
            // overflow a naive `v - 2^ℓ` hits at ℓ = 63).
            (v | !self.mask) as i64
        } else {
            v as i64
        }
    }

    /// Encode a signed integer into the ring (two's complement mod 2^ℓ).
    pub fn from_signed(&self, v: i64) -> u64 {
        (v as u64) & self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        for ell in [1, 8, 32, 63, 64] {
            let ring = RingCtx::new(ell);
            for _ in 0..100 {
                let v = ring.random(&mut rng);
                let (a, b) = ring.share(v, &mut rng);
                assert_eq!(ring.reconstruct(a, b), v);
            }
        }
    }

    #[test]
    fn linear_ops_commute_with_sharing() {
        // Local addition of shares implements addition of secrets (§5.1).
        let ring = RingCtx::new(32);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let x = ring.random(&mut rng);
            let y = ring.random(&mut rng);
            let (x1, x2) = ring.share(x, &mut rng);
            let (y1, y2) = ring.share(y, &mut rng);
            let z1 = ring.add(x1, y1);
            let z2 = ring.add(x2, y2);
            assert_eq!(ring.reconstruct(z1, z2), ring.add(x, y));
        }
    }

    #[test]
    fn vector_helpers() {
        let ring = RingCtx::new(16);
        let mut rng = StdRng::seed_from_u64(15);
        let vs: Vec<u64> = (0..50).map(|_| ring.random(&mut rng)).collect();
        let (a, b) = ring.share_vec(&vs, &mut rng);
        assert_eq!(ring.reconstruct_vec(&a, &b), vs);
    }

    #[test]
    fn signed_roundtrip() {
        let ring = RingCtx::new(32);
        for v in [-5i64, 0, 7, -(1 << 30), (1 << 30)] {
            assert_eq!(ring.to_signed(ring.from_signed(v)), v);
        }
        let ring64 = RingCtx::new(64);
        assert_eq!(ring64.to_signed(ring64.from_signed(-1)), -1);
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        RingCtx::new(0);
    }
}

#[cfg(test)]
mod proptests {
    // The offline `proptest` stand-in expands property bodies to nothing,
    // which orphans these imports; the real crate uses them.
    #![allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Sharing round-trips and is linear for every ring width.
        #[test]
        fn prop_share_roundtrip(ell in 1u32..=64, v: u64, seed: u64) {
            let ring = RingCtx::new(ell);
            let v = ring.reduce(v);
            let mut rng = StdRng::seed_from_u64(seed);
            let (a, b) = ring.share(v, &mut rng);
            prop_assert_eq!(ring.reconstruct(a, b), v);
        }

        /// Signed encode/decode round-trips across the representable range.
        #[test]
        fn prop_signed_roundtrip(ell in 2u32..=64, raw: i64) {
            let ring = RingCtx::new(ell);
            let half = if ell == 64 { i64::MAX } else { (1i64 << (ell - 1)) - 1 };
            let v = raw.clamp(-half - 1, half);
            prop_assert_eq!(ring.to_signed(ring.from_signed(v)), v);
        }

        /// Ring ops agree with u128 arithmetic mod 2^ℓ.
        #[test]
        fn prop_ring_ops_match_wide(ell in 1u32..=64, a: u64, b: u64) {
            let ring = RingCtx::new(ell);
            let m = if ell == 64 { u128::from(u64::MAX) + 1 } else { 1u128 << ell };
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            prop_assert_eq!(ring.add(a, b) as u128, (a as u128 + b as u128) % m);
            prop_assert_eq!(ring.mul(a, b) as u128, (a as u128 * b as u128) % m);
            prop_assert_eq!(ring.sub(a, b) as u128, (m + a as u128 - b as u128) % m);
        }
    }
}
