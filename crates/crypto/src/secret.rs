//! Typed secret values and branchless (constant-time) primitives.
//!
//! The security argument of the secure Yannakakis protocol assumes the
//! two-party substrate leaks nothing beyond message sizes. A from-scratch
//! implementation can silently break that through side channels: branching
//! on choice bits, short-circuiting `==` on key material, or `Debug`-printing
//! wire labels into logs. This module gives the rest of the workspace the
//! vocabulary to rule those out *by type*:
//!
//! * [`Secret<T>`] — a newtype that refuses `Debug`/`Display`/`PartialEq`,
//!   zeroizes its contents on drop, and only yields the inner value through
//!   an explicit [`Secret::expose`] call (so every declassification point is
//!   greppable and visible to `cargo xtask ct-lint`);
//! * [`SecretBlock`] — `Secret<Block>`, the type of OT pads, base-OT seeds,
//!   and garbled-circuit key material at API boundaries;
//! * [`CtEq`] / [`CtSelect`] / [`CtChoice`] — branchless equality and
//!   selection, the replacements the `ct-lint` pass demands wherever derived
//!   `PartialEq` or data-dependent `if` used to touch secrets.
//!
//! The branchless primitives are written in the style of the `subtle` crate:
//! all-ones/all-zeros masks derived from a `u8` choice, with
//! [`core::hint::black_box`] applied to the mask so the optimizer does not
//! re-introduce the very branches we are eliminating. This is best-effort
//! constant time — Rust gives no hard guarantee — but it removes every
//! secret-dependent branch and short-circuit at the source level, which is
//! what the static pass checks.

use crate::block::Block;
use core::hint::black_box;

// ---------------------------------------------------------------------------
// Zeroization
// ---------------------------------------------------------------------------

/// Overwrite a value with zeros through a volatile pointer so the write is
/// not elided even when the value is dead (i.e. in `Drop`).
pub trait Zeroize {
    /// Overwrite `self` with zeros.
    fn zeroize(&mut self);
}

/// Volatile-fill a byte slice with zeros, with a compiler fence so the
/// stores are ordered before the memory is released.
pub fn zeroize_bytes(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference for the
        // duration of the write; volatile stops the dead-store elimination.
        unsafe { core::ptr::write_volatile(b, 0) };
    }
    core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
}

macro_rules! impl_zeroize_int {
    ($($t:ty),*) => {$(
        impl Zeroize for $t {
            fn zeroize(&mut self) {
                // SAFETY: exclusive, valid, aligned reference.
                unsafe { core::ptr::write_volatile(self, 0) };
                core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
            }
        }
    )*};
}

impl_zeroize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Zeroize for bool {
    fn zeroize(&mut self) {
        // SAFETY: exclusive, valid, aligned reference; `false` is a valid bool.
        unsafe { core::ptr::write_volatile(self, false) };
        core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
    }
}

impl Zeroize for Block {
    fn zeroize(&mut self) {
        self.0.zeroize();
    }
}

impl<T: Zeroize, const N: usize> Zeroize for [T; N] {
    fn zeroize(&mut self) {
        for x in self.iter_mut() {
            x.zeroize();
        }
    }
}

impl<T: Zeroize> Zeroize for Vec<T> {
    fn zeroize(&mut self) {
        for x in self.iter_mut() {
            x.zeroize();
        }
        // Dropping the elements after zeroizing is fine; shrinking is not —
        // the old tail would survive in the allocation. Keep length as-is.
    }
}

impl<T: Zeroize, U: Zeroize> Zeroize for (T, U) {
    fn zeroize(&mut self) {
        self.0.zeroize();
        self.1.zeroize();
    }
}

// ---------------------------------------------------------------------------
// Branchless choice
// ---------------------------------------------------------------------------

/// A boolean intended for branchless use: 0 or 1 in a `u8`.
///
/// Unlike `bool`, a `CtChoice` does not implement the comparison/branch sugar
/// that tempts secret-dependent control flow; converting back to `bool`
/// requires the explicit, greppable [`CtChoice::to_bool`].
#[derive(Clone, Copy)]
pub struct CtChoice(u8);

impl CtChoice {
    /// The false choice.
    pub const FALSE: CtChoice = CtChoice(0);
    /// The true choice.
    pub const TRUE: CtChoice = CtChoice(1);

    /// Build from a `bool` (no branch: `bool as u8` is a move).
    #[inline]
    pub fn from_bool(b: bool) -> CtChoice {
        CtChoice(b as u8)
    }

    /// Build from the least-significant bit of a word.
    #[inline]
    pub fn from_lsb(v: u8) -> CtChoice {
        CtChoice(v & 1)
    }

    /// The wrapped 0/1 value.
    #[inline]
    pub fn unwrap_u8(self) -> u8 {
        self.0
    }

    /// Explicit declassification to a branchable `bool`. Call sites of this
    /// are exactly the places where secret-derived data re-enters control
    /// flow, which is what `ct-lint` audits.
    #[inline]
    pub fn to_bool(self) -> bool {
        self.0 == 1
    }

    /// All-ones (if true) / all-zeros (if false) u128 mask. `black_box`
    /// keeps the optimizer from collapsing the mask back into a branch.
    #[inline]
    pub fn mask_u128(self) -> u128 {
        black_box(0u128.wrapping_sub(self.0 as u128))
    }

    /// All-ones / all-zeros u64 mask.
    #[inline]
    pub fn mask_u64(self) -> u64 {
        black_box(0u64.wrapping_sub(self.0 as u64))
    }

    /// All-ones / all-zeros u8 mask.
    #[inline]
    pub fn mask_u8(self) -> u8 {
        black_box(0u8.wrapping_sub(self.0))
    }

    /// Logical AND (branchless, no short-circuit).
    #[inline]
    pub fn and(self, rhs: CtChoice) -> CtChoice {
        CtChoice(self.0 & rhs.0)
    }

    /// Logical OR (branchless, no short-circuit).
    #[inline]
    pub fn or(self, rhs: CtChoice) -> CtChoice {
        CtChoice(self.0 | rhs.0)
    }
}

/// Logical negation (branchless).
impl std::ops::Not for CtChoice {
    type Output = CtChoice;

    #[inline]
    fn not(self) -> CtChoice {
        CtChoice(self.0 ^ 1)
    }
}

/// Reduce a u128 to a `CtChoice` that is true iff the value is nonzero,
/// without a comparison instruction the compiler could branch on.
#[inline]
fn nonzero_u128(v: u128) -> CtChoice {
    // v | -v has its top bit set iff v != 0.
    let folded = black_box(v | v.wrapping_neg());
    CtChoice((folded >> 127) as u8)
}

// ---------------------------------------------------------------------------
// Branchless equality
// ---------------------------------------------------------------------------

/// Constant-time equality: full-width compare with no short-circuit and no
/// data-dependent branch, returning a [`CtChoice`].
pub trait CtEq {
    /// Branchless `self == other`.
    fn ct_eq(&self, other: &Self) -> CtChoice;

    /// Branchless `self != other`.
    fn ct_ne(&self, other: &Self) -> CtChoice {
        !self.ct_eq(other)
    }
}

macro_rules! impl_ct_eq_int {
    ($($t:ty),*) => {$(
        impl CtEq for $t {
            #[inline]
            fn ct_eq(&self, other: &Self) -> CtChoice {
                !nonzero_u128((self ^ other) as u128)
            }
        }
    )*};
}

impl_ct_eq_int!(u8, u16, u32, u64);

impl CtEq for u128 {
    #[inline]
    fn ct_eq(&self, other: &Self) -> CtChoice {
        !nonzero_u128(self ^ other)
    }
}

impl CtEq for Block {
    #[inline]
    fn ct_eq(&self, other: &Self) -> CtChoice {
        self.0.ct_eq(&other.0)
    }
}

impl CtEq for bool {
    #[inline]
    fn ct_eq(&self, other: &Self) -> CtChoice {
        CtChoice((*self as u8 ^ *other as u8) ^ 1)
    }
}

impl<T: CtEq> CtEq for [T] {
    /// Equality over equal-length slices: the accumulated verdict never
    /// short-circuits, so the running time depends only on the length.
    /// Unequal lengths return false immediately — lengths are public.
    fn ct_eq(&self, other: &Self) -> CtChoice {
        if self.len() != other.len() {
            return CtChoice::FALSE;
        }
        let mut acc = CtChoice::TRUE;
        for (a, b) in self.iter().zip(other.iter()) {
            acc = acc.and(a.ct_eq(b));
        }
        acc
    }
}

impl<T: CtEq, const N: usize> CtEq for [T; N] {
    fn ct_eq(&self, other: &Self) -> CtChoice {
        self.as_slice().ct_eq(other.as_slice())
    }
}

// ---------------------------------------------------------------------------
// Branchless selection
// ---------------------------------------------------------------------------

/// Branchless two-way selection: `ct_select(c, t, f)` returns `t` when `c`
/// is true and `f` otherwise, with no data-dependent control flow.
pub trait CtSelect: Sized {
    /// Return `if_true` when `choice` holds, else `if_false`, branchlessly.
    fn ct_select(choice: CtChoice, if_true: Self, if_false: Self) -> Self;
}

macro_rules! impl_ct_select_int {
    ($($t:ty : $mask:ident),*) => {$(
        impl CtSelect for $t {
            #[inline]
            fn ct_select(choice: CtChoice, if_true: Self, if_false: Self) -> Self {
                let mask = choice.$mask() as $t;
                if_false ^ (mask & (if_true ^ if_false))
            }
        }
    )*};
}

impl_ct_select_int!(u8: mask_u8, u16: mask_u64, u32: mask_u64, u64: mask_u64);

impl CtSelect for u128 {
    #[inline]
    fn ct_select(choice: CtChoice, if_true: Self, if_false: Self) -> Self {
        let mask = choice.mask_u128();
        if_false ^ (mask & (if_true ^ if_false))
    }
}

impl CtSelect for Block {
    #[inline]
    fn ct_select(choice: CtChoice, if_true: Self, if_false: Self) -> Self {
        Block(u128::ct_select(choice, if_true.0, if_false.0))
    }
}

impl Block {
    /// `self` when `choice` holds, else [`Block::ZERO`] — the branchless
    /// replacement for `if bit { acc ^= self }` in garbling hot paths.
    #[inline]
    pub fn ct_masked(self, choice: CtChoice) -> Block {
        Block(self.0 & choice.mask_u128())
    }
}

/// Branchless byte-wise selection between two equal-length byte strings.
pub fn ct_select_bytes(choice: CtChoice, if_true: &[u8], if_false: &[u8]) -> Vec<u8> {
    assert_eq!(if_true.len(), if_false.len(), "ct_select_bytes length");
    let mask = choice.mask_u8();
    if_true
        .iter()
        .zip(if_false)
        .map(|(&t, &f)| f ^ (mask & (t ^ f)))
        .collect()
}

// ---------------------------------------------------------------------------
// The Secret<T> wrapper
// ---------------------------------------------------------------------------

/// A value that must not leak: no `Debug`, no `Display`, no `PartialEq`,
/// zeroized on drop, and only readable through the explicit [`expose`]
/// escape hatch.
///
/// `Secret<T>` is deliberately inconvenient. Key material, OT pads, choice
/// bits, and wire labels should spend their lifetime inside it; the places
/// that *must* see raw bytes (serialization onto the channel, feeding a
/// kernel) call [`expose`] and thereby mark themselves for audit. The
/// `ct-lint` static pass treats `expose(` call sites as the declassification
/// surface of the codebase.
///
/// [`expose`]: Secret::expose
pub struct Secret<T: Zeroize>(T);

impl<T: Zeroize> Secret<T> {
    /// Wrap a value. The wrapper owns it from here on; the caller should not
    /// keep copies around.
    #[inline]
    pub fn new(value: T) -> Secret<T> {
        Secret(value)
    }

    /// Borrow the inner value. Every call site is a declassification point.
    #[inline]
    pub fn expose(&self) -> &T {
        &self.0
    }

    /// Mutably borrow the inner value (e.g. to fill a freshly allocated
    /// buffer with key material in place).
    #[inline]
    pub fn expose_mut(&mut self) -> &mut T {
        &mut self.0
    }

    /// Unwrap without zeroizing — ownership of the secret transfers to the
    /// caller, who becomes responsible for its lifetime.
    #[inline]
    pub fn into_inner(self) -> T {
        let this = core::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is ManuallyDrop, so the Drop impl (which would
        // zeroize and then drop the inner value) never runs; reading the
        // field out transfers ownership exactly once.
        unsafe { core::ptr::read(&this.0) }
    }

    /// Apply a function to the exposed value and wrap the result.
    #[inline]
    pub fn map_exposed<U: Zeroize>(&self, f: impl FnOnce(&T) -> U) -> Secret<U> {
        Secret(f(&self.0))
    }
}

impl<T: Zeroize + CtEq> Secret<T> {
    /// Branchless equality between two secrets.
    #[inline]
    pub fn ct_eq(&self, other: &Secret<T>) -> CtChoice {
        self.0.ct_eq(&other.0)
    }
}

impl<T: Zeroize> Drop for Secret<T> {
    fn drop(&mut self) {
        self.0.zeroize();
    }
}

impl<T: Zeroize + Clone> Clone for Secret<T> {
    fn clone(&self) -> Self {
        Secret(self.0.clone())
    }
}

impl<T: Zeroize + Default> Default for Secret<T> {
    fn default() -> Self {
        Secret(T::default())
    }
}

impl<T: Zeroize> From<T> for Secret<T> {
    fn from(value: T) -> Self {
        Secret::new(value)
    }
}

/// A 128-bit secret: the type of base-OT seeds, OT pads, PRG seeds, and
/// garbled-circuit key material at API boundaries.
pub type SecretBlock = Secret<Block>;

impl SecretBlock {
    /// Sample a uniform secret block.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> SecretBlock {
        Secret::new(Block::random(rng))
    }

    /// Copy out the inner block. Like [`Secret::expose`], but by value —
    /// for feeding XOR pipelines that consume `Block`s.
    #[inline]
    pub fn expose_block(&self) -> Block {
        *self.expose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_u128_known_answers() {
        assert!(0u128.ct_eq(&0).to_bool());
        assert!(u128::MAX.ct_eq(&u128::MAX).to_bool());
        assert!(!0u128.ct_eq(&1).to_bool());
        assert!(!(1u128 << 127).ct_eq(&0).to_bool());
        assert!((1u128 << 127).ct_ne(&0).to_bool());
    }

    #[test]
    fn ct_eq_exhaustive_u8() {
        // Small-domain exhaustive check: ct_eq agrees with == on all pairs.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(a.ct_eq(&b).to_bool(), a == b, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn ct_select_exhaustive_u8() {
        for t in (0..=255u8).step_by(17) {
            for f in (0..=255u8).step_by(13) {
                assert_eq!(u8::ct_select(CtChoice::TRUE, t, f), t);
                assert_eq!(u8::ct_select(CtChoice::FALSE, t, f), f);
            }
        }
    }

    #[test]
    fn ct_select_block_known_answers() {
        let a = Block(0xdead_beef);
        let b = Block(0x1234_5678_9abc_def0);
        assert_eq!(Block::ct_select(CtChoice::TRUE, a, b), a);
        assert_eq!(Block::ct_select(CtChoice::FALSE, a, b), b);
        assert_eq!(a.ct_masked(CtChoice::TRUE), a);
        assert_eq!(a.ct_masked(CtChoice::FALSE), Block::ZERO);
    }

    #[test]
    fn ct_eq_slices() {
        let a = [1u8, 2, 3];
        let b = [1u8, 2, 3];
        let c = [1u8, 2, 4];
        assert!(a.ct_eq(&b).to_bool());
        assert!(!a.ct_eq(&c).to_bool());
        assert!(!a.as_slice().ct_eq(&b[..2]).to_bool());
    }

    #[test]
    fn ct_select_bytes_matches() {
        let t = [0xffu8, 0x00, 0xaa];
        let f = [0x11u8, 0x22, 0x33];
        assert_eq!(ct_select_bytes(CtChoice::TRUE, &t, &f), t.to_vec());
        assert_eq!(ct_select_bytes(CtChoice::FALSE, &t, &f), f.to_vec());
    }

    #[test]
    fn choice_algebra() {
        assert!(CtChoice::TRUE.and(CtChoice::TRUE).to_bool());
        assert!(!CtChoice::TRUE.and(CtChoice::FALSE).to_bool());
        assert!(CtChoice::TRUE.or(CtChoice::FALSE).to_bool());
        assert!(!CtChoice::FALSE.or(CtChoice::FALSE).to_bool());
        assert!((!CtChoice::FALSE).to_bool());
        assert_eq!(CtChoice::from_lsb(0b10).unwrap_u8(), 0);
        assert_eq!(CtChoice::from_lsb(0b11).unwrap_u8(), 1);
    }

    #[test]
    fn masks_are_all_ones_or_zeros() {
        assert_eq!(CtChoice::TRUE.mask_u128(), u128::MAX);
        assert_eq!(CtChoice::FALSE.mask_u128(), 0);
        assert_eq!(CtChoice::TRUE.mask_u64(), u64::MAX);
        assert_eq!(CtChoice::FALSE.mask_u8(), 0);
    }

    #[test]
    fn secret_expose_roundtrip() {
        let s = Secret::new(Block(42));
        assert_eq!(*s.expose(), Block(42));
        assert_eq!(s.expose_block(), Block(42));
        let inner = s.into_inner();
        assert_eq!(inner, Block(42));
    }

    #[test]
    fn secret_ct_eq() {
        let a = Secret::new(7u64);
        let b = Secret::new(7u64);
        let c = Secret::new(8u64);
        assert!(a.ct_eq(&b).to_bool());
        assert!(!a.ct_eq(&c).to_bool());
    }

    #[test]
    fn zeroize_clears_values() {
        let mut v = 0xdead_beefu64;
        v.zeroize();
        assert_eq!(v, 0);
        let mut arr = [1u8, 2, 3];
        arr.zeroize();
        assert_eq!(arr, [0, 0, 0]);
        let mut blk = Block(99);
        blk.zeroize();
        assert_eq!(blk, Block::ZERO);
        let mut bytes = vec![7u8; 8];
        zeroize_bytes(&mut bytes);
        assert_eq!(bytes, vec![0u8; 8]);
    }

    #[test]
    fn secret_map_and_clone() {
        let s = Secret::new(3u64);
        let doubled = s.map_exposed(|v| v * 2);
        assert_eq!(*doubled.expose(), 6);
        #[allow(clippy::redundant_clone)]
        let cloned = s.clone();
        assert_eq!(*cloned.expose(), 3);
    }
}
