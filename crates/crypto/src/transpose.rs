//! Bit-matrix transposition.
//!
//! IKNP-style OT extension works on an m×w bit matrix held column-wise by
//! one party and row-wise by the other; the protocol pivots between the two
//! views with a transpose. Rows are byte-packed, least-significant bit
//! first, matching the wire encoding in `secyan-transport`.

use secyan_par as par;

/// Don't split a transpose into pieces smaller than this many output bytes:
/// below it the dispatch overhead beats the win.
const PAR_MIN_OUT_BYTES: usize = 1 << 12;

/// A byte-packed bit matrix with `rows` rows and `cols` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// `rows * row_bytes` bytes; row i starts at `i * row_bytes`.
    data: Vec<u8>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> BitMatrix {
        BitMatrix {
            rows,
            cols,
            data: vec![0u8; rows * cols.div_ceil(8)],
        }
    }

    /// Build from a closure giving each bit.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> BitMatrix {
        let mut m = BitMatrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn row_bytes(&self) -> usize {
        self.cols.div_ceil(8)
    }

    /// Bit at (row, col).
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.row_bytes() + c / 8] >> (c % 8) & 1 == 1
    }

    /// Set bit at (row, col).
    pub fn set(&mut self, r: usize, c: usize, bit: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let rb = self.row_bytes();
        let byte = &mut self.data[r * rb + c / 8];
        if bit {
            *byte |= 1 << (c % 8);
        } else {
            *byte &= !(1 << (c % 8));
        }
    }

    /// Borrow row `r` as packed bytes.
    pub fn row(&self, r: usize) -> &[u8] {
        let rb = self.row_bytes();
        &self.data[r * rb..(r + 1) * rb]
    }

    /// Mutably borrow row `r` as packed bytes.
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        let rb = self.row_bytes();
        &mut self.data[r * rb..(r + 1) * rb]
    }

    /// Flat packed data (row-major).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the flat packed data (row-major). Row `i` occupies
    /// bytes `i * cols.div_ceil(8) ..`, which is what the parallel
    /// column-fill paths in OT extension partition over.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Rebuild from flat packed data.
    pub fn from_bytes(rows: usize, cols: usize, data: Vec<u8>) -> BitMatrix {
        assert_eq!(data.len(), rows * cols.div_ceil(8));
        BitMatrix { rows, cols, data }
    }

    /// The transposed matrix.
    ///
    /// Byte-blocked walk (8×8 tiles via the inner loop over bit positions)
    /// keeps this fast enough for the matrix sizes OT extension needs; the
    /// asymptotics of the callers are unaffected either way.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zero(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        let out_rb = out.row_bytes();
        let in_rb = self.row_bytes();
        // Partition over *output rows* (input columns): each worker owns a
        // contiguous band of the output buffer and re-reads the shared
        // input, keeping the cache-friendly r-outer scan order within its
        // column band. Band boundaries depend only on the (public) matrix
        // shape, so the result is identical at any thread count.
        let min_rows_per_part = PAR_MIN_OUT_BYTES.div_ceil(out_rb).max(1);
        par::with_pool_if(
            par::threads() > 1 && self.cols > min_rows_per_part,
            |pool| {
                pool.chunks_mut(&mut out.data, out_rb, min_rows_per_part, |c0, band| {
                    let c1 = c0 + band.len() / out_rb;
                    for r in 0..self.rows {
                        let row = &self.data[r * in_rb..(r + 1) * in_rb];
                        let (out_byte_col, out_bit) = (r / 8, r % 8);
                        for c in c0..c1 {
                            if row[c / 8] >> (c % 8) & 1 == 1 {
                                band[(c - c0) * out_rb + out_byte_col] |= 1 << out_bit;
                            }
                        }
                    }
                });
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn transpose_involutive_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for (rows, cols) in [(1, 1), (3, 5), (8, 8), (9, 17), (128, 70), (33, 128)] {
            let m = BitMatrix::from_fn(rows, cols, |_, _| rng.gen());
            let t = m.transpose();
            assert_eq!(t.rows(), cols);
            assert_eq!(t.cols(), rows);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
            assert_eq!(t.transpose(), m);
        }
    }

    #[test]
    fn transpose_parallel_matches_serial() {
        // Big enough to cross the parallel threshold; compare against the
        // bit-by-bit definition at several thread counts.
        let mut rng = StdRng::seed_from_u64(12);
        let m = BitMatrix::from_fn(4096, 128, |_, _| rng.gen());
        let want = m.transpose();
        for n in [1, 2, 4] {
            par::set_threads(n);
            let t = m.transpose();
            par::set_threads(0);
            assert_eq!(t, want, "threads={n}");
        }
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(m.get(r, c), want.get(c, r));
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::zero(4, 10);
        m.set(2, 9, true);
        assert!(m.get(2, 9));
        m.set(2, 9, false);
        assert!(!m.get(2, 9));
    }

    #[test]
    fn bytes_roundtrip() {
        let m = BitMatrix::from_fn(5, 13, |r, c| (r + c) % 3 == 0);
        let m2 = BitMatrix::from_bytes(5, 13, m.as_bytes().to_vec());
        assert_eq!(m, m2);
    }
}
