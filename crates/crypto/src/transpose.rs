//! Bit-matrix transposition.
//!
//! IKNP-style OT extension works on an m×w bit matrix held column-wise by
//! one party and row-wise by the other; the protocol pivots between the two
//! views with a transpose. Rows are byte-packed, least-significant bit
//! first, matching the wire encoding in `secyan-transport`.

use crate::cpu;
use secyan_par as par;

/// Don't split a transpose into pieces smaller than this many output bytes:
/// below it the dispatch overhead beats the win. The movemask kernels move
/// roughly an order of magnitude more bytes per cycle than the old scalar
/// loop did, so the break-even chunk is correspondingly larger than the
/// pre-SIMD 4 KiB (see the threads-vs-work microbench in `crates/bench`).
const PAR_MIN_OUT_BYTES: usize = 1 << 15;

/// A byte-packed bit matrix with `rows` rows and `cols` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// `rows * row_bytes` bytes; row i starts at `i * row_bytes`.
    data: Vec<u8>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> BitMatrix {
        BitMatrix {
            rows,
            cols,
            data: vec![0u8; rows * cols.div_ceil(8)],
        }
    }

    /// Build from a closure giving each bit.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> BitMatrix {
        let mut m = BitMatrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn row_bytes(&self) -> usize {
        self.cols.div_ceil(8)
    }

    /// Bit at (row, col).
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.row_bytes() + c / 8] >> (c % 8) & 1 == 1
    }

    /// Set bit at (row, col).
    pub fn set(&mut self, r: usize, c: usize, bit: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let rb = self.row_bytes();
        let byte = &mut self.data[r * rb + c / 8];
        if bit {
            *byte |= 1 << (c % 8);
        } else {
            *byte &= !(1 << (c % 8));
        }
    }

    /// Borrow row `r` as packed bytes.
    pub fn row(&self, r: usize) -> &[u8] {
        let rb = self.row_bytes();
        &self.data[r * rb..(r + 1) * rb]
    }

    /// Mutably borrow row `r` as packed bytes.
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        let rb = self.row_bytes();
        &mut self.data[r * rb..(r + 1) * rb]
    }

    /// Flat packed data (row-major).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the flat packed data (row-major). Row `i` occupies
    /// bytes `i * cols.div_ceil(8) ..`, which is what the parallel
    /// column-fill paths in OT extension partition over.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Rebuild from flat packed data.
    pub fn from_bytes(rows: usize, cols: usize, data: Vec<u8>) -> BitMatrix {
        assert_eq!(data.len(), rows * cols.div_ceil(8));
        BitMatrix { rows, cols, data }
    }

    /// The transposed matrix.
    ///
    /// Work is partitioned into column bands by `secyan-par` exactly as
    /// before; *within* a band the inner loop dispatches (via
    /// [`crate::cpu`]) to a movemask kernel — AVX2 32×8 tiles, SSE2 16×8
    /// tiles — with the scalar bit loop covering unaligned column
    /// head/tail and the row remainder. The output is a pure function of
    /// the input, so neither the band boundaries (public shape only) nor
    /// the kernel choice can change a single output byte.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zero(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        let out_rb = out.row_bytes();
        let in_rb = self.row_bytes();
        let feats = cpu::features();
        // Partition over *output rows* (input columns): each worker owns a
        // contiguous band of the output buffer and re-reads the shared
        // input, keeping the cache-friendly r-outer scan order within its
        // column band. Band boundaries depend only on the (public) matrix
        // shape, so the result is identical at any thread count.
        let min_rows_per_part = PAR_MIN_OUT_BYTES.div_ceil(out_rb).max(1);
        par::with_pool_if(
            par::threads() > 1 && self.cols > min_rows_per_part,
            |pool| {
                pool.chunks_mut(&mut out.data, out_rb, min_rows_per_part, |c0, band| {
                    transpose_band(&self.data, self.rows, in_rb, out_rb, c0, band, feats);
                });
            },
        );
        out
    }
}

/// Fill one output band (input columns `c0 ..= c0 + band.len()/out_rb`)
/// from the full input. Runs serially inside one `secyan-par` worker.
fn transpose_band(
    src: &[u8],
    rows: usize,
    in_rb: usize,
    out_rb: usize,
    c0: usize,
    band: &mut [u8],
    feats: cpu::Features,
) {
    let c1 = c0 + band.len() / out_rb;
    // The movemask kernels consume whole input bytes (8 columns at a
    // time), so carve the 8-aligned middle [ca, cb) out of [c0, c1); the
    // unaligned head/tail columns take the scalar loop.
    let ca = c0.next_multiple_of(8).min(c1);
    let cb = ca + (c1 - ca) / 8 * 8;
    // Rows below `r_done` for columns [ca, cb) were filled by a SIMD strip.
    let mut r_done = 0;
    #[cfg(target_arch = "x86_64")]
    if ca < cb {
        if feats.avx2 {
            let n32 = rows / 32 * 32;
            if n32 > 0 {
                // SAFETY: `feats.avx2` comes from the runtime CPUID probe
                // in `cpu::features()`, so the AVX2 kernel is supported.
                unsafe { simd::strips_avx2(src, in_rb, out_rb, 0..n32, ca..cb, c0, band) };
                r_done = n32;
            }
        }
        if feats.sse2 {
            let n16 = r_done + (rows - r_done) / 16 * 16;
            if n16 > r_done {
                // SAFETY: `feats.sse2` comes from the runtime CPUID probe
                // in `cpu::features()`, so the SSE2 kernel is supported.
                unsafe { simd::strips_sse2(src, in_rb, out_rb, r_done..n16, ca..cb, c0, band) };
                r_done = n16;
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = feats;
    // Scalar coverage of whatever the kernels did not touch. All three
    // regions write disjoint (row, byte) slots of the zeroed band, so
    // order is irrelevant.
    transpose_bits_scalar(src, in_rb, out_rb, 0..rows, c0..ca, c0, band);
    transpose_bits_scalar(src, in_rb, out_rb, 0..rows, cb..c1, c0, band);
    transpose_bits_scalar(src, in_rb, out_rb, r_done..rows, ca..cb, c0, band);
}

/// Reference bit loop: transpose input bits (r, c) for r in `rows`,
/// c in `cols` into the band starting at output row `c0`.
fn transpose_bits_scalar(
    src: &[u8],
    in_rb: usize,
    out_rb: usize,
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
    c0: usize,
    band: &mut [u8],
) {
    for r in rows {
        let row = &src[r * in_rb..(r + 1) * in_rb];
        let (out_byte_col, out_bit) = (r / 8, r % 8);
        for c in cols.clone() {
            if row[c / 8] >> (c % 8) & 1 == 1 {
                band[(c - c0) * out_rb + out_byte_col] |= 1 << out_bit;
            }
        }
    }
}

/// Movemask transpose kernels (EMP/libOTe-style `sse_trans`).
///
/// A tile gathers the input byte holding columns `cc..cc+8` from 16 (SSE2)
/// or 32 (AVX2) consecutive rows into one vector, one row per lane. Peeling
/// the bit positions top-down — `movemask` reads every lane's MSB, then a
/// left shift promotes the next bit — yields, per iteration `b`, the packed
/// 16/32-row slice of input column `cc + b`, which is exactly a run of
/// output-row bytes: store it little-endian at byte `rr/8` of output row
/// `cc + b`. The per-lane shift is `slli_epi64`; its cross-byte carries
/// enter at bit 0 of the next lane byte and never climb to the MSB within
/// the ≤7 shifts performed, so every movemask reads clean bits. Matches
/// the crate's LSB-first packing bit-for-bit (asserted by the equivalence
/// tests below).
#[cfg(target_arch = "x86_64")]
mod simd {
    use core::arch::x86_64::*;
    use core::ops::Range;

    /// 16-row SSE2 strips. `rows` must be a multiple of 16 long and
    /// 16-aligned; `cols` 8-aligned on both ends.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn strips_sse2(
        src: &[u8],
        in_rb: usize,
        out_rb: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        c0: usize,
        band: &mut [u8],
    ) {
        debug_assert!(rows.start.is_multiple_of(16) && rows.len().is_multiple_of(16));
        debug_assert!(cols.start.is_multiple_of(8) && cols.len().is_multiple_of(8));
        for rr in rows.step_by(16) {
            for cc in cols.clone().step_by(8) {
                let ib = cc / 8;
                let mut t = [0u8; 16];
                for (i, b) in t.iter_mut().enumerate() {
                    *b = src[(rr + i) * in_rb + ib];
                }
                // SAFETY: `t` is a 16-byte buffer; loadu has no alignment
                // requirement.
                let mut x = unsafe { _mm_loadu_si128(t.as_ptr().cast()) };
                for b in (0..8).rev() {
                    let mask = _mm_movemask_epi8(x) as u16;
                    let off = (cc + b - c0) * out_rb + rr / 8;
                    band[off..off + 2].copy_from_slice(&mask.to_le_bytes());
                    x = _mm_slli_epi64::<1>(x);
                }
            }
        }
    }

    /// 32-row AVX2 strips. Same contract as [`strips_sse2`] with 32-row
    /// granularity.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn strips_avx2(
        src: &[u8],
        in_rb: usize,
        out_rb: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        c0: usize,
        band: &mut [u8],
    ) {
        debug_assert!(rows.start.is_multiple_of(32) && rows.len().is_multiple_of(32));
        debug_assert!(cols.start.is_multiple_of(8) && cols.len().is_multiple_of(8));
        for rr in rows.step_by(32) {
            for cc in cols.clone().step_by(8) {
                let ib = cc / 8;
                let mut t = [0u8; 32];
                for (i, b) in t.iter_mut().enumerate() {
                    *b = src[(rr + i) * in_rb + ib];
                }
                // SAFETY: `t` is a 32-byte buffer; loadu has no alignment
                // requirement.
                let mut x = unsafe { _mm256_loadu_si256(t.as_ptr().cast()) };
                for b in (0..8).rev() {
                    let mask = _mm256_movemask_epi8(x) as u32;
                    let off = (cc + b - c0) * out_rb + rr / 8;
                    band[off..off + 4].copy_from_slice(&mask.to_le_bytes());
                    x = _mm256_slli_epi64::<1>(x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn transpose_involutive_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for (rows, cols) in [(1, 1), (3, 5), (8, 8), (9, 17), (128, 70), (33, 128)] {
            let m = BitMatrix::from_fn(rows, cols, |_, _| rng.gen());
            let t = m.transpose();
            assert_eq!(t.rows(), cols);
            assert_eq!(t.cols(), rows);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
            assert_eq!(t.transpose(), m);
        }
    }

    #[test]
    fn transpose_parallel_matches_serial() {
        // Big enough to cross the parallel threshold; compare against the
        // bit-by-bit definition at several thread counts.
        let mut rng = StdRng::seed_from_u64(12);
        let m = BitMatrix::from_fn(4096, 128, |_, _| rng.gen());
        let want = m.transpose();
        for n in [1, 2, 4] {
            par::set_threads(n);
            let t = m.transpose();
            par::set_threads(0);
            assert_eq!(t, want, "threads={n}");
        }
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(m.get(r, c), want.get(c, r));
            }
        }
    }

    /// The SIMD arm must agree with the forced-scalar arm bit-for-bit on
    /// ragged shapes: rows/cols off every kernel boundary (8, 16, 32,
    /// 128), including shapes where only head/tail scalar coverage runs.
    #[test]
    fn simd_matches_scalar_on_ragged_shapes() {
        let _guard = crate::cpu::override_lock();
        let mut rng = StdRng::seed_from_u64(21);
        let shapes = [
            (1, 1),
            (7, 9),
            (15, 127),
            (16, 128),
            (17, 129),
            (31, 64),
            (32, 65),
            (33, 200),
            (48, 7),
            (100, 100),
            (127, 1000),
            (128, 1001),
            (129, 999),
            (255, 33),
            (256, 512),
        ];
        for (rows, cols) in shapes {
            let m = BitMatrix::from_fn(rows, cols, |_, _| rng.gen());
            crate::cpu::set_force_scalar(true);
            let want = m.transpose();
            crate::cpu::set_force_scalar(false);
            let got = m.transpose();
            crate::cpu::clear_force_scalar();
            assert_eq!(got, want, "{rows}x{cols}");
            // And both satisfy the bit-level definition.
            for r in 0..rows.min(40) {
                for c in 0..cols.min(40) {
                    assert_eq!(m.get(r, c), want.get(c, r));
                }
            }
        }
    }

    /// Band-internal kernel switching must not depend on where the
    /// parallel partitioner puts band boundaries.
    #[test]
    fn simd_parallel_matches_serial_scalar() {
        let _guard = crate::cpu::override_lock();
        let mut rng = StdRng::seed_from_u64(22);
        let m = BitMatrix::from_fn(500, 3000, |_, _| rng.gen());
        crate::cpu::set_force_scalar(true);
        let want = m.transpose();
        crate::cpu::set_force_scalar(false);
        for n in [1, 2, 4] {
            par::set_threads(n);
            let t = m.transpose();
            par::set_threads(0);
            assert_eq!(t, want, "threads={n}");
        }
        crate::cpu::clear_force_scalar();
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::zero(4, 10);
        m.set(2, 9, true);
        assert!(m.get(2, 9));
        m.set(2, 9, false);
        assert!(!m.get(2, 9));
    }

    #[test]
    fn bytes_roundtrip() {
        let m = BitMatrix::from_fn(5, 13, |r, c| (r + c) % 3 == 0);
        let m2 = BitMatrix::from_bytes(5, 13, m.as_bytes().to_vec());
        assert_eq!(m, m2);
    }
}
