//! Arithmetic modulo the Mersenne prime p = 2^127 − 1.
//!
//! The multiplicative group of Z_p hosts the Chou–Orlandi base oblivious
//! transfer (crate `secyan-ot`). A production system would use an elliptic
//! curve group; we substitute a Mersenne-prime field because (a) the base OT
//! is invoked only O(κ) times and then amortized away by IKNP extension, so
//! its cost model is irrelevant to the paper's figures, and (b) 2^127 − 1
//! admits very fast portable reduction. The group is *simulation-grade*:
//! structurally the protocol is identical, but 127-bit discrete log is not a
//! production hardness level. See DESIGN.md §3.

/// The modulus p = 2^127 − 1.
pub const P: u128 = (1u128 << 127) - 1;

/// An element of Z_p in canonical form (0 ≤ value < p).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp(u128);

// Inherent add/sub/mul keep field arithmetic explicit at call sites; no
// operator-trait imports needed.
#[allow(clippy::should_implement_trait)]
impl Fp {
    /// Zero.
    pub const ZERO: Fp = Fp(0);
    /// One.
    pub const ONE: Fp = Fp(1);
    /// A fixed generator-like base for Diffie–Hellman-style exchanges. Any
    /// element of large order works; 7 generates a subgroup of order large
    /// enough for the simulation.
    pub const G: Fp = Fp(7);

    /// Reduce an arbitrary u128 into canonical form.
    pub fn new(v: u128) -> Fp {
        // Fold the top bit(s): 2^127 ≡ 1 (mod p).
        let mut x = (v & P) + (v >> 127);
        if x >= P {
            x -= P;
        }
        Fp(x)
    }

    /// Canonical representative.
    pub fn value(self) -> u128 {
        self.0
    }

    /// Field addition.
    pub fn add(self, rhs: Fp) -> Fp {
        // Both inputs < 2^127, so the sum fits in u128 without overflow.
        Fp::new(self.0 + rhs.0)
    }

    /// Field subtraction.
    pub fn sub(self, rhs: Fp) -> Fp {
        Fp::new(self.0 + P - rhs.0)
    }

    /// Field multiplication via a 128×128→256-bit product followed by
    /// Mersenne folding.
    pub fn mul(self, rhs: Fp) -> Fp {
        let (lo, hi) = wide_mul(self.0, rhs.0);
        // x = hi·2^128 + lo ≡ 2·hi + (lo mod 2^127) + (lo >> 127)  (mod p)
        let folded_lo = (lo & P) + (lo >> 127);
        // hi < 2^126 because both operands are < 2^127, so 2·hi < 2^127.
        let acc = folded_lo + (hi << 1);
        Fp::new(acc)
    }

    /// Exponentiation by square-and-multiply.
    pub fn pow(self, mut e: u128) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (panics on zero), via Fermat's little theorem.
    pub fn inv(self) -> Fp {
        assert_ne!(self.0, 0, "inverse of zero");
        self.pow(P - 2)
    }
}

/// Full 128×128→256-bit product as `(lo, hi)`.
fn wide_mul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a0, a1) = (a & MASK, a >> 64);
    let (b0, b1) = (b & MASK, b >> 64);
    let t0 = a0 * b0;
    let t1 = a1 * b0 + (t0 >> 64);
    let t2 = a0 * b1 + (t1 & MASK);
    let lo = (t0 & MASK) | (t2 << 64);
    let hi = a1 * b1 + (t1 >> 64) + (t2 >> 64);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_fp(rng: &mut StdRng) -> Fp {
        Fp::new(rng.gen())
    }

    #[test]
    fn reduction_is_canonical() {
        assert_eq!(Fp::new(P).value(), 0);
        assert_eq!(Fp::new(P + 5).value(), 5);
        assert_eq!(Fp::new(u128::MAX).value(), 1); // 2^128 - 1 = 2p + 1 ≡ 1
    }

    #[test]
    fn field_axioms_hold_on_samples() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let (a, b, c) = (rand_fp(&mut rng), rand_fp(&mut rng), rand_fp(&mut rng));
            assert_eq!(a.add(b), b.add(a));
            assert_eq!(a.mul(b), b.mul(a));
            assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
            assert_eq!(a.sub(a), Fp::ZERO);
            assert_eq!(a.add(Fp::ZERO), a);
            assert_eq!(a.mul(Fp::ONE), a);
        }
    }

    #[test]
    fn inverse_is_correct() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let a = rand_fp(&mut rng);
            if a == Fp::ZERO {
                continue;
            }
            assert_eq!(a.mul(a.inv()), Fp::ONE);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fp::new(123456789);
        let mut acc = Fp::ONE;
        for e in 0..20u128 {
            assert_eq!(a.pow(e), acc);
            acc = acc.mul(a);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = rand_fp(&mut rng);
        assert_eq!(a.pow(P - 1), Fp::ONE);
    }

    #[test]
    fn diffie_hellman_agreement() {
        // The algebra the base OT relies on: (g^a)^b == (g^b)^a.
        let mut rng = StdRng::seed_from_u64(10);
        let a: u128 = rng.gen::<u128>() >> 1;
        let b: u128 = rng.gen::<u128>() >> 1;
        assert_eq!(Fp::G.pow(a).pow(b), Fp::G.pow(b).pow(a));
    }
}
