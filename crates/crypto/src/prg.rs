//! Seedable pseudorandom generator.
//!
//! Protocol parties expand short seeds into long pseudorandom streams in
//! many places: IKNP column expansion, switching-network wire masks, garbled
//! circuit label generation, and dummy-tuple annotations. `Prg` wraps
//! `rand`'s `StdRng` (a ChaCha-based CSPRNG) behind a seed-from-`Block` API
//! so call sites read like the protocol descriptions ("expand seed k_i").

use crate::block::Block;
use crate::secret::{SecretBlock, Zeroize};
use crate::sha256::tagged_hash;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic pseudorandom stream keyed by a 128-bit seed.
pub struct Prg {
    rng: StdRng,
}

impl Prg {
    /// Derive a PRG from a 128-bit seed and a domain-separation tag.
    ///
    /// The tag prevents two protocol layers that happen to share a seed from
    /// producing correlated streams. The derived expansion key is zeroized
    /// before this function returns; prefer [`Prg::from_secret`] when the
    /// seed itself is secret-typed.
    pub fn from_seed(tag: &[u8], seed: Block) -> Prg {
        let mut key = tagged_hash(tag, &seed.to_bytes());
        let rng = StdRng::from_seed(key);
        key.zeroize();
        Prg { rng }
    }

    /// Derive a PRG from a secret-typed seed (base-OT keys, OT pads). The
    /// seed stays inside its [`SecretBlock`] wrapper — this is the one
    /// declassification point between the seed and the key schedule.
    pub fn from_secret(tag: &[u8], seed: &SecretBlock) -> Prg {
        Prg::from_seed(tag, seed.expose_block())
    }

    /// Next pseudorandom block.
    pub fn next_block(&mut self) -> Block {
        Block(self.rng.gen())
    }

    /// Next pseudorandom u64.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Fill `buf` with pseudorandom bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.rng.fill_bytes(buf);
    }

    /// `n` pseudorandom bits (used for IKNP column expansion).
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        let mut bytes = vec![0u8; n.div_ceil(8)];
        self.rng.fill_bytes(&mut bytes);
        (0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect()
    }

    /// `n` pseudorandom u64 values.
    pub fn u64s(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.rng.next_u64()).collect()
    }

    /// Access the underlying `Rng` for APIs that want one.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_tag() {
        let s = Block(42);
        let mut a = Prg::from_seed(b"t", s);
        let mut b = Prg::from_seed(b"t", s);
        assert_eq!(a.next_block(), b.next_block());
        assert_eq!(a.u64s(5), b.u64s(5));
    }

    #[test]
    fn tag_separates_streams() {
        let s = Block(42);
        let mut a = Prg::from_seed(b"t1", s);
        let mut b = Prg::from_seed(b"t2", s);
        assert_ne!(a.next_block(), b.next_block());
    }

    #[test]
    fn seed_separates_streams() {
        let mut a = Prg::from_seed(b"t", Block(1));
        let mut b = Prg::from_seed(b"t", Block(2));
        assert_ne!(a.next_block(), b.next_block());
    }

    #[test]
    fn bits_have_requested_length() {
        let mut p = Prg::from_seed(b"t", Block(7));
        assert_eq!(p.bits(13).len(), 13);
        assert_eq!(p.bits(0).len(), 0);
    }
}
