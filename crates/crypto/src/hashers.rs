//! Tweakable correlation-robust hashing for garbling and OT extension.
//!
//! Garbled-circuit gates and IKNP rows hash a 128-bit block together with a
//! public tweak (gate id / row index). Production systems use fixed-key
//! AES for this (EMP, SECYAN's backend); [`TweakHasher::Aes`] reproduces
//! that construction from scratch (see [`crate::aes`]) and is the default
//! on every hot path. [`TweakHasher::Sha256`] remains available as a
//! slower, independent random-oracle-style cross-check, and
//! [`TweakHasher::Fast`] — a non-cryptographic mixer — serves large-scale
//! benchmark runs where only the cost *shape* matters. The choice never
//! affects message sizes or protocol structure, only the per-gate constant.
//!
//! The AES variant is the standard tweaked MMO construction
//! `H(x, t) = π(σ(x) ⊕ t) ⊕ σ(x)` with `π` the fixed-key AES permutation
//! and `σ` a linear orthomorphism (here `σ(hi ‖ lo) = (hi ⊕ lo) ‖ hi`),
//! which is circular-correlation-robust under the usual ideal-permutation
//! analysis. The batched entry points ([`TweakHasher::hash_batch`],
//! [`TweakHasher::hash4`], …) hoist the key schedule and dispatch out of
//! the per-gate loop and hand the kernel 4–8 independent blocks per call.

use crate::aes::{fixed_key, PIPELINE_WIDTH};
use crate::block::Block;
use crate::secret::Zeroize;
use crate::sha256::{digest_to_u64, Sha256};
use secyan_par as par;

/// Below this many blocks a batch hash runs serially — the pool dispatch
/// would cost more than the AES work it spreads.
const PAR_MIN_BLOCKS: usize = 2048;

/// Below this many wide rows `hash_row_batch` runs serially. Rows carry
/// N/16 AES calls each, so the bar is lower than for single blocks.
const PAR_MIN_ROWS: usize = 512;

/// The hash used at each garbled gate / OT row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TweakHasher {
    /// SHA-256(label ‖ tweak) truncated to 128 bits. Secure but an order
    /// of magnitude slower than [`TweakHasher::Aes`]; kept for
    /// cross-checking.
    Sha256,
    /// Fixed-key AES-128 in the tweaked MMO construction. The default.
    #[default]
    Aes,
    /// An xorshift-multiply mixer. **Insecure**; benchmark-only.
    Fast,
}

/// The linear orthomorphism σ(hi ‖ lo) = (hi ⊕ lo) ‖ hi. Both σ and
/// x ↦ σ(x) ⊕ x are bijective, which is what the MMO security proof needs.
#[inline]
fn sigma(x: u128) -> u128 {
    let hi = x >> 64;
    let lo = x & u64::MAX as u128;
    ((hi ^ lo) << 64) | hi
}

impl TweakHasher {
    /// Hash one block under a tweak.
    #[inline]
    pub fn hash(self, b: Block, tweak: u64) -> Block {
        match self {
            TweakHasher::Sha256 => sha_hash(&[b], tweak),
            TweakHasher::Aes => {
                let s = sigma(b.0);
                Block(fixed_key().encrypt_u128(s ^ tweak as u128) ^ s)
            }
            TweakHasher::Fast => Block(fast_mix(b.0, tweak)),
        }
    }

    /// Hash two blocks under a tweak (a double-width compression; argument
    /// order matters).
    #[inline]
    pub fn hash2(self, a: Block, b: Block, tweak: u64) -> Block {
        match self {
            TweakHasher::Sha256 => sha_hash(&[a, b], tweak),
            TweakHasher::Aes => {
                // σ²(a) ⊕ σ(b) keeps the two arguments in distinct linear
                // positions, so swapping them changes the input to π.
                let s = sigma(sigma(a.0)) ^ sigma(b.0);
                Block(fixed_key().encrypt_u128(s ^ tweak as u128) ^ s)
            }
            TweakHasher::Fast => {
                Block(fast_mix(a.0, tweak) ^ fast_mix(b.0.rotate_left(64), !tweak))
            }
        }
    }

    /// Hash four blocks, each under its own tweak, in one kernel dispatch.
    /// Exactly the shape of one half-gates AND gate on the garbler side.
    #[inline]
    pub fn hash4(self, xs: [Block; 4], tweaks: [u64; 4]) -> [Block; 4] {
        match self {
            TweakHasher::Aes => {
                let s = xs.map(|x| sigma(x.0));
                let mut buf = [
                    s[0] ^ tweaks[0] as u128,
                    s[1] ^ tweaks[1] as u128,
                    s[2] ^ tweaks[2] as u128,
                    s[3] ^ tweaks[3] as u128,
                ];
                fixed_key().encrypt_blocks(&mut buf);
                [
                    Block(buf[0] ^ s[0]),
                    Block(buf[1] ^ s[1]),
                    Block(buf[2] ^ s[2]),
                    Block(buf[3] ^ s[3]),
                ]
            }
            _ => [
                self.hash(xs[0], tweaks[0]),
                self.hash(xs[1], tweaks[1]),
                self.hash(xs[2], tweaks[2]),
                self.hash(xs[3], tweaks[3]),
            ],
        }
    }

    /// Hash two independent (block, tweak) pairs in one dispatch — the
    /// shape of one AND gate on the evaluator side.
    #[inline]
    pub fn hash_pair(self, x0: Block, t0: u64, x1: Block, t1: u64) -> (Block, Block) {
        match self {
            TweakHasher::Aes => {
                let s0 = sigma(x0.0);
                let s1 = sigma(x1.0);
                let mut buf = [s0 ^ t0 as u128, s1 ^ t1 as u128];
                fixed_key().encrypt_blocks(&mut buf);
                (Block(buf[0] ^ s0), Block(buf[1] ^ s1))
            }
            _ => (self.hash(x0, t0), self.hash(x1, t1)),
        }
    }

    /// Hash a slice of blocks, block `j` under tweak `tweak_base + j` —
    /// the shape of post-transpose IKNP row hashing. One kernel dispatch
    /// per 8 blocks; large batches additionally split across the worker
    /// pool (each element depends only on its own block and index, so the
    /// chunk boundaries cannot change the output).
    pub fn hash_batch(self, xs: &[Block], tweak_base: u64) -> Vec<Block> {
        let mut out = vec![Block(0); xs.len()];
        par::with_pool_if(
            par::threads() > 1 && xs.len() >= 2 * PAR_MIN_BLOCKS,
            |pool| {
                pool.chunks_mut(&mut out, 1, PAR_MIN_BLOCKS, |off, chunk| {
                    self.hash_batch_into(
                        &xs[off..off + chunk.len()],
                        tweak_base.wrapping_add(off as u64),
                        chunk,
                    );
                });
            },
        );
        out
    }

    /// Serial kernel behind [`TweakHasher::hash_batch`].
    fn hash_batch_into(self, xs: &[Block], tweak_base: u64, out: &mut [Block]) {
        match self {
            TweakHasher::Aes => {
                let mut sig: Vec<u128> = xs.iter().map(|x| sigma(x.0)).collect();
                let mut buf: Vec<u128> = sig
                    .iter()
                    .enumerate()
                    .map(|(j, &s)| s ^ tweak_base.wrapping_add(j as u64) as u128)
                    .collect();
                fixed_key().encrypt_blocks(&mut buf);
                for (o, (&c, &s)) in out.iter_mut().zip(buf.iter().zip(&sig)) {
                    *o = Block(c ^ s);
                }
                // The scratch holds σ(label) images — label material.
                sig.zeroize();
                buf.zeroize();
            }
            _ => {
                for (j, (o, &x)) in out.iter_mut().zip(xs).enumerate() {
                    *o = self.hash(x, tweak_base.wrapping_add(j as u64));
                }
            }
        }
    }

    /// Batched [`TweakHasher::hash2`]: element `j` hashes
    /// `(a[j], b[j])` under tweak `tweak_base + j`. Parallel for large
    /// batches, same chunk-invariance argument as [`TweakHasher::hash_batch`].
    pub fn hash2_batch(self, a: &[Block], b: &[Block], tweak_base: u64) -> Vec<Block> {
        assert_eq!(a.len(), b.len(), "hash2_batch wants aligned slices");
        let mut out = vec![Block(0); a.len()];
        par::with_pool_if(
            par::threads() > 1 && a.len() >= 2 * PAR_MIN_BLOCKS,
            |pool| {
                pool.chunks_mut(&mut out, 1, PAR_MIN_BLOCKS, |off, chunk| {
                    let end = off + chunk.len();
                    self.hash2_batch_into(
                        &a[off..end],
                        &b[off..end],
                        tweak_base.wrapping_add(off as u64),
                        chunk,
                    );
                });
            },
        );
        out
    }

    /// Serial kernel behind [`TweakHasher::hash2_batch`].
    fn hash2_batch_into(self, a: &[Block], b: &[Block], tweak_base: u64, out: &mut [Block]) {
        match self {
            TweakHasher::Aes => {
                let mut sig: Vec<u128> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| sigma(sigma(x.0)) ^ sigma(y.0))
                    .collect();
                let mut buf: Vec<u128> = sig
                    .iter()
                    .enumerate()
                    .map(|(j, &s)| s ^ tweak_base.wrapping_add(j as u64) as u128)
                    .collect();
                fixed_key().encrypt_blocks(&mut buf);
                for (o, (&c, &s)) in out.iter_mut().zip(buf.iter().zip(&sig)) {
                    *o = Block(c ^ s);
                }
                sig.zeroize();
                buf.zeroize();
            }
            _ => {
                for (j, (o, (&x, &y))) in out.iter_mut().zip(a.iter().zip(b)).enumerate() {
                    *o = self.hash2(x, y, tweak_base.wrapping_add(j as u64));
                }
            }
        }
    }

    /// Hash every block of `xs`, block `j` under its own `tweaks[j]`, into
    /// `out`. This is the fully general batched shape: the level-parallel
    /// garbler/evaluator use it to hand the AES kernel a whole level's
    /// worth of gate hashes (4 per AND garbling, 2 evaluating) as one
    /// contiguous batch instead of one 4-block dispatch per gate. Serial
    /// by design — it is called from inside `secyan-par` workers, which
    /// must never nest a pool.
    pub fn hash_each_into(self, xs: &[Block], tweaks: &[u64], out: &mut [Block]) {
        assert_eq!(xs.len(), tweaks.len(), "hash_each wants aligned slices");
        assert_eq!(xs.len(), out.len(), "hash_each wants aligned slices");
        match self {
            TweakHasher::Aes => {
                let mut sig: Vec<u128> = xs.iter().map(|x| sigma(x.0)).collect();
                let mut buf: Vec<u128> = sig
                    .iter()
                    .zip(tweaks)
                    .map(|(&s, &t)| s ^ t as u128)
                    .collect();
                fixed_key().encrypt_blocks(&mut buf);
                for (o, (&c, &s)) in out.iter_mut().zip(buf.iter().zip(&sig)) {
                    *o = Block(c ^ s);
                }
                // The scratch holds σ(label) images — label material.
                sig.zeroize();
                buf.zeroize();
            }
            _ => {
                for (o, (&x, &t)) in out.iter_mut().zip(xs.iter().zip(tweaks)) {
                    *o = self.hash(x, t);
                }
            }
        }
    }

    /// Allocating wrapper around [`TweakHasher::hash_each_into`].
    pub fn hash_each(self, xs: &[Block], tweaks: &[u64]) -> Vec<Block> {
        let mut out = vec![Block(0); xs.len()];
        self.hash_each_into(xs, tweaks, &mut out);
        out
    }

    /// Hash a wide row (N bytes, N a multiple of 16) down to 64 bits under
    /// a tweak — the KKRT OPRF output masking. The AES variant chains the
    /// single-key Matyas–Meyer–Oseas compression h' = π(h ⊕ m) ⊕ h ⊕ m
    /// over the row's 16-byte words, seeded with the tweak.
    pub fn hash_row<const N: usize>(self, tweak: u64, row: &[u8; N]) -> u64 {
        match self {
            TweakHasher::Sha256 => sha_row(tweak, row),
            TweakHasher::Aes => {
                let mut h = tweak as u128;
                for chunk in row.chunks_exact(16) {
                    let m = u128::from_le_bytes(chunk.try_into().expect("16-byte chunk"));
                    let t = h ^ m;
                    h = fixed_key().encrypt_u128(t) ^ t;
                }
                h as u64
            }
            TweakHasher::Fast => fast_row(tweak, row),
        }
    }

    /// Batched [`TweakHasher::hash_row`]: row `j` hashes under tweak
    /// `tweak_base + j`. The AES variant advances all chains of a chunk of
    /// [`PIPELINE_WIDTH`] rows together, so every kernel dispatch carries
    /// a full pipeline of independent blocks; large batches additionally
    /// split rows across the worker pool (each row's chain is independent
    /// of its neighbours).
    pub fn hash_row_batch<const N: usize>(self, tweak_base: u64, rows: &[[u8; N]]) -> Vec<u64> {
        let mut out = vec![0u64; rows.len()];
        par::with_pool_if(
            par::threads() > 1 && rows.len() >= 2 * PAR_MIN_ROWS,
            |pool| {
                pool.chunks_mut(&mut out, 1, PAR_MIN_ROWS, |off, chunk| {
                    self.hash_row_batch_into(
                        tweak_base.wrapping_add(off as u64),
                        &rows[off..off + chunk.len()],
                        chunk,
                    );
                });
            },
        );
        out
    }

    /// Serial kernel behind [`TweakHasher::hash_row_batch`].
    fn hash_row_batch_into<const N: usize>(
        self,
        tweak_base: u64,
        rows: &[[u8; N]],
        out: &mut [u64],
    ) {
        match self {
            TweakHasher::Aes => {
                assert_eq!(N % 16, 0, "row length must be a multiple of 16");
                let mut pos = 0;
                let mut h: Vec<u128> = Vec::with_capacity(PIPELINE_WIDTH);
                let mut t = vec![0u128; PIPELINE_WIDTH];
                for (c, chunk) in rows.chunks(PIPELINE_WIDTH).enumerate() {
                    h.clear();
                    h.extend(
                        (0..chunk.len()).map(|j| {
                            tweak_base.wrapping_add((c * PIPELINE_WIDTH + j) as u64) as u128
                        }),
                    );
                    for k in 0..N / 16 {
                        for (j, row) in chunk.iter().enumerate() {
                            let m = u128::from_le_bytes(
                                row[16 * k..16 * (k + 1)].try_into().expect("16 bytes"),
                            );
                            t[j] = h[j] ^ m;
                        }
                        h.copy_from_slice(&t[..chunk.len()]);
                        fixed_key().encrypt_blocks(&mut h);
                        for j in 0..chunk.len() {
                            h[j] ^= t[j];
                        }
                    }
                    for (o, &x) in out[pos..].iter_mut().zip(h.iter()) {
                        *o = x as u64;
                    }
                    pos += chunk.len();
                }
                // Chain state mixes OPRF row material; scrub it.
                h.zeroize();
                t.zeroize();
            }
            _ => {
                for (j, (o, row)) in out.iter_mut().zip(rows).enumerate() {
                    *o = self.hash_row(tweak_base.wrapping_add(j as u64), row);
                }
            }
        }
    }
}

/// SHA-256 of blocks ‖ tweak, truncated to 128 bits.
fn sha_hash(blocks: &[Block], tweak: u64) -> Block {
    let mut h = Sha256::new();
    for b in blocks {
        h.update(&b.to_bytes());
    }
    h.update(&tweak.to_le_bytes());
    let d = h.finalize();
    Block(u128::from_le_bytes(d[..16].try_into().expect("16 bytes")))
}

/// SHA-256 row compression for the KKRT masking.
fn sha_row(tweak: u64, row: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"row-hash");
    h.update(&tweak.to_le_bytes());
    h.update(row);
    digest_to_u64(&h.finalize())
}

/// Non-cryptographic row compression (benchmark-only, like `fast_mix`).
fn fast_row(tweak: u64, row: &[u8]) -> u64 {
    let mut h = tweak as u128;
    for (k, chunk) in row.chunks(16).enumerate() {
        let mut m = [0u8; 16];
        m[..chunk.len()].copy_from_slice(chunk);
        h = fast_mix(h ^ u128::from_le_bytes(m), tweak.wrapping_add(k as u64));
    }
    h as u64
}

/// SplitMix-style 128-bit mixer. Not cryptographic.
fn fast_mix(x: u128, tweak: u64) -> u128 {
    let mut lo = (x as u64) ^ tweak.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut hi = ((x >> 64) as u64) ^ tweak.rotate_left(32);
    for _ in 0..2 {
        lo = (lo ^ (lo >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        hi = (hi ^ (hi >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let t = lo ^ hi.rotate_left(17);
        hi ^= lo.rotate_left(43);
        lo = t;
    }
    ((hi as u128) << 64) | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TweakHasher; 3] = [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast];

    #[test]
    fn deterministic_and_tweak_sensitive() {
        for h in ALL {
            let b = Block(12345);
            assert_eq!(h.hash(b, 1), h.hash(b, 1));
            assert_ne!(h.hash(b, 1), h.hash(b, 2));
            assert_ne!(h.hash(b, 1), h.hash(Block(12346), 1));
        }
    }

    #[test]
    fn hash2_argument_order_matters() {
        for h in ALL {
            let (a, b) = (Block(1), Block(2));
            assert_ne!(h.hash2(a, b, 0), h.hash2(b, a, 0));
            assert_eq!(h.hash2(a, b, 7), h.hash2(a, b, 7));
            assert_ne!(h.hash2(a, b, 7), h.hash2(a, b, 8));
        }
    }

    #[test]
    fn aes_hash_differs_from_input_and_spreads() {
        // H(x, t) must not leak σ(x) or x trivially.
        let b = Block(0xdead_beef);
        let h = TweakHasher::Aes.hash(b, 3);
        assert_ne!(h, b);
        let h2 = TweakHasher::Aes.hash(Block(0xdead_beee), 3);
        assert!((h.0 ^ h2.0).count_ones() > 30, "poor diffusion");
    }

    #[test]
    fn sigma_is_an_orthomorphism() {
        // σ and σ ⊕ id are both injective on a sample.
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_sx = std::collections::HashSet::new();
        for i in 0..1000u128 {
            let x = i.wrapping_mul(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
            assert!(seen_s.insert(sigma(x)));
            assert!(seen_sx.insert(sigma(x) ^ x));
        }
    }

    #[test]
    fn batch_equals_per_element_hash() {
        for h in ALL {
            let xs: Vec<Block> = (0..37u128).map(|i| Block(i * 0x9e37_79b9)).collect();
            let batch = h.hash_batch(&xs, 1000);
            assert_eq!(batch.len(), xs.len());
            for (j, &x) in xs.iter().enumerate() {
                assert_eq!(batch[j], h.hash(x, 1000 + j as u64), "{h:?} element {j}");
            }
        }
    }

    #[test]
    fn hash2_batch_equals_per_element_hash2() {
        for h in ALL {
            let a: Vec<Block> = (0..19u128).map(|i| Block(i + 1)).collect();
            let b: Vec<Block> = (0..19u128).map(|i| Block(i * 77 + 5)).collect();
            let batch = h.hash2_batch(&a, &b, 50);
            for j in 0..a.len() {
                assert_eq!(batch[j], h.hash2(a[j], b[j], 50 + j as u64), "{h:?} {j}");
            }
        }
    }

    #[test]
    fn hash4_and_hash_pair_equal_scalar() {
        for h in ALL {
            let xs = [Block(1), Block(2), Block(3), Block(4)];
            let ts = [10, 10, 11, 11];
            let got = h.hash4(xs, ts);
            for j in 0..4 {
                assert_eq!(got[j], h.hash(xs[j], ts[j]), "{h:?} lane {j}");
            }
            let (p0, p1) = h.hash_pair(Block(9), 2, Block(8), 3);
            assert_eq!(p0, h.hash(Block(9), 2));
            assert_eq!(p1, h.hash(Block(8), 3));
        }
    }

    #[test]
    fn hash_each_equals_per_element_hash() {
        for h in ALL {
            let xs: Vec<Block> = (0..23u128).map(|i| Block(i * 31 + 2)).collect();
            let tweaks: Vec<u64> = (0..23u64).map(|i| i.wrapping_mul(0x7777) ^ 5).collect();
            let got = h.hash_each(&xs, &tweaks);
            for j in 0..xs.len() {
                assert_eq!(got[j], h.hash(xs[j], tweaks[j]), "{h:?} element {j}");
            }
        }
    }

    #[test]
    fn row_hash_batch_equals_scalar_and_is_tweak_sensitive() {
        for h in ALL {
            let rows: Vec<[u8; 64]> = (0..21u8).map(|i| [i; 64]).collect();
            let batch = h.hash_row_batch(500, &rows);
            for (j, row) in rows.iter().enumerate() {
                assert_eq!(batch[j], h.hash_row(500 + j as u64, row), "{h:?} row {j}");
            }
            assert_ne!(h.hash_row(1, &rows[0]), h.hash_row(2, &rows[0]), "{h:?}");
            assert_ne!(h.hash_row(1, &rows[0]), h.hash_row(1, &rows[1]), "{h:?}");
        }
    }

    #[test]
    fn batch_hashing_is_thread_count_invariant() {
        // Batches big enough to cross the parallel thresholds must agree
        // with the serial result exactly, at several thread counts.
        let xs: Vec<Block> = (0..6000u128).map(|i| Block(i * 0x9e37_79b9 + 7)).collect();
        let rows: Vec<[u8; 64]> = (0..1500u64)
            .map(|i| {
                let mut r = [0u8; 64];
                r[..8].copy_from_slice(&i.to_le_bytes());
                r
            })
            .collect();
        for h in ALL {
            secyan_par::set_threads(1);
            let want_b = h.hash_batch(&xs, 9);
            let want_2 = h.hash2_batch(&xs, &xs, 9);
            let want_r = h.hash_row_batch(9, &rows);
            for n in [2, 4] {
                secyan_par::set_threads(n);
                assert_eq!(h.hash_batch(&xs, 9), want_b, "{h:?} threads={n}");
                assert_eq!(h.hash2_batch(&xs, &xs, 9), want_2, "{h:?} threads={n}");
                assert_eq!(h.hash_row_batch(9, &rows), want_r, "{h:?} threads={n}");
            }
            secyan_par::set_threads(0);
        }
    }

    #[test]
    fn variants_disagree_with_each_other() {
        // Sanity: the three hashers are genuinely different functions.
        let b = Block(42);
        let outs = [
            TweakHasher::Sha256.hash(b, 1),
            TweakHasher::Aes.hash(b, 1),
            TweakHasher::Fast.hash(b, 1),
        ];
        assert_ne!(outs[0], outs[1]);
        assert_ne!(outs[1], outs[2]);
        assert_ne!(outs[0], outs[2]);
    }

    #[test]
    fn fast_mix_spreads_bits() {
        // Single-bit input changes flip many output bits (sanity, not a
        // security claim).
        let base = fast_mix(0, 0);
        let flipped = fast_mix(1, 0);
        assert!((base ^ flipped).count_ones() > 20);
    }
}
