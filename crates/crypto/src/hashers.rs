//! Tweakable correlation-robust hashing for garbling and OT extension.
//!
//! Garbled-circuit gates and IKNP rows hash a 128-bit block together with a
//! public tweak (gate id / row index). Production systems use fixed-key
//! AES-NI for this (EMP, SECYAN's backend); we provide
//! [`TweakHasher::Sha256`] as the secure-in-the-random-oracle-model default
//! and [`TweakHasher::Fast`] — a non-cryptographic mixer — for large-scale
//! benchmark runs where only the cost *shape* matters. The choice never
//! affects message sizes or protocol structure, only the per-gate constant.

use crate::block::Block;
use crate::sha256::Sha256;

/// The hash used at each garbled gate / OT row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TweakHasher {
    /// SHA-256(label ‖ tweak) truncated to 128 bits. The default.
    #[default]
    Sha256,
    /// An xorshift-multiply mixer. **Insecure**; benchmark-only stand-in for
    /// fixed-key AES, roughly matching its speed class on plain Rust.
    Fast,
}

impl TweakHasher {
    /// Hash one block under a tweak.
    pub fn hash(self, b: Block, tweak: u64) -> Block {
        match self {
            TweakHasher::Sha256 => {
                let mut h = Sha256::new();
                h.update(&b.to_bytes());
                h.update(&tweak.to_le_bytes());
                let d = h.finalize();
                Block(u128::from_le_bytes(d[..16].try_into().expect("16 bytes")))
            }
            TweakHasher::Fast => Block(fast_mix(b.0, tweak)),
        }
    }

    /// Hash two blocks under a tweak (used by half-gates, which hash the
    /// pair of input labels).
    pub fn hash2(self, a: Block, b: Block, tweak: u64) -> Block {
        match self {
            TweakHasher::Sha256 => {
                let mut h = Sha256::new();
                h.update(&a.to_bytes());
                h.update(&b.to_bytes());
                h.update(&tweak.to_le_bytes());
                let d = h.finalize();
                Block(u128::from_le_bytes(d[..16].try_into().expect("16 bytes")))
            }
            TweakHasher::Fast => Block(fast_mix(a.0, tweak) ^ fast_mix(b.0.rotate_left(64), !tweak)),
        }
    }
}

/// SplitMix-style 128-bit mixer. Not cryptographic.
fn fast_mix(x: u128, tweak: u64) -> u128 {
    let mut lo = (x as u64) ^ tweak.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut hi = ((x >> 64) as u64) ^ tweak.rotate_left(32);
    for _ in 0..2 {
        lo = (lo ^ (lo >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        hi = (hi ^ (hi >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let t = lo ^ hi.rotate_left(17);
        hi ^= lo.rotate_left(43);
        lo = t;
    }
    ((hi as u128) << 64) | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tweak_sensitive() {
        for h in [TweakHasher::Sha256, TweakHasher::Fast] {
            let b = Block(12345);
            assert_eq!(h.hash(b, 1), h.hash(b, 1));
            assert_ne!(h.hash(b, 1), h.hash(b, 2));
            assert_ne!(h.hash(b, 1), h.hash(Block(12346), 1));
        }
    }

    #[test]
    fn hash2_argument_order_matters() {
        for h in [TweakHasher::Sha256, TweakHasher::Fast] {
            let (a, b) = (Block(1), Block(2));
            assert_ne!(h.hash2(a, b, 0), h.hash2(b, a, 0));
        }
    }

    #[test]
    fn fast_mix_spreads_bits() {
        // Single-bit input changes flip many output bits (sanity, not a
        // security claim).
        let base = fast_mix(0, 0);
        let flipped = fast_mix(1, 0);
        assert!((base ^ flipped).count_ones() > 20);
    }
}
