//! Cryptographic primitives for the secure Yannakakis workspace.
//!
//! Everything here is implemented from scratch (per the reproduction brief):
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, the workhorse hash used for key
//!   derivation, correlation-robust hashing in garbled circuits and OT
//!   extension, and hashing elements into PSI bins.
//! * [`prg`] — a seedable pseudorandom generator (ChaCha-based via `rand`'s
//!   `StdRng`) used wherever a party expands a short seed into a long mask
//!   stream (IKNP columns, switching-network wire masks, dummy annotations).
//! * [`block`] — 128-bit blocks, the unit of wire labels and OT messages.
//! * [`mersenne`] — arithmetic in Z_p, p = 2^127 − 1, whose multiplicative
//!   group hosts the Chou–Orlandi base OT. Simulation-grade (see DESIGN.md).
//! * [`gf64`] — the binary field GF(2^64) plus polynomial interpolation,
//!   used by the OPPRF hint encoding in circuit PSI.
//! * [`cpu`] — the single runtime feature probe behind every SIMD kernel
//!   (movemask transpose, batched CLMUL, AES-NI pipelining), with a
//!   `SECYAN_FORCE_SCALAR` override for differential testing.
//! * [`transpose`] — bit-matrix transposition for IKNP OT extension.
//! * [`share`] — additive secret sharing over Z_{2^ℓ} (§5.1 of the paper).
//! * [`aes`] — a from-scratch fixed-key AES-128 kernel (FIPS-197), the
//!   permutation behind the default tweakable hash.
//! * [`hashers`] — the tweakable hash used by garbling/OT: fixed-key AES
//!   in the MMO construction by default, SHA-256 for cross-checking, and
//!   a fast insecure variant for large-scale benchmarking.
//! * [`secret`] — typed secrets ([`Secret`], [`SecretBlock`]) with
//!   zeroize-on-drop and no `Debug`, plus branchless [`CtEq`]/[`CtSelect`]
//!   primitives; enforced across the workspace by `cargo xtask ct-lint`.

pub mod aes;
pub mod block;
pub mod cpu;
pub mod gf64;
pub mod hashers;
pub mod mersenne;
pub mod prg;
pub mod secret;
pub mod sha256;
pub mod share;
pub mod transpose;

pub use block::Block;
pub use hashers::TweakHasher;
pub use prg::Prg;
pub use secret::{
    ct_select_bytes, zeroize_bytes, CtChoice, CtEq, CtSelect, Secret, SecretBlock, Zeroize,
};
pub use share::RingCtx;
