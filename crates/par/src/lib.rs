//! Deterministic intra-party data parallelism.
//!
//! The paper's cost model is dominated by per-element symmetric-key work —
//! OPRF evaluations, per-bin polynomial hints, garbled AND gates — all
//! independent across elements, bins, and circuit levels. This crate
//! provides the one worker pool every hot path shares, built directly on
//! `std::thread::scope` (no dependencies), with a contract the MPC layers
//! rely on:
//!
//! **Determinism.** Work is partitioned *statically* by public sizes only
//! (contiguous index ranges), and every parallel stage writes into
//! pre-allocated output slots in canonical order. Nothing observable —
//! protocol transcripts in particular — may depend on the thread count or
//! on scheduling. The helpers here make that the path of least resistance:
//! [`Pool::map`]/[`Pool::map_into`] preserve input order exactly,
//! [`Pool::chunks_mut`]/[`Pool::zip_chunks_mut`] hand each worker disjoint
//! contiguous slices of a caller-owned buffer.
//!
//! **Secret independence.** Partition boundaries derive from lengths
//! (public in every calling protocol), never from data values, so the
//! thread schedule leaks nothing an observer of the public sizes could not
//! already compute.
//!
//! Thread count: [`set_threads`] (programmatic override) takes precedence
//! over the `SECYAN_THREADS` environment variable, which takes precedence
//! over [`std::thread::available_parallelism`]. At one thread everything
//! runs inline on the caller — no spawns, no synchronization, identical
//! results.
//!
//! A pool is *scoped*: [`with_pool`] spawns workers once and the closure
//! may dispatch many parallel sections through them (levelized garbling
//! dispatches once per circuit level), amortizing spawn cost.

use std::mem::MaybeUninit;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Programmatic thread-count override; 0 = no override.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `SECYAN_THREADS` value; 0 = unset or unparsable.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Set the worker count programmatically (takes precedence over the
/// `SECYAN_THREADS` environment variable). `0` clears the override.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel sections will use: the [`set_threads`]
/// override if set, else `SECYAN_THREADS` if set, else the machine's
/// available parallelism.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("SECYAN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A type-erased broadcast job: runs part `p` of the current parallel
/// section. The `'static` lifetime is a lie told under lock — see the
/// SAFETY argument in [`Pool::broadcast`].
type Job = &'static (dyn Fn(usize) + Sync);

#[derive(Default)]
struct State {
    /// Bumped once per dispatched section; workers track the last epoch
    /// they served so a stale wakeup never re-runs a job.
    epoch: u64,
    job: Option<Job>,
    /// Number of parts in the current section (part 0 runs on the caller).
    parts: usize,
    /// Workers that have not yet acknowledged the current section.
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
}

/// Handle to a scoped worker pool (or to the serial fallback). Obtained via
/// [`with_pool`]; every dispatch helper partitions deterministically and
/// returns only after all parts finished.
pub struct Pool<'scope> {
    shared: Option<&'scope Shared>,
    workers: usize,
}

/// Run `f` with a worker pool of [`threads`] workers (the caller thread
/// participates, so `threads() - 1` are spawned). At one thread no spawn
/// happens and every dispatch runs inline. Panics inside parallel sections
/// propagate to the caller; workers are always joined before returning.
pub fn with_pool<R>(f: impl FnOnce(&Pool) -> R) -> R {
    let n = threads();
    if n <= 1 {
        return f(&Pool {
            shared: None,
            workers: 1,
        });
    }
    let shared = Shared {
        state: Mutex::new(State::default()),
        work: Condvar::new(),
        done: Condvar::new(),
    };
    std::thread::scope(|s| {
        for w in 0..n - 1 {
            let sh = &shared;
            s.spawn(move || worker_loop(sh, w));
        }
        let pool = Pool {
            shared: Some(&shared),
            workers: n,
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&pool)));
        // Always release the workers, even when `f` unwound, or the scope
        // would deadlock joining them.
        let mut st = shared.state.lock().expect("pool lock poisoned");
        st.shutdown = true;
        drop(st);
        shared.work.notify_all();
        match out {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    })
}

/// Like [`with_pool`] but with the pool gated on `parallel`: callers pass
/// `parallel = false` for small inputs so no threads spawn and the serial
/// path runs with zero overhead (and byte-identical results).
pub fn with_pool_if<R>(parallel: bool, f: impl FnOnce(&Pool) -> R) -> R {
    if parallel {
        with_pool(f)
    } else {
        f(&Pool {
            shared: None,
            workers: 1,
        })
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let (job, parts) = {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break (st.job.expect("job set with epoch"), st.parts);
                }
                st = shared.work.wait(st).expect("pool lock poisoned");
            }
        };
        // Spawned worker w serves part w + 1 (part 0 runs on the caller).
        // Sections with fewer parts than workers leave the tail idle.
        let part = worker + 1;
        let res = if part < parts {
            catch_unwind(AssertUnwindSafe(|| job(part)))
        } else {
            Ok(())
        };
        let mut st = shared.state.lock().expect("pool lock poisoned");
        if res.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

impl Pool<'_> {
    /// Number of workers (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(p)` for every part `p` in `0..parts`, on up to `parts`
    /// threads; the caller thread runs part 0. Blocks until every part
    /// finished. `parts` must not exceed [`Pool::workers`].
    pub fn broadcast(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = self.shared else {
            for p in 0..parts {
                f(p);
            }
            return;
        };
        assert!(parts <= self.workers, "more parts than workers");
        if parts <= 1 {
            if parts == 1 {
                f(0);
            }
            return;
        }
        // SAFETY: the borrow of `f` is erased to 'static so it can sit in
        // the shared state, but this function does not return until every
        // worker decremented `remaining` (the wait loop below), i.e. until
        // no worker can still hold the reference. The job slot is cleared
        // before the wait ends, so a stale pointer never survives the call.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            st.job = Some(job);
            st.parts = parts;
            st.epoch += 1;
            st.remaining = self.workers - 1;
            st.panicked = false;
        }
        shared.work.notify_all();
        // The caller participates as part 0. A panic here must still wait
        // for the workers (they borrow from the caller's frame).
        let mine = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut st = shared.state.lock().expect("pool lock poisoned");
        while st.remaining > 0 {
            st = shared.done.wait(st).expect("pool lock poisoned");
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(p) = mine {
            resume_unwind(p);
        }
        assert!(
            !worker_panicked,
            "worker panicked during a parallel section"
        );
    }

    /// Split `0..len` into at most [`Pool::workers`] contiguous ranges of
    /// at least `min_per_part` indices each and run `f` on each range in
    /// parallel. The partition depends only on `len` and the worker count —
    /// never on data — and small inputs collapse to one inline call.
    ///
    /// Floor division sizes the part count: an input shorter than
    /// `2 * min_per_part` runs as a single inline call, so a caller's
    /// minimum-work threshold is a real floor on per-worker work, not a
    /// rounding suggestion. Fanning out below the threshold is exactly the
    /// regime where dispatch overhead dominates and multicore loses to the
    /// serial loop.
    pub fn ranges(&self, len: usize, min_per_part: usize, f: impl Fn(Range<usize>) + Sync) {
        if len == 0 {
            return;
        }
        let per = min_per_part.max(1);
        let parts = self.workers.min(len / per).max(1);
        if parts == 1 {
            f(0..len);
            return;
        }
        let base = len / parts;
        let rem = len % parts;
        self.broadcast(parts, &|p| {
            let start = p * base + p.min(rem);
            let end = start + base + usize::from(p < rem);
            f(start..end);
        });
    }

    /// Order-preserving parallel map: `out[i] = f(i, &items[i])`. Slots are
    /// written exactly once, in pre-allocated canonical positions, so the
    /// result is identical at any thread count.
    pub fn map<I: Sync, O: Send>(
        &self,
        items: &[I],
        min_per_part: usize,
        f: impl Fn(usize, &I) -> O + Sync,
    ) -> Vec<O> {
        let n = items.len();
        let mut raw: Vec<MaybeUninit<O>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let dst = SharedSlice::new(&mut raw);
        self.ranges(n, min_per_part, |r| {
            // SAFETY: `ranges` hands each part a disjoint index range, so
            // the slices below never alias across workers.
            let slots = unsafe { dst.slice_mut(r.clone()) };
            for (slot, i) in slots.iter_mut().zip(r) {
                slot.write(f(i, &items[i]));
            }
        });
        // SAFETY: `ranges` covers every index in 0..n exactly once, so all
        // slots are initialized; Vec<MaybeUninit<O>> and Vec<O> share
        // layout. (If `f` panicked we never get here — the Vec leaks its
        // contents rather than dropping uninitialized slots.)
        unsafe {
            let mut raw = std::mem::ManuallyDrop::new(raw);
            Vec::from_raw_parts(raw.as_mut_ptr().cast::<O>(), raw.len(), raw.capacity())
        }
    }

    /// Parallel map into a caller-owned buffer: `out[i] = f(i, &items[i])`.
    pub fn map_into<I: Sync, O: Send>(
        &self,
        items: &[I],
        min_per_part: usize,
        out: &mut [O],
        f: impl Fn(usize, &I) -> O + Sync,
    ) {
        assert_eq!(items.len(), out.len(), "map_into wants aligned slices");
        let dst = SharedSlice::new(out);
        self.ranges(items.len(), min_per_part, |r| {
            // SAFETY: `ranges` hands each part a disjoint index range, so
            // the slices below never alias across workers.
            let slots = unsafe { dst.slice_mut(r.clone()) };
            for (slot, i) in slots.iter_mut().zip(r) {
                *slot = f(i, &items[i]);
            }
        });
    }

    /// Partition `data` (whose length must be a multiple of `granule`)
    /// into contiguous granule-aligned chunks and run
    /// `f(first_granule_index, chunk)` on each in parallel.
    pub fn chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        granule: usize,
        min_per_part: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(granule > 0, "granule must be positive");
        assert_eq!(data.len() % granule, 0, "data must be granule-aligned");
        let n = data.len() / granule;
        let dst = SharedSlice::new(data);
        self.ranges(n, min_per_part, |r| {
            // SAFETY: granule-aligned images of disjoint granule-index
            // ranges are disjoint element ranges.
            let chunk = unsafe { dst.slice_mut(r.start * granule..r.end * granule) };
            f(r.start, chunk);
        });
    }

    /// Parallel lockstep over per-item state and a granule-strided buffer:
    /// `f(i, &mut items[i], &mut data[i*granule..(i+1)*granule])`. The
    /// per-column PRG fills in OT extension are exactly this shape.
    pub fn zip_chunks_mut<A: Send, T: Send>(
        &self,
        items: &mut [A],
        data: &mut [T],
        granule: usize,
        min_per_part: usize,
        f: impl Fn(usize, &mut A, &mut [T]) + Sync,
    ) {
        assert!(granule > 0, "granule must be positive");
        assert_eq!(
            items.len() * granule,
            data.len(),
            "data must hold one granule per item"
        );
        let si = SharedSlice::new(items);
        let sd = SharedSlice::new(data);
        self.ranges(items.len(), min_per_part, |r| {
            // SAFETY: `ranges` hands each part a disjoint index range, so
            // both the item slice and its granule image are exclusive.
            let its = unsafe { si.slice_mut(r.clone()) };
            // SAFETY: granule-aligned image of a disjoint index range.
            let chunk = unsafe { sd.slice_mut(r.start * granule..r.end * granule) };
            for (k, a) in its.iter_mut().enumerate() {
                f(r.start + k, a, &mut chunk[k * granule..(k + 1) * granule]);
            }
        });
    }
}

/// A raw view of a caller-owned `&mut [T]` that parallel sections carve
/// into disjoint sub-slices. All unsafety of the pool concentrates here;
/// every public helper above guarantees disjointness via static contiguous
/// partitioning.
struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: a SharedSlice is only ever used to hand *disjoint* element
// ranges to different threads (the helpers partition by disjoint index
// ranges), so concurrent access never aliases; T: Send makes moving the
// elements' mutation across threads sound.
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    fn new(data: &mut [T]) -> SharedSlice<T> {
        SharedSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// Carve out `r` as an exclusive slice.
    ///
    /// SAFETY contract: the caller must guarantee `r` is in bounds and that
    /// no other live slice from this view overlaps `r`.
    // The `&self -> &mut` shape is the whole point of this raw-pointer
    // view: workers share one `SharedSlice` and each carves a disjoint
    // exclusive range out of it (the unsafe contract above).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, r: Range<usize>) -> &mut [T] {
        debug_assert!(r.start <= r.end && r.end <= self.len);
        // SAFETY: bounds checked above; exclusivity is the caller's
        // contract (disjoint ranges per worker).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.end - r.start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Tests mutate the global thread-count override; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let out = f();
        set_threads(0);
        out
    }

    #[test]
    fn map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for n in [1, 2, 3, 8] {
            let got = with_threads(n, || {
                with_pool(|pool| pool.map(&items, 1, |_, &x| x * x + 1))
            });
            assert_eq!(got, want, "threads={n}");
        }
    }

    #[test]
    fn map_into_and_chunks_cover_every_slot_once() {
        let items: Vec<usize> = (0..517).collect();
        let mut out = vec![0usize; 517];
        with_threads(4, || {
            with_pool(|pool| pool.map_into(&items, 7, &mut out, |i, &x| i + x));
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i));

        let mut data = vec![0u32; 24 * 5];
        with_threads(3, || {
            with_pool(|pool| {
                pool.chunks_mut(&mut data, 5, 2, |first, chunk| {
                    assert_eq!(chunk.len() % 5, 0);
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (first * 5 + k) as u32;
                    }
                });
            });
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn zip_chunks_pairs_items_with_their_granules() {
        let mut items: Vec<u32> = (0..40).collect();
        let mut data = vec![0u32; 40 * 3];
        with_threads(4, || {
            with_pool(|pool| {
                pool.zip_chunks_mut(&mut items, &mut data, 3, 4, |i, item, chunk| {
                    *item += 100;
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 3 + k) as u32;
                    }
                });
            });
        });
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u32 + 100));
        assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn many_dispatches_reuse_one_scope() {
        let hits = AtomicU64::new(0);
        with_threads(4, || {
            with_pool(|pool| {
                for _ in 0..50 {
                    pool.ranges(64, 1, |r| {
                        hits.fetch_add(r.len() as u64, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50 * 64);
    }

    #[test]
    fn min_per_part_collapses_small_inputs() {
        // With a high min_per_part a small input must run as one part
        // (inline), which we can observe via thread identity.
        with_threads(4, || {
            with_pool(|pool| {
                let caller = std::thread::current().id();
                pool.ranges(10, 1000, |r| {
                    assert_eq!(r, 0..10);
                    assert_eq!(std::thread::current().id(), caller);
                });
            });
        });
    }

    #[test]
    fn worker_panic_propagates_and_pool_shuts_down() {
        let result = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                with_pool(|pool| {
                    pool.ranges(100, 1, |r| {
                        if r.contains(&99) {
                            panic!("boom in part");
                        }
                    });
                })
            }))
        });
        assert!(result.is_err());
        // A fresh pool still works after the previous one unwound.
        let ok = with_threads(4, || {
            with_pool(|pool| pool.map(&[1, 2, 3], 1, |_, &x| x + 1))
        });
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn set_threads_overrides_and_clears() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn serial_pool_is_inline() {
        with_threads(1, || {
            with_pool(|pool| {
                assert_eq!(pool.workers(), 1);
                let caller = std::thread::current().id();
                pool.ranges(1000, 1, |_| {
                    assert_eq!(std::thread::current().id(), caller);
                });
            });
        });
    }

    #[test]
    fn map_results_in_input_order_regardless_of_part_timing() {
        // Stagger part durations so completion order differs from index
        // order; the output must still be in input order.
        let items: Vec<u64> = (0..64).collect();
        let got = with_threads(4, || {
            with_pool(|pool| {
                pool.map(&items, 1, |i, &x| {
                    if i % 16 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    x * 10
                })
            })
        });
        assert_eq!(got, (0..64).map(|x| x * 10).collect::<Vec<u64>>());
    }
}
