//! Ad-hoc operator timing used to find protocol hot spots (dev tool).
//!
//! Also emits `BENCH_hashers.json`: machine-readable per-block timings of
//! the three tweakable hashers, so successive PRs can track the perf
//! trajectory of the garbling/OT hot path.
use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_crypto::{Block, RingCtx, TweakHasher};
use secyan_oep::{shared_oep_other, shared_oep_perm_holder};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::run_protocol;
use std::time::Instant;

fn main() {
    profile_hashers();
    profile_parallel();
    profile_online();

    let ring = RingCtx::new(32);
    let hasher = TweakHasher::default();
    // 1. session-ish setup
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let _s = OtSender::setup(ch, &mut rng, hasher);
            let _r = OtReceiver::setup(ch, &mut rng, hasher);
            let _ks = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let _kr = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let _r = OtReceiver::setup(ch, &mut rng, hasher);
            let _s = OtSender::setup(ch, &mut rng, hasher);
            let _kr = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let _ks = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
        },
    );
    println!("session setup: {:?}", t.elapsed());

    // 2. shared OEP of size 300
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let xi: Vec<usize> = (0..300).collect();
            let shares = vec![7u64; 300];
            shared_oep_perm_holder(ch, &xi, &shares, ring, &mut otr)
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let shares = vec![3u64; 300];
            shared_oep_other(ch, &shares, 300, ring, &mut ots, &mut rng)
        },
    );
    println!("shared OEP 300: {:?}", t.elapsed());

    // 3. product circuit 75 rows shared (like reduce_join)
    use secyan_circuit::{u64_to_bits, Builder};
    use secyan_gc::{evaluate_shared, garble_shared, with_shared_outputs, SharedOutputSpec};
    let n = 75;
    let spec = SharedOutputSpec::uniform(n, 32);
    let circ = with_shared_outputs(&spec, |b| {
        let va: Vec<_> = (0..n).map(|_| b.alice_word(32)).collect();
        let za: Vec<_> = (0..n).map(|_| b.alice_word(32)).collect();
        let vb: Vec<_> = (0..n).map(|_| b.bob_word(32)).collect();
        let zb: Vec<_> = (0..n).map(|_| b.bob_word(32)).collect();
        (0..n)
            .map(|i| {
                let v = b.add_words(&va[i], &vb[i]);
                let z = b.add_words(&za[i], &zb[i]);
                b.mul_words(&v, &z)
            })
            .collect()
    });
    println!("product circuit: {} ANDs", circ.and_count());
    let (c1, c2) = (circ.clone(), circ.clone());
    let (s1, s2) = (spec.clone(), spec.clone());
    let t = Instant::now();
    run_protocol(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let bits: Vec<bool> = (0..n * 64).map(|i| i % 3 == 0).collect();
            garble_shared(ch, &c1, &s1, &bits, &mut ots, hasher, &mut rng)
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let bits: Vec<bool> = (0..n * 64).map(|i| i % 3 == 0).collect();
            evaluate_shared(ch, &c2, &s2, &bits, &mut otr, hasher)
        },
    );
    println!("product GC 75 rows: {:?}", t.elapsed());

    // 4. PSI 75 x 300 with plain payloads
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let x: Vec<u64> = (0..75).collect();
            secyan_psi::psi_receiver(
                ch,
                &x,
                300,
                ring,
                &mut kkrt,
                &mut otr,
                hasher,
                &mut std::collections::VecDeque::new(),
            )
            .ind_shares
            .len()
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let y: Vec<(u64, u64)> = (0..300u64).map(|i| (i, i)).collect();
            secyan_psi::psi_sender(
                ch,
                &y,
                75,
                ring,
                &mut kkrt,
                &mut ots,
                hasher,
                &mut rng,
                &mut std::collections::VecDeque::new(),
            )
            .ind_shares
            .len()
        },
    );
    println!("plain PSI 75x300: {:?}", t.elapsed());

    // 5. merge/agg circuit over 300 rows
    let spec = SharedOutputSpec::uniform(300, 32);
    let t = Instant::now();
    let _c = with_shared_outputs(&spec, |b| {
        let eq: Vec<_> = (0..299).map(|_| b.alice_input()).collect();
        let a: Vec<_> = (0..300).map(|_| b.alice_word(32)).collect();
        let bb: Vec<_> = (0..300).map(|_| b.bob_word(32)).collect();
        let vs: Vec<_> = a.iter().zip(&bb).map(|(x, y)| b.add_words(x, y)).collect();
        let mut z = vs[0].clone();
        let mut outs = Vec::new();
        for i in 0..299 {
            let ne = b.not(eq[i]);
            outs.push(b.and_word_bit(&z, ne));
            let keep = b.and_word_bit(&z, eq[i]);
            z = b.add_words(&keep, &vs[i + 1]);
        }
        outs.push(z);
        outs
    });
    println!(
        "merge circuit build 300: {:?} ({} ANDs)",
        t.elapsed(),
        _c.and_count()
    );
    let _ = u64_to_bits(0, 1);
    let _ = Builder::new();
}

/// Time the worker-pool hot paths (IKNP extension, OPPRF hint
/// interpolation, half-gates garbling) at 1/2/4/8 threads and write
/// `BENCH_parallel.json`. The thread count is forced programmatically via
/// `secyan_par::set_threads`, overriding `SECYAN_THREADS`; the `cpus`
/// field records how many hardware threads the numbers were measured on.
fn profile_parallel() {
    use secyan_circuit::Builder;
    use secyan_par as par;
    use secyan_psi::opprf::{opprf_evaluate, opprf_program, PsiItem};

    const OT_M: usize = 1 << 16;
    const BINS: usize = 2048;
    const DEGREE: usize = 24;
    let hasher = TweakHasher::default();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let iknp_ms = |threads: usize| -> f64 {
        par::set_threads(threads);
        let (elapsed, _, _) = run_protocol(
            |ch| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut ot = OtSender::setup(ch, &mut rng, hasher);
                let t = Instant::now();
                let pairs = ot.random(ch, OT_M);
                let ms = t.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(pairs);
                ms
            },
            |ch| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
                let choices: Vec<bool> = (0..OT_M).map(|i| i % 3 == 0).collect();
                std::hint::black_box(ot.random(ch, &choices));
            },
        );
        par::set_threads(0);
        elapsed
    };

    let opprf_ms = |threads: usize| -> f64 {
        par::set_threads(threads);
        let programs: Vec<Vec<(u64, u64)>> = (0..BINS as u64)
            .map(|b| (0..8).map(|i| (b * 100 + i, b ^ i)).collect())
            .collect();
        let queries: Vec<PsiItem> = (0..BINS as u64).map(|b| PsiItem::Real(b * 100)).collect();
        let (elapsed, _, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
                let t = Instant::now();
                opprf_program(ch, &mut kkrt, &programs, DEGREE, &mut rng);
                t.elapsed().as_secs_f64() * 1e3
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(4);
                let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
                std::hint::black_box(opprf_evaluate(ch, &mut kkrt, &queries, DEGREE));
            },
        );
        par::set_threads(0);
        elapsed
    };

    // Wide circuit: independent word multiplies, so most AND gates share a
    // level and the levelized garbler can fan out.
    let mut b = Builder::new();
    let xs: Vec<_> = (0..16).map(|_| b.alice_word(32)).collect();
    let ys: Vec<_> = (0..16).map(|_| b.bob_word(32)).collect();
    let words: Vec<_> = xs.iter().zip(&ys).map(|(x, y)| b.mul_words(x, y)).collect();
    for w in &words {
        b.output_word(w);
    }
    let circ = b.finish();
    let garble_ms = |threads: usize| -> f64 {
        par::set_threads(threads);
        let mut rng = StdRng::seed_from_u64(5);
        let t = Instant::now();
        let g = secyan_gc::scheme::garble(&circ, hasher, &mut rng);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(g.tables.len());
        par::set_threads(0);
        ms
    };

    let thread_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for &t in &thread_counts {
        let iknp = iknp_ms(t);
        let opprf = opprf_ms(t);
        let gc = garble_ms(t);
        println!(
            "parallel t={t}: iknp {iknp:.1} ms, opprf hints {opprf:.1} ms, garbling {gc:.1} ms"
        );
        rows.push((t, iknp, opprf, gc));
    }

    let base = rows[0];
    let mut json = String::from("{\n  \"cpus\": ");
    json.push_str(&cpus.to_string());
    json.push_str(&format!(
        ",\n  \"iknp_extension_ots\": {OT_M},\n  \"opprf_bins\": {BINS},\n  \
\"garbling_ands\": {},\n  \"threads\": {{\n",
        circ.and_count()
    ));
    for (i, (t, iknp, opprf, gc)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{t}\": {{\"iknp_extension_ms\": {iknp:.2}, \"opprf_hints_ms\": {opprf:.2}, \
\"garbling_ms\": {gc:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let at4 = rows.iter().find(|r| r.0 == 4).unwrap_or(&base);
    json.push_str(&format!(
        "  }},\n  \"speedup_at_4_threads\": {{\"iknp_extension\": {:.2}, \"opprf_hints\": {:.2}, \
\"garbling\": {:.2}}}\n}}\n",
        base.1 / at4.1,
        base.2 / at4.2,
        base.3 / at4.3
    ));
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}

/// Cold vs. warm query latency for the offline/online phase split and
/// write `BENCH_online.json`.
///
/// * `cold` — one single-phase run from nothing: session bootstrap
///   (base OTs, KKRT OPRF seeds), all garbling, and the data-dependent
///   work, timed end to end.
/// * `warm` — the online phase alone against material provisioned by
///   `run_offline` (provisioning untimed: it happens before the data
///   arrives, which is the entire point of the split).
///
/// Both are measured twice: on loopback (`local_*_ms`, compute-bound) and
/// under a declared WAN model (`cold_ms`/`warm_ms`; see
/// [`secyan_transport::NetModel`] — every send really sleeps for its
/// serialization plus per-round propagation delay, so the headline
/// numbers reflect the network the split is designed for, where the
/// offline phase's garbled tables and OT/OPRF extensions dominate the
/// cold critical path). The model's parameters are reported in the JSON
/// next to the numbers they shaped. Medians of `REPS` runs on a chain
/// query whose shape the planner covers completely; byte counters come
/// from the phase-tagged transport metering.
fn profile_online() {
    use secyan_core::{run_offline, run_online, secure_yannakakis, SecureQuery, Session};
    use secyan_relation::{JoinTree, NaturalRing, Relation};
    use secyan_transport::{run_protocol_with_net, NetModel, Role};

    const REPS: usize = 5;
    let ring = RingCtx::new(64);
    let hasher = TweakHasher::default();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // A 3-relation chain, scalar aggregate: R1(a) ⋈ R2(a,b) ⋈ R3(b),
    // sizes 200/400/200, owners alternating. The reduce phase collapses it
    // to a single survivor, so every circuit is shape-plannable.
    let strings = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
    let (n1, n2, n3) = (24u64, 48u64, 24u64);
    let query = SecureQuery::new(
        vec![strings(&["a"]), strings(&["a", "b"]), strings(&["b"])],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        Vec::new(),
    );
    let nat = NaturalRing(ring);
    let r1 = Relation::from_rows(
        nat,
        strings(&["a"]),
        (0..n1).map(|i| (vec![i], i % 7 + 1)).collect(),
    );
    let r2 = Relation::from_rows(
        nat,
        strings(&["a", "b"]),
        (0..n2).map(|i| (vec![i % n1, i % 31], i % 5 + 1)).collect(),
    );
    let r3 = Relation::from_rows(
        nat,
        strings(&["b"]),
        (0..n3).map(|i| (vec![i % 31], i % 3 + 1)).collect(),
    );
    let sizes = [n1 as usize, n2 as usize, n3 as usize];
    let alice_rels = vec![Some(r1), None, Some(r3)];
    let bob_rels = vec![None, Some(r2), None];

    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };

    // One cold + one warm sweep under an optional network model. Returns
    // (cold_ms, warm_ms, stats-of-last-warm-run, cold_bytes, cold_rounds).
    let sweep = |net: Option<NetModel>, reps: usize, seed0: u64| {
        let mut cold_runs = Vec::new();
        let mut cold_bytes = 0u64;
        let mut cold_rounds = 0u64;
        for rep in 0..reps {
            let (qa, qb) = (query.clone(), query.clone());
            let (ra, rb) = (alice_rels.clone(), bob_rels.clone());
            let seed = seed0 + rep as u64;
            let fa = move |ch: &mut secyan_transport::Channel| {
                let mut sess = Session::new(ch, ring, hasher, seed);
                secure_yannakakis(&mut sess, &qa, &ra, Role::Alice).values
            };
            let fb = move |ch: &mut secyan_transport::Channel| {
                let mut sess = Session::new(ch, ring, hasher, seed + 1000);
                secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
            };
            let t = Instant::now();
            let (v, _, stats) = match net {
                Some(m) => run_protocol_with_net(m, fa, fb),
                None => run_protocol(fa, fb),
            };
            cold_runs.push(t.elapsed().as_secs_f64() * 1e3);
            cold_bytes = stats.total_bytes();
            cold_rounds = stats.rounds;
            std::hint::black_box(v);
        }
        // Warm: provision offline, then time only the online phase. The
        // timer is started by the party driving the run once provisioning
        // is done on both sides (run_offline returns in lockstep).
        let mut warm_runs = Vec::new();
        let mut warm_stats = secyan_transport::CommStats::default();
        for rep in 0..reps {
            let (qa, qb) = (query.clone(), query.clone());
            let (ra, rb) = (alice_rels.clone(), bob_rels.clone());
            let (s2, sz) = (sizes, sizes);
            let seed = seed0 + 2000 + rep as u64;
            let fa = move |ch: &mut secyan_transport::Channel| {
                let m = run_offline(ch, &qa, &sz, Role::Alice, ring, hasher, seed);
                let t = Instant::now();
                let v = run_online(ch, &qa, &ra, Role::Alice, ring, hasher, m).values;
                (v, t.elapsed().as_secs_f64() * 1e3)
            };
            let fb = move |ch: &mut secyan_transport::Channel| {
                let m = run_offline(ch, &qb, &s2, Role::Alice, ring, hasher, seed + 1000);
                run_online(ch, &qb, &rb, Role::Alice, ring, hasher, m);
            };
            let ((v, ms), _, stats) = match net {
                Some(m) => run_protocol_with_net(m, fa, fb),
                None => run_protocol(fa, fb),
            };
            warm_runs.push(ms);
            warm_stats = stats;
            std::hint::black_box(v);
        }
        (
            median(cold_runs),
            median(warm_runs),
            warm_stats,
            cold_bytes,
            cold_rounds,
        )
    };

    let (local_cold_ms, local_warm_ms, stats, cold_bytes, cold_rounds) = sweep(None, REPS, 1000);
    let offline_bytes = stats.offline_bytes;
    let online_bytes = stats.online_bytes;
    let online_rounds = stats.online_rounds;
    let local_speedup = local_cold_ms / local_warm_ms;
    println!(
        "online phase split (loopback): cold {local_cold_ms:.1} ms, warm {local_warm_ms:.1} ms \
         ({local_speedup:.1}x), cold {cold_bytes} B / {cold_rounds} rounds, \
         offline {offline_bytes} B / online {online_bytes} B ({online_rounds} rounds)"
    );

    // The headline numbers: the same sweep under a declared WAN. The cold
    // path must push every garbled table and OT/OPRF extension through the
    // modeled link at query time; the warm path already paid for those
    // offline.
    let net = NetModel::wan(20);
    let (cold_ms, warm_ms, _, _, _) = sweep(Some(net), 3, 5000);
    let speedup = cold_ms / warm_ms;
    println!(
        "online phase split ({} Mbit/s, {} ms one-way): cold {cold_ms:.1} ms, \
         warm {warm_ms:.1} ms ({speedup:.1}x)",
        net.bandwidth_bits_per_sec / 1_000_000,
        net.one_way_latency_us as f64 / 1e3
    );
    let json = format!(
        "{{\n  \"cpus\": {cpus},\n  \"query\": \"chain3 sizes {n1}/{n2}/{n3} scalar sum, 64-bit ring\",\n  \
\"network_model\": {{\"bandwidth_bits_per_sec\": {bw}, \"one_way_latency_us\": {lat}}},\n  \
\"reps\": {REPS},\n  \"cold_ms\": {cold_ms:.2},\n  \"warm_ms\": {warm_ms:.2},\n  \
\"speedup\": {speedup:.2},\n  \"local_cold_ms\": {local_cold_ms:.2},\n  \
\"local_warm_ms\": {local_warm_ms:.2},\n  \"local_speedup\": {local_speedup:.2},\n  \
\"cold_bytes\": {cold_bytes},\n  \"cold_rounds\": {cold_rounds},\n  \
\"offline_bytes\": {offline_bytes},\n  \"online_bytes\": {online_bytes},\n  \
\"online_rounds\": {online_rounds}\n}}\n",
        bw = net.bandwidth_bits_per_sec,
        lat = net.one_way_latency_us,
    );
    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("wrote BENCH_online.json");
}

/// Time the tweakable hashers (scalar vs batched, plus 512-bit row
/// compression) and write `BENCH_hashers.json`.
fn profile_hashers() {
    const N: usize = 1 << 16;
    const ROWS: usize = 1 << 12;
    let blocks: Vec<Block> = (0..N as u128)
        .map(|i| Block(i.wrapping_mul(0x9e37_79b9)))
        .collect();
    let rows: Vec<[u8; 64]> = (0..ROWS).map(|i| [i as u8; 64]).collect();
    let hashers = [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast];

    let mut entries = Vec::new();
    let mut sha_scalar = 0.0f64;
    for h in hashers {
        // Scalar: one dispatch per block.
        let t = Instant::now();
        let mut acc = Block::ZERO;
        for (j, &b) in blocks.iter().enumerate() {
            acc ^= h.hash(b, j as u64);
        }
        let scalar_ns = t.elapsed().as_nanos() as f64 / N as f64;
        std::hint::black_box(acc);

        // Batched: the hot-loop API.
        let t = Instant::now();
        let out = h.hash_batch(&blocks, 0);
        let batch_ns = t.elapsed().as_nanos() as f64 / N as f64;
        std::hint::black_box(out);

        // 512-bit KKRT row compression.
        let t = Instant::now();
        let out = h.hash_row_batch(0, &rows);
        let row_ns = t.elapsed().as_nanos() as f64 / ROWS as f64;
        std::hint::black_box(out);

        if matches!(h, TweakHasher::Sha256) {
            sha_scalar = scalar_ns;
        }
        println!(
            "hasher {h:?}: scalar {scalar_ns:.1} ns/block, batch {batch_ns:.1} ns/block, \
             row512 {row_ns:.1} ns/row"
        );
        entries.push((h, scalar_ns, batch_ns, row_ns));
    }

    let mut json = String::from("{\n  \"blocks\": ");
    json.push_str(&N.to_string());
    json.push_str(",\n  \"hashers\": {\n");
    for (i, (h, scalar_ns, batch_ns, row_ns)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{h:?}\": {{\"scalar_ns_per_block\": {scalar_ns:.2}, \
\"batch_ns_per_block\": {batch_ns:.2}, \"row512_ns_per_row\": {row_ns:.2}, \
\"batch_speedup_vs_sha256\": {:.2}}}{}\n",
            sha_scalar / batch_ns,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_hashers.json", &json).expect("write BENCH_hashers.json");
    println!("wrote BENCH_hashers.json");
}
