//! Ad-hoc operator timing used to find protocol hot spots (dev tool).
//!
//! Also emits `BENCH_hashers.json`: machine-readable per-block timings of
//! the three tweakable hashers, so successive PRs can track the perf
//! trajectory of the garbling/OT hot path.
use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_crypto::{Block, RingCtx, TweakHasher};
use secyan_oep::{shared_oep_other, shared_oep_perm_holder};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::run_protocol;
use std::time::Instant;

fn main() {
    // `--quick`: CI bench-smoke mode. Runs only the online phase-split
    // profile (1 rep, loopback, no BENCH file writes) and exits non-zero
    // if the chain3 round counts regress past the recorded budgets.
    if std::env::args().any(|a| a == "--quick") {
        profile_online(true);
        return;
    }
    profile_kernels();
    profile_thresholds();
    profile_hashers();
    profile_parallel();
    profile_online(false);

    let ring = RingCtx::new(32);
    let hasher = TweakHasher::default();
    // 1. session-ish setup
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let _s = OtSender::setup(ch, &mut rng, hasher);
            let _r = OtReceiver::setup(ch, &mut rng, hasher);
            let _ks = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let _kr = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let _r = OtReceiver::setup(ch, &mut rng, hasher);
            let _s = OtSender::setup(ch, &mut rng, hasher);
            let _kr = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let _ks = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
        },
    );
    println!("session setup: {:?}", t.elapsed());

    // 2. shared OEP of size 300
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let xi: Vec<usize> = (0..300).collect();
            let shares = vec![7u64; 300];
            shared_oep_perm_holder(ch, &xi, &shares, ring, &mut otr)
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let shares = vec![3u64; 300];
            shared_oep_other(ch, &shares, 300, ring, &mut ots, &mut rng)
        },
    );
    println!("shared OEP 300: {:?}", t.elapsed());

    // 3. product circuit 75 rows shared (like reduce_join)
    use secyan_circuit::{u64_to_bits, Builder};
    use secyan_gc::{evaluate_shared, garble_shared, with_shared_outputs, SharedOutputSpec};
    let n = 75;
    let spec = SharedOutputSpec::uniform(n, 32);
    let circ = with_shared_outputs(&spec, |b| {
        let va: Vec<_> = (0..n).map(|_| b.alice_word(32)).collect();
        let za: Vec<_> = (0..n).map(|_| b.alice_word(32)).collect();
        let vb: Vec<_> = (0..n).map(|_| b.bob_word(32)).collect();
        let zb: Vec<_> = (0..n).map(|_| b.bob_word(32)).collect();
        (0..n)
            .map(|i| {
                let v = b.add_words(&va[i], &vb[i]);
                let z = b.add_words(&za[i], &zb[i]);
                b.mul_words(&v, &z)
            })
            .collect()
    });
    println!("product circuit: {} ANDs", circ.and_count());
    let (c1, c2) = (circ.clone(), circ.clone());
    let (s1, s2) = (spec.clone(), spec.clone());
    let t = Instant::now();
    run_protocol(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let bits: Vec<bool> = (0..n * 64).map(|i| i % 3 == 0).collect();
            garble_shared(ch, &c1, &s1, &bits, &mut ots, hasher, &mut rng)
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let bits: Vec<bool> = (0..n * 64).map(|i| i % 3 == 0).collect();
            evaluate_shared(ch, &c2, &s2, &bits, &mut otr, hasher)
        },
    );
    println!("product GC 75 rows: {:?}", t.elapsed());

    // 4. PSI 75 x 300 with plain payloads
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let x: Vec<u64> = (0..75).collect();
            secyan_psi::psi_receiver(
                ch,
                &x,
                300,
                ring,
                &mut kkrt,
                &mut otr,
                hasher,
                &mut std::collections::VecDeque::new(),
            )
            .ind_shares
            .len()
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let y: Vec<(u64, u64)> = (0..300u64).map(|i| (i, i)).collect();
            secyan_psi::psi_sender(
                ch,
                &y,
                75,
                ring,
                &mut kkrt,
                &mut ots,
                hasher,
                &mut rng,
                &mut std::collections::VecDeque::new(),
            )
            .ind_shares
            .len()
        },
    );
    println!("plain PSI 75x300: {:?}", t.elapsed());

    // 5. merge/agg circuit over 300 rows
    let spec = SharedOutputSpec::uniform(300, 32);
    let t = Instant::now();
    let _c = with_shared_outputs(&spec, |b| {
        let eq: Vec<_> = (0..299).map(|_| b.alice_input()).collect();
        let a: Vec<_> = (0..300).map(|_| b.alice_word(32)).collect();
        let bb: Vec<_> = (0..300).map(|_| b.bob_word(32)).collect();
        let vs: Vec<_> = a.iter().zip(&bb).map(|(x, y)| b.add_words(x, y)).collect();
        let mut z = vs[0].clone();
        let mut outs = Vec::new();
        for i in 0..299 {
            let ne = b.not(eq[i]);
            outs.push(b.and_word_bit(&z, ne));
            let keep = b.and_word_bit(&z, eq[i]);
            z = b.add_words(&keep, &vs[i + 1]);
        }
        outs.push(z);
        outs
    });
    println!(
        "merge circuit build 300: {:?} ({} ANDs)",
        t.elapsed(),
        _c.and_count()
    );
    let _ = u64_to_bits(0, 1);
    let _ = Builder::new();
}

/// Time each SIMD kernel against its forced-scalar arm and write
/// `BENCH_kernels.json`. Arms are flipped in-process via
/// `cpu::set_force_scalar`, so one binary measures both; the `features`
/// and `cpus` fields record exactly what the numbers were taken on — a
/// speedup is only meaningful where the probe says the SIMD arm actually
/// ran. The pool is pinned to 1 thread throughout so the numbers isolate
/// the kernels from the band partitioning measured elsewhere.
fn profile_kernels() {
    use secyan_crypto::cpu;
    use secyan_crypto::gf64::{self, Gf64};
    use secyan_crypto::transpose::BitMatrix;
    use secyan_par as par;

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let feats = cpu::features();
    par::set_threads(1);

    // Median-of-reps nanoseconds for one arm of one kernel.
    let time_arm = |force: bool, reps: usize, f: &mut dyn FnMut()| -> f64 {
        cpu::set_force_scalar(force);
        let mut runs = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            f();
            runs.push(t.elapsed().as_secs_f64() * 1e9);
        }
        cpu::clear_force_scalar();
        runs.sort_by(|a, b| a.total_cmp(b));
        runs[runs.len() / 2]
    };

    let mut entries: Vec<(&str, f64, f64)> = Vec::new();

    // 1. Bit-matrix transpose, 4096x4096 (2 MiB): movemask kernel vs the
    // reference bit loop.
    let m = BitMatrix::from_fn(4096, 4096, |r, c| (r * 31 + c * 7) % 3 == 0);
    let tr = |force| {
        time_arm(force, 5, &mut || {
            std::hint::black_box(m.transpose());
        })
    };
    entries.push(("transpose_4096x4096", tr(true), tr(false)));

    // 2. GF(2^64) elementwise multiply, 65536 elements: 4-way interleaved
    // CLMUL with deferred reduction vs the shift-and-add scalar field op.
    let ys: Vec<Gf64> = (0..1u64 << 16)
        .map(|i| Gf64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1))
        .collect();
    let mut xs = ys.clone();
    let mut mul = |force| {
        time_arm(force, 20, &mut || {
            gf64::mul_slice(&mut xs, &ys);
            std::hint::black_box(xs[0]);
        })
    };
    entries.push(("gf64_mul_slice_65536", mul(true), mul(false)));

    // 3. Newton interpolation through 24 points, 256 bins per rep: the
    // OPPRF hint-generation inner loop.
    let bins: Vec<Vec<(Gf64, Gf64)>> = (0..256u64)
        .map(|b| {
            (0..24u64)
                .map(|i| {
                    let x = (b * 24 + i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    (Gf64(x), Gf64(x ^ b))
                })
                .collect()
        })
        .collect();
    let interp = |force| {
        time_arm(force, 5, &mut || {
            for pts in &bins {
                std::hint::black_box(gf64::poly_interpolate(pts));
            }
        })
    };
    entries.push(("gf64_interpolate_deg24_x256", interp(true), interp(false)));

    // 4. Lockstep Horner over 2048 bins of degree 24: the OPPRF hint
    // evaluation inner loop.
    let flat: Vec<Gf64> = (0..2048u64 * 24)
        .map(|i| Gf64(i.wrapping_mul(0x2545_f491_4f6c_dd1d)))
        .collect();
    let exs: Vec<Gf64> = (0..2048u64).map(|i| Gf64(i * 3 + 1)).collect();
    let eval = |force| {
        time_arm(force, 20, &mut || {
            std::hint::black_box(gf64::poly_eval_batch(&flat, 24, &exs));
        })
    };
    entries.push(("gf64_poly_eval_batch_2048x24", eval(true), eval(false)));

    // 5. Fixed-key AES over 65536 blocks: the 8-wide software-pipelined
    // AES-NI path vs the portable T-table implementation.
    let mut blocks: Vec<u128> = (0..1u128 << 16)
        .map(|i| i.wrapping_mul(0xdead_beef))
        .collect();
    let key = secyan_crypto::aes::Aes128::new([7u8; 16]);
    let mut aes = |force| {
        time_arm(force, 10, &mut || {
            key.encrypt_blocks(&mut blocks);
            std::hint::black_box(blocks[0]);
        })
    };
    entries.push(("aes_encrypt_many_65536", aes(true), aes(false)));

    par::set_threads(0);

    let mut json = format!(
        "{{\n  \"cpus\": {cpus},\n  \"features\": {{\"sse2\": {}, \"ssse3\": {}, \"avx2\": {}, \
\"pclmulqdq\": {}, \"aes\": {}}},\n  \"forced_scalar_env\": {},\n  \"kernels\": {{\n",
        feats.sse2,
        feats.ssse3,
        feats.avx2,
        feats.pclmulqdq,
        feats.aes,
        cpu::force_scalar(),
    );
    for (i, (name, scalar_ns, simd_ns)) in entries.iter().enumerate() {
        let speedup = scalar_ns / simd_ns;
        println!(
            "kernel {name}: scalar {:.0} us, simd {:.0} us ({speedup:.2}x)",
            scalar_ns / 1e3,
            simd_ns / 1e3
        );
        json.push_str(&format!(
            "    \"{name}\": {{\"scalar_ns\": {scalar_ns:.0}, \"simd_ns\": {simd_ns:.0}, \
\"speedup\": {speedup:.2}}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}

/// Threads-vs-work microbench for the pooled phases, validating the
/// dispatch thresholds: below each threshold the 4-thread timing must
/// match the 1-thread timing (no dispatch happens, so no overhead), and
/// a 1-thread run must never lose to the old always-dispatch behaviour.
/// Printed only — the numbers feed threshold tuning, not the tracked
/// JSON artifacts (they are machine-load sensitive).
fn profile_thresholds() {
    use secyan_circuit::Builder;
    use secyan_crypto::transpose::BitMatrix;
    use secyan_par as par;

    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let time_at = |threads: usize, reps: usize, f: &mut dyn FnMut()| -> f64 {
        par::set_threads(threads);
        let mut runs = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            f();
            runs.push(t.elapsed().as_secs_f64() * 1e6);
        }
        par::set_threads(0);
        median(runs)
    };

    // Transpose around PAR_MIN_OUT_BYTES: 8 KiB (below), 32 KiB (at),
    // 512 KiB (above).
    for (rows, cols) in [(128usize, 512usize), (128, 2048), (1024, 4096)] {
        let m = BitMatrix::from_fn(rows, cols, |r, c| (r + c) % 5 == 0);
        let run = |t| {
            time_at(t, 9, &mut || {
                std::hint::black_box(m.transpose());
            })
        };
        let (t1, t4) = (run(1), run(4));
        println!(
            "threshold transpose {rows}x{cols} ({} B out): t1 {t1:.1} us, t4 {t4:.1} us \
             (t4/t1 {:.2})",
            rows * cols / 8,
            t4 / t1
        );
    }

    // Garbling: a width-1 AND chain (levels never reach the pool bar —
    // 4 threads must cost the same as 1) vs a wide level-parallel
    // circuit.
    let hasher = TweakHasher::default();
    let narrow = {
        let mut b = Builder::new();
        let mut w = b.alice_input();
        let xs: Vec<_> = (0..8192).map(|_| b.bob_input()).collect();
        for x in xs {
            w = b.and(w, x);
        }
        b.output(w);
        b.finish()
    };
    let wide = {
        let mut b = Builder::new();
        let xs: Vec<_> = (0..16).map(|_| b.alice_word(32)).collect();
        let ys: Vec<_> = (0..16).map(|_| b.bob_word(32)).collect();
        let words: Vec<_> = xs.iter().zip(&ys).map(|(x, y)| b.mul_words(x, y)).collect();
        for w in &words {
            b.output_word(w);
        }
        b.finish()
    };
    for (name, circ) in [("narrow-chain", &narrow), ("wide-mul", &wide)] {
        let run = |t| {
            time_at(t, 5, &mut || {
                let mut rng = StdRng::seed_from_u64(9);
                std::hint::black_box(
                    secyan_gc::scheme::garble(circ, hasher, &mut rng)
                        .tables
                        .len(),
                );
            })
        };
        let (t1, t4) = (run(1), run(4));
        println!(
            "threshold garble {name} ({} ANDs): t1 {t1:.1} us, t4 {t4:.1} us (t4/t1 {:.2})",
            circ.and_count(),
            t4 / t1
        );
    }
}

/// Time the worker-pool hot paths (IKNP extension, OPPRF hint
/// interpolation, half-gates garbling) at 1/2/4/8 threads and write
/// `BENCH_parallel.json`. The thread count is forced programmatically via
/// `secyan_par::set_threads`, overriding `SECYAN_THREADS`; the `cpus`
/// field records how many hardware threads the numbers were measured on.
fn profile_parallel() {
    use secyan_circuit::Builder;
    use secyan_par as par;
    use secyan_psi::opprf::{opprf_evaluate, opprf_program, PsiItem};

    const OT_M: usize = 1 << 16;
    const BINS: usize = 2048;
    const DEGREE: usize = 24;
    let hasher = TweakHasher::default();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let iknp_ms = |threads: usize| -> f64 {
        par::set_threads(threads);
        let (elapsed, _, _) = run_protocol(
            |ch| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut ot = OtSender::setup(ch, &mut rng, hasher);
                let t = Instant::now();
                let pairs = ot.random(ch, OT_M);
                let ms = t.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(pairs);
                ms
            },
            |ch| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
                let choices: Vec<bool> = (0..OT_M).map(|i| i % 3 == 0).collect();
                std::hint::black_box(ot.random(ch, &choices));
            },
        );
        par::set_threads(0);
        elapsed
    };

    let opprf_ms = |threads: usize| -> f64 {
        par::set_threads(threads);
        let programs: Vec<Vec<(u64, u64)>> = (0..BINS as u64)
            .map(|b| (0..8).map(|i| (b * 100 + i, b ^ i)).collect())
            .collect();
        let queries: Vec<PsiItem> = (0..BINS as u64).map(|b| PsiItem::Real(b * 100)).collect();
        let (elapsed, _, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
                let t = Instant::now();
                opprf_program(ch, &mut kkrt, &programs, DEGREE, &mut rng);
                t.elapsed().as_secs_f64() * 1e3
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(4);
                let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
                std::hint::black_box(opprf_evaluate(ch, &mut kkrt, &queries, DEGREE));
            },
        );
        par::set_threads(0);
        elapsed
    };

    // Wide circuit: independent word multiplies, so most AND gates share a
    // level and the levelized garbler can fan out.
    let mut b = Builder::new();
    let xs: Vec<_> = (0..16).map(|_| b.alice_word(32)).collect();
    let ys: Vec<_> = (0..16).map(|_| b.bob_word(32)).collect();
    let words: Vec<_> = xs.iter().zip(&ys).map(|(x, y)| b.mul_words(x, y)).collect();
    for w in &words {
        b.output_word(w);
    }
    let circ = b.finish();
    let garble_ms = |threads: usize| -> f64 {
        par::set_threads(threads);
        let mut rng = StdRng::seed_from_u64(5);
        let t = Instant::now();
        let g = secyan_gc::scheme::garble(&circ, hasher, &mut rng);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(g.tables.len());
        par::set_threads(0);
        ms
    };

    let thread_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for &t in &thread_counts {
        let iknp = iknp_ms(t);
        let opprf = opprf_ms(t);
        let gc = garble_ms(t);
        println!(
            "parallel t={t}: iknp {iknp:.1} ms, opprf hints {opprf:.1} ms, garbling {gc:.1} ms"
        );
        rows.push((t, iknp, opprf, gc));
    }

    let base = rows[0];
    let mut json = String::from("{\n  \"cpus\": ");
    json.push_str(&cpus.to_string());
    json.push_str(&format!(
        ",\n  \"iknp_extension_ots\": {OT_M},\n  \"opprf_bins\": {BINS},\n  \
\"garbling_ands\": {},\n  \"threads\": {{\n",
        circ.and_count()
    ));
    for (i, (t, iknp, opprf, gc)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{t}\": {{\"iknp_extension_ms\": {iknp:.2}, \"opprf_hints_ms\": {opprf:.2}, \
\"garbling_ms\": {gc:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let at4 = rows.iter().find(|r| r.0 == 4).unwrap_or(&base);
    json.push_str(&format!(
        "  }},\n  \"speedup_at_4_threads\": {{\"iknp_extension\": {:.2}, \"opprf_hints\": {:.2}, \
\"garbling\": {:.2}}}\n}}\n",
        base.1 / at4.1,
        base.2 / at4.2,
        base.3 / at4.3
    ));
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}

/// Cold vs. warm query latency for the offline/online phase split and
/// write `BENCH_online.json`.
///
/// * `cold` — one single-phase run from nothing: session bootstrap
///   (base OTs, KKRT OPRF seeds), all garbling, and the data-dependent
///   work, timed end to end.
/// * `warm` — the online phase alone against material provisioned by
///   `run_offline` (provisioning untimed: it happens before the data
///   arrives, which is the entire point of the split).
///
/// Both are measured twice: on loopback (`local_*_ms`, compute-bound) and
/// under a declared WAN model (`cold_ms`/`warm_ms`; see
/// [`secyan_transport::NetModel`] — every send really sleeps for its
/// serialization plus per-round propagation delay, so the headline
/// numbers reflect the network the split is designed for, where the
/// offline phase's garbled tables and OT/OPRF extensions dominate the
/// cold critical path). The model's parameters are reported in the JSON
/// next to the numbers they shaped. Medians of `REPS` runs on a chain
/// query whose shape the planner covers completely; byte counters come
/// from the phase-tagged transport metering.
fn profile_online(quick: bool) {
    use secyan_core::{run_offline, run_online, secure_yannakakis, SecureQuery, Session};
    use secyan_relation::{JoinTree, NaturalRing, Relation};
    use secyan_transport::{run_protocol_with_net, NetModel, Role};

    const REPS: usize = 5;
    // Round budgets for the chain3 instance below. The counts are
    // public-shape-determined (the protocol is oblivious), so any change
    // is a code change, not noise; `tests/tests/rounds.rs` pins the same
    // numbers. A regression past these fails the bench-smoke CI job.
    const ONLINE_SUPER_ROUND_BUDGET: u64 = 16;
    const OFFLINE_SUPER_ROUND_BUDGET: u64 = 11;
    let reps = if quick { 1 } else { REPS };
    let ring = RingCtx::new(64);
    let hasher = TweakHasher::default();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // A 3-relation chain, scalar aggregate: R1(a) ⋈ R2(a,b) ⋈ R3(b),
    // sizes 200/400/200, owners alternating. The reduce phase collapses it
    // to a single survivor, so every circuit is shape-plannable.
    let strings = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
    let (n1, n2, n3) = (24u64, 48u64, 24u64);
    let query = SecureQuery::new(
        vec![strings(&["a"]), strings(&["a", "b"]), strings(&["b"])],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        Vec::new(),
    );
    let nat = NaturalRing(ring);
    let r1 = Relation::from_rows(
        nat,
        strings(&["a"]),
        (0..n1).map(|i| (vec![i], i % 7 + 1)).collect(),
    );
    let r2 = Relation::from_rows(
        nat,
        strings(&["a", "b"]),
        (0..n2).map(|i| (vec![i % n1, i % 31], i % 5 + 1)).collect(),
    );
    let r3 = Relation::from_rows(
        nat,
        strings(&["b"]),
        (0..n3).map(|i| (vec![i % 31], i % 3 + 1)).collect(),
    );
    let sizes = [n1 as usize, n2 as usize, n3 as usize];
    let alice_rels = vec![Some(r1), None, Some(r3)];
    let bob_rels = vec![None, Some(r2), None];

    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };

    // One cold + one warm sweep under an optional network model. Returns
    // (cold_ms, warm_ms, stats-of-last-warm-run, cold_bytes, cold_rounds).
    let sweep = |net: Option<NetModel>, reps: usize, seed0: u64| {
        let mut cold_runs = Vec::new();
        let mut cold_bytes = 0u64;
        let mut cold_rounds = 0u64;
        for rep in 0..reps {
            let (qa, qb) = (query.clone(), query.clone());
            let (ra, rb) = (alice_rels.clone(), bob_rels.clone());
            let seed = seed0 + rep as u64;
            let fa = move |ch: &mut secyan_transport::Channel| {
                let mut sess = Session::new(ch, ring, hasher, seed);
                secure_yannakakis(&mut sess, &qa, &ra, Role::Alice).values
            };
            let fb = move |ch: &mut secyan_transport::Channel| {
                let mut sess = Session::new(ch, ring, hasher, seed + 1000);
                secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
            };
            let t = Instant::now();
            let (v, _, stats) = match net {
                Some(m) => run_protocol_with_net(m, fa, fb),
                None => run_protocol(fa, fb),
            };
            cold_runs.push(t.elapsed().as_secs_f64() * 1e3);
            cold_bytes = stats.total_bytes();
            cold_rounds = stats.rounds;
            std::hint::black_box(v);
        }
        // Warm: provision offline, then time only the online phase. The
        // timer is started by the party driving the run once provisioning
        // is done on both sides (run_offline returns in lockstep).
        let mut warm_runs = Vec::new();
        let mut warm_stats = secyan_transport::CommStats::default();
        for rep in 0..reps {
            let (qa, qb) = (query.clone(), query.clone());
            let (ra, rb) = (alice_rels.clone(), bob_rels.clone());
            let (s2, sz) = (sizes, sizes);
            let seed = seed0 + 2000 + rep as u64;
            let fa = move |ch: &mut secyan_transport::Channel| {
                let m = run_offline(ch, &qa, &sz, Role::Alice, ring, hasher, seed);
                let t = Instant::now();
                let v = run_online(ch, &qa, &ra, Role::Alice, ring, hasher, m).values;
                (v, t.elapsed().as_secs_f64() * 1e3)
            };
            let fb = move |ch: &mut secyan_transport::Channel| {
                let m = run_offline(ch, &qb, &s2, Role::Alice, ring, hasher, seed + 1000);
                run_online(ch, &qb, &rb, Role::Alice, ring, hasher, m);
            };
            let ((v, ms), _, stats) = match net {
                Some(m) => run_protocol_with_net(m, fa, fb),
                None => run_protocol(fa, fb),
            };
            warm_runs.push(ms);
            warm_stats = stats;
            std::hint::black_box(v);
        }
        (
            median(cold_runs),
            median(warm_runs),
            warm_stats,
            cold_bytes,
            cold_rounds,
        )
    };

    let (local_cold_ms, local_warm_ms, stats, cold_bytes, cold_rounds) = sweep(None, reps, 1000);
    let offline_bytes = stats.offline_bytes;
    let online_bytes = stats.online_bytes;
    let online_rounds = stats.online_rounds;
    let super_rounds = stats.super_rounds;
    let online_super_rounds = stats.online_super_rounds;
    let offline_super_rounds = stats.offline_super_rounds;
    let local_speedup = local_cold_ms / local_warm_ms;
    println!(
        "online phase split (loopback): cold {local_cold_ms:.1} ms, warm {local_warm_ms:.1} ms \
         ({local_speedup:.1}x), cold {cold_bytes} B / {cold_rounds} rounds, \
         offline {offline_bytes} B / online {online_bytes} B \
         ({online_rounds} rounds, {online_super_rounds} super-rounds online / \
         {offline_super_rounds} offline)"
    );
    if online_super_rounds > ONLINE_SUPER_ROUND_BUDGET
        || offline_super_rounds > OFFLINE_SUPER_ROUND_BUDGET
    {
        eprintln!(
            "round-count regression: online {online_super_rounds} super-rounds \
             (budget {ONLINE_SUPER_ROUND_BUDGET}), offline {offline_super_rounds} \
             (budget {OFFLINE_SUPER_ROUND_BUDGET})"
        );
        std::process::exit(1);
    }
    if quick {
        println!(
            "bench-smoke: round budgets hold \
             (online {online_super_rounds}/{ONLINE_SUPER_ROUND_BUDGET}, \
             offline {offline_super_rounds}/{OFFLINE_SUPER_ROUND_BUDGET})"
        );
        return;
    }

    // The headline numbers: the same sweep under a declared WAN. The cold
    // path must push every garbled table and OT/OPRF extension through the
    // modeled link at query time; the warm path already paid for those
    // offline.
    let net = NetModel::wan(20);
    let (cold_ms, warm_ms, _, _, _) = sweep(Some(net), 3, 5000);
    let speedup = cold_ms / warm_ms;
    println!(
        "online phase split ({} Mbit/s, {} ms one-way): cold {cold_ms:.1} ms, \
         warm {warm_ms:.1} ms ({speedup:.1}x)",
        net.bandwidth_bits_per_sec / 1_000_000,
        net.one_way_latency_us as f64 / 1e3
    );
    let json = format!(
        "{{\n  \"cpus\": {cpus},\n  \"query\": \"chain3 sizes {n1}/{n2}/{n3} scalar sum, 64-bit ring\",\n  \
\"network_model\": {{\"bandwidth_bits_per_sec\": {bw}, \"one_way_latency_us\": {lat}}},\n  \
\"reps\": {REPS},\n  \"cold_ms\": {cold_ms:.2},\n  \"warm_ms\": {warm_ms:.2},\n  \
\"speedup\": {speedup:.2},\n  \"local_cold_ms\": {local_cold_ms:.2},\n  \
\"local_warm_ms\": {local_warm_ms:.2},\n  \"local_speedup\": {local_speedup:.2},\n  \
\"cold_bytes\": {cold_bytes},\n  \"cold_rounds\": {cold_rounds},\n  \
\"offline_bytes\": {offline_bytes},\n  \"online_bytes\": {online_bytes},\n  \
\"online_rounds\": {online_rounds},\n  \"super_rounds\": {super_rounds},\n  \
\"online_super_rounds\": {online_super_rounds},\n  \
\"offline_super_rounds\": {offline_super_rounds}\n}}\n",
        bw = net.bandwidth_bits_per_sec,
        lat = net.one_way_latency_us,
    );
    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("wrote BENCH_online.json");
}

/// Time the tweakable hashers (scalar vs batched, plus 512-bit row
/// compression) and write `BENCH_hashers.json`.
fn profile_hashers() {
    const N: usize = 1 << 16;
    const ROWS: usize = 1 << 12;
    let blocks: Vec<Block> = (0..N as u128)
        .map(|i| Block(i.wrapping_mul(0x9e37_79b9)))
        .collect();
    let rows: Vec<[u8; 64]> = (0..ROWS).map(|i| [i as u8; 64]).collect();
    let hashers = [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast];

    let mut entries = Vec::new();
    let mut sha_scalar = 0.0f64;
    for h in hashers {
        // Scalar: one dispatch per block.
        let t = Instant::now();
        let mut acc = Block::ZERO;
        for (j, &b) in blocks.iter().enumerate() {
            acc ^= h.hash(b, j as u64);
        }
        let scalar_ns = t.elapsed().as_nanos() as f64 / N as f64;
        std::hint::black_box(acc);

        // Batched: the hot-loop API.
        let t = Instant::now();
        let out = h.hash_batch(&blocks, 0);
        let batch_ns = t.elapsed().as_nanos() as f64 / N as f64;
        std::hint::black_box(out);

        // 512-bit KKRT row compression.
        let t = Instant::now();
        let out = h.hash_row_batch(0, &rows);
        let row_ns = t.elapsed().as_nanos() as f64 / ROWS as f64;
        std::hint::black_box(out);

        if matches!(h, TweakHasher::Sha256) {
            sha_scalar = scalar_ns;
        }
        println!(
            "hasher {h:?}: scalar {scalar_ns:.1} ns/block, batch {batch_ns:.1} ns/block, \
             row512 {row_ns:.1} ns/row"
        );
        entries.push((h, scalar_ns, batch_ns, row_ns));
    }

    let mut json = String::from("{\n  \"blocks\": ");
    json.push_str(&N.to_string());
    json.push_str(",\n  \"hashers\": {\n");
    for (i, (h, scalar_ns, batch_ns, row_ns)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{h:?}\": {{\"scalar_ns_per_block\": {scalar_ns:.2}, \
\"batch_ns_per_block\": {batch_ns:.2}, \"row512_ns_per_row\": {row_ns:.2}, \
\"batch_speedup_vs_sha256\": {:.2}}}{}\n",
            sha_scalar / batch_ns,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_hashers.json", &json).expect("write BENCH_hashers.json");
    println!("wrote BENCH_hashers.json");
}
