//! Ad-hoc operator timing used to find protocol hot spots (dev tool).
//!
//! Also emits `BENCH_hashers.json`: machine-readable per-block timings of
//! the three tweakable hashers, so successive PRs can track the perf
//! trajectory of the garbling/OT hot path.
use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_crypto::{Block, RingCtx, TweakHasher};
use secyan_oep::{shared_oep_other, shared_oep_perm_holder};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::run_protocol;
use std::time::Instant;

fn main() {
    profile_hashers();

    let ring = RingCtx::new(32);
    let hasher = TweakHasher::default();
    // 1. session-ish setup
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let _s = OtSender::setup(ch, &mut rng, hasher);
            let _r = OtReceiver::setup(ch, &mut rng, hasher);
            let _ks = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let _kr = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let _r = OtReceiver::setup(ch, &mut rng, hasher);
            let _s = OtSender::setup(ch, &mut rng, hasher);
            let _kr = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let _ks = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
        },
    );
    println!("session setup: {:?}", t.elapsed());

    // 2. shared OEP of size 300
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let xi: Vec<usize> = (0..300).collect();
            let shares = vec![7u64; 300];
            shared_oep_perm_holder(ch, &xi, &shares, ring, &mut otr)
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let shares = vec![3u64; 300];
            shared_oep_other(ch, &shares, 300, ring, &mut ots, &mut rng)
        },
    );
    println!("shared OEP 300: {:?}", t.elapsed());

    // 3. product circuit 75 rows shared (like reduce_join)
    use secyan_circuit::{u64_to_bits, Builder};
    use secyan_gc::{evaluate_shared, garble_shared, with_shared_outputs, SharedOutputSpec};
    let n = 75;
    let spec = SharedOutputSpec::uniform(n, 32);
    let circ = with_shared_outputs(&spec, |b| {
        let va: Vec<_> = (0..n).map(|_| b.alice_word(32)).collect();
        let za: Vec<_> = (0..n).map(|_| b.alice_word(32)).collect();
        let vb: Vec<_> = (0..n).map(|_| b.bob_word(32)).collect();
        let zb: Vec<_> = (0..n).map(|_| b.bob_word(32)).collect();
        (0..n)
            .map(|i| {
                let v = b.add_words(&va[i], &vb[i]);
                let z = b.add_words(&za[i], &zb[i]);
                b.mul_words(&v, &z)
            })
            .collect()
    });
    println!("product circuit: {} ANDs", circ.and_count());
    let (c1, c2) = (circ.clone(), circ.clone());
    let (s1, s2) = (spec.clone(), spec.clone());
    let t = Instant::now();
    run_protocol(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let bits: Vec<bool> = (0..n * 64).map(|i| i % 3 == 0).collect();
            garble_shared(ch, &c1, &s1, &bits, &mut ots, hasher, &mut rng)
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let bits: Vec<bool> = (0..n * 64).map(|i| i % 3 == 0).collect();
            evaluate_shared(ch, &c2, &s2, &bits, &mut otr, hasher)
        },
    );
    println!("product GC 75 rows: {:?}", t.elapsed());

    // 4. PSI 75 x 300 with plain payloads
    let t = Instant::now();
    run_protocol(
        |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let mut otr = OtReceiver::setup(ch, &mut rng, hasher);
            let x: Vec<u64> = (0..75).collect();
            secyan_psi::psi_receiver(ch, &x, 300, ring, &mut kkrt, &mut otr, hasher)
                .ind_shares
                .len()
        },
        |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let mut ots = OtSender::setup(ch, &mut rng, hasher);
            let y: Vec<(u64, u64)> = (0..300u64).map(|i| (i, i)).collect();
            secyan_psi::psi_sender(ch, &y, 75, ring, &mut kkrt, &mut ots, hasher, &mut rng)
                .ind_shares
                .len()
        },
    );
    println!("plain PSI 75x300: {:?}", t.elapsed());

    // 5. merge/agg circuit over 300 rows
    let spec = SharedOutputSpec::uniform(300, 32);
    let t = Instant::now();
    let _c = with_shared_outputs(&spec, |b| {
        let eq: Vec<_> = (0..299).map(|_| b.alice_input()).collect();
        let a: Vec<_> = (0..300).map(|_| b.alice_word(32)).collect();
        let bb: Vec<_> = (0..300).map(|_| b.bob_word(32)).collect();
        let vs: Vec<_> = a.iter().zip(&bb).map(|(x, y)| b.add_words(x, y)).collect();
        let mut z = vs[0].clone();
        let mut outs = Vec::new();
        for i in 0..299 {
            let ne = b.not(eq[i]);
            outs.push(b.and_word_bit(&z, ne));
            let keep = b.and_word_bit(&z, eq[i]);
            z = b.add_words(&keep, &vs[i + 1]);
        }
        outs.push(z);
        outs
    });
    println!(
        "merge circuit build 300: {:?} ({} ANDs)",
        t.elapsed(),
        _c.and_count()
    );
    let _ = u64_to_bits(0, 1);
    let _ = Builder::new();
}

/// Time the tweakable hashers (scalar vs batched, plus 512-bit row
/// compression) and write `BENCH_hashers.json`.
fn profile_hashers() {
    const N: usize = 1 << 16;
    const ROWS: usize = 1 << 12;
    let blocks: Vec<Block> = (0..N as u128)
        .map(|i| Block(i.wrapping_mul(0x9e37_79b9)))
        .collect();
    let rows: Vec<[u8; 64]> = (0..ROWS).map(|i| [i as u8; 64]).collect();
    let hashers = [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast];

    let mut entries = Vec::new();
    let mut sha_scalar = 0.0f64;
    for h in hashers {
        // Scalar: one dispatch per block.
        let t = Instant::now();
        let mut acc = Block::ZERO;
        for (j, &b) in blocks.iter().enumerate() {
            acc ^= h.hash(b, j as u64);
        }
        let scalar_ns = t.elapsed().as_nanos() as f64 / N as f64;
        std::hint::black_box(acc);

        // Batched: the hot-loop API.
        let t = Instant::now();
        let out = h.hash_batch(&blocks, 0);
        let batch_ns = t.elapsed().as_nanos() as f64 / N as f64;
        std::hint::black_box(out);

        // 512-bit KKRT row compression.
        let t = Instant::now();
        let out = h.hash_row_batch(0, &rows);
        let row_ns = t.elapsed().as_nanos() as f64 / ROWS as f64;
        std::hint::black_box(out);

        if matches!(h, TweakHasher::Sha256) {
            sha_scalar = scalar_ns;
        }
        println!(
            "hasher {h:?}: scalar {scalar_ns:.1} ns/block, batch {batch_ns:.1} ns/block, \
             row512 {row_ns:.1} ns/row"
        );
        entries.push((h, scalar_ns, batch_ns, row_ns));
    }

    let mut json = String::from("{\n  \"blocks\": ");
    json.push_str(&N.to_string());
    json.push_str(",\n  \"hashers\": {\n");
    for (i, (h, scalar_ns, batch_ns, row_ns)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{h:?}\": {{\"scalar_ns_per_block\": {scalar_ns:.2}, \
\"batch_ns_per_block\": {batch_ns:.2}, \"row512_ns_per_row\": {row_ns:.2}, \
\"batch_speedup_vs_sha256\": {:.2}}}{}\n",
            sha_scalar / batch_ns,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_hashers.json", &json).expect("write BENCH_hashers.json");
    println!("wrote BENCH_hashers.json");
}
