//! Regenerate the paper's Figures 2–6 (running time and communication of
//! secure Yannakakis vs. the naive garbled circuit vs. plaintext).
//!
//! Usage:
//!   figures [--figure N] [--scales a,b,c] [--full] [--sha] [--fast] [--gc-anchor]
//!
//! * `--figure N` — only figure N (2..=6); default: all five.
//! * `--scales` — comma-separated dataset sizes in MB (overrides the
//!   scaled-down defaults).
//! * `--full` — the paper's scales 1,3,10,33,100 MB.
//! * `--sha` — use SHA-256 garbling instead of the default fixed-key
//!   AES (cross-check configuration, ~10× slower).
//! * `--fast` — use the non-cryptographic benchmark hash (cost-shape
//!   runs only; insecure).
//! * `--gc-anchor` — additionally run the §8.2 anchor experiment: measure
//!   the runnable naive-GC instance used for calibration.

use secyan_bench::{calibrate_gc_rate, default_scales, fmt_bytes, fmt_secs, measure_point};
use secyan_crypto::TweakHasher;
use secyan_tpch::queries::PaperQuery;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure: Option<u32> = None;
    let mut scales_override: Option<Vec<f64>> = None;
    let mut full = false;
    let mut hasher = TweakHasher::default();
    let mut gc_anchor = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                i += 1;
                figure = Some(args[i].parse().expect("--figure takes 2..=6"));
            }
            "--scales" => {
                i += 1;
                scales_override = Some(
                    args[i]
                        .split(',')
                        .map(|s| s.parse().expect("scale in MB"))
                        .collect(),
                );
            }
            "--full" => full = true,
            "--sha" => hasher = TweakHasher::Sha256,
            "--fast" => hasher = TweakHasher::Fast,
            "--gc-anchor" => gc_anchor = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("Calibrating the naive-GC gate rate on a runnable instance...");
    let gc_rate = calibrate_gc_rate(hasher);
    println!("  measured rate: {gc_rate:.0} AND gates/s ({hasher:?} garbling)\n");

    if gc_anchor {
        anchor(gc_rate);
    }

    for q in PaperQuery::all() {
        if let Some(f) = figure {
            if q.figure() != f {
                continue;
            }
        }
        let scales = scales_override.clone().unwrap_or_else(|| {
            if full {
                vec![1.0, 3.0, 10.0, 33.0, 100.0]
            } else {
                default_scales(q)
            }
        });
        println!(
            "=== Figure {}: TPC-H {} — time and communication ===",
            q.figure(),
            q.name()
        );
        println!(
            "{:>9} {:>9} {:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12} | {:>6} {:>6}",
            "scale",
            "eff.size",
            "tuples",
            "SY time",
            "SY comm",
            "GC time*",
            "GC comm*",
            "plain time",
            "plain comm",
            "rows",
            "match"
        );
        for &mb in &scales {
            let p = measure_point(q, mb, hasher, gc_rate, 42);
            println!(
                "{:>7.2}MB {:>7.2}MB {:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12} | {:>6} {:>6}",
                p.scale_mb,
                p.effective_mb,
                p.input_tuples,
                fmt_secs(p.sy_time.as_secs_f64()),
                fmt_bytes(p.sy_comm_bytes as u128),
                fmt_secs(p.gc_time_secs),
                fmt_bytes(p.gc_comm_bytes),
                fmt_secs(p.plain_time.as_secs_f64()),
                fmt_bytes(p.plain_comm_bytes as u128),
                p.out_rows,
                if p.results_match { "yes" } else { "NO!" },
            );
        }
        println!("  (* naive-GC extrapolated from exact circuit size, per the paper's §8.2)\n");
    }
}

/// The §8.2 anchor: the paper's hand-written Q3 product circuit over
/// 7,655 tuples took 2.8 hours on their hardware; we report what the same
/// circuit costs under our model and measured rate.
fn anchor(gc_rate: f64) {
    use secyan_baseline::CartesianCostModel;
    let model = CartesianCostModel::default();
    // 1 MB Q3 relation sizes (customer, orders, lineitem).
    let c = model.cost(&[150, 1500, 6000]);
    println!("=== §8.2 anchor: naive GC on Q3 @ 1 MB (7,650 tuples) ===");
    println!("  combinations: {}", c.combinations);
    println!("  AND gates:    {}", c.and_gates);
    println!("  tables:       {}", fmt_bytes(c.table_bytes));
    println!(
        "  extrapolated: {} at the measured rate (paper: 2.8 h on AES-NI hardware)\n",
        fmt_secs(c.seconds_at(gc_rate))
    );
}
