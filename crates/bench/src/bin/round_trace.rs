//! Dev tool: dump the per-message wire trace of the chain3 warm (online)
//! path, grouped into rounds (maximal same-direction runs), so round-
//! compression work can see exactly where each direction switch comes from.

use secyan_core::{run_offline, run_online, SecureQuery};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_transport::{run_protocol_captured, Phase, Role};

fn main() {
    let ring = RingCtx::new(64);
    let hasher = TweakHasher::default();
    let strings = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
    let (n1, n2, n3) = (24u64, 48u64, 24u64);
    let query = SecureQuery::new(
        vec![strings(&["a"]), strings(&["a", "b"]), strings(&["b"])],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        Vec::new(),
    );
    let nat = NaturalRing(ring);
    let r1 = Relation::from_rows(
        nat,
        strings(&["a"]),
        (0..n1).map(|i| (vec![i], i % 7 + 1)).collect(),
    );
    let r2 = Relation::from_rows(
        nat,
        strings(&["a", "b"]),
        (0..n2).map(|i| (vec![i % n1, i % 31], i % 5 + 1)).collect(),
    );
    let r3 = Relation::from_rows(
        nat,
        strings(&["b"]),
        (0..n3).map(|i| (vec![i % 31], i % 3 + 1)).collect(),
    );
    let sizes = [n1 as usize, n2 as usize, n3 as usize];
    let alice_rels = vec![Some(r1), None, Some(r3)];
    let bob_rels = vec![None, Some(r2), None];
    let (qa, qb) = (query.clone(), query.clone());

    let (_, _, stats, handle) = run_protocol_captured(
        move |ch| {
            let m = run_offline(ch, &qa, &sizes, Role::Alice, ring, hasher, 42);
            let v = run_online(ch, &qa, &alice_rels, Role::Alice, ring, hasher, m).values;
            std::hint::black_box(v);
        },
        move |ch| {
            let m = run_offline(ch, &qb, &sizes, Role::Alice, ring, hasher, 1042);
            run_online(ch, &qb, &bob_rels, Role::Alice, ring, hasher, m);
        },
    );
    println!(
        "stats: online_bytes={} online_rounds={} online_super_rounds={} offline_super_rounds={} super_rounds={}",
        stats.online_bytes,
        stats.online_rounds,
        stats.online_super_rounds,
        stats.offline_super_rounds,
        stats.super_rounds
    );
    let mut round = 0usize;
    let mut last: Option<Role> = None;
    for (role, phase, len) in handle.phased_lengths() {
        if phase != Phase::Online {
            continue;
        }
        if last != Some(role) {
            round += 1;
            last = Some(role);
            println!("--- online round {round} ({role:?} ->)");
        }
        println!("    {role:?} {len} B");
    }
}
