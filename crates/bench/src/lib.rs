//! Benchmark harness for the paper's evaluation (§8, Figures 2–6).
//!
//! Each figure plots, per dataset size, the running time and communication
//! of (a) secure Yannakakis, (b) the naive garbled-circuit baseline
//! (measured small, extrapolated by exact circuit size — the paper's own
//! methodology), and (c) the non-private plaintext engine. This crate
//! provides the measurement plumbing; the `figures` binary prints the
//! series and `EXPERIMENTS.md` records paper-vs-measured.

use secyan_baseline::{naive_gc_evaluator, naive_gc_garbler, CartesianCostModel};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_relation::NaturalRing;
use secyan_tpch::queries::{
    canonical, run_plaintext_instance, run_secure_instance, PaperQuery, QuerySpec,
};
use secyan_tpch::{Database, Scale};
use secyan_transport::{run_protocol, Role};
use std::time::{Duration, Instant};

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct FigurePoint {
    pub scale_mb: f64,
    pub effective_mb: f64,
    pub input_tuples: usize,
    /// Secure Yannakakis wall time (both parties run concurrently).
    pub sy_time: Duration,
    /// Secure Yannakakis total communication (bytes).
    pub sy_comm_bytes: u64,
    /// Naive-GC time, extrapolated from the calibrated gate rate.
    pub gc_time_secs: f64,
    /// Naive-GC communication (exact table bytes).
    pub gc_comm_bytes: u128,
    /// Plaintext engine wall time.
    pub plain_time: Duration,
    /// Plaintext "communication": the input size, as in the paper.
    pub plain_comm_bytes: u64,
    /// Number of result rows (sanity).
    pub out_rows: usize,
    /// Whether secure and plaintext results matched exactly.
    pub results_match: bool,
}

/// Measure one (query, scale) point.
pub fn measure_point(
    query: PaperQuery,
    scale_mb: f64,
    hasher: TweakHasher,
    gc_rate: f64,
    seed: u64,
) -> FigurePoint {
    let ring = NaturalRing::paper_default();
    let db = Database::generate(Scale::mb(scale_mb), seed);
    let spec = query.build(&db, ring);

    // Plaintext baseline (the figures' MySQL stand-in).
    let t0 = Instant::now();
    let plain_rows = run_plaintext_instance(&spec, ring);
    let plain_time = t0.elapsed();

    // Secure Yannakakis: both parties as real threads over the metered
    // channel.
    let (spec_a, spec_b) = (spec.clone(), spec.clone());
    let t0 = Instant::now();
    let (sy_rows, _, stats) = run_protocol(
        move |ch| {
            let mut sess = secyan_core::Session::new(ch, RingCtx::new(32), hasher, seed ^ 0xa11ce);
            run_secure_instance(&mut sess, &spec_a)
        },
        move |ch| {
            let mut sess = secyan_core::Session::new(ch, RingCtx::new(32), hasher, seed ^ 0xb0b);
            run_secure_instance(&mut sess, &spec_b)
        },
    );
    let sy_time = t0.elapsed();
    let results_match = canonical(sy_rows.clone()) == canonical(plain_rows);

    // Naive-GC baseline: exact model, calibrated rate.
    let model = CartesianCostModel::default();
    let gc_cost: (u128, f64) = spec
        .subqueries
        .iter()
        .map(|sq| {
            let sizes: Vec<usize> = sq.relations.iter().map(|r| r.len()).collect();
            let c = model.cost(&sizes);
            (c.table_bytes, c.seconds_at(gc_rate))
        })
        .fold((0u128, 0f64), |(b, s), (b2, s2)| (b + b2, s + s2));

    FigurePoint {
        scale_mb,
        effective_mb: spec.effective_bytes() as f64 / 1e6,
        input_tuples: spec.input_tuples(),
        sy_time,
        sy_comm_bytes: stats.total_bytes(),
        gc_time_secs: gc_cost.1,
        gc_comm_bytes: gc_cost.0,
        plain_time,
        plain_comm_bytes: spec.effective_bytes(),
        out_rows: sy_rows.len(),
        results_match,
    }
}

/// Calibrate the naive-GC gate rate by actually running a small instance
/// (the paper measured its baseline on the smallest dataset and
/// extrapolated — "very accurate, since the cost is proportional to the
/// size of the circuit").
pub fn calibrate_gc_rate(hasher: TweakHasher) -> f64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let sizes = vec![4usize, 8, 8];
    let owners = vec![Role::Alice, Role::Bob, Role::Alice];
    let gates = secyan_baseline::protocol::circuit_and_gates(&sizes, &owners, 32, 32);
    let r1: Vec<(u64, u64, u64)> = (0..4).map(|i| (0, i, i + 1)).collect();
    let r2: Vec<(u64, u64, u64)> = (0..8).map(|i| (i % 4, i, 1)).collect();
    let r3: Vec<(u64, u64, u64)> = (0..8).map(|i| (i, 0, 2)).collect();
    let (s2, o2) = (sizes.clone(), owners.clone());
    let (r2b, r1a, r3a) = (r2.clone(), r1.clone(), r3.clone());
    let t0 = Instant::now();
    run_protocol(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(77);
            let mut ot = OtSender::setup(ch, &mut rng, hasher);
            naive_gc_garbler(
                ch,
                &sizes,
                &owners,
                &[Some(r1a), None, Some(r3a)],
                32,
                32,
                &mut ot,
                hasher,
                &mut rng,
            )
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(78);
            let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
            naive_gc_evaluator(
                ch,
                &s2,
                &o2,
                &[None, Some(r2b), None],
                32,
                32,
                &mut ot,
                hasher,
            )
        },
    );
    let secs = t0.elapsed().as_secs_f64();
    gates as f64 / secs
}

/// Human-readable byte formatting.
pub fn fmt_bytes(b: u128) -> String {
    const UNITS: [&str; 7] = ["B", "KB", "MB", "GB", "TB", "PB", "EB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1000.0 && u + 1 < UNITS.len() {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Human-readable seconds formatting (up to years, for the GC baseline).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else if s < 86_400.0 * 3.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s < 86_400.0 * 365.0 * 2.0 {
        format!("{:.1} days", s / 86_400.0)
    } else {
        format!("{:.1} years", s / (86_400.0 * 365.0))
    }
}

/// Default (scaled-down) figure scales per query; `--full` in the binary
/// switches to the paper's 1–100 MB.
pub fn default_scales(query: PaperQuery) -> Vec<f64> {
    match query {
        PaperQuery::Q3 | PaperQuery::Q10 | PaperQuery::Q18 => vec![0.1, 0.3, 1.0],
        PaperQuery::Q8 => vec![0.05, 0.1, 0.3],
        PaperQuery::Q9 => vec![0.02, 0.05],
    }
}

/// Convenience used by benches and smoke tests.
pub fn build_spec(query: PaperQuery, mb: f64, seed: u64) -> QuerySpec {
    let db = Database::generate(Scale::mb(mb), seed);
    query.build(&db, NaturalRing::paper_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(1_500), "1.50 KB");
        assert_eq!(fmt_bytes(2_000_000_000), "2.00 GB");
        assert!(fmt_secs(0.5).ends_with("ms"));
        assert!(fmt_secs(1e10).ends_with("years"));
    }

    #[test]
    fn q3_point_matches_and_is_linear_ish() {
        let rate = 1e6; // synthetic rate; only relative GC numbers matter here
        let p1 = measure_point(PaperQuery::Q3, 0.05, TweakHasher::Fast, rate, 1);
        assert!(p1.results_match, "secure != plaintext at 0.05 MB");
        let p2 = measure_point(PaperQuery::Q3, 0.1, TweakHasher::Fast, rate, 1);
        assert!(p2.results_match);
        // Communication grows with input size.
        assert!(p2.sy_comm_bytes > p1.sy_comm_bytes);
        // The GC baseline explodes combinatorially, not linearly.
        assert!(p2.gc_comm_bytes > 4 * p1.gc_comm_bytes);
    }

    #[test]
    fn gc_calibration_returns_positive_rate() {
        let rate = calibrate_gc_rate(TweakHasher::Fast);
        assert!(rate > 1000.0, "rate {rate}");
    }
}
