//! Criterion benchmarks of the five paper queries (one per figure) at a
//! small scale. The `figures` binary produces the actual figure series;
//! these benches give statistically robust per-query timings for
//! regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secyan_bench::build_spec;
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_tpch::queries::{run_plaintext_instance, run_secure_instance, PaperQuery};
use secyan_transport::run_protocol;

fn bench_secure_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("secure_queries");
    g.sample_size(10);
    // One (figure, query, scale) per paper figure at smoke scale.
    let cases = [
        (PaperQuery::Q3, 0.05),
        (PaperQuery::Q10, 0.05),
        (PaperQuery::Q18, 0.05),
        (PaperQuery::Q8, 0.02),
        (PaperQuery::Q9, 0.005),
    ];
    for (q, mb) in cases {
        let spec = build_spec(q, mb, 42);
        g.bench_function(
            BenchmarkId::new(format!("fig{}", q.figure()), q.name()),
            |b| {
                b.iter(|| {
                    let (sa, sb) = (spec.clone(), spec.clone());
                    run_protocol(
                        move |ch| {
                            let mut sess = secyan_core::Session::new(
                                ch,
                                RingCtx::new(32),
                                TweakHasher::Fast,
                                1,
                            );
                            run_secure_instance(&mut sess, &sa)
                        },
                        move |ch| {
                            let mut sess = secyan_core::Session::new(
                                ch,
                                RingCtx::new(32),
                                TweakHasher::Fast,
                                2,
                            );
                            run_secure_instance(&mut sess, &sb)
                        },
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_plaintext_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("plaintext_queries");
    let ring = secyan_relation::NaturalRing::paper_default();
    for (q, mb) in [
        (PaperQuery::Q3, 1.0),
        (PaperQuery::Q10, 1.0),
        (PaperQuery::Q9, 0.3),
    ] {
        let spec = build_spec(q, mb, 42);
        g.bench_function(BenchmarkId::new("plain", q.name()), |b| {
            b.iter(|| run_plaintext_instance(&spec, ring));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_secure_queries, bench_plaintext_queries
}
criterion_main!(benches);
