//! Criterion micro-benchmarks of the cryptographic substrates: per-unit
//! costs of OT extension, garbling, OEP and PSI — the constants behind the
//! figures' linear terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_circuit::Builder;
use secyan_crypto::{Block, RingCtx, TweakHasher};
use secyan_gc::scheme::{eval, garble, EvalTables};
use secyan_oep::{oep_perm_holder, oep_value_holder};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::run_protocol;

fn bench_ot_extension(c: &mut Criterion) {
    let mut g = c.benchmark_group("ot_extension");
    for m in [1_000usize, 10_000] {
        g.throughput(Throughput::Elements(m as u64));
        g.bench_with_input(BenchmarkId::new("random_ots", m), &m, |b, &m| {
            b.iter(|| {
                run_protocol(
                    move |ch| {
                        let mut rng = StdRng::seed_from_u64(1);
                        let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Fast);
                        ot.random(ch, m)
                    },
                    move |ch| {
                        let mut rng = StdRng::seed_from_u64(2);
                        let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Fast);
                        ot.random(ch, &vec![false; m])
                    },
                )
            });
        });
    }
    g.finish();
}

fn bench_garbling(c: &mut Criterion) {
    let mut g = c.benchmark_group("garbling");
    // A 32-bit multiplier: the dominant gate block in the product circuits.
    let mut b = Builder::new();
    let x = b.alice_word(32);
    let y = b.bob_word(32);
    let p = b.mul_words(&x, &y);
    b.output_word(&p);
    let circuit = b.finish();
    let ands = circuit.and_count();
    for hasher in [TweakHasher::Fast, TweakHasher::Aes, TweakHasher::Sha256] {
        g.throughput(Throughput::Elements(ands));
        g.bench_function(
            BenchmarkId::new("mul32_garble", format!("{hasher:?}")),
            |bch| {
                let mut rng = StdRng::seed_from_u64(3);
                bch.iter(|| garble(&circuit, hasher, &mut rng));
            },
        );
        g.bench_function(
            BenchmarkId::new("mul32_eval", format!("{hasher:?}")),
            |bch| {
                let mut rng = StdRng::seed_from_u64(4);
                let gb = garble(&circuit, hasher, &mut rng);
                let labels: Vec<Block> = (0..64).map(|i| gb.input_label(i, false)).collect();
                let tables = EvalTables {
                    tables: gb.tables.clone(),
                };
                bch.iter(|| eval(&circuit, &tables, &labels, hasher));
            },
        );
    }
    g.finish();
}

fn bench_oep(c: &mut Criterion) {
    let mut g = c.benchmark_group("oep");
    let ring = RingCtx::new(32);
    for n in [256usize, 1024] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("identity_oep", n), &n, |b, &n| {
            let values: Vec<u64> = (0..n as u64).collect();
            let xi: Vec<usize> = (0..n).collect();
            b.iter(|| {
                let v = values.clone();
                let x = xi.clone();
                run_protocol(
                    move |ch| {
                        let mut rng = StdRng::seed_from_u64(5);
                        let mut ot = OtReceiver::setup(ch, &mut rng, TweakHasher::Fast);
                        oep_perm_holder(ch, &x, n, ring, &mut ot)
                    },
                    move |ch| {
                        let mut rng = StdRng::seed_from_u64(6);
                        let mut ot = OtSender::setup(ch, &mut rng, TweakHasher::Fast);
                        oep_value_holder(ch, &v, n, ring, &mut ot, &mut rng)
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ot_extension, bench_garbling, bench_oep
}
criterion_main!(benches);
