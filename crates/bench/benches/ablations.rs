//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the §6.5 plain-annotation fast paths (local aggregation +
//!   plain-payload PSI) vs. forcing everything through the shared-payload
//!   machinery;
//! * SHA-256 vs. fast garbling hash (the substituted primitive's constant);
//! * reduce-first vs. a naive plan that skips the reduce phase, measured
//!   via a query whose reduce phase collapses the tree (the paper's remark
//!   at the end of §6.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_core::agg::{oblivious_project_agg, AggKind};
use secyan_core::{SecureRelation, Session};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{NaturalRing, Relation};
use secyan_tpch::queries::{run_secure_instance, PaperQuery};
use secyan_transport::{run_protocol, Role};

fn test_relation(n: usize) -> Relation<NaturalRing> {
    let mut rng = StdRng::seed_from_u64(9);
    use rand::Rng;
    Relation::from_rows(
        NaturalRing::paper_default(),
        vec!["g".into(), "x".into()],
        (0..n)
            .map(|_| {
                (
                    vec![rng.gen_range(0..n as u64 / 4 + 1), rng.gen()],
                    rng.gen_range(0..1000),
                )
            })
            .collect(),
    )
}

/// §6.5 ablation: aggregation with owner-known annotations (local fast
/// path) vs. forced secret-shared annotations (full OEP + merge circuit).
fn bench_agg_plain_vs_shared(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_agg_655");
    g.sample_size(10);
    let rel = test_relation(200);
    for force_shared in [false, true] {
        let label = if force_shared {
            "shared"
        } else {
            "plain(§6.5)"
        };
        g.bench_function(BenchmarkId::new("project_agg", label), |b| {
            b.iter(|| {
                let r1 = rel.clone();
                run_protocol(
                    move |ch| {
                        let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Fast, 11);
                        let mut r = SecureRelation::load(
                            &mut sess,
                            Role::Alice,
                            vec!["g".into(), "x".into()],
                            Some(&r1),
                        );
                        if force_shared {
                            r.ensure_shared(&mut sess);
                        }
                        oblivious_project_agg(&mut sess, &r, &["g".to_string()], AggKind::Sum).size
                    },
                    move |ch| {
                        let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Fast, 12);
                        let mut r = SecureRelation::load(
                            &mut sess,
                            Role::Alice,
                            vec!["g".into(), "x".into()],
                            None,
                        );
                        if force_shared {
                            r.ensure_shared(&mut sess);
                        }
                        oblivious_project_agg(&mut sess, &r, &["g".to_string()], AggKind::Sum).size
                    },
                )
            });
        });
    }
    g.finish();
}

/// Garbling-hash ablation: the substituted SHA-256 vs. the fast mixer, on
/// a whole query run (Q3 smoke scale).
fn bench_hasher_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gc_hash");
    g.sample_size(10);
    let spec = secyan_bench::build_spec(PaperQuery::Q3, 0.05, 42);
    for hasher in [TweakHasher::Fast, TweakHasher::Sha256] {
        g.bench_function(BenchmarkId::new("q3", format!("{hasher:?}")), |b| {
            b.iter(|| {
                let (sa, sb) = (spec.clone(), spec.clone());
                run_protocol(
                    move |ch| {
                        let mut sess = Session::new(ch, RingCtx::new(32), hasher, 13);
                        run_secure_instance(&mut sess, &sa)
                    },
                    move |ch| {
                        let mut sess = Session::new(ch, RingCtx::new(32), hasher, 14);
                        run_secure_instance(&mut sess, &sb)
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_agg_plain_vs_shared, bench_hasher_ablation
}
criterion_main!(benches);
