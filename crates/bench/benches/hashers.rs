//! Criterion micro-benchmarks of the tweakable hash variants: the
//! per-block cost of `Sha256` (cross-check), `Aes` (default fixed-key
//! MMO), and `Fast` (non-cryptographic), scalar and batched. This is the
//! kernel behind every AND gate, every OT row, and every OPRF mask, so
//! the per-block constant here is the slope of the figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use secyan_crypto::{Block, TweakHasher};

const HASHERS: [TweakHasher; 3] = [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast];

fn test_blocks(n: usize) -> Vec<Block> {
    (0..n)
        .map(|i| Block((i as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835)))
        .collect()
}

/// One block, one tweak per call — the shape of a naive garbling loop.
fn bench_scalar(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_scalar");
    let blocks = test_blocks(1024);
    g.throughput(Throughput::Elements(blocks.len() as u64));
    for hasher in HASHERS {
        g.bench_function(BenchmarkId::new("hash", format!("{hasher:?}")), |b| {
            b.iter(|| {
                let mut acc = Block::ZERO;
                for (j, &x) in blocks.iter().enumerate() {
                    acc ^= hasher.hash(x, j as u64);
                }
                acc
            });
        });
    }
    g.finish();
}

/// Whole-slice batches — the shape of the IKNP row-hashing hot loop.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_batch");
    for n in [1024usize, 16384] {
        let blocks = test_blocks(n);
        g.throughput(Throughput::Elements(n as u64));
        for hasher in HASHERS {
            g.bench_with_input(
                BenchmarkId::new(format!("{hasher:?}"), n),
                &blocks,
                |b, blocks| b.iter(|| hasher.hash_batch(blocks, 0)),
            );
        }
    }
    g.finish();
}

/// Four-hash gate kernels — the shape of the half-gates garbler.
fn bench_gate_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_gate_kernels");
    let blocks = test_blocks(4096);
    g.throughput(Throughput::Elements(blocks.len() as u64 / 4));
    for hasher in HASHERS {
        g.bench_function(BenchmarkId::new("hash4", format!("{hasher:?}")), |b| {
            b.iter(|| {
                let mut acc = Block::ZERO;
                for (j, quad) in blocks.chunks_exact(4).enumerate() {
                    let t = 2 * j as u64;
                    let out =
                        hasher.hash4([quad[0], quad[1], quad[2], quad[3]], [t, t, t + 1, t + 1]);
                    acc ^= out[0] ^ out[1] ^ out[2] ^ out[3];
                }
                acc
            });
        });
    }
    g.finish();
}

/// Wide-row hashing — the shape of the KKRT OPRF output masking.
fn bench_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_rows");
    let rows: Vec<[u8; 64]> = (0..4096usize)
        .map(|i| {
            let mut r = [0u8; 64];
            r[..8].copy_from_slice(&(i as u64).to_le_bytes());
            r
        })
        .collect();
    g.throughput(Throughput::Elements(rows.len() as u64));
    for hasher in HASHERS {
        g.bench_function(
            BenchmarkId::new("row512_batch", format!("{hasher:?}")),
            |b| {
                b.iter(|| hasher.hash_row_batch(0, &rows));
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scalar,
    bench_batch,
    bench_gate_kernels,
    bench_rows
);
criterion_main!(benches);
