//! Criterion benchmarks of the SIMD kernel layer: each kernel measured
//! on its scalar arm and its SIMD arm (flipped in-process through
//! `secyan_crypto::cpu::set_force_scalar`), so the accelerated/portable
//! ratio is visible directly in the report. The acceptance bars for the
//! kernel layer — ≥4x on the movemask transpose, ≥2x on batched GF(2^64)
//! interpolation — are read off these groups; `BENCH_kernels.json`
//! (written by `profile_ops`) records the same comparison as a tracked
//! artifact.
//!
//! The worker pool is pinned to one thread for every measurement: these
//! are kernel benchmarks, and the pool partitioning is benchmarked
//! separately (`profile_ops` threads sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use secyan_crypto::cpu;
use secyan_crypto::gf64::{self, Gf64};
use secyan_crypto::transpose::BitMatrix;
use secyan_par as par;

/// Run `f` under one dispatch arm, restoring env-driven dispatch after.
fn with_arm<T>(force_scalar: bool, f: impl FnOnce() -> T) -> T {
    let _guard = cpu::override_lock();
    cpu::set_force_scalar(force_scalar);
    let out = f();
    cpu::clear_force_scalar();
    out
}

const ARMS: [(&str, bool); 2] = [("scalar", true), ("simd", false)];

fn bench_transpose(c: &mut Criterion) {
    par::set_threads(1);
    let mut g = c.benchmark_group("kernel_transpose");
    for (rows, cols) in [(1024usize, 1024usize), (4096, 4096)] {
        let m = BitMatrix::from_fn(rows, cols, |r, c| (r * 31 + c * 7) % 3 == 0);
        g.throughput(Throughput::Bytes((rows * cols / 8) as u64));
        for (arm, force) in ARMS {
            g.bench_function(BenchmarkId::new(arm, format!("{rows}x{cols}")), |b| {
                with_arm(force, || b.iter(|| m.transpose()));
            });
        }
    }
    g.finish();
    par::set_threads(0);
}

fn bench_gf64(c: &mut Criterion) {
    par::set_threads(1);
    let mut g = c.benchmark_group("kernel_gf64");

    // Elementwise multiply: the primitive under both poly kernels.
    let n = 1usize << 14;
    let ys: Vec<Gf64> = (0..n as u64)
        .map(|i| Gf64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1))
        .collect();
    g.throughput(Throughput::Elements(n as u64));
    for (arm, force) in ARMS {
        g.bench_function(BenchmarkId::new(arm, format!("mul_slice_{n}")), |b| {
            let mut xs = ys.clone();
            with_arm(force, || {
                b.iter(|| {
                    gf64::mul_slice(&mut xs, &ys);
                    xs[0]
                })
            });
        });
    }

    // Newton interpolation through 24 points (the OPPRF hint degree),
    // 64 bins per iteration.
    let bins: Vec<Vec<(Gf64, Gf64)>> = (0..64u64)
        .map(|b| {
            (0..24u64)
                .map(|i| {
                    let x = (b * 24 + i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    (Gf64(x), Gf64(x ^ b))
                })
                .collect()
        })
        .collect();
    g.throughput(Throughput::Elements(64));
    for (arm, force) in ARMS {
        g.bench_function(BenchmarkId::new(arm, "interpolate_deg24_x64"), |b| {
            with_arm(force, || {
                b.iter(|| {
                    bins.iter()
                        .map(|pts| gf64::poly_interpolate(pts).len())
                        .sum::<usize>()
                })
            });
        });
    }

    // Lockstep Horner over 2048 bins of degree 24: the OPPRF evaluation
    // shape.
    let flat: Vec<Gf64> = (0..2048u64 * 24)
        .map(|i| Gf64(i.wrapping_mul(0x2545_f491_4f6c_dd1d)))
        .collect();
    let xs: Vec<Gf64> = (0..2048u64).map(|i| Gf64(i * 3 + 1)).collect();
    g.throughput(Throughput::Elements(2048));
    for (arm, force) in ARMS {
        g.bench_function(BenchmarkId::new(arm, "poly_eval_batch_2048x24"), |b| {
            with_arm(force, || b.iter(|| gf64::poly_eval_batch(&flat, 24, &xs)));
        });
    }
    g.finish();
    par::set_threads(0);
}

fn bench_aes(c: &mut Criterion) {
    par::set_threads(1);
    let mut g = c.benchmark_group("kernel_aes");
    let n = 1usize << 14;
    let key = secyan_crypto::aes::Aes128::new([7u8; 16]);
    g.throughput(Throughput::Elements(n as u64));
    for (arm, force) in ARMS {
        g.bench_function(BenchmarkId::new(arm, format!("encrypt_many_{n}")), |b| {
            let mut blocks: Vec<u128> = (0..n as u128)
                .map(|i| i.wrapping_mul(0xdead_beef))
                .collect();
            with_arm(force, || {
                b.iter(|| {
                    key.encrypt_blocks(&mut blocks);
                    blocks[0]
                })
            });
        });
    }
    g.finish();
    par::set_threads(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transpose, bench_gf64, bench_aes
}
criterion_main!(benches);
