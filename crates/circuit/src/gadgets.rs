//! Word-level gadgets: the arithmetic the secure protocol garbles.
//!
//! Everything operates on little-endian [`Word`]s over Z_{2^ℓ} with
//! wrap-around semantics. AND-gate counts (the cost driver): add/sub are
//! ℓ−1 ANDs, mul is ~ℓ²/2 + ℓ·(ℓ−1) ANDs, eq is ℓ−1 ANDs, mux is ℓ ANDs.

use crate::builder::{BitRef, Builder, Word};

impl Builder {
    /// Bitwise XOR of equal-width words (free).
    pub fn xor_words(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.bits(), b.bits());
        Word(
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| self.xor(x, y))
                .collect(),
        )
    }

    /// `a + b` mod 2^ℓ (ripple-carry, one AND per bit except the last).
    pub fn add_words(&mut self, a: &Word, b: &Word) -> Word {
        self.add_with_carry(a, b, BitRef::Const(false))
    }

    /// `a - b` mod 2^ℓ — implemented as `a + !b + 1`.
    pub fn sub_words(&mut self, a: &Word, b: &Word) -> Word {
        let nb = Word(b.0.iter().map(|&x| self.not(x)).collect());
        self.add_with_carry(a, &nb, BitRef::Const(true))
    }

    /// `-a` mod 2^ℓ.
    pub fn neg_word(&mut self, a: &Word) -> Word {
        let zero = self.const_word(0, a.bits());
        self.sub_words(&zero, a)
    }

    fn add_with_carry(&mut self, a: &Word, b: &Word, mut carry: BitRef) -> Word {
        assert_eq!(a.bits(), b.bits());
        let n = a.bits();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (a.0[i], b.0[i]);
            let xc = self.xor(x, carry);
            let yc = self.xor(y, carry);
            let s = self.xor(xc, y);
            out.push(s);
            if i + 1 < n {
                // carry' = carry ⊕ ((x ⊕ carry) ∧ (y ⊕ carry)) — the
                // single-AND full adder.
                let t = self.and(xc, yc);
                carry = self.xor(carry, t);
            }
        }
        Word(out)
    }

    /// `a * b` mod 2^ℓ (schoolbook shift-and-add).
    pub fn mul_words(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.bits(), b.bits());
        let n = a.bits();
        let mut acc = self.const_word(0, n);
        for j in 0..n {
            // Partial product (a << j) & b_j, truncated to ℓ bits.
            let mut partial = vec![BitRef::Const(false); n];
            for i in 0..n - j {
                partial[i + j] = self.and(a.0[i], b.0[j]);
            }
            acc = self.add_words(&acc, &Word(partial));
        }
        acc
    }

    /// 1-bit equality of words (ℓ−1 ANDs via an AND-tree of XNORs).
    pub fn eq_words(&mut self, a: &Word, b: &Word) -> BitRef {
        assert_eq!(a.bits(), b.bits());
        let diffs: Vec<BitRef> = (0..a.bits())
            .map(|i| {
                let x = self.xor(a.0[i], b.0[i]);
                self.not(x)
            })
            .collect();
        self.and_tree(&diffs)
    }

    /// 1 iff the word is zero (ℓ−1 ANDs).
    pub fn is_zero_word(&mut self, a: &Word) -> BitRef {
        let inv: Vec<BitRef> = a.0.iter().map(|&x| self.not(x)).collect();
        self.and_tree(&inv)
    }

    /// 1 iff the word is nonzero.
    pub fn is_nonzero_word(&mut self, a: &Word) -> BitRef {
        let z = self.is_zero_word(a);
        self.not(z)
    }

    /// Unsigned `a < b` (final borrow of a ripple subtractor; ℓ ANDs).
    pub fn lt_words(&mut self, a: &Word, b: &Word) -> BitRef {
        assert_eq!(a.bits(), b.bits());
        // borrow' = b_i ⊕ ((a_i ⊕ b_i) ∧ (b_i ⊕ borrow))  — wait, use the
        // standard identity: borrow_{i+1} = ((a_i ⊕ borrow_i) ∧ (b_i ⊕
        // borrow_i)) ⊕ a_i ⊕ borrow_i ⊕ ... Simplest correct form:
        // borrow' = (!a & b) | (borrow & !(a ^ b)), computed with one AND
        // via borrow' = borrow ⊕ ((a ⊕ borrow) ∧ (b ⊕ borrow)) ⊕ (a ⊕ b)?
        // We instead use the subtract-with-carry trick: a - b = a + !b + 1;
        // a < b  ⇔  the final carry out is 0.
        let nb = Word(b.0.iter().map(|&x| self.not(x)).collect());
        let carry_out = self.carry_out(a, &nb, BitRef::Const(true));
        self.not(carry_out)
    }

    /// Unsigned `a > b`.
    pub fn gt_words(&mut self, a: &Word, b: &Word) -> BitRef {
        self.lt_words(b, a)
    }

    /// Carry out of `a + b + carry_in` (ℓ ANDs).
    fn carry_out(&mut self, a: &Word, b: &Word, mut carry: BitRef) -> BitRef {
        assert_eq!(a.bits(), b.bits());
        for i in 0..a.bits() {
            let xc = self.xor(a.0[i], carry);
            let yc = self.xor(b.0[i], carry);
            let t = self.and(xc, yc);
            carry = self.xor(carry, t);
        }
        carry
    }

    /// Unsigned integer division `a / b` (restoring division, ~2ℓ² ANDs).
    /// Division by zero yields all-ones, like a saturating sentinel; the
    /// composition layer never divides by zero on real groups.
    pub fn div_words(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.bits(), b.bits());
        let n = a.bits();
        // Remainder register, built up from a's bits MSB-first.
        let mut rem = self.const_word(0, n);
        let mut quot = vec![BitRef::Const(false); n];
        for i in (0..n).rev() {
            // rem = (rem << 1) | a_i.
            let mut shifted = vec![a.0[i]];
            shifted.extend_from_slice(&rem.0[..n - 1]);
            rem = Word(shifted);
            // If rem >= b: rem -= b, quotient bit 1.
            let lt = self.lt_words(&rem, b);
            let ge = self.not(lt);
            let diff = self.sub_words(&rem, b);
            rem = self.mux_words(ge, &diff, &rem);
            quot[i] = ge;
        }
        // Division by zero: every step sets ge (rem >= 0 is always true),
        // giving the all-ones sentinel naturally.
        Word(quot)
    }

    /// `sel ? t : f` word-wise (ℓ ANDs).
    pub fn mux_words(&mut self, sel: BitRef, t: &Word, f: &Word) -> Word {
        assert_eq!(t.bits(), f.bits());
        Word(
            t.0.iter()
                .zip(&f.0)
                .map(|(&x, &y)| self.mux(sel, x, y))
                .collect(),
        )
    }

    /// Multiply a word by a single bit: `bit ? a : 0` (ℓ ANDs).
    pub fn and_word_bit(&mut self, a: &Word, bit: BitRef) -> Word {
        Word(a.0.iter().map(|&x| self.and(x, bit)).collect())
    }

    /// Balanced AND-tree over bits (n−1 ANDs, depth ⌈log n⌉).
    pub fn and_tree(&mut self, bits: &[BitRef]) -> BitRef {
        match bits.len() {
            0 => BitRef::Const(true),
            1 => bits[0],
            n => {
                let (lo, hi) = bits.split_at(n / 2);
                let l = self.and_tree(lo);
                let r = self.and_tree(hi);
                self.and(l, r)
            }
        }
    }

    /// Balanced OR-tree over bits.
    pub fn or_tree(&mut self, bits: &[BitRef]) -> BitRef {
        match bits.len() {
            0 => BitRef::Const(false),
            1 => bits[0],
            n => {
                let (lo, hi) = bits.split_at(n / 2);
                let l = self.or_tree(lo);
                let r = self.or_tree(hi);
                self.or(l, r)
            }
        }
    }

    /// Truncate or zero-extend a word to `bits`.
    pub fn resize_word(&mut self, a: &Word, bits: usize) -> Word {
        let mut v = a.0.clone();
        v.truncate(bits);
        while v.len() < bits {
            v.push(BitRef::Const(false));
        }
        Word(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{bits_to_u64, evaluate, u64_to_bits};
    use crate::ir::Circuit;

    /// Build a 2-input word circuit with `f`, evaluate on (x, y), return u64.
    fn run_binop(
        bits: usize,
        x: u64,
        y: u64,
        f: impl Fn(&mut Builder, &Word, &Word) -> Word,
    ) -> u64 {
        let mut bld = Builder::new();
        let a = bld.alice_word(bits);
        let b = bld.bob_word(bits);
        let o = f(&mut bld, &a, &b);
        bld.output_word(&o);
        let c: Circuit = bld.finish();
        c.validate().unwrap();
        let out = evaluate(&c, &u64_to_bits(x, bits), &u64_to_bits(y, bits));
        bits_to_u64(&out)
    }

    fn run_pred(
        bits: usize,
        x: u64,
        y: u64,
        f: impl Fn(&mut Builder, &Word, &Word) -> BitRef,
    ) -> bool {
        let mut bld = Builder::new();
        let a = bld.alice_word(bits);
        let b = bld.bob_word(bits);
        let o = f(&mut bld, &a, &b);
        bld.output(o);
        let c = bld.finish();
        evaluate(&c, &u64_to_bits(x, bits), &u64_to_bits(y, bits))[0]
    }

    const CASES: [(u64, u64); 8] = [
        (0, 0),
        (1, 1),
        (5, 3),
        (3, 5),
        (0xffff_ffff, 1),
        (123_456_789, 987_654_321),
        (0x8000_0000, 0x8000_0000),
        (0xdead_beef, 0xcafe_f00d),
    ];

    #[test]
    fn add_matches_wrapping_add() {
        for (x, y) in CASES {
            let got = run_binop(32, x, y, |b, a, c| b.add_words(a, c));
            assert_eq!(got, (x.wrapping_add(y)) & 0xffff_ffff, "{x} + {y}");
        }
    }

    #[test]
    fn sub_matches_wrapping_sub() {
        for (x, y) in CASES {
            let got = run_binop(32, x, y, |b, a, c| b.sub_words(a, c));
            assert_eq!(got, (x.wrapping_sub(y)) & 0xffff_ffff, "{x} - {y}");
        }
    }

    #[test]
    fn mul_matches_wrapping_mul() {
        for (x, y) in CASES {
            let got = run_binop(32, x, y, |b, a, c| b.mul_words(a, c));
            assert_eq!(got, (x.wrapping_mul(y)) & 0xffff_ffff, "{x} * {y}");
        }
    }

    #[test]
    fn neg_matches() {
        for (x, _) in CASES {
            let got = run_binop(32, x, 0, |b, a, _| b.neg_word(a));
            assert_eq!(got, x.wrapping_neg() & 0xffff_ffff);
        }
    }

    #[test]
    fn comparisons_match() {
        for (x, y) in CASES {
            assert_eq!(run_pred(32, x, y, |b, a, c| b.eq_words(a, c)), x == y);
            assert_eq!(run_pred(32, x, y, |b, a, c| b.lt_words(a, c)), x < y);
            assert_eq!(run_pred(32, x, y, |b, a, c| b.gt_words(a, c)), x > y);
        }
    }

    #[test]
    fn zero_tests_match() {
        for v in [0u64, 1, 0xffff_ffff] {
            assert_eq!(run_pred(32, v, 0, |b, a, _| b.is_zero_word(a)), v == 0);
            assert_eq!(run_pred(32, v, 0, |b, a, _| b.is_nonzero_word(a)), v != 0);
        }
    }

    #[test]
    fn div_matches_integer_division() {
        for (x, y) in [
            (100u64, 7u64),
            (0, 5),
            (13, 13),
            (12, 13),
            (0xffff, 1),
            (7, 100),
        ] {
            let got = run_binop(16, x, y, |b, a, c| b.div_words(a, c));
            assert_eq!(got, x / y, "{x} / {y}");
        }
    }

    #[test]
    fn div_by_zero_saturates() {
        assert_eq!(run_binop(8, 42, 0, |b, a, c| b.div_words(a, c)), 0xff);
    }

    #[test]
    fn mux_selects() {
        for sel in [0u64, 1] {
            let mut bld = Builder::new();
            let s = bld.alice_input();
            let t = bld.bob_word(8);
            let f = bld.const_word(99, 8);
            let o = bld.mux_words(s, &t, &f);
            bld.output_word(&o);
            let c = bld.finish();
            let out = evaluate(&c, &[sel == 1], &u64_to_bits(42, 8));
            assert_eq!(bits_to_u64(&out), if sel == 1 { 42 } else { 99 });
        }
    }

    #[test]
    fn and_gate_budget_for_add() {
        // Documented cost model: ℓ−1 ANDs for an adder.
        let mut bld = Builder::new();
        let a = bld.alice_word(32);
        let b = bld.bob_word(32);
        let o = bld.add_words(&a, &b);
        bld.output_word(&o);
        assert_eq!(bld.finish().and_count(), 31);
    }

    #[test]
    fn tree_helpers() {
        for n in 0..6 {
            let mut bld = Builder::new();
            let _pad = bld.alice_input(); // ensures const outputs materialize
            let bits: Vec<BitRef> = (0..n).map(|_| bld.bob_input()).collect();
            let all = bld.and_tree(&bits);
            let any = bld.or_tree(&bits);
            bld.output(all);
            bld.output(any);
            let c = bld.finish();
            for pattern in 0..1u32 << n {
                let ins: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
                let out = evaluate(&c, &[false], &ins);
                assert_eq!(out[0], ins.iter().all(|&b| b), "and n={n} p={pattern}");
                assert_eq!(out[1], ins.iter().any(|&b| b), "or n={n} p={pattern}");
            }
        }
    }

    #[test]
    fn resize_word_extends_and_truncates() {
        let got = run_binop(16, 0xabcd, 0, |b, a, _| {
            let w = b.resize_word(a, 8);
            b.resize_word(&w, 16)
        });
        assert_eq!(got, 0xcd);
    }

    proptest::proptest! {
        #[test]
        fn prop_arith_matches_u64(x: u64, y: u64) {
            let m = 0xffff_ffffu64;
            proptest::prop_assert_eq!(
                run_binop(32, x & m, y & m, |b, a, c| b.add_words(a, c)),
                x.wrapping_add(y) & m
            );
            proptest::prop_assert_eq!(
                run_binop(32, x & m, y & m, |b, a, c| b.mul_words(a, c)),
                (x & m).wrapping_mul(y & m) & m
            );
            proptest::prop_assert_eq!(
                run_pred(32, x & m, y & m, |b, a, c| b.lt_words(a, c)),
                (x & m) < (y & m)
            );
        }
    }
}
