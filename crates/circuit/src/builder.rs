//! Circuit builder with symbolic constant/inversion folding.

use crate::ir::{Circuit, Gate};

/// A symbolic bit: either a known constant or a wire with an optional
/// pending inversion. Inversions are folded into consuming XORs for free
/// and only materialized as `Inv` gates when a consumer needs the plain
/// wire (AND inputs, outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitRef {
    /// A compile-time-known bit; never becomes a wire unless output.
    Const(bool),
    /// Wire `id`, logically inverted if `inv`.
    Wire { id: usize, inv: bool },
}

impl BitRef {
    /// True if this is a known constant.
    pub fn as_const(self) -> Option<bool> {
        match self {
            BitRef::Const(b) => Some(b),
            BitRef::Wire { .. } => None,
        }
    }
}

/// A little-endian word of symbolic bits (bit 0 = least significant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word(pub Vec<BitRef>);

impl Word {
    /// Bit width.
    pub fn bits(&self) -> usize {
        self.0.len()
    }
}

/// Incremental circuit builder.
///
/// Inputs must all be declared before any gates are added (the garbling
/// protocol assigns input labels positionally); the builder enforces this.
#[derive(Debug, Default)]
pub struct Builder {
    alice_inputs: usize,
    bob_inputs: usize,
    next_wire: usize,
    gates: Vec<Gate>,
    outputs: Vec<usize>,
    inputs_frozen: bool,
}

impl Builder {
    /// Fresh builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Declare one input bit for Alice (the garbler side).
    pub fn alice_input(&mut self) -> BitRef {
        assert!(
            !self.inputs_frozen,
            "all inputs must be declared before the first gate"
        );
        assert_eq!(
            self.bob_inputs, 0,
            "declare all Alice inputs before Bob inputs"
        );
        let id = self.next_wire;
        self.next_wire += 1;
        self.alice_inputs += 1;
        BitRef::Wire { id, inv: false }
    }

    /// Declare one input bit for Bob (the evaluator side).
    pub fn bob_input(&mut self) -> BitRef {
        assert!(
            !self.inputs_frozen,
            "all inputs must be declared before the first gate"
        );
        let id = self.next_wire;
        self.next_wire += 1;
        self.bob_inputs += 1;
        BitRef::Wire { id, inv: false }
    }

    /// Declare an ℓ-bit Alice input word.
    pub fn alice_word(&mut self, bits: usize) -> Word {
        Word((0..bits).map(|_| self.alice_input()).collect())
    }

    /// Declare an ℓ-bit Bob input word.
    pub fn bob_word(&mut self, bits: usize) -> Word {
        Word((0..bits).map(|_| self.bob_input()).collect())
    }

    /// A constant bit (no wire is created).
    pub fn constant(&self, b: bool) -> BitRef {
        BitRef::Const(b)
    }

    /// A constant ℓ-bit word.
    pub fn const_word(&self, value: u64, bits: usize) -> Word {
        Word(
            (0..bits)
                .map(|i| BitRef::Const(value >> i & 1 == 1))
                .collect(),
        )
    }

    fn fresh_wire(&mut self) -> usize {
        self.inputs_frozen = true;
        let id = self.next_wire;
        self.next_wire += 1;
        id
    }

    /// Materialize a `BitRef` into a plain wire (resolving inversions;
    /// panics on constants, which callers must fold first).
    fn plain(&mut self, b: BitRef) -> usize {
        match b {
            BitRef::Const(_) => unreachable!("constants are folded before materialization"),
            BitRef::Wire { id, inv: false } => id,
            BitRef::Wire { id, inv: true } => {
                let out = self.fresh_wire();
                self.gates.push(Gate::Inv { a: id, out });
                out
            }
        }
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: BitRef, b: BitRef) -> BitRef {
        match (a, b) {
            (BitRef::Const(x), BitRef::Const(y)) => BitRef::Const(x ^ y),
            (BitRef::Const(c), BitRef::Wire { id, inv })
            | (BitRef::Wire { id, inv }, BitRef::Const(c)) => BitRef::Wire { id, inv: inv ^ c },
            (BitRef::Wire { id: ia, inv: va }, BitRef::Wire { id: ib, inv: vb }) => {
                if ia == ib {
                    return BitRef::Const(va ^ vb);
                }
                let out = self.fresh_wire();
                self.gates.push(Gate::Xor { a: ia, b: ib, out });
                BitRef::Wire {
                    id: out,
                    inv: va ^ vb,
                }
            }
        }
    }

    /// `NOT a` (free: just flips the symbolic inversion flag).
    pub fn not(&mut self, a: BitRef) -> BitRef {
        match a {
            BitRef::Const(b) => BitRef::Const(!b),
            BitRef::Wire { id, inv } => BitRef::Wire { id, inv: !inv },
        }
    }

    /// `a AND b`.
    pub fn and(&mut self, a: BitRef, b: BitRef) -> BitRef {
        match (a, b) {
            (BitRef::Const(false), _) | (_, BitRef::Const(false)) => BitRef::Const(false),
            (BitRef::Const(true), x) | (x, BitRef::Const(true)) => x,
            (wa @ BitRef::Wire { id: ia, inv: va }, wb @ BitRef::Wire { id: ib, inv: vb }) => {
                if ia == ib {
                    return if va == vb { wa } else { BitRef::Const(false) };
                }
                let pa = self.plain(wa);
                let pb = self.plain(wb);
                let out = self.fresh_wire();
                self.gates.push(Gate::And { a: pa, b: pb, out });
                BitRef::Wire {
                    id: out,
                    inv: false,
                }
            }
        }
    }

    /// `a OR b` (one AND gate: a ⊕ b ⊕ ab).
    pub fn or(&mut self, a: BitRef, b: BitRef) -> BitRef {
        let x = self.xor(a, b);
        let y = self.and(a, b);
        self.xor(x, y)
    }

    /// `sel ? t : f` (one AND gate: f ⊕ sel·(t ⊕ f)).
    pub fn mux(&mut self, sel: BitRef, t: BitRef, f: BitRef) -> BitRef {
        let d = self.xor(t, f);
        let m = self.and(sel, d);
        self.xor(f, m)
    }

    /// Mark a bit as a circuit output (materializing it if symbolic).
    ///
    /// Constant outputs are materialized via `w ⊕ w` on an input wire, so
    /// they require at least one declared input.
    pub fn output(&mut self, b: BitRef) {
        let wire = match b {
            BitRef::Const(c) => {
                assert!(
                    self.next_wire > 0,
                    "cannot output a constant from a circuit with no inputs"
                );
                let zero = self.fresh_wire();
                self.gates.push(Gate::Xor {
                    a: 0,
                    b: 0,
                    out: zero,
                });
                if c {
                    let one = self.fresh_wire();
                    self.gates.push(Gate::Inv { a: zero, out: one });
                    one
                } else {
                    zero
                }
            }
            w @ BitRef::Wire { .. } => self.plain(w),
        };
        self.outputs.push(wire);
    }

    /// Output a whole word, LSB first.
    pub fn output_word(&mut self, w: &Word) {
        for &b in &w.0 {
            self.output(b);
        }
    }

    /// Finalize into an immutable [`Circuit`].
    pub fn finish(self) -> Circuit {
        let c = Circuit {
            num_wires: self.next_wire,
            alice_inputs: self.alice_inputs,
            bob_inputs: self.bob_inputs,
            gates: self.gates,
            outputs: self.outputs,
        };
        debug_assert_eq!(c.validate(), Ok(()));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    fn eval1(c: &Circuit, a: &[bool], b: &[bool]) -> bool {
        evaluate(c, a, b)[0]
    }

    #[test]
    fn xor_truth_table() {
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut bld = Builder::new();
            let a = bld.alice_input();
            let b = bld.bob_input();
            let o = bld.xor(a, b);
            bld.output(o);
            let c = bld.finish();
            assert_eq!(eval1(&c, &[x], &[y]), x ^ y);
        }
    }

    #[test]
    fn and_or_mux_truth_tables() {
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut bld = Builder::new();
            let a = bld.alice_input();
            let b = bld.bob_input();
            let and = bld.and(a, b);
            let or = bld.or(a, b);
            let t = bld.constant(true);
            let f = bld.constant(false);
            let mux = bld.mux(a, t, f); // mux(a, 1, 0) == a
            bld.output(and);
            bld.output(or);
            bld.output(mux);
            let c = bld.finish();
            let out = evaluate(&c, &[x], &[y]);
            assert_eq!(out, vec![x & y, x | y, x]);
        }
    }

    #[test]
    fn inversion_is_folded_through_xor() {
        let mut bld = Builder::new();
        let a = bld.alice_input();
        let b = bld.bob_input();
        let na = bld.not(a);
        let o = bld.xor(na, b); // == !(a ^ b)
        bld.output(o);
        let c = bld.finish();
        // One XOR gate, one materialized INV for the output; zero ANDs.
        assert_eq!(c.and_count(), 0);
        assert!(eval1(&c, &[false], &[false]));
        assert!(!eval1(&c, &[true], &[false]));
    }

    #[test]
    fn constant_folding_eliminates_gates() {
        let mut bld = Builder::new();
        let a = bld.alice_input();
        let zero = bld.constant(false);
        let one = bld.constant(true);
        let x = bld.and(a, zero); // const false
        let y = bld.and(a, one); // a
        let z = bld.xor(x, y); // a
        bld.output(z);
        let c = bld.finish();
        assert_eq!(c.gates.len(), 0);
        assert!(eval1(&c, &[true], &[]));
        assert!(!eval1(&c, &[false], &[]));
    }

    #[test]
    fn same_wire_and_simplifies() {
        let mut bld = Builder::new();
        let a = bld.alice_input();
        let na = bld.not(a);
        let o = bld.and(a, na); // always false
        bld.output(o);
        let c = bld.finish();
        assert_eq!(c.and_count(), 0);
        assert!(!eval1(&c, &[true], &[]));
        assert!(!eval1(&c, &[false], &[]));
    }

    #[test]
    fn constant_output_materializes() {
        let mut bld = Builder::new();
        let _a = bld.alice_input();
        let one = bld.constant(true);
        bld.output(one);
        let c = bld.finish();
        assert!(eval1(&c, &[false], &[]));
        assert!(eval1(&c, &[true], &[]));
    }

    #[test]
    #[should_panic(expected = "before the first gate")]
    fn inputs_after_gates_panic() {
        let mut bld = Builder::new();
        let a = bld.alice_input();
        let b = bld.bob_input();
        let _ = bld.xor(a, b);
        let _ = bld.alice_input();
    }
}
