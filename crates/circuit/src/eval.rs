//! Plaintext circuit evaluation — the correctness oracle for garbling.

use crate::ir::{Circuit, Gate};

/// Evaluate `circuit` on cleartext inputs, returning the output bits in
/// declaration order. Input slices must match the declared input counts.
pub fn evaluate(circuit: &Circuit, alice: &[bool], bob: &[bool]) -> Vec<bool> {
    assert_eq!(alice.len(), circuit.alice_inputs, "alice input arity");
    assert_eq!(bob.len(), circuit.bob_inputs, "bob input arity");
    let mut wires = vec![false; circuit.num_wires];
    wires[..alice.len()].copy_from_slice(alice);
    wires[alice.len()..alice.len() + bob.len()].copy_from_slice(bob);
    for g in &circuit.gates {
        match *g {
            Gate::Xor { a, b, out } => wires[out] = wires[a] ^ wires[b],
            Gate::And { a, b, out } => wires[out] = wires[a] & wires[b],
            Gate::Inv { a, out } => wires[out] = !wires[a],
        }
    }
    circuit.outputs.iter().map(|&o| wires[o]).collect()
}

/// Convert a u64 to `bits` little-endian booleans.
pub fn u64_to_bits(v: u64, bits: usize) -> Vec<bool> {
    (0..bits).map(|i| v >> i & 1 == 1).collect()
}

/// Convert little-endian booleans back to a u64 (panics if over 64 bits).
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_conversions_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX, 1 << 63] {
            assert_eq!(bits_to_u64(&u64_to_bits(v, 64)), v);
        }
        assert_eq!(bits_to_u64(&u64_to_bits(0xff, 4)), 0xf);
    }
}
