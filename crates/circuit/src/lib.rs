//! Boolean circuit IR, builder and gadget library.
//!
//! The paper evaluates small garbled circuits at key points of the secure
//! Yannakakis protocol (§5.2, §6.1–6.3): merge gates for oblivious
//! aggregation, ⊗-multiplication of shared annotations, equality tests in
//! circuit PSI, and the Yao-to-arithmetic share conversion. This crate
//! defines the circuit representation those protocols garble, a builder
//! with the standard word-level gadgets (ripple-carry adders, multipliers,
//! comparators, muxes), and a plaintext evaluator used as the correctness
//! oracle for the garbling scheme.
//!
//! Design notes:
//! * Gates are restricted to XOR / AND / INV. XOR and INV are free under
//!   free-XOR garbling; AND costs two ciphertexts (half-gates), so
//!   [`Circuit::and_count`] is the cost model the benchmark extrapolations
//!   use.
//! * The builder tracks constants and inversions symbolically
//!   ([`BitRef`]) and folds them, so the emitted circuit contains no
//!   constant wires and materializes an INV only when a non-XOR consumer
//!   needs it.
//! * Words are little-endian bit vectors over Z_{2^ℓ}; all arithmetic wraps
//!   mod 2^ℓ, matching the annotation ring of `secyan-crypto::share`.

mod builder;
mod eval;
mod gadgets;
mod ir;
pub mod levels;

pub use builder::{BitRef, Builder, Word};
pub use eval::{bits_to_u64, evaluate, u64_to_bits};
pub use ir::{Circuit, CircuitStats, Gate};
pub use levels::{AndRef, Level, LevelSchedule};
