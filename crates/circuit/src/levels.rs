//! Topological levelization of a circuit for data-parallel garbling.
//!
//! Half-gates garbling is sequential only through wire dependencies: an
//! AND gate's table depends on nothing but its two input labels and its
//! own (position-derived) tweak. Partitioning the gate list into
//! *levels* — where every gate in level k reads only wires settled in
//! levels < k — lets all AND gates of a level garble/evaluate in
//! parallel while the canonical gate order (and thus the garbled tables'
//! wire layout) stays fixed.
//!
//! Free gates (XOR/INV) cost no cryptography, so the schedule keeps them
//! serial: each [`Level`] carries the free gates that become ready with
//! it (run in original gate order) followed by the level's AND gates
//! (run in parallel, results written back in gate order). Splitting this
//! way keeps the parallel closure free of cross-gate writes.

use crate::ir::{Circuit, Gate};

/// One AND gate scheduled in a level: wire indices plus its position in
/// the circuit's AND-gate sequence (the table/tweak index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AndRef {
    /// Left input wire.
    pub a: usize,
    /// Right input wire.
    pub b: usize,
    /// Output wire.
    pub out: usize,
    /// Index in the circuit's AND-gate order (garbled-table slot).
    pub and_idx: usize,
}

/// One parallel step of the schedule.
#[derive(Debug, Clone, Default)]
pub struct Level {
    /// Free gates (XOR/INV) that settle in this level, in circuit order.
    /// Indices refer to `Circuit::gates`.
    pub free: Vec<usize>,
    /// AND gates whose inputs settle strictly before this level's ANDs
    /// run; mutually independent, safe to process in any order.
    pub ands: Vec<AndRef>,
}

/// A level-partitioned view of a circuit. Construction is pure and
/// public-data only (the circuit topology), so both parties derive the
/// identical schedule.
#[derive(Debug, Clone, Default)]
pub struct LevelSchedule {
    /// Levels in execution order.
    pub levels: Vec<Level>,
}

impl LevelSchedule {
    /// Partition `c.gates` into levels.
    ///
    /// Wire w settles at depth d(w): inputs at 0; a free gate settles at
    /// its input depth (XOR at the max of its two); an AND gate at
    /// input depth + 1 (it must wait for a parallel step). Level k then
    /// holds the free gates with depth k and the AND gates with depth
    /// k + 1, which by construction read only wires of depth ≤ k.
    pub fn build(c: &Circuit) -> LevelSchedule {
        let mut depth = vec![0usize; c.num_wires];
        let mut levels: Vec<Level> = Vec::new();
        let ensure = |levels: &mut Vec<Level>, k: usize| {
            if levels.len() <= k {
                levels.resize_with(k + 1, Level::default);
            }
        };
        let mut and_idx = 0usize;
        for (gi, g) in c.gates.iter().enumerate() {
            match *g {
                Gate::Xor { a, b, out } => {
                    let d = depth[a].max(depth[b]);
                    depth[out] = d;
                    ensure(&mut levels, d);
                    levels[d].free.push(gi);
                }
                Gate::Inv { a, out } => {
                    let d = depth[a];
                    depth[out] = d;
                    ensure(&mut levels, d);
                    levels[d].free.push(gi);
                }
                Gate::And { a, b, out } => {
                    let d = depth[a].max(depth[b]);
                    depth[out] = d + 1;
                    ensure(&mut levels, d);
                    levels[d].ands.push(AndRef { a, b, out, and_idx });
                    and_idx += 1;
                }
            }
        }
        LevelSchedule { levels }
    }

    /// Total AND gates across all levels.
    pub fn and_count(&self) -> usize {
        self.levels.iter().map(|l| l.ands.len()).sum()
    }

    /// The widest level's AND count — the available parallelism.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(|l| l.ands.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_circuit() -> Circuit {
        // in0 & in1 -> w2; w2 & in1 -> w3; w3 ^ in0 -> w4
        Circuit {
            num_wires: 5,
            alice_inputs: 1,
            bob_inputs: 1,
            gates: vec![
                Gate::And { a: 0, b: 1, out: 2 },
                Gate::And { a: 2, b: 1, out: 3 },
                Gate::Xor { a: 3, b: 0, out: 4 },
            ],
            outputs: vec![4],
        }
    }

    fn wide_circuit(n: usize) -> Circuit {
        // n independent ANDs over the same two inputs' copies, then a
        // XOR-reduce chain.
        let mut gates = Vec::new();
        let mut w = 2 * n;
        for i in 0..n {
            gates.push(Gate::And {
                a: 2 * i,
                b: 2 * i + 1,
                out: w + i,
            });
        }
        let mut acc = w;
        for i in 1..n {
            gates.push(Gate::Xor {
                a: acc,
                b: w + i,
                out: w + n + i - 1,
            });
            acc = w + n + i - 1;
        }
        w += 2 * n - 1;
        Circuit {
            num_wires: w + 1,
            alice_inputs: n,
            bob_inputs: n,
            gates,
            outputs: vec![acc],
        }
    }

    /// The schedule must be a permutation of the gates where every gate's
    /// inputs settle before it runs: free gates of level k may read same-
    /// level free outputs listed earlier plus level <k AND outputs; AND
    /// gates of level k read only wires settled by end of level k's frees.
    fn assert_valid_schedule(c: &Circuit) {
        let sched = LevelSchedule::build(c);
        let n_in = c.alice_inputs + c.bob_inputs;
        let mut settled = vec![false; c.num_wires];
        for s in settled.iter_mut().take(n_in) {
            *s = true;
        }
        let mut seen_gates = 0usize;
        let mut seen_ands = std::collections::HashSet::new();
        for level in &sched.levels {
            for &gi in &level.free {
                match c.gates[gi] {
                    Gate::Xor { a, b, out } => {
                        assert!(settled[a] && settled[b], "xor inputs unsettled");
                        settled[out] = true;
                    }
                    Gate::Inv { a, out } => {
                        assert!(settled[a], "inv input unsettled");
                        settled[out] = true;
                    }
                    Gate::And { .. } => panic!("AND listed as free"),
                }
                seen_gates += 1;
            }
            // ANDs read only wires settled before any same-level AND writes.
            for and in &level.ands {
                assert!(settled[and.a] && settled[and.b], "and inputs unsettled");
                assert!(seen_ands.insert(and.and_idx), "duplicate and_idx");
            }
            for and in &level.ands {
                settled[and.out] = true;
                seen_gates += 1;
            }
        }
        assert_eq!(seen_gates, c.gates.len(), "schedule drops gates");
        assert_eq!(sched.and_count() as u64, c.and_count());
    }

    #[test]
    fn chain_levels_are_sequential() {
        let c = chain_circuit();
        c.validate().expect("valid circuit");
        let sched = LevelSchedule::build(&c);
        assert_eq!(sched.max_width(), 1);
        assert!(sched.levels.len() >= 2);
        assert_valid_schedule(&c);
    }

    #[test]
    fn wide_circuit_is_one_parallel_level() {
        let c = wide_circuit(64);
        c.validate().expect("valid circuit");
        let sched = LevelSchedule::build(&c);
        assert_eq!(sched.levels[0].ands.len(), 64);
        assert_eq!(sched.max_width(), 64);
        assert_valid_schedule(&c);
    }

    #[test]
    fn and_indices_follow_circuit_order() {
        let c = chain_circuit();
        let sched = LevelSchedule::build(&c);
        let idxs: Vec<usize> = sched
            .levels
            .iter()
            .flat_map(|l| l.ands.iter().map(|a| a.and_idx))
            .collect();
        assert_eq!(idxs, vec![0, 1]);
    }
}
