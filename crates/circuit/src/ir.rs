//! Circuit intermediate representation.

/// A gate over wire indices. Gates appear in topological order: a gate's
/// inputs are either circuit inputs or outputs of earlier gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// `out = a ^ b` — free under free-XOR garbling.
    Xor { a: usize, b: usize, out: usize },
    /// `out = a & b` — two ciphertexts under half-gates.
    And { a: usize, b: usize, out: usize },
    /// `out = !a` — free under free-XOR garbling.
    Inv { a: usize, out: usize },
}

impl Gate {
    /// The output wire index.
    pub fn out(&self) -> usize {
        match *self {
            Gate::Xor { out, .. } | Gate::And { out, .. } | Gate::Inv { out, .. } => out,
        }
    }
}

/// A boolean circuit with two-party inputs.
///
/// Wire indices `0..alice_inputs + bob_inputs` are the input wires (Alice's
/// first); gates extend the wire space. The circuit is public to both
/// parties — only the input *values* are private.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// Number of wires including inputs and every gate output.
    pub num_wires: usize,
    /// Number of Alice (garbler-side) input wires; they are wires `0..n_a`.
    pub alice_inputs: usize,
    /// Number of Bob (evaluator-side) input wires; wires `n_a..n_a + n_b`.
    pub bob_inputs: usize,
    /// Gates in topological order.
    pub gates: Vec<Gate>,
    /// Output wires, in the order the protocol will decode them.
    pub outputs: Vec<usize>,
}

/// Gate-count summary; the benchmark extrapolation model consumes this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    pub and_gates: u64,
    pub xor_gates: u64,
    pub inv_gates: u64,
    pub wires: u64,
    pub outputs: u64,
}

impl Circuit {
    /// Number of AND gates — the communication/computation cost driver.
    pub fn and_count(&self) -> u64 {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And { .. }))
            .count() as u64
    }

    /// Full gate-count statistics.
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats {
            wires: self.num_wires as u64,
            outputs: self.outputs.len() as u64,
            ..Default::default()
        };
        for g in &self.gates {
            match g {
                Gate::Xor { .. } => s.xor_gates += 1,
                Gate::And { .. } => s.and_gates += 1,
                Gate::Inv { .. } => s.inv_gates += 1,
            }
        }
        s
    }

    /// Check structural sanity: topological order, in-range indices.
    /// Used by tests; builder-produced circuits always pass.
    pub fn validate(&self) -> Result<(), String> {
        let n_in = self.alice_inputs + self.bob_inputs;
        let mut defined = vec![false; self.num_wires];
        for w in defined.iter_mut().take(n_in) {
            *w = true;
        }
        for (i, g) in self.gates.iter().enumerate() {
            let (ins, out): (Vec<usize>, usize) = match *g {
                Gate::Xor { a, b, out } | Gate::And { a, b, out } => (vec![a, b], out),
                Gate::Inv { a, out } => (vec![a], out),
            };
            for a in ins {
                if a >= self.num_wires || !defined[a] {
                    return Err(format!("gate {i} reads undefined wire {a}"));
                }
            }
            if out >= self.num_wires {
                return Err(format!("gate {i} writes out-of-range wire {out}"));
            }
            if defined[out] {
                return Err(format!("gate {i} redefines wire {out}"));
            }
            defined[out] = true;
        }
        for &o in &self.outputs {
            if o >= self.num_wires || !defined[o] {
                return Err(format!("output reads undefined wire {o}"));
            }
        }
        Ok(())
    }
}
