//! Seeded generator of random free-connex join-aggregate instances.
//!
//! Every instance is a pure function of its seed: the generator draws the
//! relation count, the tree shape, schemas, ownership, the ring width ℓ,
//! the aggregate kind, and the data itself from one `StdRng`. A failing
//! seed printed by a differential test therefore reproduces the exact
//! instance with `Instance::generate(seed)`.
//!
//! The generated families deliberately cover the awkward corners of the
//! paper's model: skewed key distributions, empty relations, all-dangling
//! inputs (a join edge whose key ranges are disjoint), zero-valued
//! annotations, and annotation values within a few ulps of the Z_{2^ℓ}
//! wrap-around, over both SUM (ring) and COUNT (all-one annotations)
//! semantics at ℓ = 32 and 64.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secyan_core::SecureQuery;
use secyan_crypto::RingCtx;
use secyan_relation::{find_free_connex_tree, Hypergraph, JoinTree, NaturalRing, Relation};
use secyan_transport::Role;

/// Which aggregate semantics an instance exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// SUM over Z_{2^ℓ}: annotations are arbitrary ring elements and the
    /// result is exact modular arithmetic (wrap-around included).
    Sum,
    /// COUNT: every annotation is 1; the overflow-free oracle is the
    /// saturating `CountSemiring`, reduced into the ring at the end.
    Count,
}

/// One generated join-aggregate instance: the public query (schemas,
/// owners, join tree, output attributes, ring width, aggregate kind) plus
/// the private data of both parties.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The seed this instance was generated from (for reproduction).
    pub seed: u64,
    /// Ring width ℓ of Z_{2^ℓ}.
    pub ell: u32,
    /// Aggregate semantics.
    pub agg: AggKind,
    /// Relation schemas, in join-tree node order.
    pub schemas: Vec<Vec<String>>,
    /// Who owns each relation.
    pub owners: Vec<Role>,
    /// A join tree whose rooting witnesses free-connexity.
    pub tree: JoinTree,
    /// Output (group-by) attributes; empty means a scalar aggregate.
    pub output: Vec<String>,
    /// The relations themselves (annotations already reduced into Z_{2^ℓ};
    /// all 1 for COUNT instances).
    pub relations: Vec<Relation<NaturalRing>>,
}

impl Instance {
    /// Generate the instance determined by `seed`: 2–6 relations under a
    /// random acyclic (free-connex) join tree.
    pub fn generate(seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = rng.gen_range(2..=6usize);

        // Random tree *shape* wires the join attributes: relation i > 0
        // shares attribute "j{i}" with a random earlier relation, which
        // keeps the hypergraph acyclic by construction. Private attributes
        // vary each relation's arity.
        let mut parent: Vec<Option<usize>> = vec![None];
        for i in 1..k {
            parent.push(Some(rng.gen_range(0..i)));
        }
        let mut schemas: Vec<Vec<String>> = vec![Vec::new(); k];
        for i in 1..k {
            let p = parent[i].expect("non-root");
            let a = format!("j{i}");
            schemas[i].push(a.clone());
            schemas[p].push(a);
        }
        for (i, s) in schemas.iter_mut().enumerate() {
            for t in 0..rng.gen_range(0..=2usize) {
                s.push(format!("p{i}x{t}"));
            }
        }

        let agg = if rng.gen_bool(0.25) {
            AggKind::Count
        } else {
            AggKind::Sum
        };
        let ell = if rng.gen_bool(0.33) { 64 } else { 32 };
        let ring = RingCtx::new(ell);

        let (output, tree) = choose_output(&mut rng, &schemas);

        let owners: Vec<Role> = if rng.gen_bool(0.2) {
            let all = if rng.gen_bool(0.5) {
                Role::Alice
            } else {
                Role::Bob
            };
            vec![all; k]
        } else {
            (0..k)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        Role::Alice
                    } else {
                        Role::Bob
                    }
                })
                .collect()
        };

        // Per-attribute key domains. COUNT instances get tiny domains and
        // larger relations, making duplicate-heavy inputs the norm there.
        let attrs: Vec<String> = {
            let mut v = Vec::new();
            for s in &schemas {
                for a in s {
                    if !v.contains(a) {
                        v.push(a.clone());
                    }
                }
            }
            v
        };
        let domains: Vec<(u64, bool)> = attrs
            .iter()
            .map(|_| {
                let d = match agg {
                    AggKind::Count => rng.gen_range(1..=3u64),
                    AggKind::Sum => rng.gen_range(1..=5u64),
                };
                (d, rng.gen_bool(0.3)) // (domain size, skewed?)
            })
            .collect();
        // All-dangling inputs: occasionally shift one join edge's child
        // values into a disjoint range so nothing survives the semijoin.
        let dangling: Option<usize> = if k > 1 && rng.gen_bool(0.15) {
            Some(rng.gen_range(1..k))
        } else {
            None
        };

        let max_rows = match agg {
            AggKind::Count => 12,
            AggKind::Sum => 8,
        };
        let relations: Vec<Relation<NaturalRing>> = schemas
            .iter()
            .enumerate()
            .map(|(i, schema)| {
                let n = if rng.gen_bool(0.08) {
                    0
                } else {
                    rng.gen_range(1..=max_rows)
                };
                let mut rel = Relation::new(NaturalRing(ring), schema.clone());
                for _ in 0..n {
                    let tuple: Vec<u64> = schema
                        .iter()
                        .map(|a| {
                            let ai = attrs.iter().position(|x| x == a).expect("known attr");
                            let (d, skew) = domains[ai];
                            let v = if skew && rng.gen_bool(0.6) {
                                1
                            } else {
                                rng.gen_range(1..=d)
                            };
                            // The dangling edge's child side lives in a
                            // disjoint key range.
                            if dangling == Some(i) && *a == format!("j{i}") {
                                v + 1000
                            } else {
                                v
                            }
                        })
                        .collect();
                    let annot = match agg {
                        AggKind::Count => 1,
                        AggKind::Sum => match rng.gen_range(0..10u32) {
                            0 => 0, // explicitly zero-annotated tuple
                            1 | 2 => ring.reduce(u64::MAX - rng.gen_range(0..=2)),
                            _ => rng.gen_range(1..=9),
                        },
                    };
                    rel.push(tuple, annot);
                }
                rel
            })
            .collect();

        Instance {
            seed,
            ell,
            agg,
            schemas,
            owners,
            tree,
            output,
            relations,
        }
    }

    /// Generate a baseline-compatible instance: a 2–3 relation chain of
    /// binary relations with a scalar SUM output and tiny sizes, exactly
    /// the query shape `secyan-baseline`'s Cartesian-product circuit
    /// evaluates.
    pub fn generate_chain(seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A1_0000_0000_0001);
        let k = rng.gen_range(2..=3usize);
        let schemas: Vec<Vec<String>> = (0..k)
            .map(|j| vec![format!("a{j}"), format!("a{}", j + 1)])
            .collect();
        let tree = JoinTree::chain(k);
        let ring = RingCtx::new(32);
        let owners: Vec<Role> = (0..k)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Role::Alice
                } else {
                    Role::Bob
                }
            })
            .collect();
        let relations: Vec<Relation<NaturalRing>> = schemas
            .iter()
            .map(|schema| {
                let n = rng.gen_range(1..=3usize);
                let mut rel = Relation::new(NaturalRing(ring), schema.clone());
                for _ in 0..n {
                    let tuple: Vec<u64> = (0..2).map(|_| rng.gen_range(0..=3u64)).collect();
                    let annot = if rng.gen_bool(0.2) {
                        ring.reduce(u64::MAX - rng.gen_range(0..=2))
                    } else {
                        rng.gen_range(0..=6)
                    };
                    rel.push(tuple, annot);
                }
                rel
            })
            .collect();
        Instance {
            seed,
            ell: 32,
            agg: AggKind::Sum,
            schemas,
            owners,
            tree,
            output: Vec::new(),
            relations,
        }
    }

    /// The ring Z_{2^ℓ} of this instance.
    pub fn ring_ctx(&self) -> RingCtx {
        RingCtx::new(self.ell)
    }

    /// Build (and validate) the public secure query.
    pub fn query(&self) -> SecureQuery {
        SecureQuery::new(
            self.schemas.clone(),
            self.owners.clone(),
            self.tree.clone(),
            self.output.clone(),
        )
    }

    /// `my_relations` argument for one party: `Some` for owned relations.
    pub fn party_relations(&self, who: Role) -> Vec<Option<Relation<NaturalRing>>> {
        self.relations
            .iter()
            .zip(&self.owners)
            .map(|(r, &o)| if o == who { Some(r.clone()) } else { None })
            .collect()
    }

    /// Public relation sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.relations.iter().map(|r| r.len()).collect()
    }

    /// If this instance matches the naive-GC baseline's query shape (chain
    /// of binary relations, scalar output, every relation nonempty, tiny
    /// Cartesian product, 8-bit keys), return each relation's rows as the
    /// baseline's `(left key, right key, annotation)` triples.
    pub fn baseline_rows(&self) -> Option<Vec<Vec<(u64, u64, u64)>>> {
        if !self.output.is_empty() || self.schemas.len() < 2 {
            return None;
        }
        for (j, s) in self.schemas.iter().enumerate() {
            if s.len() != 2 {
                return None;
            }
            if j + 1 < self.schemas.len() && s[1] != self.schemas[j + 1][0] {
                return None;
            }
        }
        let sizes = self.sizes();
        if sizes.contains(&0) || sizes.iter().product::<usize>() > 128 {
            return None;
        }
        let rows: Vec<Vec<(u64, u64, u64)>> = self
            .relations
            .iter()
            .map(|r| {
                r.tuples
                    .iter()
                    .zip(&r.annots)
                    .map(|(t, &a)| (t[0], t[1], a))
                    .collect()
            })
            .collect();
        let keys_fit = rows.iter().flatten().all(|&(l, r, _)| l < 256 && r < 256);
        keys_fit.then_some(rows)
    }

    /// One-line reproduction handle for failure messages. The seed alone
    /// regenerates the instance; the rest is for human triage.
    pub fn describe(&self) -> String {
        format!(
            "instance[seed={}, ell={}, agg={:?}, sizes={:?}, owners={:?}, output={:?}]",
            self.seed,
            self.ell,
            self.agg,
            self.sizes(),
            self.owners,
            self.output,
        )
    }
}

/// Pick output attributes and a join tree witnessing free-connexity.
/// Random subsets are attempted first (rejection-sampling against
/// `find_free_connex_tree`); scalar output is both a deliberate case and
/// the always-valid fallback.
fn choose_output(rng: &mut StdRng, schemas: &[Vec<String>]) -> (Vec<String>, JoinTree) {
    let h = Hypergraph::new(schemas.to_vec());
    let attrs: Vec<String> = {
        let mut v = Vec::new();
        for s in schemas {
            for a in s {
                if !v.contains(a) {
                    v.push(a.clone());
                }
            }
        }
        v
    };
    for _ in 0..8 {
        let output: Vec<String> = if rng.gen_bool(0.25) {
            Vec::new()
        } else {
            let want = rng.gen_range(1..=3usize.min(attrs.len()));
            let mut pool = attrs.clone();
            let mut out = Vec::new();
            for _ in 0..want {
                let i = rng.gen_range(0..pool.len());
                out.push(pool.swap_remove(i));
            }
            out
        };
        if let Some(tree) = find_free_connex_tree(&h, &output) {
            return (output, tree);
        }
    }
    let tree = find_free_connex_tree(&h, &[])
        .expect("generated hypergraph is acyclic, so a scalar-output tree exists");
    (Vec::new(), tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let a = Instance::generate(seed);
            let b = Instance::generate(seed);
            assert_eq!(a.schemas, b.schemas);
            assert_eq!(a.output, b.output);
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.owners, b.owners);
            for (ra, rb) in a.relations.iter().zip(&b.relations) {
                assert_eq!(ra.tuples, rb.tuples);
                assert_eq!(ra.annots, rb.annots);
            }
        }
    }

    #[test]
    fn generated_queries_validate() {
        for seed in 0..40 {
            let inst = Instance::generate(seed);
            // SecureQuery::new re-checks free-connexity; a panic here is a
            // generator bug.
            let q = inst.query();
            assert_eq!(q.len(), inst.relations.len());
            for (r, s) in inst.relations.iter().zip(&inst.schemas) {
                assert_eq!(&r.schema, s);
            }
        }
    }

    #[test]
    fn families_cover_the_corners() {
        let mut saw_empty_rel = false;
        let mut saw_scalar = false;
        let mut saw_grouped = false;
        let mut saw_count = false;
        let mut saw_ell64 = false;
        let mut saw_wrap = false;
        let mut saw_zero_annot = false;
        for seed in 0..200 {
            let inst = Instance::generate(seed);
            saw_empty_rel |= inst.sizes().contains(&0);
            saw_scalar |= inst.output.is_empty();
            saw_grouped |= !inst.output.is_empty();
            saw_count |= inst.agg == AggKind::Count;
            saw_ell64 |= inst.ell == 64;
            let ring = inst.ring_ctx();
            let near_wrap = ring.reduce(u64::MAX - 4);
            for r in &inst.relations {
                saw_wrap |= r.annots.iter().any(|&a| a >= near_wrap);
                saw_zero_annot |=
                    inst.agg == AggKind::Sum && !r.annots.is_empty() && r.annots.contains(&0);
            }
        }
        assert!(saw_empty_rel, "no empty relation in 200 seeds");
        assert!(saw_scalar, "no scalar-output instance in 200 seeds");
        assert!(saw_grouped, "no group-by instance in 200 seeds");
        assert!(saw_count, "no COUNT instance in 200 seeds");
        assert!(saw_ell64, "no ell=64 instance in 200 seeds");
        assert!(saw_wrap, "no near-wrap annotation in 200 seeds");
        assert!(saw_zero_annot, "no zero annotation in 200 seeds");
    }

    #[test]
    fn chain_family_is_baseline_compatible() {
        for seed in 0..20 {
            let inst = Instance::generate_chain(seed);
            let rows = inst
                .baseline_rows()
                .expect("chain family must match the baseline shape");
            assert_eq!(rows.len(), inst.relations.len());
            inst.query(); // chain + scalar output must be free-connex
        }
    }
}
