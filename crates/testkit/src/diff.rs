//! The differential runner: every instance through every engine.
//!
//! Four engines evaluate the same instance:
//!
//! 1. the brute-force naive evaluator (`secyan-relation::naive`) — the
//!    oracle, chosen for being too simple to be wrong;
//! 2. plaintext 3-phase Yannakakis (`secyan-relation::yannakakis`);
//! 3. the naive garbled-circuit baseline (`secyan-baseline`), on instances
//!    matching its chain/scalar query shape;
//! 4. the full secure two-party protocol (`secyan-core`).
//!
//! [`check_instance`] asserts they all agree and returns the secure run's
//! transcript so obliviousness tests can compare instances of equal public
//! shape. Results are compared after canonicalization: rows sorted, equal
//! output tuples merged in the ring (the secure engine reveals one row per
//! surviving join row, the plaintext engines one per group — both are
//! valid decodings of the same aggregate), and zero-valued rows dropped
//! (a zero aggregate is indistinguishable from an absent row in every
//! engine's output contract).

use crate::gen::{AggKind, Instance};
use secyan_baseline::{naive_gc_evaluator, naive_gc_garbler, NaiveRows};
use secyan_core::{run_offline, run_online, secure_yannakakis, QueryResult, Session};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_relation::{naive::naive_join_aggregate, yannakakis, CountSemiring, Relation};
use secyan_transport::{
    run_protocol, run_protocol_captured, run_protocol_captured_on,
    tcp_channel_pair_with_transcript, tcp_pair_from_streams, try_run_protocol_on,
    try_run_protocol_with_faults, CommStats, FaultPlan, ProtocolError, Role, TcpFault,
    TcpFaultProxy,
};

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical query result: sorted `(tuple, value)` rows, no zero values.
pub type Rows = Vec<(Vec<u64>, u64)>;

/// Key bits used for baseline-compatible instances (keys are `< 256` by
/// [`Instance::baseline_rows`]'s check).
const BASELINE_KEY_BITS: usize = 8;

/// Permute tuple columns into sorted attribute-name order — the same
/// column order `Relation::canonical()` uses — so secure results (whose
/// `QueryResult::schema` is in protocol order) compare against plaintext
/// ones.
fn sorted_columns(schema: &[String], tuples: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    let mut order: Vec<usize> = (0..schema.len()).collect();
    order.sort_by(|&a, &b| schema[a].cmp(&schema[b]));
    tuples
        .into_iter()
        .map(|t| order.iter().map(|&i| t[i]).collect())
        .collect()
}

/// Canonicalize a secure run's revealed [`QueryResult`]: columns permuted
/// into sorted attribute-name order, rows sorted, equal tuples merged in
/// the ring, zero-valued rows dropped — the form every engine's output is
/// compared in. `secyan-client` uses this too, so a networked run prints
/// rows directly comparable with the oracle's.
pub fn canonical_result(ring: RingCtx, res: &QueryResult) -> Rows {
    canonical_nonzero(
        ring,
        sorted_columns(&res.schema, res.tuples.clone())
            .into_iter()
            .zip(res.values.iter().copied())
            .collect(),
    )
}

fn canonical_nonzero(ring: RingCtx, mut rows: Rows) -> Rows {
    rows.sort();
    let mut merged: Rows = Vec::with_capacity(rows.len());
    for (t, v) in rows {
        match merged.last_mut() {
            Some((last, acc)) if *last == t => *acc = ring.reduce(acc.wrapping_add(v)),
            _ => merged.push((t, v)),
        }
    }
    merged.retain(|(_, v)| *v != 0);
    merged
}

/// The oracle answer for an instance. SUM runs the naive evaluator in the
/// instance's own ring; COUNT runs it in the overflow-free saturating
/// counting semiring and reduces at the very end, so an engine that
/// wrapped *during* aggregation (instead of only at the boundary) would be
/// caught.
pub fn oracle(inst: &Instance) -> Rows {
    match inst.agg {
        AggKind::Sum => canonical_nonzero(
            inst.ring_ctx(),
            naive_join_aggregate(&inst.relations, &inst.output).canonical(),
        ),
        AggKind::Count => {
            let ring = inst.ring_ctx();
            let rels: Vec<Relation<CountSemiring>> = inst
                .relations
                .iter()
                .map(|r| {
                    Relation::from_rows(
                        CountSemiring,
                        r.schema.clone(),
                        r.tuples.iter().map(|t| (t.clone(), 1)).collect(),
                    )
                })
                .collect();
            canonical_nonzero(
                ring,
                naive_join_aggregate(&rels, &inst.output)
                    .canonical()
                    .into_iter()
                    .map(|(t, v)| (t, ring.reduce(v)))
                    .collect(),
            )
        }
    }
}

/// Engine 2: plaintext 3-phase Yannakakis over the instance's ring.
pub fn plaintext_yannakakis(inst: &Instance) -> Rows {
    canonical_nonzero(
        inst.ring_ctx(),
        yannakakis(&inst.relations, &inst.tree, &inst.output).canonical(),
    )
}

/// What a secure run produced, plus its public communication profile.
#[derive(Debug, Clone)]
pub struct SecureRun {
    /// Canonicalized receiver-side result.
    pub result: Rows,
    /// Public output size as revealed by the protocol.
    pub out_size: usize,
    /// Aggregate communication counters.
    pub stats: CommStats,
    /// Full payload transcript in wire order — obliviousness and
    /// thread-count-determinism tests compare these across runs.
    pub transcript: Vec<(Role, Vec<u8>)>,
}

impl SecureRun {
    /// The transcript reduced to the obliviousness view: per-message
    /// `(sender, length)`.
    pub fn lengths(&self) -> Vec<(Role, usize)> {
        self.transcript.iter().map(|(r, m)| (*r, m.len())).collect()
    }
}

/// Engine 4: the full secure two-party protocol, on a recording channel.
/// Alice is the receiver; session RNG seeds derive from the instance seed.
pub fn run_secure(inst: &Instance) -> SecureRun {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    let (res, (), stats, handle) = run_protocol_captured(
        move |ch| {
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sa);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice)
        },
        move |ch| {
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sb);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
        },
    );
    SecureRun {
        result: canonical_result(ring, &res),
        out_size: res.out_size,
        stats,
        transcript: handle.messages(),
    }
}

/// [`run_secure`] with message coalescing disabled: every staged message
/// ships as its own wire frame (the pre-super-round behavior). Same
/// session seeds as [`run_secure`], so the result, the logical transcript,
/// and every stage-time counter must be byte-identical; only the
/// frame/super-round counters may differ. Round-regression tests run both
/// and diff them.
pub fn run_secure_uncoalesced(inst: &Instance) -> SecureRun {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    let (res, (), stats, handle) = run_protocol_captured(
        move |ch| {
            ch.set_eager(true);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sa);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice)
        },
        move |ch| {
            ch.set_eager(true);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sb);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
        },
    );
    SecureRun {
        result: canonical_result(ring, &res),
        out_size: res.out_size,
        stats,
        transcript: handle.messages(),
    }
}

/// Engine 3: the naive garbled-circuit baseline, on instances matching its
/// chain/scalar shape (`None` otherwise). Both parties must decode the
/// same aggregate; the caller compares it to the oracle's scalar.
pub fn run_baseline(inst: &Instance) -> Option<u64> {
    let rows = inst.baseline_rows()?;
    let sizes = inst.sizes();
    let owners = inst.owners.clone();
    let to_side = |who: Role| -> Vec<Option<NaiveRows>> {
        rows.iter()
            .zip(&owners)
            .map(|(r, &o)| if o == who { Some(r.clone()) } else { None })
            .collect()
    };
    let (alice_rows, bob_rows) = (to_side(Role::Alice), to_side(Role::Bob));
    let ell = inst.ell as usize;
    let (s2, o2) = (sizes.clone(), owners.clone());
    let (sa, sb) = session_seeds(inst);
    const HASHER: TweakHasher = TweakHasher::Aes;
    let (a, b, _) = run_protocol(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(sa);
            let mut ot = OtSender::setup(ch, &mut rng, HASHER);
            naive_gc_garbler(
                ch,
                &sizes,
                &owners,
                &alice_rows,
                BASELINE_KEY_BITS,
                ell,
                &mut ot,
                HASHER,
                &mut rng,
            )
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(sb);
            let mut ot = OtReceiver::setup(ch, &mut rng, HASHER);
            naive_gc_evaluator(
                ch,
                &s2,
                &o2,
                &bob_rows,
                BASELINE_KEY_BITS,
                ell,
                &mut ot,
                HASHER,
            )
        },
    );
    assert_eq!(a, b, "baseline parties decode different aggregates");
    Some(a)
}

/// The scalar value of a canonicalized scalar-query result (`0` when the
/// aggregate vanished).
pub fn scalar_of(rows: &Rows) -> u64 {
    match rows.len() {
        0 => 0,
        1 => rows[0].1,
        n => panic!("scalar query produced {n} rows"),
    }
}

/// Everything [`check_instance`] established about one instance.
#[derive(Debug, Clone)]
pub struct Differential {
    /// The oracle's canonical answer.
    pub expected: Rows,
    /// The secure run (result already asserted equal to `expected`).
    pub secure: SecureRun,
    /// The baseline's aggregate, when the instance matched its shape.
    pub baseline: Option<u64>,
}

/// Run an instance through every engine and assert they agree. Panics
/// with the instance's reproduction handle on any mismatch.
pub fn check_instance(inst: &Instance) -> Differential {
    let expected = oracle(inst);
    let plain = plaintext_yannakakis(inst);
    assert_eq!(
        plain,
        expected,
        "plaintext yannakakis disagrees with the naive oracle on {}",
        inst.describe()
    );
    let secure = run_secure(inst);
    assert_eq!(
        secure.result,
        expected,
        "secure protocol disagrees with the oracle on {}",
        inst.describe()
    );
    let baseline = run_baseline(inst);
    if let Some(b) = baseline {
        assert_eq!(
            b,
            scalar_of(&expected),
            "circuit baseline disagrees with the oracle on {}",
            inst.describe()
        );
    }
    Differential {
        expected,
        secure,
        baseline,
    }
}

/// Engine 4 in phase-split mode: run the offline phase (shape-keyed
/// precomputation), then the online phase against the banked material.
/// Must produce results identical to [`run_secure`]; the recorded stats
/// additionally carry the offline/online byte and round split.
///
/// `shed` optionally exhausts the material before the online run:
/// `(circuits, ot_cap)` discards that many pre-garbled entries and caps
/// the OT banks, forcing per-step inline fallback mid-online (applied
/// symmetrically, as a real exhausted pool would be).
pub fn run_secure_phase_split(inst: &Instance, shed: Option<(usize, usize)>) -> SecureRun {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let sizes = inst.sizes();
    let (s2, sizes) = (sizes.clone(), sizes);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    let (res, (), stats, handle) = run_protocol_captured(
        move |ch| {
            let mut m = run_offline(
                ch,
                &qa,
                &sizes,
                Role::Alice,
                ring,
                TweakHasher::default(),
                sa,
            );
            if let Some((c, cap)) = shed {
                m.shed(c, cap);
            }
            run_online(ch, &qa, &ra, Role::Alice, ring, TweakHasher::default(), m)
        },
        move |ch| {
            let mut m = run_offline(ch, &qb, &s2, Role::Alice, ring, TweakHasher::default(), sb);
            if let Some((c, cap)) = shed {
                m.shed(c, cap);
            }
            run_online(ch, &qb, &rb, Role::Alice, ring, TweakHasher::default(), m);
        },
    );
    SecureRun {
        result: canonical_result(ring, &res),
        out_size: res.out_size,
        stats,
        transcript: handle.messages(),
    }
}

/// [`run_secure_phase_split`] under a transport fault plan: the fault may
/// land in either phase, and in both cases the run must end in a typed
/// error or a correct result — never a hang or an untyped panic.
pub fn run_secure_phase_split_with_faults(
    inst: &Instance,
    plan: &FaultPlan,
) -> Result<(Rows, CommStats), ProtocolError> {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let sizes = inst.sizes();
    let (s2, sizes) = (sizes.clone(), sizes);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    try_run_protocol_with_faults(
        plan,
        move |ch| {
            let m = run_offline(
                ch,
                &qa,
                &sizes,
                Role::Alice,
                ring,
                TweakHasher::default(),
                sa,
            );
            run_online(ch, &qa, &ra, Role::Alice, ring, TweakHasher::default(), m)
        },
        move |ch| {
            let m = run_offline(ch, &qb, &s2, Role::Alice, ring, TweakHasher::default(), sb);
            run_online(ch, &qb, &rb, Role::Alice, ring, TweakHasher::default(), m);
        },
    )
    .map(|(res, (), stats)| (canonical_result(ring, &res), stats))
}

/// Run the secure protocol under a transport fault plan. `Ok` carries the
/// receiver's canonical result (the plan's fault may land beyond the run's
/// message horizon); `Err` is the typed failure both the harness and the
/// fault tests care about: it must be an error, never a hang or an
/// untyped panic.
pub fn run_secure_with_faults(
    inst: &Instance,
    plan: &FaultPlan,
) -> Result<(Rows, CommStats), ProtocolError> {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    try_run_protocol_with_faults(
        plan,
        move |ch| {
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sa);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice)
        },
        move |ch| {
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sb);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
        },
    )
    .map(|(res, (), stats)| (canonical_result(ring, &res), stats))
}

/// Derive the two parties' `(alice, bob)` session RNG seeds from the
/// instance seed — fixed so reruns of a seed are byte-identical, distinct
/// per party. Public because the networked runtime must derive the same
/// seeds in two different processes (`secyan-client` Alice's,
/// `secyan-server` Bob's) for a TCP run to be transcript-comparable with
/// an in-process one.
pub fn session_seeds(inst: &Instance) -> (u64, u64) {
    let base = inst.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (base ^ 0xA11C_E000, base ^ 0xB0B0_0000)
}

/// [`run_secure`] over a real localhost TCP socket: same protocol
/// closures, same session seeds, but both endpoints' frames traverse the
/// kernel's TCP stack. The pair shares one meter and transcript exactly
/// like the in-process run, so the differential TCP sweep can assert the
/// result, transcript, and every stage-time counter are byte-identical to
/// [`run_secure`] on the same instance.
pub fn run_secure_tcp(inst: &Instance) -> SecureRun {
    run_secure_tcp_inner(inst, false)
}

/// [`run_secure_tcp`] with coalescing disabled (see
/// [`run_secure_uncoalesced`]): every staged message ships as its own TCP
/// frame. The coalesced-vs-eager differential must hold over the socket
/// exactly as it does in process.
pub fn run_secure_tcp_eager(inst: &Instance) -> SecureRun {
    run_secure_tcp_inner(inst, true)
}

fn run_secure_tcp_inner(inst: &Instance, eager: bool) -> SecureRun {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    let pair = tcp_channel_pair_with_transcript().expect("loopback TCP pair");
    let (res, (), stats, handle) = run_protocol_captured_on(
        pair,
        move |ch| {
            ch.set_eager(eager);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sa);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice)
        },
        move |ch| {
            ch.set_eager(eager);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sb);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
        },
    );
    SecureRun {
        result: canonical_result(ring, &res),
        out_size: res.out_size,
        stats,
        transcript: handle.messages(),
    }
}

/// [`run_secure_phase_split`] over localhost TCP (no shedding): the
/// offline/online super-round pins must be transport-independent, which
/// the golden-round tests assert by diffing this run's phase-split meters
/// against the in-process ones.
pub fn run_secure_phase_split_tcp(inst: &Instance) -> SecureRun {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let sizes = inst.sizes();
    let (s2, sizes) = (sizes.clone(), sizes);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    let pair = tcp_channel_pair_with_transcript().expect("loopback TCP pair");
    let (res, (), stats, handle) = run_protocol_captured_on(
        pair,
        move |ch| {
            let m = run_offline(
                ch,
                &qa,
                &sizes,
                Role::Alice,
                ring,
                TweakHasher::default(),
                sa,
            );
            run_online(ch, &qa, &ra, Role::Alice, ring, TweakHasher::default(), m)
        },
        move |ch| {
            let m = run_offline(ch, &qb, &s2, Role::Alice, ring, TweakHasher::default(), sb);
            run_online(ch, &qb, &rb, Role::Alice, ring, TweakHasher::default(), m);
        },
    );
    SecureRun {
        result: canonical_result(ring, &res),
        out_size: res.out_size,
        stats,
        transcript: handle.messages(),
    }
}

/// Run the secure protocol over TCP with Alice's traffic routed through a
/// [`TcpFaultProxy`] injecting `fault` (or a transparent proxy when
/// `None`). Both endpoints carry `io_timeout` so a stalled wire surfaces
/// as a typed `Timeout` instead of blocking the test. `Ok` carries the
/// receiver's canonical result; `Err` the typed failure — never a hang or
/// an untyped panic, on either endpoint.
pub fn run_secure_tcp_proxied(
    inst: &Instance,
    fault: Option<TcpFault>,
    io_timeout: Duration,
) -> Result<(Rows, CommStats), ProtocolError> {
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let (sa, sb) = session_seeds(inst);
    // Bob listens; Alice connects through the byte-level proxy, matching
    // the proxy's direction convention (connecting side = Alice).
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("loopback listener");
    let upstream = listener.local_addr().expect("listener addr");
    let proxy = TcpFaultProxy::spawn(upstream, fault).expect("fault proxy");
    let alice_stream = TcpStream::connect(proxy.addr()).expect("connect via proxy");
    let (bob_stream, _) = listener.accept().expect("accept");
    let (mut ca, mut cb) = tcp_pair_from_streams(alice_stream, bob_stream).expect("TCP pair");
    ca.set_io_timeout(Some(io_timeout));
    cb.set_io_timeout(Some(io_timeout));
    let out = try_run_protocol_on(
        (ca, cb),
        move |ch| {
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sa);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice)
        },
        move |ch| {
            let mut sess = Session::new(ch, ring, TweakHasher::default(), sb);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
        },
    )
    .map(|(res, (), stats)| (canonical_result(ring, &res), stats));
    drop(proxy);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_and_yannakakis_agree_widely() {
        // Plaintext-only sweep: cheap, so cover many seeds here; the
        // secure sweep lives in the integration suite.
        for seed in 0..150 {
            let inst = Instance::generate(seed);
            assert_eq!(
                plaintext_yannakakis(&inst),
                oracle(&inst),
                "{}",
                inst.describe()
            );
        }
    }

    #[test]
    fn secure_engine_agrees_on_a_sample() {
        for seed in [0, 1, 2, 3] {
            check_instance(&Instance::generate(seed));
        }
    }

    #[test]
    fn baseline_engine_agrees_on_chain_family() {
        let mut ran = 0;
        for seed in 0..4 {
            let inst = Instance::generate_chain(seed);
            let d = check_instance(&inst);
            ran += usize::from(d.baseline.is_some());
        }
        assert_eq!(ran, 4, "every chain instance must exercise the baseline");
    }

    #[test]
    fn scalar_of_rejects_non_scalars() {
        assert_eq!(scalar_of(&vec![]), 0);
        assert_eq!(scalar_of(&vec![(vec![], 7)]), 7);
    }
}
