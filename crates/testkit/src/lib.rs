//! Differential correctness harness for the secure Yannakakis stack.
//!
//! Three pieces, used together by the `tests/` integration suite and
//! usable from a debugging session:
//!
//! * [`gen`] — a seeded generator of random free-connex join-aggregate
//!   instances ([`Instance::generate`]), plus a baseline-shaped chain
//!   family ([`Instance::generate_chain`]). Same seed, same instance —
//!   a failing seed in CI reproduces locally with no further state.
//! * [`diff`] — the differential runner: the naive evaluator (oracle),
//!   plaintext Yannakakis, the garbled-circuit baseline, and the full
//!   secure protocol over one instance, with agreement asserted
//!   ([`check_instance`]) and the secure transcript returned for
//!   obliviousness checks.
//! * fault harness glue — [`run_secure_with_faults`] runs the secure
//!   protocol through `secyan-transport`'s deterministic fault-injecting
//!   relay and returns the typed outcome.
//!
//! See DESIGN.md §10 for the fault model and the reasoning behind the
//! engine lineup.

pub mod diff;
pub mod gen;

pub use diff::{
    canonical_result, check_instance, oracle, plaintext_yannakakis, run_baseline, run_secure,
    run_secure_phase_split, run_secure_phase_split_tcp, run_secure_phase_split_with_faults,
    run_secure_tcp, run_secure_tcp_eager, run_secure_tcp_proxied, run_secure_uncoalesced,
    run_secure_with_faults, scalar_of, session_seeds, Differential, Rows, SecureRun,
};
pub use gen::{AggKind, Instance};
