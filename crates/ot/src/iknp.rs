//! IKNP oblivious-transfer extension.
//!
//! After κ = 128 base OTs (run once per [`OtSender::setup`] /
//! [`OtReceiver::setup`] pair), any number of 1-out-of-2 OTs cost only
//! symmetric-key work and one m-bit column message per base OT. The secure
//! Yannakakis protocol consumes OTs in bulk: garbled-circuit evaluator
//! inputs, every switch of the oblivious switching network, and the OPPRF
//! all sit on top of this module.
//!
//! Semi-honest IKNP as in the original paper: the receiver's choice bits
//! are an input (chosen-choice, random-message OT); chosen messages are
//! layered on by one-time-pad masking.

use rand::Rng;
use secyan_crypto::transpose::BitMatrix;
use secyan_crypto::{
    ct_select_bytes, Block, CtChoice, CtSelect, Prg, Secret, TweakHasher, Zeroize,
};
use secyan_par as par;
use secyan_transport::{Channel, ReadExt, WriteExt};

/// Security parameter κ: number of base OTs / width of the extension
/// matrix.
pub const KAPPA: usize = 128;

/// Minimum OT batch size (in instances) before the column expansion uses
/// the worker pool; below this the per-column PRG work is too small to
/// amortize a dispatch.
pub(crate) const OT_PAR_MIN: usize = 4096;

/// Minimum columns per worker when the expansion does parallelize.
pub(crate) const COLS_PER_PART: usize = 16;

/// Minimum extracted blocks per worker for the post-transpose row gather.
pub(crate) const BLOCKS_PER_PART: usize = 4096;

/// Extension sender: after setup, produces message pairs.
pub struct OtSender {
    /// The κ secret choice bits used in the reversed base OTs. Secret-typed:
    /// leaking s breaks every OT derived from this setup.
    s: Secret<u128>,
    /// One PRG per column, seeded with the base-OT key `k_{s_i}`.
    prgs: Vec<Prg>,
    hasher: TweakHasher,
    ctr: u64,
    /// Precomputed random-OT material consumed by the online phase.
    bank: Option<OtSendBank>,
}

/// Extension receiver: after setup, obtains one message per choice bit.
pub struct OtReceiver {
    /// PRG pairs per column, seeded with both base-OT keys.
    prgs: Vec<(Prg, Prg)>,
    hasher: TweakHasher,
    ctr: u64,
    /// Precomputed random-OT material consumed by the online phase.
    bank: Option<OtRecvBank>,
}

/// Sender-side bank of precomputed random OTs, produced offline by
/// [`OtSender::offline`] and consumed online via Beaver-style
/// derandomization: the receiver sends correction bits `d = c ⊕ c'`
/// (packed, m/8 bytes) and the sender's effective pair becomes
/// `(x_d, x_{1⊕d})`, replacing the 16m-byte IKNP column bundle on the
/// online critical path.
///
/// Material is strictly single-use: consumed entries are zeroized at take
/// time, and anything left over is zeroized on drop (the pads are
/// `Secret`-wrapped).
pub struct OtSendBank {
    /// Interleaved pads: `[x0_0, x1_0, x0_1, x1_1, ...]`.
    pairs: Secret<Vec<Block>>,
    cursor: usize,
}

impl OtSendBank {
    /// Unconsumed instances left in the bank.
    pub fn remaining(&self) -> usize {
        self.pairs.expose().len() / 2 - self.cursor
    }

    /// Take `m` pad pairs, zeroizing them inside the bank as they leave.
    fn take(&mut self, m: usize) -> Vec<(Block, Block)> {
        let start = self.cursor;
        self.cursor += m;
        let pairs = self.pairs.expose_mut();
        let out = pairs[2 * start..2 * self.cursor]
            .chunks_exact(2)
            .map(|c| (c[0], c[1]))
            .collect();
        for p in pairs[2 * start..2 * self.cursor].iter_mut() {
            p.zeroize();
        }
        out
    }

    /// Discard (zeroize) entries until at most `cap` remain. Used by
    /// exhaustion tests to model a bank drained mid-run; discarded pads
    /// are scrubbed exactly like consumed ones.
    pub fn shed_to(&mut self, cap: usize) {
        let excess = self.remaining().saturating_sub(cap);
        drop(self.take(excess));
    }
}

/// Receiver-side bank of precomputed random OTs: the random choice bits
/// `c'` drawn offline together with the pads they selected. See
/// [`OtSendBank`] for the derandomization and single-use story.
pub struct OtRecvBank {
    /// The offline random choice bits `c'`.
    choices: Secret<Vec<bool>>,
    /// The pad selected by each `c'_i`.
    blocks: Secret<Vec<Block>>,
    cursor: usize,
}

impl OtRecvBank {
    /// Unconsumed instances left in the bank.
    pub fn remaining(&self) -> usize {
        self.blocks.expose().len() - self.cursor
    }

    /// Take `m` (choice, pad) entries, zeroizing them inside the bank.
    fn take(&mut self, m: usize) -> (Vec<bool>, Vec<Block>) {
        let start = self.cursor;
        self.cursor += m;
        let choices = self.choices.expose_mut();
        let blocks = self.blocks.expose_mut();
        let c = choices[start..self.cursor].to_vec();
        let b = blocks[start..self.cursor].to_vec();
        for x in choices[start..self.cursor].iter_mut() {
            x.zeroize();
        }
        for x in blocks[start..self.cursor].iter_mut() {
            x.zeroize();
        }
        (c, b)
    }

    /// Discard (zeroize) entries until at most `cap` remain; see
    /// [`OtSendBank::shed_to`].
    pub fn shed_to(&mut self, cap: usize) {
        let excess = self.remaining().saturating_sub(cap);
        let _ = self.take(excess);
    }
}

impl OtSender {
    /// Bootstrap via base OTs (this side plays base-OT *receiver*).
    pub fn setup<R: Rng>(ch: &mut Channel, rng: &mut R, hasher: TweakHasher) -> OtSender {
        let s: u128 = rng.gen();
        // ct-ok: branchless bit extraction — `& 1 == 1` compiles to a mask
        // test, and the resulting bools feed the branchless base-OT receive.
        let choices: Vec<bool> = (0..KAPPA).map(|i| s >> i & 1 == 1).collect();
        // The base-OT seeds are zeroized as each PRG consumes its seed.
        let seeds = crate::base::receive(ch, &choices, rng);
        let prgs = seeds
            .iter()
            .map(|k| Prg::from_secret(b"iknp-col", k))
            .collect();
        OtSender {
            s: Secret::new(s),
            prgs,
            hasher,
            ctr: 0,
            bank: None,
        }
    }

    /// Offline phase: bank `m` random OT instances for later derandomized
    /// consumption. The peer must run the matching [`OtReceiver::offline`]
    /// with the same `m`.
    pub fn offline(&mut self, ch: &mut Channel, m: usize) -> OtSendBank {
        let mut pairs = self.random(ch, m);
        let mut flat = Vec::with_capacity(2 * m);
        for &(x0, x1) in &pairs {
            flat.push(x0);
            flat.push(x1);
        }
        pairs.zeroize();
        OtSendBank {
            pairs: Secret::new(flat),
            cursor: 0,
        }
    }

    /// Attach a bank produced by [`OtSender::offline`]; subsequent
    /// chosen-message calls consume it while enough instances remain.
    pub fn attach_bank(&mut self, bank: OtSendBank) {
        self.bank = Some(bank);
    }

    /// Detach the current bank, if any (remaining material zeroizes when
    /// the returned bank drops).
    pub fn detach_bank(&mut self) -> Option<OtSendBank> {
        self.bank.take()
    }

    /// Instances still available in the attached bank (0 when none).
    pub fn bank_remaining(&self) -> usize {
        self.bank.as_ref().map_or(0, |b| b.remaining())
    }

    /// Random pads for `m` chosen-message OTs: derandomize banked
    /// instances when the bank covers the batch, otherwise run a fresh
    /// extension. Both parties see the same public batch sizes and bank
    /// budgets, so the pooled-vs-inline decision is always mirrored.
    fn draw_pads(&mut self, ch: &mut Channel, m: usize) -> Vec<(Block, Block)> {
        if self.bank.as_ref().is_some_and(|b| b.remaining() >= m) {
            if m == 0 {
                return Vec::new();
            }
            // Beaver-style correction: receiver sends d = c ⊕ c'; the
            // effective pair is (x_d, x_{1⊕d}), so position c selects
            // x_{c'} — exactly the pad the receiver banked.
            let d = ch.recv_bool_vec(m);
            let taken = self.bank.as_mut().expect("bank checked above").take(m);
            return taken
                .iter()
                .zip(&d)
                .map(|(&(x0, x1), &di)| {
                    let swap = CtChoice::from_bool(di);
                    (
                        Block::ct_select(swap, x1, x0),
                        Block::ct_select(swap, x0, x1),
                    )
                })
                .collect();
        }
        self.random(ch, m)
    }

    /// Produce `m` random-message OT instances. The receiver (running
    /// [`OtReceiver::random`] with its choice bits) learns exactly one
    /// message of each returned pair.
    pub fn random(&mut self, ch: &mut Channel, m: usize) -> Vec<(Block, Block)> {
        if m == 0 {
            return Vec::new();
        }
        let row_bytes = m.div_ceil(8);
        // The receiver ships all κ masked columns as ONE message (see
        // `OtReceiver::random`); pull the whole bundle at once.
        let mut u_all = vec![0u8; KAPPA * row_bytes];
        ch.recv_into(&mut u_all);
        // Column i of Q: G(k_{s_i}) ⊕ s_i · u_i. The s_i correlation is
        // applied branchlessly: every column does the same XOR loop against
        // u masked by an all-ones/all-zeros byte derived from s_i. Columns
        // are independent given the received bundle, so large batches
        // expand across the worker pool (partitioned by column index —
        // public — with each worker owning its columns' rows of Q).
        let mut q = BitMatrix::zero(KAPPA, m);
        let mut s_bits = *self.s.expose();
        par::with_pool_if(par::threads() > 1 && m >= OT_PAR_MIN, |pool| {
            let s_ref = &s_bits;
            pool.zip_chunks_mut(
                &mut self.prgs,
                q.as_bytes_mut(),
                row_bytes,
                COLS_PER_PART,
                |i, prg, row| {
                    prg.fill(row);
                    let s_i = CtChoice::from_lsb((*s_ref >> i) as u8).mask_u8();
                    for (c, &ub) in row.iter_mut().zip(&u_all[i * row_bytes..]) {
                        *c ^= ub & s_i;
                    }
                },
            );
        });
        let rows = q.transpose(); // m rows of κ bits
        let mut qjs = vec![Block(0); m];
        let mut qjs_s = vec![Block(0); m];
        par::with_pool_if(par::threads() > 1 && m >= 2 * BLOCKS_PER_PART, |pool| {
            pool.chunks_mut(&mut qjs, 1, BLOCKS_PER_PART, |off, chunk| {
                for (k, b) in chunk.iter_mut().enumerate() {
                    *b = Block(u128::from_le_bytes(
                        rows.row(off + k).try_into().expect("κ/8 = 16 bytes"),
                    ));
                }
            });
        });
        for (d, &qj) in qjs_s.iter_mut().zip(&qjs) {
            *d = qj ^ Block(s_bits);
        }
        s_bits.zeroize();
        // Both correlated branches hashed in batched kernel dispatches
        // (internally parallel for large m).
        let h0 = self.hasher.hash_batch(&qjs, self.ctr);
        let h1 = self.hasher.hash_batch(&qjs_s, self.ctr);
        self.ctr += m as u64;
        // The q-rows are the pads' preimages; scrub the local copies.
        qjs.zeroize();
        qjs_s.zeroize();
        h0.into_iter().zip(h1).collect()
    }

    /// Chosen-message OT on 128-bit messages.
    pub fn send_blocks(&mut self, ch: &mut Channel, pairs: &[(Block, Block)]) {
        let pads = self.draw_pads(ch, pairs.len());
        let mut masked = Vec::with_capacity(pairs.len() * 2);
        for ((m0, m1), (x0, x1)) in pairs.iter().zip(&pads) {
            masked.push((*m0 ^ *x0).0);
            masked.push((*m1 ^ *x1).0);
        }
        ch.send_u128_slice(&masked);
    }

    /// Chosen-message OT on equal-length byte strings.
    ///
    /// An empty batch is communication-free on both sides: the receiver's
    /// [`OtReceiver::recv_bytes`] consumes no frames for zero choices, so
    /// sending even an empty frame here would desynchronize the wire.
    pub fn send_bytes(&mut self, ch: &mut Channel, pairs: &[(Vec<u8>, Vec<u8>)]) {
        if pairs.is_empty() {
            return;
        }
        let pads = self.draw_pads(ch, pairs.len());
        let mut buf = Vec::new();
        for ((m0, m1), &(x0, x1)) in pairs.iter().zip(&pads) {
            assert_eq!(m0.len(), m1.len(), "OT messages must have equal length");
            buf.extend_from_slice(&mask_bytes(m0, x0));
            buf.extend_from_slice(&mask_bytes(m1, x1));
        }
        ch.send(buf);
    }
}

impl OtReceiver {
    /// Bootstrap via base OTs (this side plays base-OT *sender*).
    pub fn setup<R: Rng>(ch: &mut Channel, rng: &mut R, hasher: TweakHasher) -> OtReceiver {
        // Seed pairs are zeroized on drop as each PRG consumes its seed.
        let pairs = crate::base::send(ch, KAPPA, rng);
        let prgs = pairs
            .iter()
            .map(|(k0, k1)| {
                (
                    Prg::from_secret(b"iknp-col", k0),
                    Prg::from_secret(b"iknp-col", k1),
                )
            })
            .collect();
        OtReceiver {
            prgs,
            hasher,
            ctr: 0,
            bank: None,
        }
    }

    /// Offline phase: bank `m` random OT instances with random choice bits
    /// `c'`, to be derandomized online against the real choices. The peer
    /// must run the matching [`OtSender::offline`] with the same `m`.
    pub fn offline<R: Rng>(&mut self, ch: &mut Channel, m: usize, rng: &mut R) -> OtRecvBank {
        let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let blocks = self.random(ch, &choices);
        OtRecvBank {
            choices: Secret::new(choices),
            blocks: Secret::new(blocks),
            cursor: 0,
        }
    }

    /// Attach a bank produced by [`OtReceiver::offline`].
    pub fn attach_bank(&mut self, bank: OtRecvBank) {
        self.bank = Some(bank);
    }

    /// Detach the current bank, if any.
    pub fn detach_bank(&mut self) -> Option<OtRecvBank> {
        self.bank.take()
    }

    /// Instances still available in the attached bank (0 when none).
    pub fn bank_remaining(&self) -> usize {
        self.bank.as_ref().map_or(0, |b| b.remaining())
    }

    /// Pads selected by `choices`: derandomize banked instances when the
    /// bank covers the batch (sending only packed correction bits d = c ⊕ c',
    /// which are uniform and independent of c), else a fresh extension.
    fn draw_pads(&mut self, ch: &mut Channel, choices: &[bool]) -> Vec<Block> {
        let m = choices.len();
        if self.bank.as_ref().is_some_and(|b| b.remaining() >= m) {
            if m == 0 {
                return Vec::new();
            }
            let (cprime, blocks) = self.bank.as_mut().expect("bank checked above").take(m);
            // ct-ok: XOR of two bools is branchless; d is sent on the wire
            // and is uniform because c' is.
            let d: Vec<bool> = choices
                .iter()
                .zip(&cprime)
                .map(|(&c, &cp)| c ^ cp)
                .collect();
            ch.send_bool_slice(&d);
            return blocks;
        }
        self.random(ch, choices)
    }

    /// Obtain the message selected by each choice bit (random-message OT).
    pub fn random(&mut self, ch: &mut Channel, choices: &[bool]) -> Vec<Block> {
        let m = choices.len();
        if m == 0 {
            return Vec::new();
        }
        let row_bytes = m.div_ceil(8);
        // Pack the choice bits without branching on them.
        let mut r_packed = vec![0u8; row_bytes];
        for (j, &c) in choices.iter().enumerate() {
            r_packed[j / 8] |= (c as u8) << (j % 8);
        }
        // Per column: t0 = G(k0), u = G(k1) ⊕ t0 ⊕ r. Both streams for all
        // κ columns land in one interleaved scratch (t0 then u per column)
        // so the expansion can split across the worker pool by column
        // index; the masked columns then go out as ONE message, which
        // `OtSender::random` reads with a single `recv_into`.
        let mut cols = vec![0u8; KAPPA * 2 * row_bytes];
        par::with_pool_if(par::threads() > 1 && m >= OT_PAR_MIN, |pool| {
            let r_ref = &r_packed;
            pool.zip_chunks_mut(
                &mut self.prgs,
                &mut cols,
                2 * row_bytes,
                COLS_PER_PART,
                |_, (prg0, prg1), chunk| {
                    let (t0, u) = chunk.split_at_mut(row_bytes);
                    prg0.fill(t0);
                    prg1.fill(u);
                    for k in 0..row_bytes {
                        u[k] ^= t0[k] ^ r_ref[k];
                    }
                },
            );
        });
        let mut t = BitMatrix::zero(KAPPA, m);
        let mut u_all = vec![0u8; KAPPA * row_bytes];
        for i in 0..KAPPA {
            let chunk = &cols[i * 2 * row_bytes..(i + 1) * 2 * row_bytes];
            t.row_mut(i).copy_from_slice(&chunk[..row_bytes]);
            u_all[i * row_bytes..(i + 1) * row_bytes].copy_from_slice(&chunk[row_bytes..]);
        }
        // The t0 streams are OT-pad preimages; scrub the scratch.
        cols.zeroize();
        ch.send_bytes(&u_all);
        let rows = t.transpose();
        let mut tjs = vec![Block(0); m];
        par::with_pool_if(par::threads() > 1 && m >= 2 * BLOCKS_PER_PART, |pool| {
            pool.chunks_mut(&mut tjs, 1, BLOCKS_PER_PART, |off, chunk| {
                for (k, b) in chunk.iter_mut().enumerate() {
                    *b = Block(u128::from_le_bytes(
                        rows.row(off + k).try_into().expect("16 bytes"),
                    ));
                }
            });
        });
        let out = self.hasher.hash_batch(&tjs, self.ctr);
        self.ctr += m as u64;
        tjs.zeroize();
        out
    }

    /// First half of a receive: draw the pads for `choices`. This is
    /// *send-only* on the receiver side (banked: packed correction bits;
    /// fresh: the masked column bundle), so it can be staged before other
    /// incoming traffic is read — protocol layers use this to batch all
    /// receiver-side OT corrections of a round into one super-frame before
    /// blocking on the sender's replies. Finish with
    /// [`OtReceiver::finish_recv_blocks`] / [`OtReceiver::finish_recv_bytes`]
    /// in the same order relative to the peer's sends.
    pub fn begin_recv(&mut self, ch: &mut Channel, choices: &[bool]) -> Vec<Block> {
        self.draw_pads(ch, choices)
    }

    /// Second half of [`OtReceiver::begin_recv`] for 128-bit messages:
    /// read the masked pairs and unmask the chosen one.
    pub fn finish_recv_blocks(
        &mut self,
        ch: &mut Channel,
        pads: &[Block],
        choices: &[bool],
    ) -> Vec<Block> {
        let masked = ch.recv_u128_vec(choices.len() * 2);
        choices
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let picked =
                    u128::ct_select(CtChoice::from_bool(c), masked[2 * j + 1], masked[2 * j]);
                Block(picked) ^ pads[j]
            })
            .collect()
    }

    /// Second half of [`OtReceiver::begin_recv`] for byte-string messages
    /// of known length `len`.
    pub fn finish_recv_bytes(
        &mut self,
        ch: &mut Channel,
        pads: &[Block],
        choices: &[bool],
        len: usize,
    ) -> Vec<Vec<u8>> {
        let raw = ch.recv_bytes(choices.len() * 2 * len);
        choices
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let m0 = &raw[2 * j * len..(2 * j + 1) * len];
                let m1 = &raw[(2 * j + 1) * len..(2 * j + 2) * len];
                let picked = ct_select_bytes(CtChoice::from_bool(c), m1, m0);
                mask_bytes(&picked, pads[j])
            })
            .collect()
    }

    /// Receive chosen 128-bit messages. The unchosen branch is read too and
    /// discarded via [`CtSelect`], so memory access does not index on the
    /// choice bit.
    pub fn recv_blocks(&mut self, ch: &mut Channel, choices: &[bool]) -> Vec<Block> {
        let pads = self.begin_recv(ch, choices);
        self.finish_recv_blocks(ch, &pads, choices)
    }

    /// Receive chosen byte-string messages of known length `len`. Both
    /// candidate strings are unmasked and the result selected bytewise, so
    /// neither control flow nor access pattern depends on the choice bits.
    pub fn recv_bytes(&mut self, ch: &mut Channel, choices: &[bool], len: usize) -> Vec<Vec<u8>> {
        let pads = self.begin_recv(ch, choices);
        self.finish_recv_bytes(ch, &pads, choices, len)
    }
}

/// XOR a byte string with the PRG expansion of a pad block.
fn mask_bytes(msg: &[u8], pad: Block) -> Vec<u8> {
    let mut stream = vec![0u8; msg.len()];
    Prg::from_seed(b"ot-pad", pad).fill(&mut stream);
    msg.iter().zip(&stream).map(|(&a, &b)| a ^ b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::{run_protocol, Phase};

    fn run_random(m: usize, seed: u64) -> (Vec<(Block, Block)>, Vec<Block>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let c2 = choices.clone();
        let (pairs, got, _) = run_protocol(
            move |ch| {
                let mut s = OtSender::setup(
                    ch,
                    &mut StdRng::seed_from_u64(seed + 1),
                    TweakHasher::Sha256,
                );
                s.random(ch, m)
            },
            move |ch| {
                let mut r = OtReceiver::setup(
                    ch,
                    &mut StdRng::seed_from_u64(seed + 2),
                    TweakHasher::Sha256,
                );
                r.random(ch, &c2)
            },
        );
        (pairs, got, choices)
    }

    #[test]
    fn random_ot_delivers_chosen_message() {
        let (pairs, got, choices) = run_random(100, 10);
        for j in 0..100 {
            let (x0, x1) = pairs[j];
            assert_ne!(x0, x1);
            assert_eq!(got[j], if choices[j] { x1 } else { x0 }, "instance {j}");
        }
    }

    #[test]
    fn non_multiple_of_eight_sizes() {
        for m in [1, 7, 9, 63, 65] {
            let (pairs, got, choices) = run_random(m, 20 + m as u64);
            for j in 0..m {
                let (x0, x1) = pairs[j];
                assert_eq!(got[j], if choices[j] { x1 } else { x0 });
            }
        }
    }

    #[test]
    fn multiple_extensions_reuse_setup() {
        let (outs, gots, _) = run_protocol(
            |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(30), TweakHasher::Sha256);
                (s.random(ch, 10), s.random(ch, 10))
            },
            |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(31), TweakHasher::Sha256);
                (r.random(ch, &[true; 10]), r.random(ch, &[false; 10]))
            },
        );
        for j in 0..10 {
            assert_eq!(gots.0[j], outs.0[j].1);
            assert_eq!(gots.1[j], outs.1[j].0);
        }
        // Distinct instances across the two batches.
        assert_ne!(outs.0, outs.1);
    }

    #[test]
    fn empty_batch_is_communication_free() {
        // A zero-message batch (e.g. an OSN over a width-1 network has no
        // switches) must put nothing on the wire in either direction: an
        // orphan frame here desynchronizes every later message. The marker
        // exchange after the empty batches proves the streams still align.
        let (a, b, stats) = run_protocol(
            |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(40), TweakHasher::Sha256);
                let before = ch.stats().total_bytes();
                s.send_bytes(ch, &[]);
                s.send_blocks(ch, &[]);
                assert_eq!(ch.stats().total_bytes(), before, "empty batch sent bytes");
                ch.send_u64(0xA11C);
                ch.recv_u64()
            },
            |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(41), TweakHasher::Sha256);
                assert!(r.recv_bytes(ch, &[], 16).is_empty());
                assert!(r.recv_blocks(ch, &[]).is_empty());
                ch.send_u64(0xB0B);
                ch.recv_u64()
            },
        );
        assert_eq!(a, 0xB0B);
        assert_eq!(b, 0xA11C);
        assert!(stats.total_bytes() > 0); // setup + markers still flowed
    }

    #[test]
    fn chosen_blocks_transfer() {
        let pairs: Vec<(Block, Block)> = (0..50u128).map(|i| (Block(i), Block(i + 1000))).collect();
        let p2 = pairs.clone();
        let choices: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        let c2 = choices.clone();
        let (_, got, _) = run_protocol(
            move |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(40), TweakHasher::Sha256);
                s.send_blocks(ch, &p2);
            },
            move |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(41), TweakHasher::Sha256);
                r.recv_blocks(ch, &c2)
            },
        );
        for j in 0..50 {
            let want = if choices[j] { pairs[j].1 } else { pairs[j].0 };
            assert_eq!(got[j], want);
        }
    }

    #[test]
    fn chosen_bytes_transfer() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..20u8)
            .map(|i| (vec![i; 33], vec![i + 100; 33]))
            .collect();
        let p2 = pairs.clone();
        let choices: Vec<bool> = (0..20).map(|i| i % 2 == 1).collect();
        let c2 = choices.clone();
        let (_, got, _) = run_protocol(
            move |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(50), TweakHasher::Sha256);
                s.send_bytes(ch, &p2);
            },
            move |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(51), TweakHasher::Sha256);
                r.recv_bytes(ch, &c2, 33)
            },
        );
        for j in 0..20 {
            let want = if choices[j] { &pairs[j].1 } else { &pairs[j].0 };
            assert_eq!(&got[j], want);
        }
    }

    #[test]
    fn extension_is_thread_count_invariant() {
        // Same seeds, sizes crossing every parallel threshold: outputs must
        // be bit-identical at 1 and 4 threads.
        let m = 2 * OT_PAR_MIN;
        let run_at = |threads: usize| {
            secyan_par::set_threads(threads);
            let out = run_random(m, 70);
            secyan_par::set_threads(0);
            out
        };
        let (pairs1, got1, choices) = run_at(1);
        let (pairs4, got4, _) = run_at(4);
        assert_eq!(pairs1, pairs4);
        assert_eq!(got1, got4);
        for j in 0..m {
            let (x0, x1) = pairs1[j];
            assert_eq!(got1[j], if choices[j] { x1 } else { x0 }, "instance {j}");
        }
    }

    #[test]
    fn banked_blocks_transfer_with_fewer_online_bytes() {
        let pairs: Vec<(Block, Block)> = (0..64u128).map(|i| (Block(i), Block(i + 500))).collect();
        let p2 = pairs.clone();
        let choices: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
        let c2 = choices.clone();
        let ((), got, stats) = run_protocol(
            move |ch| {
                ch.set_phase(Phase::Offline);
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(80), TweakHasher::Sha256);
                let bank = s.offline(ch, 64);
                s.attach_bank(bank);
                ch.set_phase(Phase::Online);
                s.send_blocks(ch, &p2);
                assert_eq!(s.bank_remaining(), 0);
            },
            move |ch| {
                ch.set_phase(Phase::Offline);
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(81), TweakHasher::Sha256);
                let bank = r.offline(ch, 64, &mut StdRng::seed_from_u64(82));
                r.attach_bank(bank);
                ch.set_phase(Phase::Online);
                r.recv_blocks(ch, &c2)
            },
        );
        for j in 0..64 {
            let want = if choices[j] { pairs[j].1 } else { pairs[j].0 };
            assert_eq!(got[j], want, "instance {j}");
        }
        // Online: 8 bytes of packed corrections + 2·64·16 masked bytes —
        // far below the 16m-byte column bundle of an inline extension.
        // The phase-tagged counters make this exact and race-free: each
        // frame is attributed to the phase its sender was in.
        assert_eq!(stats.online_bytes, 8 + 2 * 64 * 16);
        assert!(stats.offline_bytes > 0, "bootstrap traffic must be tagged");
    }

    #[test]
    fn banked_bytes_transfer() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> =
            (0..10u8).map(|i| (vec![i; 16], vec![i + 50; 16])).collect();
        let p2 = pairs.clone();
        let choices: Vec<bool> = (0..10).map(|i| i % 3 == 1).collect();
        let c2 = choices.clone();
        let (_, got, _) = run_protocol(
            move |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(83), TweakHasher::Sha256);
                let bank = s.offline(ch, 10);
                s.attach_bank(bank);
                s.send_bytes(ch, &p2);
            },
            move |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(84), TweakHasher::Sha256);
                let bank = r.offline(ch, 10, &mut StdRng::seed_from_u64(85));
                r.attach_bank(bank);
                r.recv_bytes(ch, &c2, 16)
            },
        );
        for j in 0..10 {
            let want = if choices[j] { &pairs[j].1 } else { &pairs[j].0 };
            assert_eq!(&got[j], want);
        }
    }

    #[test]
    fn exhausted_bank_falls_back_inline() {
        // Bank covers only the first batch; the second falls back to a
        // fresh extension on both sides without desynchronizing.
        let mk = |i: u128| (Block(i), Block(i + 77));
        let (_, (got1, got2), _) = run_protocol(
            move |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(86), TweakHasher::Sha256);
                let bank = s.offline(ch, 4);
                s.attach_bank(bank);
                s.send_blocks(ch, &[mk(0), mk(1), mk(2), mk(3)]);
                assert_eq!(s.bank_remaining(), 0);
                s.send_blocks(ch, &[mk(10), mk(11)]);
            },
            move |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(87), TweakHasher::Sha256);
                let bank = r.offline(ch, 4, &mut StdRng::seed_from_u64(88));
                r.attach_bank(bank);
                let a = r.recv_blocks(ch, &[true, false, true, false]);
                let b = r.recv_blocks(ch, &[false, true]);
                (a, b)
            },
        );
        assert_eq!(got1, vec![Block(77), Block(1), Block(79), Block(3)]);
        assert_eq!(got2, vec![Block(10), Block(88)]);
    }

    #[test]
    fn bank_take_zeroizes_consumed_entries() {
        let (_, _, _) = run_protocol(
            |ch| {
                let mut s =
                    OtSender::setup(ch, &mut StdRng::seed_from_u64(89), TweakHasher::Sha256);
                let mut bank = s.offline(ch, 8);
                // Random pads are nonzero with overwhelming probability.
                assert!(bank.pairs.expose().iter().any(|b| *b != Block::ZERO));
                let taken = bank.take(8);
                assert!(taken
                    .iter()
                    .any(|&(a, b)| a != Block::ZERO || b != Block::ZERO));
                // Consumed-on-take: the bank's copies are gone.
                assert!(bank.pairs.expose().iter().all(|b| *b == Block::ZERO));
                assert_eq!(bank.remaining(), 0);
            },
            |ch| {
                let mut r =
                    OtReceiver::setup(ch, &mut StdRng::seed_from_u64(90), TweakHasher::Sha256);
                let mut bank = r.offline(ch, 8, &mut StdRng::seed_from_u64(91));
                assert!(bank.blocks.expose().iter().any(|b| *b != Block::ZERO));
                let _ = bank.take(8);
                assert!(bank.blocks.expose().iter().all(|b| *b == Block::ZERO));
                assert!(bank.choices.expose().iter().all(|&c| !c));
            },
        );
    }

    #[test]
    fn other_hashers_also_work() {
        for hasher in [TweakHasher::Aes, TweakHasher::Fast] {
            let (pairs, got, _) = run_protocol(
                move |ch| {
                    let mut s = OtSender::setup(ch, &mut StdRng::seed_from_u64(60), hasher);
                    s.random(ch, 16)
                },
                move |ch| {
                    let mut r = OtReceiver::setup(ch, &mut StdRng::seed_from_u64(61), hasher);
                    r.random(ch, &[true; 16])
                },
            );
            for j in 0..16 {
                assert_eq!(got[j], pairs[j].1, "{hasher:?} instance {j}");
            }
        }
    }
}
