//! Oblivious transfer for the secure Yannakakis workspace.
//!
//! Three layers, mirroring how the paper's backends are built:
//!
//! * [`base`] — Chou–Orlandi "simplest OT": O(κ) public-key operations over
//!   the Mersenne-prime group from `secyan-crypto::mersenne`. Run once per
//!   session to bootstrap extension.
//! * [`iknp`] — IKNP OT extension: after κ = 128 base OTs, any number of
//!   fast symmetric-key OTs. This powers garbled-circuit input transfer
//!   and the oblivious switching network in `secyan-oep`.
//! * [`kkrt`] — KKRT batched oblivious PRF (BaRK-OPRF), the 512-column wide
//!   cousin of IKNP. This powers the OPPRF inside circuit PSI
//!   (`secyan-psi`), which in turn implements the paper's §5.3/§5.5.
//!
//! All protocols speak over `secyan_transport::Channel` and are exercised
//! end-to-end (two real threads) by this crate's tests.

pub mod base;
pub mod iknp;
pub mod kkrt;

pub use iknp::{OtReceiver, OtRecvBank, OtSendBank, OtSender};
pub use kkrt::{KkrtReceiver, KkrtRecvBank, KkrtSendBank, KkrtSender, KkrtSenderKey};
