//! Chou–Orlandi "simplest OT" over the Z_{2^127−1} multiplicative group.
//!
//! Produces `n` independent 1-out-of-2 OTs of 128-bit keys. The sender
//! obtains `(k0_i, k1_i)`; the receiver, holding choice bits `c_i`, obtains
//! `k_{c_i}`. Used only to bootstrap IKNP/KKRT extension (κ or w
//! instances), so its performance and the simulation-grade group hardness
//! are irrelevant to the benchmark shapes (see DESIGN.md §3).

use rand::Rng;
use secyan_crypto::mersenne::Fp;
use secyan_crypto::sha256::{digest_to_u128, Sha256};
use secyan_crypto::{Block, CtChoice, CtSelect, Secret, SecretBlock};
use secyan_transport::{Channel, ReadExt, WriteExt};

/// Derive a key from a group element with index domain separation. The key
/// seeds OT extension; it is secret-typed from birth.
fn derive_key(i: usize, e: Fp) -> SecretBlock {
    let mut h = Sha256::new();
    h.update(b"secyan-base-ot");
    h.update(&(i as u64).to_le_bytes());
    h.update(&e.value().to_le_bytes());
    Secret::new(Block(digest_to_u128(&h.finalize())))
}

/// Sender side: returns `n` key pairs (zeroized on drop).
pub fn send<R: Rng>(ch: &mut Channel, n: usize, rng: &mut R) -> Vec<(SecretBlock, SecretBlock)> {
    // a ← Z, A = g^a.
    let a: u128 = rng.gen::<u128>() >> 1;
    let big_a = Fp::G.pow(a);
    ch.send(big_a.value().to_le_bytes().to_vec());
    let bs = ch.recv_u128_vec(n);
    let a_inv = big_a.inv();
    bs.iter()
        .enumerate()
        .map(|(i, &braw)| {
            let b = Fp::new(braw);
            let k0 = derive_key(i, b.pow(a));
            let k1 = derive_key(i, b.mul(a_inv).pow(a));
            (k0, k1)
        })
        .collect()
}

/// Receiver side: returns `k_{c_i}` for each choice bit (zeroized on drop).
///
/// The B = g^b · A^c blinding is computed branchlessly: both candidates are
/// evaluated and the choice bit only drives a [`CtSelect`] on the canonical
/// representatives, so no control flow or memory access depends on `c`.
pub fn receive<R: Rng>(ch: &mut Channel, choices: &[bool], rng: &mut R) -> Vec<SecretBlock> {
    let mut raw = [0u8; 16];
    ch.recv_into(&mut raw);
    let big_a = Fp::new(u128::from_le_bytes(raw));
    let mut bs = Vec::with_capacity(choices.len());
    let mut keys = Vec::with_capacity(choices.len());
    for (i, &c) in choices.iter().enumerate() {
        let b: u128 = rng.gen::<u128>() >> 1;
        let g_b = Fp::G.pow(b);
        let blinded = g_b.mul(big_a);
        let big_b = u128::ct_select(CtChoice::from_bool(c), blinded.value(), g_b.value());
        bs.push(big_b);
        keys.push(derive_key(i, big_a.pow(b)));
    }
    ch.send_u128_slice(&bs);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::run_protocol;

    #[test]
    fn receiver_gets_chosen_key_only() {
        let choices = vec![false, true, true, false, true];
        let c2 = choices.clone();
        let (pairs, got, _) = run_protocol(
            move |ch| send(ch, 5, &mut StdRng::seed_from_u64(1)),
            move |ch| receive(ch, &c2, &mut StdRng::seed_from_u64(2)),
        );
        assert_eq!(pairs.len(), 5);
        for (i, &c) in choices.iter().enumerate() {
            let (k0, k1) = (pairs[i].0.expose_block(), pairs[i].1.expose_block());
            assert_ne!(k0, k1);
            assert_eq!(got[i].expose_block(), if c { k1 } else { k0 }, "ot {i}");
            // And the receiver's key differs from the unchosen one.
            assert_ne!(got[i].expose_block(), if c { k0 } else { k1 });
        }
    }

    #[test]
    fn keys_are_independent_across_instances() {
        let (pairs, _, _) = run_protocol(
            |ch| send(ch, 8, &mut StdRng::seed_from_u64(3)),
            |ch| receive(ch, &[false; 8], &mut StdRng::seed_from_u64(4)),
        );
        let mut all: Vec<Block> = pairs
            .iter()
            .flat_map(|(a, b)| [a.expose_block(), b.expose_block()])
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn zero_instances_is_fine() {
        let (pairs, got, _) = run_protocol(
            |ch| send(ch, 0, &mut StdRng::seed_from_u64(5)),
            |ch| receive(ch, &[], &mut StdRng::seed_from_u64(6)),
        );
        assert!(pairs.is_empty());
        assert!(got.is_empty());
    }
}
