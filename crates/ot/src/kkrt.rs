//! KKRT batched oblivious PRF (BaRK-OPRF).
//!
//! The wide-matrix (w = 512) cousin of IKNP: for a batch of m inputs, the
//! *receiver* learns F(j, x_j) for its j-th input x_j, while the *sender*
//! learns a key that lets it evaluate F(j, ·) at arbitrary points. That
//! asymmetry is exactly what the OPPRF hint construction in circuit PSI
//! needs (`secyan-psi::opprf`): the sender programs corrections
//! F(j, y) ⊕ target for each of its own elements y.
//!
//! Outputs are truncated to 64 bits so they embed into GF(2^64) for the
//! polynomial hints; the 2^{-64} collision probability keeps the total
//! failure probability under the paper's 2^{-σ}, σ = 40, for all workload
//! sizes used here.

use crate::iknp::{BLOCKS_PER_PART, COLS_PER_PART, OT_PAR_MIN};
use rand::Rng;
use secyan_crypto::sha256::Sha256;
use secyan_crypto::transpose::BitMatrix;
use secyan_crypto::{CtChoice, Prg, Secret, TweakHasher, Zeroize};
use secyan_par as par;
use secyan_transport::{Channel, WriteExt};

/// Minimum batch size before the (SHA-heavy) input-encoding map uses the
/// worker pool; each element costs two compression-function calls, so the
/// bar is far lower than for PRG column expansion.
const CODES_PER_PART: usize = 128;

/// Matrix width w: the pseudorandom-code length in bits.
pub const WIDTH: usize = 512;
const WIDTH_BYTES: usize = WIDTH / 8;

/// The pseudorandom code C: arbitrary bytes → 512 bits.
fn code(x: &[u8]) -> [u8; WIDTH_BYTES] {
    let mut out = [0u8; WIDTH_BYTES];
    for half in 0..2u8 {
        let mut h = Sha256::new();
        h.update(b"kkrt-code");
        h.update(&[half]);
        h.update(x);
        out[half as usize * 32..(half as usize + 1) * 32].copy_from_slice(&h.finalize());
    }
    out
}

/// OPRF sender (key holder). Holds the base-OT state; each
/// [`KkrtSender::key_batch`] call produces a key for one batch.
pub struct KkrtSender {
    /// The w secret correlation bits; leaking them voids every OPRF batch.
    s: Secret<[u8; WIDTH_BYTES]>,
    prgs: Vec<Prg>,
    hasher: TweakHasher,
    ctr: u64,
}

/// OPRF receiver (input holder).
pub struct KkrtReceiver {
    prgs: Vec<(Prg, Prg)>,
    hasher: TweakHasher,
    ctr: u64,
}

/// A batch key: lets the sender evaluate F(j, ·) for each instance j of the
/// batch.
pub struct KkrtSenderKey {
    q_rows: Vec<[u8; WIDTH_BYTES]>,
    s: Secret<[u8; WIDTH_BYTES]>,
    hasher: TweakHasher,
    base: u64,
}

impl KkrtSender {
    /// Bootstrap: run w base OTs as base-OT receiver with secret choices s.
    /// `hasher` is the output hash masking the OPRF rows; both parties must
    /// pass the same choice.
    pub fn setup<R: Rng>(ch: &mut Channel, rng: &mut R, hasher: TweakHasher) -> KkrtSender {
        let mut s = [0u8; WIDTH_BYTES];
        rng.fill(&mut s[..]);
        // ct-ok: branchless bit extraction — `& 1 == 1` compiles to a mask
        // test, and the resulting bools feed the branchless base-OT receive.
        let choices: Vec<bool> = (0..WIDTH).map(|i| s[i / 8] >> (i % 8) & 1 == 1).collect();
        // Base-OT seeds are zeroized as each PRG consumes its seed.
        let seeds = crate::base::receive(ch, &choices, rng);
        let prgs = seeds
            .iter()
            .map(|k| Prg::from_secret(b"kkrt-col", k))
            .collect();
        KkrtSender {
            s: Secret::new(s),
            prgs,
            hasher,
            ctr: 0,
        }
    }

    /// Run one batch of size `m`, obtaining the evaluation key.
    pub fn key_batch(&mut self, ch: &mut Channel, m: usize) -> KkrtSenderKey {
        let base = self.ctr;
        self.ctr += m as u64;
        if m == 0 {
            return KkrtSenderKey {
                q_rows: Vec::new(),
                s: self.s.clone(),
                hasher: self.hasher,
                base,
            };
        }
        let row_bytes = m.div_ceil(8);
        // The receiver sends all w masked columns as ONE message (see
        // `KkrtReceiver::eval_batch`).
        let mut u_all = vec![0u8; WIDTH * row_bytes];
        ch.recv_into(&mut u_all);
        let mut q = BitMatrix::zero(WIDTH, m);
        let mut s_arr = *self.s.expose();
        par::with_pool_if(par::threads() > 1 && m >= OT_PAR_MIN, |pool| {
            let s_ref = &s_arr;
            pool.zip_chunks_mut(
                &mut self.prgs,
                q.as_bytes_mut(),
                row_bytes,
                COLS_PER_PART,
                |i, prg, row| {
                    prg.fill(row);
                    // Branchless s_i correlation, as in IKNP: mask u with
                    // all-ones/all-zeros derived from the secret bit.
                    let s_i = CtChoice::from_lsb(s_ref[i / 8] >> (i % 8)).mask_u8();
                    for (c, &ub) in row.iter_mut().zip(&u_all[i * row_bytes..]) {
                        *c ^= ub & s_i;
                    }
                },
            );
        });
        s_arr.zeroize();
        let rows = q.transpose();
        let mut q_rows = vec![[0u8; WIDTH_BYTES]; m];
        par::with_pool_if(par::threads() > 1 && m >= 2 * BLOCKS_PER_PART, |pool| {
            pool.chunks_mut(&mut q_rows, 1, BLOCKS_PER_PART, |off, chunk| {
                for (k, r) in chunk.iter_mut().enumerate() {
                    r.copy_from_slice(rows.row(off + k));
                }
            });
        });
        KkrtSenderKey {
            q_rows,
            s: self.s.clone(),
            hasher: self.hasher,
            base,
        }
    }
}

impl KkrtSenderKey {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.q_rows.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.q_rows.is_empty()
    }

    /// Evaluate F(j, y) for arbitrary y. Already branchless: the code bits
    /// gate s bytewise through `&`, never through control flow.
    pub fn eval(&self, j: usize, y: &[u8]) -> u64 {
        let c = code(y);
        let s = self.s.expose();
        let mut row = self.q_rows[j];
        for k in 0..WIDTH_BYTES {
            row[k] ^= c[k] & s[k];
        }
        self.hasher.hash_row(self.base + j as u64, &row)
    }
}

impl KkrtReceiver {
    /// Bootstrap: run w base OTs as base-OT sender. `hasher` must match the
    /// sender's choice.
    pub fn setup<R: Rng>(ch: &mut Channel, rng: &mut R, hasher: TweakHasher) -> KkrtReceiver {
        // Seed pairs are zeroized on drop as each PRG consumes its seed.
        let pairs = crate::base::send(ch, WIDTH, rng);
        let prgs = pairs
            .iter()
            .map(|(k0, k1)| {
                (
                    Prg::from_secret(b"kkrt-col", k0),
                    Prg::from_secret(b"kkrt-col", k1),
                )
            })
            .collect();
        KkrtReceiver {
            prgs,
            hasher,
            ctr: 0,
        }
    }

    /// Run one batch on `inputs`, learning F(j, inputs[j]) per instance.
    pub fn eval_batch(&mut self, ch: &mut Channel, inputs: &[&[u8]]) -> Vec<u64> {
        let m = inputs.len();
        let base = self.ctr;
        self.ctr += m as u64;
        if m == 0 {
            return Vec::new();
        }
        let row_bytes = m.div_ceil(8);
        // Code matrix: row j = C(x_j); we need its columns. Two SHA-256
        // compressions per element makes this the receiver's second-hottest
        // loop, and each element is independent — map it over the pool.
        let codes: Vec<[u8; WIDTH_BYTES]> =
            par::with_pool_if(par::threads() > 1 && m >= 2 * CODES_PER_PART, |pool| {
                pool.map(inputs, CODES_PER_PART, |_, x| code(x))
            });
        // Per column: t0 = G(k0), u = G(k1) ⊕ t0 ⊕ c_i (column i of the
        // code matrix). As in IKNP, both streams for all w columns land in
        // one interleaved scratch so the expansion splits across the pool,
        // and the masked columns leave as ONE message (the sender's
        // `key_batch` reads the bundle with a single `recv_into`). The code
        // bits derive from the receiver's private inputs, so fold them in
        // without branching on them.
        let mut cols = vec![0u8; WIDTH * 2 * row_bytes];
        par::with_pool_if(par::threads() > 1 && m >= OT_PAR_MIN, |pool| {
            let codes_ref = &codes;
            pool.zip_chunks_mut(
                &mut self.prgs,
                &mut cols,
                2 * row_bytes,
                COLS_PER_PART,
                |i, (prg0, prg1), chunk| {
                    let (t0, u) = chunk.split_at_mut(row_bytes);
                    prg0.fill(t0);
                    prg1.fill(u);
                    for (j, cj) in codes_ref.iter().enumerate() {
                        u[j / 8] ^= (cj[i / 8] >> (i % 8) & 1) << (j % 8);
                    }
                    for k in 0..row_bytes {
                        u[k] ^= t0[k];
                    }
                },
            );
        });
        let mut t = BitMatrix::zero(WIDTH, m);
        let mut u_all = vec![0u8; WIDTH * row_bytes];
        for i in 0..WIDTH {
            let chunk = &cols[i * 2 * row_bytes..(i + 1) * 2 * row_bytes];
            t.row_mut(i).copy_from_slice(&chunk[..row_bytes]);
            u_all[i * row_bytes..(i + 1) * row_bytes].copy_from_slice(&chunk[row_bytes..]);
        }
        // The t0 streams are the OPRF outputs' preimages; scrub the scratch.
        cols.zeroize();
        ch.send_bytes(&u_all);
        let rows = t.transpose();
        let mut t_rows = vec![[0u8; WIDTH_BYTES]; m];
        par::with_pool_if(par::threads() > 1 && m >= 2 * BLOCKS_PER_PART, |pool| {
            pool.chunks_mut(&mut t_rows, 1, BLOCKS_PER_PART, |off, chunk| {
                for (k, r) in chunk.iter_mut().enumerate() {
                    r.copy_from_slice(rows.row(off + k));
                }
            });
        });
        let out = self.hasher.hash_row_batch(base, &t_rows);
        t_rows.zeroize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::{run_protocol, ReadExt};

    fn run_batch_with(inputs: Vec<Vec<u8>>, hasher: TweakHasher) -> (KkrtSenderKey, Vec<u64>) {
        let (key, got, _) = run_protocol(
            move |ch| {
                let mut s = KkrtSender::setup(ch, &mut StdRng::seed_from_u64(1), hasher);
                let m = { ch.recv_u64() as usize };
                s.key_batch(ch, m)
            },
            move |ch| {
                let mut r = KkrtReceiver::setup(ch, &mut StdRng::seed_from_u64(2), hasher);
                ch.send_u64(inputs.len() as u64);
                let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
                r.eval_batch(ch, &refs)
            },
        );
        (key, got)
    }

    fn run_batch(inputs: Vec<Vec<u8>>) -> (KkrtSenderKey, Vec<u64>) {
        run_batch_with(inputs, TweakHasher::default())
    }

    #[test]
    fn receiver_output_matches_sender_eval() {
        for hasher in [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast] {
            let inputs: Vec<Vec<u8>> = (0..40u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let (key, got) = run_batch_with(inputs.clone(), hasher);
            for (j, x) in inputs.iter().enumerate() {
                assert_eq!(got[j], key.eval(j, x), "{hasher:?} instance {j}");
            }
        }
    }

    #[test]
    fn other_points_look_different() {
        let inputs: Vec<Vec<u8>> = (0..10u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let (key, got) = run_batch(inputs);
        // Evaluating at a different point gives a different value.
        let other = 999u64.to_le_bytes().to_vec();
        for (j, g) in got.iter().enumerate() {
            assert_ne!(*g, key.eval(j, &other));
        }
        // Same input under different instance indices differs.
        assert_ne!(
            key.eval(0, &0u64.to_le_bytes()),
            key.eval(1, &0u64.to_le_bytes())
        );
    }

    #[test]
    fn multiple_batches_are_independent() {
        let (keys, gots, _) = run_protocol(
            |ch| {
                let mut s =
                    KkrtSender::setup(ch, &mut StdRng::seed_from_u64(3), TweakHasher::default());
                (s.key_batch(ch, 5), s.key_batch(ch, 5))
            },
            |ch| {
                let mut r =
                    KkrtReceiver::setup(ch, &mut StdRng::seed_from_u64(4), TweakHasher::default());
                let ins: Vec<Vec<u8>> = (0..5u64).map(|i| i.to_le_bytes().to_vec()).collect();
                let refs: Vec<&[u8]> = ins.iter().map(|v| v.as_slice()).collect();
                (r.eval_batch(ch, &refs), r.eval_batch(ch, &refs))
            },
        );
        for j in 0..5 {
            let x = (j as u64).to_le_bytes();
            assert_eq!(gots.0[j], keys.0.eval(j, &x));
            assert_eq!(gots.1[j], keys.1.eval(j, &x));
            assert_ne!(gots.0[j], gots.1[j], "batches must not collide");
        }
    }

    #[test]
    fn empty_batch() {
        let (key, got) = run_batch(vec![]);
        assert!(key.is_empty());
        assert!(got.is_empty());
    }
}
