//! KKRT batched oblivious PRF (BaRK-OPRF).
//!
//! The wide-matrix (w = 512) cousin of IKNP: for a batch of m inputs, the
//! *receiver* learns F(j, x_j) for its j-th input x_j, while the *sender*
//! learns a key that lets it evaluate F(j, ·) at arbitrary points. That
//! asymmetry is exactly what the OPPRF hint construction in circuit PSI
//! needs (`secyan-psi::opprf`): the sender programs corrections
//! F(j, y) ⊕ target for each of its own elements y.
//!
//! Outputs are truncated to 64 bits so they embed into GF(2^64) for the
//! polynomial hints; the 2^{-64} collision probability keeps the total
//! failure probability under the paper's 2^{-σ}, σ = 40, for all workload
//! sizes used here.

use crate::iknp::{BLOCKS_PER_PART, COLS_PER_PART, OT_PAR_MIN};
use rand::Rng;
use secyan_crypto::sha256::Sha256;
use secyan_crypto::transpose::BitMatrix;
use secyan_crypto::{zeroize_bytes, CtChoice, Prg, Secret, TweakHasher, Zeroize};
use secyan_par as par;
use secyan_transport::{Channel, WriteExt};

/// Minimum batch size before the (SHA-heavy) input-encoding map uses the
/// worker pool; each element costs two compression-function calls, so the
/// bar is far lower than for PRG column expansion.
const CODES_PER_PART: usize = 128;

/// Matrix width w: the pseudorandom-code length in bits.
pub const WIDTH: usize = 512;
const WIDTH_BYTES: usize = WIDTH / 8;

/// The pseudorandom code C: arbitrary bytes → 512 bits.
fn code(x: &[u8]) -> [u8; WIDTH_BYTES] {
    let mut out = [0u8; WIDTH_BYTES];
    for half in 0..2u8 {
        let mut h = Sha256::new();
        h.update(b"kkrt-code");
        h.update(&[half]);
        h.update(x);
        out[half as usize * 32..(half as usize + 1) * 32].copy_from_slice(&h.finalize());
    }
    out
}

/// OPRF sender (key holder). Holds the base-OT state; each
/// [`KkrtSender::key_batch`] call produces a key for one batch.
pub struct KkrtSender {
    /// The w secret correlation bits; leaking them voids every OPRF batch.
    s: Secret<[u8; WIDTH_BYTES]>,
    prgs: Vec<Prg>,
    hasher: TweakHasher,
    ctr: u64,
    bank: Option<KkrtSendBank>,
}

/// OPRF receiver (input holder).
pub struct KkrtReceiver {
    prgs: Vec<(Prg, Prg)>,
    hasher: TweakHasher,
    ctr: u64,
    bank: Option<KkrtRecvBank>,
}

/// Sender-side bank of precomputed KKRT instances, produced offline by
/// [`KkrtSender::offline`] against random receiver codes and consumed
/// online via Beaver-style derandomization.
///
/// The KKRT correlation is linear in the code: the extension leaves the
/// sender with `q_j = t_j ⊕ (C(x_j) & s)`. Running it offline against a
/// *random* code `c'_j` gives `q'_j = t_j ⊕ (c'_j & s)`; when the real
/// input arrives the receiver sends `d_j = C(x_j) ⊕ c'_j` (uniform, since
/// `c'_j` is) and the sender folds in `d_j & s`, recovering exactly the
/// online correlation. The online message replaces the column bundle of a
/// fresh extension at the same per-instance width, so banking trades no
/// extra bytes for moving the PRG expansion, the column masking, and both
/// bit-matrix transposes off the critical path.
///
/// Material is strictly single-use: consumed rows are zeroized at take
/// time and anything left over zeroizes on drop.
pub struct KkrtSendBank {
    /// Offline correlation rows `q'_j = t_j ⊕ (c'_j & s)`.
    q_rows: Secret<Vec<[u8; WIDTH_BYTES]>>,
    cursor: usize,
}

impl KkrtSendBank {
    /// Unconsumed instances left in the bank.
    pub fn remaining(&self) -> usize {
        self.q_rows.expose().len() - self.cursor
    }

    /// Take `m` rows, zeroizing them inside the bank as they leave.
    fn take(&mut self, m: usize) -> Vec<[u8; WIDTH_BYTES]> {
        let start = self.cursor;
        self.cursor += m;
        let rows = self.q_rows.expose_mut();
        let out = rows[start..self.cursor].to_vec();
        for r in rows[start..self.cursor].iter_mut() {
            r.zeroize();
        }
        out
    }

    /// Discard (zeroize) entries until at most `cap` remain; exhaustion
    /// tests use this to model a bank drained mid-run.
    pub fn shed_to(&mut self, cap: usize) {
        let excess = self.remaining().saturating_sub(cap);
        let mut dropped = self.take(excess);
        dropped.zeroize();
    }
}

/// Receiver-side bank: the random offline codes `c'_j` together with the
/// row preimages `t_j` they produced. See [`KkrtSendBank`] for the
/// derandomization and single-use story.
pub struct KkrtRecvBank {
    /// The offline random codes `c'_j`.
    codes: Secret<Vec<[u8; WIDTH_BYTES]>>,
    /// The matching row preimages `t_j` (hashed only at consumption time,
    /// when the instance index is known).
    t_rows: Secret<Vec<[u8; WIDTH_BYTES]>>,
    cursor: usize,
}

impl KkrtRecvBank {
    /// Unconsumed instances left in the bank.
    pub fn remaining(&self) -> usize {
        self.t_rows.expose().len() - self.cursor
    }

    /// Take `m` (code, row) entries, zeroizing them inside the bank.
    #[allow(clippy::type_complexity)]
    fn take(&mut self, m: usize) -> (Vec<[u8; WIDTH_BYTES]>, Vec<[u8; WIDTH_BYTES]>) {
        let start = self.cursor;
        self.cursor += m;
        let codes = self.codes.expose_mut();
        let rows = self.t_rows.expose_mut();
        let c = codes[start..self.cursor].to_vec();
        let t = rows[start..self.cursor].to_vec();
        for x in codes[start..self.cursor].iter_mut() {
            x.zeroize();
        }
        for x in rows[start..self.cursor].iter_mut() {
            x.zeroize();
        }
        (c, t)
    }

    /// Discard (zeroize) entries until at most `cap` remain; see
    /// [`KkrtSendBank::shed_to`].
    pub fn shed_to(&mut self, cap: usize) {
        let excess = self.remaining().saturating_sub(cap);
        let (mut c, mut t) = self.take(excess);
        c.zeroize();
        t.zeroize();
    }
}

/// A batch key: lets the sender evaluate F(j, ·) for each instance j of the
/// batch.
pub struct KkrtSenderKey {
    q_rows: Vec<[u8; WIDTH_BYTES]>,
    s: Secret<[u8; WIDTH_BYTES]>,
    hasher: TweakHasher,
    base: u64,
}

impl KkrtSender {
    /// Bootstrap: run w base OTs as base-OT receiver with secret choices s.
    /// `hasher` is the output hash masking the OPRF rows; both parties must
    /// pass the same choice.
    pub fn setup<R: Rng>(ch: &mut Channel, rng: &mut R, hasher: TweakHasher) -> KkrtSender {
        let mut s = [0u8; WIDTH_BYTES];
        rng.fill(&mut s[..]);
        // ct-ok: branchless bit extraction — `& 1 == 1` compiles to a mask
        // test, and the resulting bools feed the branchless base-OT receive.
        let choices: Vec<bool> = (0..WIDTH).map(|i| s[i / 8] >> (i % 8) & 1 == 1).collect();
        // Base-OT seeds are zeroized as each PRG consumes its seed.
        let seeds = crate::base::receive(ch, &choices, rng);
        let prgs = seeds
            .iter()
            .map(|k| Prg::from_secret(b"kkrt-col", k))
            .collect();
        KkrtSender {
            s: Secret::new(s),
            prgs,
            hasher,
            ctr: 0,
            bank: None,
        }
    }

    /// Offline phase: bank `m` instances extended against random receiver
    /// codes, for later derandomized consumption. The peer must run the
    /// matching [`KkrtReceiver::offline`] with the same `m`.
    pub fn offline(&mut self, ch: &mut Channel, m: usize) -> KkrtSendBank {
        let q_rows = if m == 0 {
            Vec::new()
        } else {
            self.extend(ch, m)
        };
        KkrtSendBank {
            q_rows: Secret::new(q_rows),
            cursor: 0,
        }
    }

    /// Attach a bank produced by [`KkrtSender::offline`]; subsequent
    /// batches consume it while enough instances remain.
    pub fn attach_bank(&mut self, bank: KkrtSendBank) {
        self.bank = Some(bank);
    }

    /// Detach the current bank, if any (remaining material zeroizes when
    /// the returned bank drops).
    pub fn detach_bank(&mut self) -> Option<KkrtSendBank> {
        self.bank.take()
    }

    /// Instances still available in the attached bank (0 when none).
    pub fn bank_remaining(&self) -> usize {
        self.bank.as_ref().map_or(0, |b| b.remaining())
    }

    /// Run one batch of size `m`, obtaining the evaluation key:
    /// derandomize banked instances when the bank covers the batch, else
    /// run a fresh extension. Both parties see the same public batch sizes
    /// and bank budgets, so the decision is always mirrored.
    pub fn key_batch(&mut self, ch: &mut Channel, m: usize) -> KkrtSenderKey {
        let base = self.ctr;
        self.ctr += m as u64;
        if m == 0 {
            return KkrtSenderKey {
                q_rows: Vec::new(),
                s: self.s.clone(),
                hasher: self.hasher,
                base,
            };
        }
        if self.bank.as_ref().is_some_and(|b| b.remaining() >= m) {
            // Beaver-style code correction: d_j = C(x_j) ⊕ c'_j turns the
            // banked q'_j = t_j ⊕ (c'_j & s) into t_j ⊕ (C(x_j) & s) —
            // the correlation a fresh extension would have produced.
            let mut d_all = vec![0u8; m * WIDTH_BYTES];
            ch.recv_into(&mut d_all);
            let mut q_rows = self.bank.as_mut().expect("bank checked above").take(m);
            let s = self.s.expose();
            for (j, row) in q_rows.iter_mut().enumerate() {
                let d = &d_all[j * WIDTH_BYTES..(j + 1) * WIDTH_BYTES];
                for k in 0..WIDTH_BYTES {
                    row[k] ^= d[k] & s[k];
                }
            }
            return KkrtSenderKey {
                q_rows,
                s: self.s.clone(),
                hasher: self.hasher,
                base,
            };
        }
        KkrtSenderKey {
            q_rows: self.extend(ch, m),
            s: self.s.clone(),
            hasher: self.hasher,
            base,
        }
    }

    /// One fresh OT extension of `m >= 1` instances: receive the masked
    /// column bundle and return the correlated rows `t_j ⊕ (code_j & s)`.
    fn extend(&mut self, ch: &mut Channel, m: usize) -> Vec<[u8; WIDTH_BYTES]> {
        let row_bytes = m.div_ceil(8);
        // The receiver sends all w masked columns as ONE message (see
        // `KkrtReceiver::eval_batch`).
        let mut u_all = vec![0u8; WIDTH * row_bytes];
        ch.recv_into(&mut u_all);
        let mut q = BitMatrix::zero(WIDTH, m);
        let mut s_arr = *self.s.expose();
        par::with_pool_if(par::threads() > 1 && m >= OT_PAR_MIN, |pool| {
            let s_ref = &s_arr;
            pool.zip_chunks_mut(
                &mut self.prgs,
                q.as_bytes_mut(),
                row_bytes,
                COLS_PER_PART,
                |i, prg, row| {
                    prg.fill(row);
                    // Branchless s_i correlation, as in IKNP: mask u with
                    // all-ones/all-zeros derived from the secret bit.
                    let s_i = CtChoice::from_lsb(s_ref[i / 8] >> (i % 8)).mask_u8();
                    for (c, &ub) in row.iter_mut().zip(&u_all[i * row_bytes..]) {
                        *c ^= ub & s_i;
                    }
                },
            );
        });
        s_arr.zeroize();
        let rows = q.transpose();
        let mut q_rows = vec![[0u8; WIDTH_BYTES]; m];
        par::with_pool_if(par::threads() > 1 && m >= 2 * BLOCKS_PER_PART, |pool| {
            pool.chunks_mut(&mut q_rows, 1, BLOCKS_PER_PART, |off, chunk| {
                for (k, r) in chunk.iter_mut().enumerate() {
                    r.copy_from_slice(rows.row(off + k));
                }
            });
        });
        q_rows
    }
}

impl KkrtSenderKey {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.q_rows.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.q_rows.is_empty()
    }

    /// Evaluate F(j, y) for arbitrary y. Already branchless: the code bits
    /// gate s bytewise through `&`, never through control flow.
    pub fn eval(&self, j: usize, y: &[u8]) -> u64 {
        let c = code(y);
        let s = self.s.expose();
        let mut row = self.q_rows[j];
        for k in 0..WIDTH_BYTES {
            row[k] ^= c[k] & s[k];
        }
        self.hasher.hash_row(self.base + j as u64, &row)
    }
}

impl KkrtReceiver {
    /// Bootstrap: run w base OTs as base-OT sender. `hasher` must match the
    /// sender's choice.
    pub fn setup<R: Rng>(ch: &mut Channel, rng: &mut R, hasher: TweakHasher) -> KkrtReceiver {
        // Seed pairs are zeroized on drop as each PRG consumes its seed.
        let pairs = crate::base::send(ch, WIDTH, rng);
        let prgs = pairs
            .iter()
            .map(|(k0, k1)| {
                (
                    Prg::from_secret(b"kkrt-col", k0),
                    Prg::from_secret(b"kkrt-col", k1),
                )
            })
            .collect();
        KkrtReceiver {
            prgs,
            hasher,
            ctr: 0,
            bank: None,
        }
    }

    /// Offline phase: bank `m` instances extended under fresh *random*
    /// codes (no input needed yet), for later derandomized consumption.
    /// The peer must run the matching [`KkrtSender::offline`] with the
    /// same `m`.
    pub fn offline<R: Rng>(&mut self, ch: &mut Channel, m: usize, rng: &mut R) -> KkrtRecvBank {
        let (codes, t_rows) = if m == 0 {
            (Vec::new(), Vec::new())
        } else {
            let mut codes = vec![[0u8; WIDTH_BYTES]; m];
            for c in codes.iter_mut() {
                rng.fill(&mut c[..]);
            }
            let t_rows = self.extend(ch, &codes);
            (codes, t_rows)
        };
        KkrtRecvBank {
            codes: Secret::new(codes),
            t_rows: Secret::new(t_rows),
            cursor: 0,
        }
    }

    /// Attach a bank produced by [`KkrtReceiver::offline`].
    pub fn attach_bank(&mut self, bank: KkrtRecvBank) {
        self.bank = Some(bank);
    }

    /// Detach the current bank, if any (remaining material zeroizes when
    /// the returned bank drops).
    pub fn detach_bank(&mut self) -> Option<KkrtRecvBank> {
        self.bank.take()
    }

    /// Instances still available in the attached bank (0 when none).
    pub fn bank_remaining(&self) -> usize {
        self.bank.as_ref().map_or(0, |b| b.remaining())
    }

    /// Run one batch on `inputs`, learning F(j, inputs[j]) per instance:
    /// derandomize banked instances when the bank covers the batch (see
    /// [`KkrtSendBank`]), else run a fresh extension. The decision mirrors
    /// the sender's — both sides see the same batch sizes and budgets.
    pub fn eval_batch(&mut self, ch: &mut Channel, inputs: &[&[u8]]) -> Vec<u64> {
        let m = inputs.len();
        let base = self.ctr;
        self.ctr += m as u64;
        if m == 0 {
            return Vec::new();
        }
        // Code matrix: row j = C(x_j); we need its columns. Two SHA-256
        // compressions per element makes this the receiver's second-hottest
        // loop, and each element is independent — map it over the pool.
        let codes: Vec<[u8; WIDTH_BYTES]> =
            par::with_pool_if(par::threads() > 1 && m >= 2 * CODES_PER_PART, |pool| {
                pool.map(inputs, CODES_PER_PART, |_, x| code(x))
            });
        if self.bank.as_ref().is_some_and(|b| b.remaining() >= m) {
            // Beaver-style code correction: send d_j = C(x_j) ⊕ c'_j —
            // uniform on the wire because c'_j is — and hash the banked
            // row preimages under this batch's instance tweaks.
            let (cprimes, mut t_rows) = self.bank.as_mut().expect("bank checked above").take(m);
            let mut d_all = vec![0u8; m * WIDTH_BYTES];
            for (j, (cj, cp)) in codes.iter().zip(&cprimes).enumerate() {
                for k in 0..WIDTH_BYTES {
                    d_all[j * WIDTH_BYTES + k] = cj[k] ^ cp[k];
                }
            }
            ch.send_bytes(&d_all);
            let out = self.hasher.hash_row_batch(base, &t_rows);
            let mut cprimes = cprimes;
            cprimes.zeroize();
            t_rows.zeroize();
            return out;
        }
        let mut t_rows = self.extend(ch, &codes);
        let out = self.hasher.hash_row_batch(base, &t_rows);
        t_rows.zeroize();
        out
    }

    /// One fresh OT extension under the given codes (one per instance):
    /// send the masked column bundle and return the row preimages `t_j`.
    fn extend(&mut self, ch: &mut Channel, codes: &[[u8; WIDTH_BYTES]]) -> Vec<[u8; WIDTH_BYTES]> {
        let m = codes.len();
        let row_bytes = m.div_ceil(8);
        // Per column: t0 = G(k0), u = G(k1) ⊕ t0 ⊕ c_i (column i of the
        // code matrix). As in IKNP, both streams for all w columns land in
        // one interleaved scratch so the expansion splits across the pool,
        // and the masked columns leave as ONE message (the sender's
        // `key_batch` reads the bundle with a single `recv_into`). The code
        // bits derive from the receiver's private inputs, so fold them in
        // without branching on them.
        let mut cols = vec![0u8; WIDTH * 2 * row_bytes];
        // Column i of the code matrix is needed per worker. Rather than
        // extracting it bit-by-bit inside every column's loop (w · m bit
        // ops), transpose the whole m×w code matrix ONCE through the SIMD
        // kernel and hand each worker its column as a ready byte slice.
        // The transpose runs before the pool dispatch below, so its own
        // internal parallelism never nests.
        let mut code_mat = BitMatrix::zero(m, WIDTH);
        for (j, cj) in codes.iter().enumerate() {
            code_mat.row_mut(j).copy_from_slice(cj);
        }
        let mut code_cols = code_mat.transpose(); // w rows of m bits
        zeroize_bytes(code_mat.as_bytes_mut());
        par::with_pool_if(par::threads() > 1 && m >= OT_PAR_MIN, |pool| {
            let code_cols_ref = &code_cols;
            pool.zip_chunks_mut(
                &mut self.prgs,
                &mut cols,
                2 * row_bytes,
                COLS_PER_PART,
                |i, (prg0, prg1), chunk| {
                    let (t0, u) = chunk.split_at_mut(row_bytes);
                    prg0.fill(t0);
                    prg1.fill(u);
                    for ((uk, &t0k), &ck) in u.iter_mut().zip(&*t0).zip(code_cols_ref.row(i)) {
                        *uk ^= t0k ^ ck;
                    }
                },
            );
        });
        // The code bits derive from the receiver's private inputs; scrub
        // the transposed copy once every column has folded it in.
        zeroize_bytes(code_cols.as_bytes_mut());
        let mut t = BitMatrix::zero(WIDTH, m);
        let mut u_all = vec![0u8; WIDTH * row_bytes];
        for i in 0..WIDTH {
            let chunk = &cols[i * 2 * row_bytes..(i + 1) * 2 * row_bytes];
            t.row_mut(i).copy_from_slice(&chunk[..row_bytes]);
            u_all[i * row_bytes..(i + 1) * row_bytes].copy_from_slice(&chunk[row_bytes..]);
        }
        // The t0 streams are the OPRF outputs' preimages; scrub the scratch.
        cols.zeroize();
        ch.send_bytes(&u_all);
        let rows = t.transpose();
        let mut t_rows = vec![[0u8; WIDTH_BYTES]; m];
        par::with_pool_if(par::threads() > 1 && m >= 2 * BLOCKS_PER_PART, |pool| {
            pool.chunks_mut(&mut t_rows, 1, BLOCKS_PER_PART, |off, chunk| {
                for (k, r) in chunk.iter_mut().enumerate() {
                    r.copy_from_slice(rows.row(off + k));
                }
            });
        });
        t_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::{run_protocol, ReadExt};

    fn run_batch_with(inputs: Vec<Vec<u8>>, hasher: TweakHasher) -> (KkrtSenderKey, Vec<u64>) {
        let (key, got, _) = run_protocol(
            move |ch| {
                let mut s = KkrtSender::setup(ch, &mut StdRng::seed_from_u64(1), hasher);
                let m = { ch.recv_u64() as usize };
                s.key_batch(ch, m)
            },
            move |ch| {
                let mut r = KkrtReceiver::setup(ch, &mut StdRng::seed_from_u64(2), hasher);
                ch.send_u64(inputs.len() as u64);
                let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
                r.eval_batch(ch, &refs)
            },
        );
        (key, got)
    }

    fn run_batch(inputs: Vec<Vec<u8>>) -> (KkrtSenderKey, Vec<u64>) {
        run_batch_with(inputs, TweakHasher::default())
    }

    #[test]
    fn receiver_output_matches_sender_eval() {
        for hasher in [TweakHasher::Sha256, TweakHasher::Aes, TweakHasher::Fast] {
            let inputs: Vec<Vec<u8>> = (0..40u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let (key, got) = run_batch_with(inputs.clone(), hasher);
            for (j, x) in inputs.iter().enumerate() {
                assert_eq!(got[j], key.eval(j, x), "{hasher:?} instance {j}");
            }
        }
    }

    #[test]
    fn other_points_look_different() {
        let inputs: Vec<Vec<u8>> = (0..10u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let (key, got) = run_batch(inputs);
        // Evaluating at a different point gives a different value.
        let other = 999u64.to_le_bytes().to_vec();
        for (j, g) in got.iter().enumerate() {
            assert_ne!(*g, key.eval(j, &other));
        }
        // Same input under different instance indices differs.
        assert_ne!(
            key.eval(0, &0u64.to_le_bytes()),
            key.eval(1, &0u64.to_le_bytes())
        );
    }

    #[test]
    fn multiple_batches_are_independent() {
        let (keys, gots, _) = run_protocol(
            |ch| {
                let mut s =
                    KkrtSender::setup(ch, &mut StdRng::seed_from_u64(3), TweakHasher::default());
                (s.key_batch(ch, 5), s.key_batch(ch, 5))
            },
            |ch| {
                let mut r =
                    KkrtReceiver::setup(ch, &mut StdRng::seed_from_u64(4), TweakHasher::default());
                let ins: Vec<Vec<u8>> = (0..5u64).map(|i| i.to_le_bytes().to_vec()).collect();
                let refs: Vec<&[u8]> = ins.iter().map(|v| v.as_slice()).collect();
                (r.eval_batch(ch, &refs), r.eval_batch(ch, &refs))
            },
        );
        for j in 0..5 {
            let x = (j as u64).to_le_bytes();
            assert_eq!(gots.0[j], keys.0.eval(j, &x));
            assert_eq!(gots.1[j], keys.1.eval(j, &x));
            assert_ne!(gots.0[j], gots.1[j], "batches must not collide");
        }
    }

    #[test]
    fn empty_batch() {
        let (key, got) = run_batch(vec![]);
        assert!(key.is_empty());
        assert!(got.is_empty());
    }

    #[test]
    fn banked_batches_match_sender_eval_and_fall_back_when_short() {
        // Bank 12 instances, then draw batches of 5, 5 and 5: the first
        // two derandomize from the bank, the third falls back to a fresh
        // inline extension (12 - 10 < 5), mirrored on both sides.
        let (keys, gots, _) = run_protocol(
            |ch| {
                let mut s =
                    KkrtSender::setup(ch, &mut StdRng::seed_from_u64(5), TweakHasher::default());
                let bank = s.offline(ch, 12);
                assert_eq!(bank.remaining(), 12);
                s.attach_bank(bank);
                let keys = (s.key_batch(ch, 5), s.key_batch(ch, 5), s.key_batch(ch, 5));
                assert_eq!(s.bank_remaining(), 2, "third batch must not drain the bank");
                keys
            },
            |ch| {
                let mut rng = StdRng::seed_from_u64(6);
                let mut r = KkrtReceiver::setup(ch, &mut rng, TweakHasher::default());
                let bank = r.offline(ch, 12, &mut rng);
                assert_eq!(bank.remaining(), 12);
                r.attach_bank(bank);
                let ins: Vec<Vec<u8>> = (0..5u64).map(|i| i.to_le_bytes().to_vec()).collect();
                let refs: Vec<&[u8]> = ins.iter().map(|v| v.as_slice()).collect();
                let gots = (
                    r.eval_batch(ch, &refs),
                    r.eval_batch(ch, &refs),
                    r.eval_batch(ch, &refs),
                );
                assert_eq!(r.bank_remaining(), 2);
                gots
            },
        );
        for j in 0..5 {
            let x = (j as u64).to_le_bytes();
            assert_eq!(gots.0[j], keys.0.eval(j, &x), "banked batch 1");
            assert_eq!(gots.1[j], keys.1.eval(j, &x), "banked batch 2");
            assert_eq!(gots.2[j], keys.2.eval(j, &x), "inline fallback batch");
            assert_ne!(
                gots.0[j], gots.1[j],
                "instance tweaks must separate batches"
            );
        }
    }

    #[test]
    fn shed_to_caps_the_bank() {
        let (_, _, _) = run_protocol(
            |ch| {
                let mut s =
                    KkrtSender::setup(ch, &mut StdRng::seed_from_u64(7), TweakHasher::default());
                let mut bank = s.offline(ch, 10);
                bank.shed_to(3);
                assert_eq!(bank.remaining(), 3);
                bank.shed_to(8);
                assert_eq!(bank.remaining(), 3, "shed never grows the bank");
            },
            |ch| {
                let mut rng = StdRng::seed_from_u64(8);
                let mut r = KkrtReceiver::setup(ch, &mut rng, TweakHasher::default());
                let mut bank = r.offline(ch, 10, &mut rng);
                bank.shed_to(3);
                assert_eq!(bank.remaining(), 3);
            },
        );
    }
}
