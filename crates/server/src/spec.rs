//! The session request riding in the handshake hello payload.
//!
//! A request names a testkit instance family and seed (both parties can
//! regenerate the full instance deterministically from those — only each
//! party's *own* relations are ever used as private inputs), an execution
//! mode, and a run count. The byte codec is deliberately rigid: a fixed
//! 14-byte layout, unknown tags rejected, trailing bytes rejected — a
//! malformed payload surfaces as a typed handshake rejection, never as a
//! misparsed session.

use secyan_testkit::Instance;

/// Which seeded instance family the session evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpec {
    /// [`Instance::generate`] — the random free-connex family.
    Random { seed: u64 },
    /// [`Instance::generate_chain`] — the baseline-shaped chain family.
    Chain { seed: u64 },
}

impl QuerySpec {
    /// Materialize the named instance.
    pub fn instance(&self) -> Instance {
        match *self {
            QuerySpec::Random { seed } => Instance::generate(seed),
            QuerySpec::Chain { seed } => Instance::generate_chain(seed),
        }
    }

    fn family_tag(&self) -> u8 {
        match self {
            QuerySpec::Random { .. } => 0,
            QuerySpec::Chain { .. } => 1,
        }
    }

    fn seed(&self) -> u64 {
        match *self {
            QuerySpec::Random { seed } | QuerySpec::Chain { seed } => seed,
        }
    }
}

/// How the session executes the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Classic one-shot runs (`secure_yannakakis` per run).
    Single,
    /// Offline phase then online phase, per run.
    PhaseSplit,
    /// Provision the session's preprocessing pool `runs` times up front,
    /// then serve `runs` pooled online executions against it.
    Pooled,
}

impl RunMode {
    fn tag(&self) -> u8 {
        match self {
            RunMode::Single => 0,
            RunMode::PhaseSplit => 1,
            RunMode::Pooled => 2,
        }
    }
}

/// A full session request: what to run, how, and how many times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRequest {
    pub spec: QuerySpec,
    pub mode: RunMode,
    /// Number of query executions in this session (≥ 1).
    pub runs: u32,
}

/// Encoded size of a [`SessionRequest`]: family u8 | seed u64 LE |
/// mode u8 | runs u32 LE.
pub const REQUEST_LEN: usize = 14;

impl SessionRequest {
    /// Serialize into the hello payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(REQUEST_LEN);
        out.push(self.spec.family_tag());
        out.extend_from_slice(&self.spec.seed().to_le_bytes());
        out.push(self.mode.tag());
        out.extend_from_slice(&self.runs.to_le_bytes());
        out
    }

    /// Parse a hello payload. `None` on any deviation from the fixed
    /// layout: wrong length, unknown family or mode tag, zero runs.
    pub fn decode(payload: &[u8]) -> Option<SessionRequest> {
        if payload.len() != REQUEST_LEN {
            return None;
        }
        let seed = u64::from_le_bytes(payload[1..9].try_into().ok()?);
        let spec = match payload[0] {
            0 => QuerySpec::Random { seed },
            1 => QuerySpec::Chain { seed },
            _ => return None,
        };
        let mode = match payload[9] {
            0 => RunMode::Single,
            1 => RunMode::PhaseSplit,
            2 => RunMode::Pooled,
            _ => return None,
        };
        let runs = u32::from_le_bytes(payload[10..14].try_into().ok()?);
        if runs == 0 {
            return None;
        }
        Some(SessionRequest { spec, mode, runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        for req in [
            SessionRequest {
                spec: QuerySpec::Random { seed: 7 },
                mode: RunMode::Single,
                runs: 1,
            },
            SessionRequest {
                spec: QuerySpec::Chain { seed: u64::MAX },
                mode: RunMode::Pooled,
                runs: 3,
            },
            SessionRequest {
                spec: QuerySpec::Random { seed: 0 },
                mode: RunMode::PhaseSplit,
                runs: 2,
            },
        ] {
            let wire = req.encode();
            assert_eq!(wire.len(), REQUEST_LEN);
            assert_eq!(SessionRequest::decode(&wire), Some(req));
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let good = SessionRequest {
            spec: QuerySpec::Random { seed: 1 },
            mode: RunMode::Single,
            runs: 1,
        }
        .encode();
        assert!(SessionRequest::decode(&good[..13]).is_none(), "short");
        let mut long = good.clone();
        long.push(0);
        assert!(SessionRequest::decode(&long).is_none(), "trailing bytes");
        let mut bad_family = good.clone();
        bad_family[0] = 9;
        assert!(SessionRequest::decode(&bad_family).is_none());
        let mut bad_mode = good.clone();
        bad_mode[9] = 9;
        assert!(SessionRequest::decode(&bad_mode).is_none());
        let mut zero_runs = good.clone();
        zero_runs[10..14].copy_from_slice(&0u32.to_le_bytes());
        assert!(SessionRequest::decode(&zero_runs).is_none());
    }
}
