//! The multi-session server runtime: Bob as a network service.
//!
//! [`serve`] binds a TCP listener and accepts any number of concurrent
//! two-party sessions, one OS thread per session. Each session:
//!
//! 1. reads the versioned client hello (see `secyan-transport::handshake`)
//!    under a short hello deadline, so a half-open connect or a stalled
//!    or hostile peer costs one thread for at most that long;
//! 2. decodes the [`SessionRequest`] payload, regenerates the named
//!    instance, and cross-checks the hello's declared ℓ and `ShapeKey`
//!    against the instance — any disagreement is answered with a typed
//!    rejection verdict and the connection is closed;
//! 3. answers `ACCEPT`, wraps the socket in a standalone metered
//!    [`Channel`] (Bob's endpoint), and runs the requested number of
//!    query executions in the requested mode.
//!
//! Session state is strictly per-thread: the [`PreprocPool`] backing
//! `Pooled` mode is constructed inside the session thread and dropped
//! (zeroizing unconsumed material) when the session ends, so no pool
//! entry can ever migrate between sessions. A typed protocol failure
//! tears down only its own session — the accept loop keeps serving.
//!
//! The runtime trusts nothing about the peer: malformed hellos, oversized
//! declarations, garbage bytes and protocol faults all surface as typed
//! errors recorded in the session's [`SessionReport`], never as a panic
//! or a hung thread.

pub mod spec;

pub use spec::{QuerySpec, RunMode, SessionRequest};

use secyan_core::{
    run_offline, run_online, run_online_pooled, secure_yannakakis, PreprocPool, Session, ShapeKey,
};
use secyan_crypto::TweakHasher;
use secyan_testkit::session_seeds;
use secyan_transport::handshake::{
    read_client_hello, write_server_hello, HandshakeError, CODE_ACCEPT, CODE_REJECT_MALFORMED,
    CODE_REJECT_SHAPE, CODE_REJECT_VERSION,
};
use secyan_transport::{catch_protocol, tcp_endpoint, CommStats, Role, DEFAULT_IO_TIMEOUT};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. `Default` binds an ephemeral loopback port with
/// the transport's default I/O deadline and a short hello deadline.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Address to listen on; port 0 picks an ephemeral port (read the
    /// actual one from [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Deadline for the *entire* client hello. Short by design: an
    /// accepted connection that never speaks must release its thread.
    pub hello_timeout: Duration,
    /// Per-read/write deadline on the session channel once accepted.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            hello_timeout: Duration::from_secs(3),
            io_timeout: DEFAULT_IO_TIMEOUT,
        }
    }
}

/// How one session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// All requested runs finished; `out_size` is the last run's public
    /// output size.
    Completed { runs: u32, out_size: usize },
    /// The hello never validated (timeout, garbage, bad version,
    /// malformed request, shape mismatch); the recorded string is the
    /// typed error's rendering.
    HandshakeFailed(String),
    /// The handshake accepted but the protocol run ended in a typed
    /// failure.
    ProtocolFailed(String),
}

/// The server's record of one session, handshake-rejected or completed.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Monotonic session number, in accept order.
    pub id: u64,
    /// Peer address as accepted.
    pub peer: Option<SocketAddr>,
    pub outcome: SessionOutcome,
    /// The negotiated shape key (accepted sessions only).
    pub shape_key: Option<ShapeKey>,
    /// Preprocessing pool counters at session end (zero outside `Pooled`
    /// mode). Reported per session precisely because pools are
    /// per-session: the concurrency tests assert no cross-session bleed.
    pub pool_hits: u64,
    pub pool_misses: u64,
    /// Materials still banked when the session ended (should be 0 for a
    /// balanced `Pooled` session).
    pub pool_left: usize,
    /// The session channel's local communication profile (both
    /// directions; accepted sessions only).
    pub stats: Option<CommStats>,
}

/// A running server. Dropping the handle stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reports: Arc<Mutex<Vec<SessionReport>>>,
}

impl ServerHandle {
    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of every session report so far, in completion order.
    pub fn reports(&self) -> Vec<SessionReport> {
        self.reports.lock().expect("reports lock poisoned").clone()
    }

    /// Stop accepting and wait for in-flight sessions to finish.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop if it is blocked; the dummy connection is
        // observed after the stop flag and discarded.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start serving. Returns once the listener is live; sessions
/// run on their own threads until [`ServerHandle::stop`] (or drop).
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let reports = Arc::new(Mutex::new(Vec::new()));
    let (stop2, reports2) = (Arc::clone(&stop), Arc::clone(&reports));
    let accept_thread = std::thread::spawn(move || {
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        let mut next_id = 0u64;
        loop {
            let accepted = listener.accept();
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok((stream, peer)) = accepted else {
                // Listener-level errors are transient (EMFILE, aborts);
                // keep serving.
                continue;
            };
            let id = next_id;
            next_id += 1;
            let reports = Arc::clone(&reports2);
            sessions.push(std::thread::spawn(move || {
                let report = run_session(id, peer, stream, config);
                reports.lock().expect("reports lock poisoned").push(report);
            }));
            // Reap finished sessions so a long-lived server does not
            // accumulate join handles.
            sessions.retain(|h| !h.is_finished());
        }
        for h in sessions {
            let _ = h.join();
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        reports,
    })
}

/// Validate the hello against the regenerated instance and answer the
/// verdict. `Ok` carries the decoded request and its instance.
fn negotiate(
    stream: &mut TcpStream,
) -> Result<(SessionRequest, secyan_testkit::Instance, ShapeKey), String> {
    let hello = match read_client_hello(stream) {
        Ok(h) => h,
        Err(e) => {
            // Answer typed rejections where the peer can still parse one;
            // transport-level failures (EOF, timeout) get no reply.
            match &e {
                HandshakeError::VersionMismatch { .. } => {
                    let _ = write_server_hello(stream, CODE_REJECT_VERSION, &e.to_string());
                }
                HandshakeError::TooLarge { .. } | HandshakeError::BadMagic { .. } => {
                    let _ = write_server_hello(stream, CODE_REJECT_MALFORMED, &e.to_string());
                }
                HandshakeError::Transport(_) | HandshakeError::Rejected { .. } => {}
            }
            return Err(e.to_string());
        }
    };
    let Some(req) = SessionRequest::decode(&hello.payload) else {
        let detail = "hello payload is not a valid session request";
        let _ = write_server_hello(stream, CODE_REJECT_MALFORMED, detail);
        return Err(detail.to_string());
    };
    let inst = req.spec.instance();
    // The declared ℓ and shape key must match what this server derives
    // from the named instance — a mismatch means the two processes would
    // run different circuits, so refuse before any protocol bytes flow.
    let key = ShapeKey::of(&inst.query(), &inst.sizes(), Role::Alice, inst.ell as usize);
    if hello.ell != inst.ell || hello.shape_key != key.0 {
        let detail = format!(
            "declared shape (ell {}, key {:#x}) disagrees with instance shape (ell {}, key {:#x})",
            hello.ell, hello.shape_key, inst.ell, key.0
        );
        let _ = write_server_hello(stream, CODE_REJECT_SHAPE, &detail);
        return Err(detail);
    }
    if let Err(e) = write_server_hello(stream, CODE_ACCEPT, "") {
        return Err(e.to_string());
    }
    Ok((req, inst, key))
}

/// Run one accepted connection to completion and produce its report.
fn run_session(
    id: u64,
    peer: SocketAddr,
    mut stream: TcpStream,
    config: ServerConfig,
) -> SessionReport {
    let mut report = SessionReport {
        id,
        peer: Some(peer),
        outcome: SessionOutcome::HandshakeFailed("unset".into()),
        shape_key: None,
        pool_hits: 0,
        pool_misses: 0,
        pool_left: 0,
        stats: None,
    };
    // The whole hello must land within the hello deadline.
    if stream.set_read_timeout(Some(config.hello_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.hello_timeout))
            .is_err()
    {
        report.outcome = SessionOutcome::HandshakeFailed("socket configuration failed".into());
        return report;
    }
    let (req, inst, key) = match negotiate(&mut stream) {
        Ok(x) => x,
        Err(detail) => {
            report.outcome = SessionOutcome::HandshakeFailed(detail);
            return report;
        }
    };
    report.shape_key = Some(key);
    let mut ch = match tcp_endpoint(Role::Bob, stream, Some(config.io_timeout)) {
        Ok(ch) => ch,
        Err(e) => {
            report.outcome = SessionOutcome::HandshakeFailed(format!("endpoint setup: {e}"));
            return report;
        }
    };
    // Bob's session seed mirrors the client's derivation from the
    // instance seed; per-run offsets keep repeated runs distinct while
    // staying reproducible.
    let (_sa, sb) = session_seeds(&inst);
    let query = inst.query();
    let sizes = inst.sizes();
    let rels = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let hasher = TweakHasher::default();
    let mut pool = PreprocPool::new();
    let ran = catch_protocol(|| {
        let mut out_size = 0;
        match req.mode {
            RunMode::Single => {
                for i in 0..u64::from(req.runs) {
                    let mut sess = Session::new(&mut ch, ring, hasher, sb.wrapping_add(i));
                    let res = secure_yannakakis(&mut sess, &query, &rels, Role::Alice);
                    out_size = res.out_size;
                }
            }
            RunMode::PhaseSplit => {
                for i in 0..u64::from(req.runs) {
                    let m = run_offline(
                        &mut ch,
                        &query,
                        &sizes,
                        Role::Alice,
                        ring,
                        hasher,
                        sb.wrapping_add(i),
                    );
                    let res = run_online(&mut ch, &query, &rels, Role::Alice, ring, hasher, m);
                    out_size = res.out_size;
                }
            }
            RunMode::Pooled => {
                for i in 0..u64::from(req.runs) {
                    pool.provision(
                        &mut ch,
                        &query,
                        &sizes,
                        Role::Alice,
                        ring,
                        hasher,
                        sb.wrapping_add(i),
                    );
                }
                for i in 0..u64::from(req.runs) {
                    let res = run_online_pooled(
                        &mut pool,
                        &mut ch,
                        &query,
                        &sizes,
                        &rels,
                        Role::Alice,
                        ring,
                        hasher,
                        sb.wrapping_add(i),
                    );
                    out_size = res.out_size;
                }
            }
        }
        out_size
    });
    let _ = ch.try_flush();
    report.stats = Some(ch.stats());
    report.pool_hits = pool.hits();
    report.pool_misses = pool.misses();
    report.pool_left = pool.available(key);
    report.outcome = match ran {
        Ok(out_size) => SessionOutcome::Completed {
            runs: req.runs,
            out_size,
        },
        Err(e) => SessionOutcome::ProtocolFailed(e.to_string()),
    };
    report
}
