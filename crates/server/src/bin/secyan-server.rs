//! `secyan-server` — serve secure Yannakakis sessions over TCP.
//!
//! ```text
//! secyan-server [--addr 127.0.0.1:7979] [--hello-timeout-ms 3000] [--io-timeout-ms 10000]
//! ```
//!
//! Accepts concurrent two-party sessions (the server plays Bob) and
//! prints one line per finished session. Stop with Ctrl-C.

use secyan_server::{serve, ServerConfig, SessionOutcome};
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: secyan-server [--addr HOST:PORT] [--hello-timeout-ms N] [--io-timeout-ms N]");
    std::process::exit(2)
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7979".parse().expect("static addr"),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => config.addr = value.parse().unwrap_or_else(|_| usage()),
            "--hello-timeout-ms" => {
                config.hello_timeout =
                    Duration::from_millis(value.parse().unwrap_or_else(|_| usage()))
            }
            "--io-timeout-ms" => {
                config.io_timeout = Duration::from_millis(value.parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("secyan-server: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("secyan-server listening on {}", handle.addr());
    let mut printed = 0;
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let reports = handle.reports();
        for report in &reports[printed..] {
            let peer = report
                .peer
                .map_or_else(|| "?".to_string(), |p| p.to_string());
            match &report.outcome {
                SessionOutcome::Completed { runs, out_size } => {
                    let stats = report.stats.unwrap_or_default();
                    println!(
                        "session {} from {peer}: completed {runs} run(s), out_size {out_size}, \
                         shape {:#x}, pool {}h/{}m, {} bytes / {} rounds",
                        report.id,
                        report.shape_key.map_or(0, |k| k.0),
                        report.pool_hits,
                        report.pool_misses,
                        stats.total_bytes(),
                        stats.rounds,
                    );
                }
                SessionOutcome::HandshakeFailed(detail) => {
                    println!(
                        "session {} from {peer}: handshake failed: {detail}",
                        report.id
                    );
                }
                SessionOutcome::ProtocolFailed(detail) => {
                    println!(
                        "session {} from {peer}: protocol failed: {detail}",
                        report.id
                    );
                }
            }
        }
        printed = reports.len();
    }
}
