//! Deterministic TPC-H-style data generation.
//!
//! Row counts per megabyte track dbgen: at 1 MB (scale factor 0.001) —
//! 150 customers, 1,500 orders, ~6,000 lineitems, 200 parts, 10 suppliers,
//! 800 partsupps, matching the paper's report of 7,655 total tuples for
//! Q3's three relations on the 1 MB dump. `nation`/`region` are public
//! knowledge (25/5 rows) per the paper's Q10/Q8/Q9 rewrites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dataset scale, expressed like the paper: megabytes of the classic dump.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    pub mb: f64,
}

impl Scale {
    /// The paper's five evaluation scales.
    pub const PAPER_SCALES: [f64; 5] = [1.0, 3.0, 10.0, 33.0, 100.0];

    /// A dataset equivalent to an `mb`-megabyte dbgen dump.
    pub fn mb(mb: f64) -> Scale {
        assert!(mb > 0.0);
        Scale { mb }
    }

    /// A tiny scale for unit tests (well under 1 MB).
    pub fn tiny() -> Scale {
        Scale { mb: 0.02 }
    }

    fn count(&self, per_mb: f64) -> usize {
        ((per_mb * self.mb).round() as usize).max(1)
    }

    pub fn customers(&self) -> usize {
        self.count(150.0)
    }
    pub fn orders(&self) -> usize {
        self.count(1500.0)
    }
    pub fn parts(&self) -> usize {
        self.count(200.0)
    }
    pub fn suppliers(&self) -> usize {
        // Minimum 4 so every part can have four distinct suppliers.
        self.count(10.0).max(4)
    }
    pub fn partsupps(&self) -> usize {
        self.parts() * 4
    }
}

/// Number of nations (public relation).
pub const NATIONS: u64 = 25;
/// Market segments; `AUTOMOBILE` is segment 0 (Q3's filter).
pub const SEGMENTS: u64 = 5;
/// Part types; Q8's `SMALL PLATED COPPER` is type 37 of 150.
pub const PART_TYPES: u64 = 150;
/// Q8's target nation (`BRAZIL` in the original query: nationkey 8).
pub const Q8_NATION: u64 = 8;
/// Q8's customer-region nations ({8, 9, 12, 18, 21} = AMERICA).
pub const Q8_REGION_NATIONS: [u64; 5] = [8, 9, 12, 18, 21];

/// Approximate calendar: days since 1992-01-01 with 30-day months. Only
/// used consistently on both sides of every comparison, so the
/// approximation is harmless.
pub fn day(year: u64, month: u64, d: u64) -> u64 {
    (year - 1992) * 365 + (month - 1) * 30 + (d - 1)
}

/// Year of a day number.
pub fn year_of(day: u64) -> u64 {
    1992 + day / 365
}

/// A generated column-named table of `u64` values.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: &'static str,
    pub columns: Vec<&'static str>,
    pub rows: Vec<Vec<u64>>,
}

impl Table {
    /// Column index by name.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| *c == name)
            .unwrap_or_else(|| panic!("no column {name} in {}", self.name))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The generated database (the six private tables; nation/region are
/// treated as public constants per the paper's rewrites).
#[derive(Debug, Clone)]
pub struct Database {
    pub scale: Scale,
    pub customer: Table,
    pub orders: Table,
    pub lineitem: Table,
    pub part: Table,
    pub supplier: Table,
    pub partsupp: Table,
}

impl Database {
    /// Generate deterministically from a seed.
    pub fn generate(scale: Scale, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_cust = scale.customers();
        let n_ord = scale.orders();
        let n_part = scale.parts();
        let n_supp = scale.suppliers();

        let customer = Table {
            name: "customer",
            columns: vec!["custkey", "c_nationkey", "c_mktsegment"],
            rows: (1..=n_cust as u64)
                .map(|k| vec![k, rng.gen_range(0..NATIONS), rng.gen_range(0..SEGMENTS)])
                .collect(),
        };

        // Orders: dates span 1992-01-01 .. 1998-08-02 like dbgen.
        let max_day = day(1998, 8, 2);
        let orders = Table {
            name: "orders",
            columns: vec![
                "orderkey",
                "custkey",
                "o_orderdate",
                "o_shippriority",
                "o_totalprice",
            ],
            rows: (1..=n_ord as u64)
                .map(|k| {
                    vec![
                        k,
                        rng.gen_range(1..=n_cust as u64),
                        rng.gen_range(0..=max_day),
                        0,
                        rng.gen_range(1_000..500_000),
                    ]
                })
                .collect(),
        };

        // Lineitems: 1..=7 per order (mean 4, like dbgen).
        let mut li_rows = Vec::new();
        for o in &orders.rows {
            let (okey, odate) = (o[0], o[2]);
            for _ in 0..rng.gen_range(1..=7) {
                let partkey = rng.gen_range(1..=n_part as u64);
                let suppkey = rng.gen_range(1..=n_supp as u64);
                let price = rng.gen_range(100..10_000u64);
                let discount = rng.gen_range(0..=10u64); // percent
                let quantity = rng.gen_range(1..=50u64);
                let shipdate = odate + rng.gen_range(1..=121);
                let returnflag = rng.gen_range(0..4u64); // 3 == 'R' (25%)
                li_rows.push(vec![
                    okey, partkey, suppkey, price, discount, quantity, shipdate, returnflag,
                ]);
            }
        }
        let lineitem = Table {
            name: "lineitem",
            columns: vec![
                "orderkey",
                "partkey",
                "suppkey",
                "l_extendedprice",
                "l_discount",
                "l_quantity",
                "l_shipdate",
                "l_returnflag",
            ],
            rows: li_rows,
        };

        let part = Table {
            name: "part",
            columns: vec!["partkey", "p_type", "p_green"],
            rows: (1..=n_part as u64)
                .map(|k| {
                    vec![
                        k,
                        rng.gen_range(0..PART_TYPES),
                        // ~5.4% of parts have 'green' in p_name, like the
                        // 5-of-92-colors name generator.
                        (rng.gen_range(0..18u64) == 0) as u64,
                    ]
                })
                .collect(),
        };

        let supplier = Table {
            name: "supplier",
            columns: vec!["suppkey", "s_nationkey"],
            rows: (1..=n_supp as u64)
                .map(|k| vec![k, rng.gen_range(0..NATIONS)])
                .collect(),
        };

        // Four *distinct* suppliers per part: stride ⌊S/4⌋ ≥ 1 keeps the
        // four offsets distinct modulo S for every S ≥ 4.
        let stride = ((n_supp as u64) / 4).max(1);
        let mut ps_rows = Vec::new();
        for p in 1..=n_part as u64 {
            for i in 0..4u64 {
                let s = (p - 1 + i * stride) % n_supp as u64 + 1;
                ps_rows.push(vec![p, s, rng.gen_range(1..1_000u64)]);
            }
        }
        let partsupp = Table {
            name: "partsupp",
            columns: vec!["partkey", "suppkey", "ps_supplycost"],
            rows: ps_rows,
        };

        Database {
            scale,
            customer,
            orders,
            lineitem,
            part,
            supplier,
            partsupp,
        }
    }

    /// Total tuples across the private tables.
    pub fn total_tuples(&self) -> usize {
        self.customer.len()
            + self.orders.len()
            + self.lineitem.len()
            + self.part.len()
            + self.supplier.len()
            + self.partsupp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mb_matches_paper_q3_tuple_count() {
        let db = Database::generate(Scale::mb(1.0), 7);
        let q3_tuples = db.customer.len() + db.orders.len() + db.lineitem.len();
        // The paper reports 7,655 tuples for Q3's three relations at 1 MB;
        // our generator lands within a few percent (lineitem count is
        // random 1..=7 per order).
        assert!(
            (7_000..8_400).contains(&q3_tuples),
            "got {q3_tuples} tuples"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Database::generate(Scale::tiny(), 42);
        let b = Database::generate(Scale::tiny(), 42);
        assert_eq!(a.lineitem.rows, b.lineitem.rows);
        let c = Database::generate(Scale::tiny(), 43);
        assert_ne!(a.lineitem.rows, c.lineitem.rows);
    }

    #[test]
    fn referential_integrity() {
        let db = Database::generate(Scale::tiny(), 1);
        let n_cust = db.customer.len() as u64;
        let n_ord = db.orders.len() as u64;
        for o in &db.orders.rows {
            assert!((1..=n_cust).contains(&o[1]));
        }
        for l in &db.lineitem.rows {
            assert!((1..=n_ord).contains(&l[0]));
            assert!(l[6] > 0, "shipdate after orderdate");
        }
        for ps in &db.partsupp.rows {
            assert!((1..=db.part.len() as u64).contains(&ps[0]));
            assert!((1..=db.supplier.len() as u64).contains(&ps[1]));
        }
    }

    #[test]
    fn partsupp_pairs_are_distinct() {
        for mb in [0.01, 0.1, 1.0] {
            let db = Database::generate(Scale::mb(mb), 3);
            let mut pairs: Vec<(u64, u64)> =
                db.partsupp.rows.iter().map(|r| (r[0], r[1])).collect();
            let before = pairs.len();
            pairs.sort();
            pairs.dedup();
            assert_eq!(pairs.len(), before, "duplicate (part, supp) at {mb} MB");
        }
    }

    #[test]
    fn scales_grow_linearly() {
        let s1 = Scale::mb(1.0);
        let s10 = Scale::mb(10.0);
        assert_eq!(s10.customers(), 10 * s1.customers());
        assert_eq!(s10.orders(), 10 * s1.orders());
    }

    #[test]
    fn calendar_helpers() {
        assert_eq!(day(1992, 1, 1), 0);
        assert_eq!(year_of(day(1995, 3, 13)), 1995);
        assert_eq!(year_of(day(1992, 12, 30)), 1992);
    }
}
