//! TPC-H-style workload generation and the paper's five benchmark queries.
//!
//! The paper's evaluation (§8) runs TPC-H Q3, Q10, Q18, Q8 and Q9 on dumps
//! of 1 MB – 100 MB. We reproduce the *shape* of that workload with a
//! deterministic in-process generator: same schemas, same key structure
//! (dense primary keys, foreign keys uniform over their target, 1–7
//! lineitems per order), and per-scale row counts calibrated to dbgen's.
//! Because the protocol is oblivious, its cost depends only on these row
//! counts — the value distributions matter only for the plaintext answers,
//! which tests cross-check against the naive oracle.
//!
//! Strings are dictionary-encoded into `u64`; dates are day numbers;
//! monetary values are integer cents scaled down to keep 32-bit
//! annotations overflow-free at test scales (documented per query).

pub mod gen;
pub mod queries;

pub use gen::{Database, Scale};
pub use queries::{PaperQuery, QuerySpec};
