//! The paper's five TPC-H benchmark queries (§8.1) as secure query plans.
//!
//! Each query becomes one or more free-connex join-aggregate *subqueries*
//! plus a post-processing step, mirroring the paper's rewrites exactly:
//!
//! * **Q3** (Figure 2) — vanilla free-connex query; private selections are
//!   dummied out; the reduce phase collapses the tree to one node.
//! * **Q10** (Figure 3) — `nation` folded away as public knowledge;
//!   group-by customer.
//! * **Q18** (Figure 4) — the `having`-subquery is evaluated locally by
//!   the lineitem owner and padded to |lineitem| to hide its selectivity.
//! * **Q8** (Figure 5) — two sum aggregates composed into a ratio via a
//!   final garbled division circuit, aligned on the public year domain.
//! * **Q9** (Figure 6) — not free-connex: decomposed into 25 per-nation
//!   queries, each further split into two sums whose difference is taken
//!   on shares and only then revealed.
//!
//! Relations are partitioned between the parties in the worst possible way
//! (every join edge crosses the ownership boundary), as in the paper's
//! experiments.

use crate::gen::{day, year_of, Database, Table, NATIONS, Q8_NATION, Q8_REGION_NATIONS};
use secyan_core::ext::{align_shared_groups, reveal_ratios, reveal_shares};
use secyan_core::protocol::{secure_yannakakis, secure_yannakakis_shared};
use secyan_core::{SecureQuery, Session};
use secyan_relation::{yannakakis, JoinTree, NaturalRing, Relation};
use secyan_transport::Role;
use std::collections::HashMap;

/// The five queries from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperQuery {
    Q3,
    Q10,
    Q18,
    Q8,
    Q9,
}

impl PaperQuery {
    /// All queries, in figure order.
    pub fn all() -> [PaperQuery; 5] {
        [
            PaperQuery::Q3,
            PaperQuery::Q10,
            PaperQuery::Q18,
            PaperQuery::Q8,
            PaperQuery::Q9,
        ]
    }

    /// The paper figure this query's results reproduce.
    pub fn figure(&self) -> u32 {
        match self {
            PaperQuery::Q3 => 2,
            PaperQuery::Q10 => 3,
            PaperQuery::Q18 => 4,
            PaperQuery::Q8 => 5,
            PaperQuery::Q9 => 6,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperQuery::Q3 => "Q3",
            PaperQuery::Q10 => "Q10",
            PaperQuery::Q18 => "Q18",
            PaperQuery::Q8 => "Q8",
            PaperQuery::Q9 => "Q9",
        }
    }
}

/// One free-connex join-aggregate subquery with its data.
#[derive(Debug, Clone)]
pub struct SubQuery {
    pub schemas: Vec<Vec<String>>,
    pub owners: Vec<Role>,
    pub tree: JoinTree,
    pub output: Vec<String>,
    pub relations: Vec<Relation<NaturalRing>>,
}

impl SubQuery {
    /// The public plan.
    pub fn to_secure_query(&self) -> SecureQuery {
        SecureQuery::new(
            self.schemas.clone(),
            self.owners.clone(),
            self.tree.clone(),
            self.output.clone(),
        )
    }

    /// The relations this party supplies to the protocol.
    pub fn my_relations(&self, role: Role) -> Vec<Option<Relation<NaturalRing>>> {
        self.relations
            .iter()
            .zip(&self.owners)
            .map(|(r, &o)| (o == role).then(|| r.clone()))
            .collect()
    }

    /// Total input tuples IN.
    pub fn input_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }
}

/// Post-processing after the subqueries (paper §7 composition).
#[derive(Debug, Clone)]
pub enum Post {
    /// One subquery; its revealed rows are the answer.
    Reveal,
    /// Two subqueries (numerator, denominator): reveal scale·num/den per
    /// public-domain group.
    Ratio { scale: u64, domain: Vec<Vec<u64>> },
    /// Pairs of subqueries, one pair per label: reveal (sum1 − sum2) per
    /// public-domain group, labelled.
    GroupedDifference {
        domain: Vec<Vec<u64>>,
        labels: Vec<u64>,
    },
}

/// A fully instantiated paper query: subqueries + post-processing.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub query: PaperQuery,
    pub subqueries: Vec<SubQuery>,
    pub post: Post,
}

impl QuerySpec {
    /// Total input tuples across subqueries (the IN of the figures).
    pub fn input_tuples(&self) -> usize {
        self.subqueries.iter().map(|s| s.input_tuples()).sum()
    }

    /// Effective input bytes: involved columns plus annotation, 4 bytes
    /// each, like the paper's "effective input size" axis.
    pub fn effective_bytes(&self) -> u64 {
        self.subqueries
            .iter()
            .flat_map(|s| s.relations.iter())
            .map(|r| (r.schema.len() as u64 + 1) * r.len() as u64 * 4)
            .sum()
    }
}

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Project `table` onto named columns, annotating each row via `annot`.
fn annotated(
    ring: NaturalRing,
    table: &Table,
    cols: &[&str],
    annot: impl Fn(&[u64]) -> u64,
) -> Relation<NaturalRing> {
    let pos: Vec<usize> = cols.iter().map(|c| table.col(c)).collect();
    let mut rel = Relation::new(ring, strings(cols));
    for row in &table.rows {
        rel.push(pos.iter().map(|&p| row[p]).collect(), annot(row));
    }
    rel
}

impl PaperQuery {
    /// Instantiate against a database. `ring` is the annotation ring
    /// shared with the protocol session.
    pub fn build(&self, db: &Database, ring: NaturalRing) -> QuerySpec {
        match self {
            PaperQuery::Q3 => build_q3(db, ring),
            PaperQuery::Q10 => build_q10(db, ring),
            PaperQuery::Q18 => build_q18(db, ring),
            PaperQuery::Q8 => build_q8(db, ring),
            PaperQuery::Q9 => build_q9(db, ring),
        }
    }
}

/// Revenue annotation: extendedprice · (100 − discount%), integer cents
/// scale (the paper's ×100 fixed-point trick from Example 3.1).
fn revenue(row: &[u64], price_col: usize, disc_col: usize) -> u64 {
    row[price_col] * (100 - row[disc_col])
}

fn build_q3(db: &Database, ring: NaturalRing) -> QuerySpec {
    let cutoff = day(1995, 3, 13);
    let (pc, dc) = (
        db.lineitem.col("l_extendedprice"),
        db.lineitem.col("l_discount"),
    );
    let seg = db.customer.col("c_mktsegment");
    let od = db.orders.col("o_orderdate");
    let sd = db.lineitem.col("l_shipdate");
    // All selections private: non-matching rows become zero-annotated.
    let customer = annotated(ring, &db.customer, &["custkey"], |r| (r[seg] == 0) as u64);
    let orders = annotated(
        ring,
        &db.orders,
        &["custkey", "orderkey", "o_orderdate", "o_shippriority"],
        |r| (r[od] < cutoff) as u64,
    );
    let lineitem = annotated(ring, &db.lineitem, &["orderkey"], |r| {
        if r[sd] > cutoff {
            revenue(r, pc, dc)
        } else {
            0
        }
    });
    QuerySpec {
        query: PaperQuery::Q3,
        subqueries: vec![SubQuery {
            schemas: vec![
                strings(&["custkey"]),
                strings(&["custkey", "orderkey", "o_orderdate", "o_shippriority"]),
                strings(&["orderkey"]),
            ],
            owners: vec![Role::Alice, Role::Bob, Role::Alice],
            tree: JoinTree::new(vec![Some(1), None, Some(1)]),
            output: strings(&["orderkey", "o_orderdate", "o_shippriority"]),
            relations: vec![customer, orders, lineitem],
        }],
        post: Post::Reveal,
    }
}

fn build_q10(db: &Database, ring: NaturalRing) -> QuerySpec {
    let lo = day(1993, 8, 1);
    let hi = day(1993, 11, 1);
    let od = db.orders.col("o_orderdate");
    let rf = db.lineitem.col("l_returnflag");
    let (pc, dc) = (
        db.lineitem.col("l_extendedprice"),
        db.lineitem.col("l_discount"),
    );
    let customer = annotated(ring, &db.customer, &["custkey", "c_nationkey"], |_| 1);
    let orders = annotated(ring, &db.orders, &["custkey", "orderkey"], |r| {
        (r[od] >= lo && r[od] < hi) as u64
    });
    // l_returnflag == 'R' is flag value 3.
    let lineitem = annotated(ring, &db.lineitem, &["orderkey"], |r| {
        if r[rf] == 3 {
            revenue(r, pc, dc)
        } else {
            0
        }
    });
    QuerySpec {
        query: PaperQuery::Q10,
        subqueries: vec![SubQuery {
            schemas: vec![
                strings(&["custkey", "c_nationkey"]),
                strings(&["custkey", "orderkey"]),
                strings(&["orderkey"]),
            ],
            owners: vec![Role::Alice, Role::Bob, Role::Alice],
            tree: JoinTree::new(vec![None, Some(0), Some(1)]),
            output: strings(&["custkey", "c_nationkey"]),
            relations: vec![customer, orders, lineitem],
        }],
        post: Post::Reveal,
    }
}

/// Q18's `having sum(l_quantity) > threshold`. The classic query uses 300;
/// our quantity generator (uniform 1..=50, ≤7 items) makes 200 the value
/// with comparable selectivity, which only changes plaintext answers, not
/// protocol cost.
pub const Q18_THRESHOLD: u64 = 200;

fn build_q18(db: &Database, ring: NaturalRing) -> QuerySpec {
    let qt = db.lineitem.col("l_quantity");
    let customer = annotated(ring, &db.customer, &["custkey"], |_| 1);
    let orders = annotated(
        ring,
        &db.orders,
        &["custkey", "orderkey", "o_orderdate", "o_totalprice"],
        |_| 1,
    );
    let lineitem = annotated(ring, &db.lineitem, &["orderkey"], |r| r[qt]);
    // The lineitem owner evaluates the having-subquery locally, then pads
    // to |lineitem| so its result size reveals nothing (paper §8.1).
    let mut sums: HashMap<u64, u64> = HashMap::new();
    for row in &db.lineitem.rows {
        *sums.entry(row[0]).or_insert(0) += row[qt];
    }
    let mut subq = Relation::new(ring, strings(&["orderkey"]));
    for (&okey, &total) in &sums {
        subq.push(vec![okey], (total > Q18_THRESHOLD) as u64);
    }
    let mut pad = 0u64;
    while subq.len() < db.lineitem.len() {
        // Reserved never-joining key region for padding.
        subq.push(vec![(1 << 40) + pad], 0);
        pad += 1;
    }
    QuerySpec {
        query: PaperQuery::Q18,
        subqueries: vec![SubQuery {
            schemas: vec![
                strings(&["custkey"]),
                strings(&["custkey", "orderkey", "o_orderdate", "o_totalprice"]),
                strings(&["orderkey"]),
                strings(&["orderkey"]),
            ],
            owners: vec![Role::Bob, Role::Bob, Role::Alice, Role::Alice],
            tree: JoinTree::new(vec![Some(1), None, Some(1), Some(1)]),
            output: strings(&["custkey", "orderkey", "o_orderdate", "o_totalprice"]),
            relations: vec![customer, orders, lineitem, subq],
        }],
        post: Post::Reveal,
    }
}

/// Q8's public year domain (the orderdate selection restricts to these).
pub fn q8_years() -> Vec<Vec<u64>> {
    vec![vec![1995], vec![1996]]
}

fn build_q8(db: &Database, ring: NaturalRing) -> QuerySpec {
    let lo = day(1995, 1, 1);
    let hi = day(1996, 12, 31);
    let ptype = db.part.col("p_type");
    let snat = db.supplier.col("s_nationkey");
    let od = db.orders.col("o_orderdate");
    let cnat = db.customer.col("c_nationkey");
    let (pc, dc) = (
        db.lineitem.col("l_extendedprice"),
        db.lineitem.col("l_discount"),
    );
    let mk_sub = |target_nation_only: bool| -> SubQuery {
        let part = annotated(ring, &db.part, &["partkey"], |r| (r[ptype] == 37) as u64);
        let supplier = annotated(ring, &db.supplier, &["suppkey"], |r| {
            if target_nation_only {
                (r[snat] == Q8_NATION) as u64
            } else {
                1
            }
        });
        let lineitem = annotated(
            ring,
            &db.lineitem,
            &["orderkey", "partkey", "suppkey"],
            |r| revenue(r, pc, dc),
        );
        // o_year as a virtual column, per the paper's rewrite.
        let mut orders = Relation::new(ring, strings(&["orderkey", "custkey", "o_year"]));
        for r in &db.orders.rows {
            let sel = (r[od] >= lo && r[od] <= hi) as u64;
            orders.push(vec![r[0], r[1], year_of(r[od])], sel);
        }
        let customer = annotated(ring, &db.customer, &["custkey"], |r| {
            Q8_REGION_NATIONS.contains(&r[cnat]) as u64
        });
        SubQuery {
            schemas: vec![
                strings(&["partkey"]),
                strings(&["suppkey"]),
                strings(&["orderkey", "partkey", "suppkey"]),
                strings(&["orderkey", "custkey", "o_year"]),
                strings(&["custkey"]),
            ],
            owners: vec![Role::Alice, Role::Bob, Role::Alice, Role::Bob, Role::Alice],
            tree: JoinTree::new(vec![Some(2), Some(2), Some(3), None, Some(3)]),
            output: strings(&["o_year"]),
            relations: vec![part, supplier, lineitem, orders, customer],
        }
    };
    QuerySpec {
        query: PaperQuery::Q8,
        subqueries: vec![mk_sub(true), mk_sub(false)],
        post: Post::Ratio {
            scale: 1000,
            domain: q8_years(),
        },
    }
}

/// Q9's public year domain.
pub fn q9_years() -> Vec<Vec<u64>> {
    (1992..=1998).map(|y| vec![y]).collect()
}

fn build_q9(db: &Database, ring: NaturalRing) -> QuerySpec {
    let green = db.part.col("p_green");
    let snat = db.supplier.col("s_nationkey");
    let od = db.orders.col("o_orderdate");
    let (pc, dc) = (
        db.lineitem.col("l_extendedprice"),
        db.lineitem.col("l_discount"),
    );
    let qt = db.lineitem.col("l_quantity");
    let cost = db.partsupp.col("ps_supplycost");
    let mk_sub = |nation: u64, first: bool| -> SubQuery {
        let part = annotated(ring, &db.part, &["partkey"], |r| r[green]);
        let supplier = annotated(ring, &db.supplier, &["suppkey"], |r| {
            (r[snat] == nation) as u64
        });
        let lineitem = annotated(
            ring,
            &db.lineitem,
            &["orderkey", "partkey", "suppkey"],
            |r| if first { revenue(r, pc, dc) } else { r[qt] },
        );
        let partsupp = annotated(ring, &db.partsupp, &["partkey", "suppkey"], |r| {
            if first {
                1
            } else {
                // ×100 keeps both sums on the paper's cents fixed-point.
                r[cost] * 100
            }
        });
        let mut orders = Relation::new(ring, strings(&["orderkey", "o_year"]));
        for r in &db.orders.rows {
            orders.push(vec![r[0], year_of(r[od])], 1);
        }
        SubQuery {
            schemas: vec![
                strings(&["partkey"]),
                strings(&["partkey", "suppkey"]),
                strings(&["orderkey", "partkey", "suppkey"]),
                strings(&["suppkey"]),
                strings(&["orderkey", "o_year"]),
            ],
            owners: vec![Role::Alice, Role::Bob, Role::Alice, Role::Bob, Role::Bob],
            tree: JoinTree::new(vec![Some(1), Some(2), Some(4), Some(2), None]),
            output: strings(&["o_year"]),
            relations: vec![part, partsupp, lineitem, supplier, orders],
        }
    };
    let mut subqueries = Vec::with_capacity(2 * NATIONS as usize);
    for n in 0..NATIONS {
        subqueries.push(mk_sub(n, true));
        subqueries.push(mk_sub(n, false));
    }
    QuerySpec {
        query: PaperQuery::Q9,
        subqueries,
        post: Post::GroupedDifference {
            domain: q9_years(),
            labels: (0..NATIONS).collect(),
        },
    }
}

/// One output row of a paper query: group values (labels first for Q9)
/// and the aggregate, signed (Q9's amount can be negative).
pub type ResultRow = (Vec<u64>, i64);

/// Run a paper query through the secure protocol. Alice receives; the Bob
/// side returns an empty vector. Both parties call this symmetrically.
pub fn run_secure_instance(sess: &mut Session, spec: &QuerySpec) -> Vec<ResultRow> {
    let me = sess.role();
    match &spec.post {
        Post::Reveal => {
            let sq = &spec.subqueries[0];
            let res = secure_yannakakis(
                sess,
                &sq.to_secure_query(),
                &sq.my_relations(me),
                Role::Alice,
            );
            res.tuples
                .into_iter()
                .zip(res.values)
                .map(|(t, v)| (t, sess.ring.to_signed(v)))
                .collect()
        }
        Post::Ratio { scale, domain } => {
            let mut aligned = Vec::new();
            for sq in &spec.subqueries {
                let res = secure_yannakakis_shared(
                    sess,
                    &sq.to_secure_query(),
                    &sq.my_relations(me),
                    Role::Alice,
                );
                aligned.push(align_shared_groups(
                    sess,
                    &res.tuples,
                    &res.annot_shares,
                    domain,
                    Role::Alice,
                ));
            }
            let q = reveal_ratios(sess, &aligned[0], &aligned[1], *scale, Role::Alice);
            let sentinel = sess.ring.reduce(u64::MAX); // division-by-zero marker
            domain
                .iter()
                .zip(q)
                .filter(|(_, v)| *v != sentinel)
                .map(|(g, v)| (g.clone(), v as i64))
                .collect()
        }
        Post::GroupedDifference { domain, labels } => {
            let mut rows = Vec::new();
            for (pair, &label) in spec.subqueries.chunks_exact(2).zip(labels) {
                let mut aligned = Vec::new();
                for sq in pair {
                    let res = secure_yannakakis_shared(
                        sess,
                        &sq.to_secure_query(),
                        &sq.my_relations(me),
                        Role::Alice,
                    );
                    aligned.push(align_shared_groups(
                        sess,
                        &res.tuples,
                        &res.annot_shares,
                        domain,
                        Role::Alice,
                    ));
                }
                // Linear post-processing on shares: local subtraction.
                let diff: Vec<u64> = aligned[0]
                    .iter()
                    .zip(&aligned[1])
                    .map(|(&a, &b)| sess.ring.sub(a, b))
                    .collect();
                let vals = reveal_shares(sess, &diff, Role::Alice);
                if me == Role::Alice {
                    for (g, v) in domain.iter().zip(vals) {
                        if v != 0 {
                            let mut key = vec![label];
                            key.extend_from_slice(g);
                            rows.push((key, sess.ring.to_signed(v)));
                        }
                    }
                }
            }
            rows
        }
    }
}

/// Plaintext reference evaluation of a paper query (the figures' MySQL
/// baseline and the correctness oracle for the secure runner).
pub fn run_plaintext_instance(spec: &QuerySpec, ring: NaturalRing) -> Vec<ResultRow> {
    let run_sub = |sq: &SubQuery| -> HashMap<Vec<u64>, u64> {
        let out = yannakakis(&sq.relations, &sq.tree, &sq.output);
        out.tuples
            .iter()
            .cloned()
            .zip(out.annots.iter().copied())
            .collect()
    };
    match &spec.post {
        Post::Reveal => {
            let m = run_sub(&spec.subqueries[0]);
            m.into_iter()
                .map(|(t, v)| (t, ring.0.to_signed(v)))
                .collect()
        }
        Post::Ratio { scale, domain } => {
            let num = run_sub(&spec.subqueries[0]);
            let den = run_sub(&spec.subqueries[1]);
            domain
                .iter()
                .filter_map(|g| {
                    let d = den.get(g).copied().unwrap_or(0);
                    if d == 0 {
                        return None;
                    }
                    let n = num.get(g).copied().unwrap_or(0);
                    Some((g.clone(), (ring.0.mul(n, *scale) / d) as i64))
                })
                .collect()
        }
        Post::GroupedDifference { domain, labels } => {
            let mut rows = Vec::new();
            for (pair, &label) in spec.subqueries.chunks_exact(2).zip(labels) {
                let s1 = run_sub(&pair[0]);
                let s2 = run_sub(&pair[1]);
                for g in domain {
                    let a = s1.get(g).copied().unwrap_or(0);
                    let b = s2.get(g).copied().unwrap_or(0);
                    let d = ring.0.sub(a, b);
                    if d != 0 {
                        let mut key = vec![label];
                        key.extend_from_slice(g);
                        rows.push((key, ring.0.to_signed(d)));
                    }
                }
            }
            rows
        }
    }
}

/// Canonicalize result rows for comparisons.
pub fn canonical(mut rows: Vec<ResultRow>) -> Vec<ResultRow> {
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Scale;
    use secyan_crypto::{RingCtx, TweakHasher};
    use secyan_transport::run_protocol;

    fn ring() -> NaturalRing {
        NaturalRing::paper_default()
    }

    /// Secure run vs plaintext oracle on a small database.
    fn check_query(q: PaperQuery, mb: f64, seed: u64) {
        let db = Database::generate(Scale::mb(mb), seed);
        let spec = q.build(&db, ring());
        let want = canonical(run_plaintext_instance(&spec, ring()));
        let spec2 = spec.clone();
        let (got, _, _) = run_protocol(
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Fast, 201);
                run_secure_instance(&mut sess, &spec)
            },
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Fast, 202);
                run_secure_instance(&mut sess, &spec2)
            },
        );
        assert_eq!(canonical(got), want, "{} at {mb} MB", q.name());
    }

    #[test]
    fn q3_secure_matches_plaintext() {
        check_query(PaperQuery::Q3, 0.02, 11);
    }

    #[test]
    fn q10_secure_matches_plaintext() {
        check_query(PaperQuery::Q10, 0.02, 12);
    }

    #[test]
    fn q18_secure_matches_plaintext() {
        check_query(PaperQuery::Q18, 0.02, 13);
    }

    #[test]
    fn q8_secure_matches_plaintext() {
        check_query(PaperQuery::Q8, 0.02, 14);
    }

    #[test]
    fn all_plans_validate_as_free_connex() {
        let db = Database::generate(Scale::tiny(), 5);
        for q in PaperQuery::all() {
            let spec = q.build(&db, ring());
            for sq in &spec.subqueries {
                // SecureQuery::new asserts free-connexity.
                let _ = sq.to_secure_query();
            }
        }
    }

    #[test]
    fn plaintext_q3_has_results() {
        // Sanity: the workload actually produces output rows at 1 MB.
        let db = Database::generate(Scale::mb(1.0), 6);
        let spec = PaperQuery::Q3.build(&db, ring());
        let rows = run_plaintext_instance(&spec, ring());
        assert!(!rows.is_empty());
        // Revenue values are positive sums.
        assert!(rows.iter().all(|(_, v)| *v > 0));
    }

    #[test]
    fn plaintext_q9_produces_negative_and_positive_amounts() {
        let db = Database::generate(Scale::mb(0.3), 8);
        let spec = PaperQuery::Q9.build(&db, ring());
        let rows = run_plaintext_instance(&spec, ring());
        assert!(!rows.is_empty());
        // amount = revenue − cost·qty·100 swings both ways on this data.
        assert!(rows.iter().any(|(_, v)| *v != 0));
    }

    #[test]
    fn effective_bytes_scale_with_input() {
        let small = PaperQuery::Q3.build(&Database::generate(Scale::mb(0.1), 9), ring());
        let large = PaperQuery::Q3.build(&Database::generate(Scale::mb(1.0), 9), ring());
        assert!(large.effective_bytes() > 5 * small.effective_bytes());
        assert!(large.input_tuples() > 5 * small.input_tuples());
    }
}
