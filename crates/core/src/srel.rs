//! Secure (shared-annotation) relations.
//!
//! A [`SecureRelation`] is the protocol-time form of an annotated relation
//! (paper §6 requirements (1)–(3)): the tuples are held in the clear by
//! exactly one party (the *owner*), the size and schema are public, and
//! the annotations exist only as additive shares split between the two
//! parties, aligned by tuple index. Dummy tuples — padding whose
//! annotation shares reconstruct to 0 — are tracked on the owner side
//! only; the other party cannot tell them apart from real rows.

use crate::session::Session;
use secyan_crypto::sha256::{digest_to_u64, Sha256};
use secyan_relation::{NaturalRing, Relation};
use secyan_transport::{ReadExt, Role, WriteExt};

/// One party's view of a secure relation.
#[derive(Debug, Clone)]
pub struct SecureRelation {
    /// Public: attribute names.
    pub schema: Vec<String>,
    /// Public: which party holds the tuples.
    pub owner: Role,
    /// Owner side: the tuple values (row-major, one `u64` per attribute).
    /// `None` on the non-owner side; the public length is `size`.
    pub tuples: Option<Vec<Vec<u64>>>,
    /// Owner side: dummy flags (same length as `tuples`).
    pub dummy: Option<Vec<bool>>,
    /// Public: number of rows.
    pub size: usize,
    /// My additive shares of the annotations (`size` entries; meaningful
    /// only once `is_plain` is false).
    pub annot_shares: Vec<u64>,
    /// Public plan-level flag (§6.5 optimization): true while the
    /// annotations are still fully known to the owner, letting
    /// aggregations run locally and PSI use plain payloads. Flips to
    /// false after [`SecureRelation::ensure_shared`].
    pub is_plain: bool,
    /// Owner side, valid while `is_plain`: the cleartext annotations.
    pub plain_annots: Option<Vec<u64>>,
}

/// One batched-load entry: public owner and schema, plus the relation
/// itself at the owner's position (`None` on the other side).
pub type RelationSpec<'a> = (Role, Vec<String>, Option<&'a Relation<NaturalRing>>);

impl SecureRelation {
    /// Load an owner-local annotated relation into the protocol. Only the
    /// public size travels; the annotations stay owner-known (`is_plain`)
    /// until an operator needs them shared (§6.5 optimization). Both
    /// parties call this with the same public `owner`; the owner passes
    /// `Some(relation)`.
    pub fn load(
        sess: &mut Session,
        owner: Role,
        schema: Vec<String>,
        rel: Option<&Relation<NaturalRing>>,
    ) -> SecureRelation {
        if sess.role() == owner {
            let rel = rel.expect("owner must supply the relation");
            sess.ch.send_u64(rel.len() as u64);
            Self::from_owned(sess, owner, schema, rel)
        } else {
            let size = crate::session::recv_declared_size(sess.ch, "relation");
            Self::from_declared(owner, schema, size)
        }
    }

    /// Load several relations in one declaration round: every size this
    /// side owns is staged before any peer declaration is received, so all
    /// size messages of one direction coalesce into a single super-frame
    /// instead of ping-ponging once per relation. Both parties call this
    /// with the same public `(owner, schema)` sequence; owners pass
    /// `Some(relation)` at their positions.
    pub fn load_all(sess: &mut Session, specs: Vec<RelationSpec<'_>>) -> Vec<SecureRelation> {
        // Both parties arrive here with dependency-free declarations — a
        // simultaneous round. If both staged eagerly, the two opening
        // sends would race and the round meters would depend on thread
        // scheduling. Deterministic rule: only the plan-first relation's
        // owner declares eagerly; the peer defers each declaration to its
        // slot in pass 2, by which point it has already blocked on the
        // eager side's super-frame (its first slot is a receive). The
        // deferred declarations still coalesce — they stage ahead of
        // whatever this side sends next in the same direction.
        let i_go_first = specs
            .first()
            .is_none_or(|(owner, ..)| sess.role() == *owner);
        if i_go_first {
            // Pass 1: stage every owned size, in plan order.
            for (owner, _, rel) in &specs {
                if sess.role() == *owner {
                    let rel = rel.expect("owner must supply the relation");
                    sess.ch.send_u64(rel.len() as u64);
                }
            }
        }
        // Pass 2: build; the peer's declarations arrive in plan order.
        specs
            .into_iter()
            .map(|(owner, schema, rel)| {
                if sess.role() == owner {
                    let rel = rel.expect("owner must supply the relation");
                    if !i_go_first {
                        sess.ch.send_u64(rel.len() as u64);
                    }
                    Self::from_owned(sess, owner, schema, rel)
                } else {
                    let size = crate::session::recv_declared_size(sess.ch, "relation");
                    Self::from_declared(owner, schema, size)
                }
            })
            .collect()
    }

    /// Owner-side constructor (size already declared on the wire).
    fn from_owned(
        sess: &mut Session,
        owner: Role,
        schema: Vec<String>,
        rel: &Relation<NaturalRing>,
    ) -> SecureRelation {
        assert_eq!(rel.schema, schema);
        let size = rel.len();
        let plain: Vec<u64> = rel.annots.iter().map(|&v| sess.ring.reduce(v)).collect();
        SecureRelation {
            schema,
            owner,
            tuples: Some(rel.tuples.clone()),
            dummy: Some(vec![false; size]),
            size,
            annot_shares: vec![0; size],
            is_plain: true,
            plain_annots: Some(plain),
        }
    }

    /// Non-owner-side constructor from the declared public size.
    fn from_declared(owner: Role, schema: Vec<String>, size: usize) -> SecureRelation {
        SecureRelation {
            schema,
            owner,
            tuples: None,
            dummy: None,
            size,
            annot_shares: vec![0; size],
            is_plain: true,
            plain_annots: None,
        }
    }

    /// Convert owner-known annotations into additive shares (no-op when
    /// already shared). The transition is part of the public plan, so both
    /// parties always agree on whether this communicates.
    pub fn ensure_shared(&mut self, sess: &mut Session) {
        if !self.is_plain {
            return;
        }
        if sess.role() == self.owner {
            let plain = self.plain_annots.take().expect("owner holds plain annots");
            let mut mine = Vec::with_capacity(self.size);
            let mut theirs = Vec::with_capacity(self.size);
            for &v in &plain {
                let (a, b) = sess.ring.share(v, &mut sess.rng);
                mine.push(a);
                theirs.push(b);
            }
            sess.ch.send_u64_slice(&theirs);
            self.annot_shares = mine;
        } else {
            self.annot_shares = sess.ch.recv_u64_vec(self.size);
        }
        self.is_plain = false;
    }

    /// Am I the owner?
    pub fn is_mine(&self, sess: &Session) -> bool {
        sess.role() == self.owner
    }

    /// The column positions of `attrs`.
    pub fn positions(&self, attrs: &[String]) -> Vec<usize> {
        attrs
            .iter()
            .map(|a| {
                self.schema
                    .iter()
                    .position(|s| s == a)
                    .unwrap_or_else(|| panic!("attribute {a} not in {:?}", self.schema))
            })
            .collect()
    }

    /// Owner-side: the 64-bit join key of row `i` on column positions
    /// `pos`. Dummy rows draw a fresh never-matching key from `nonce`.
    pub fn join_key(&self, i: usize, pos: &[usize], nonce: u64) -> u64 {
        let tuples = self.tuples.as_ref().expect("owner side");
        if self.dummy.as_ref().expect("owner side")[i] {
            return dummy_key(nonce, i as u64);
        }
        key64(pos.iter().map(|&p| tuples[i][p]))
    }
}

/// Collision-resistant 64-bit encoding of a composite join key.
pub fn key64(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Sha256::new();
    h.update(b"join-key");
    for v in values {
        h.update(&v.to_le_bytes());
    }
    digest_to_u64(&h.finalize())
}

/// A fresh key guaranteed (whp) not to collide with any real join key.
pub fn dummy_key(nonce: u64, index: u64) -> u64 {
    let mut h = Sha256::new();
    h.update(b"dummy-key");
    h.update(&nonce.to_le_bytes());
    h.update(&index.to_le_bytes());
    digest_to_u64(&h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_crypto::{RingCtx, TweakHasher};
    use secyan_transport::run_protocol;

    #[test]
    fn load_shares_annotations() {
        let ring = NaturalRing::paper_default();
        let rel = Relation::from_rows(
            ring,
            vec!["a".into()],
            vec![(vec![1], 10), (vec![2], 20), (vec![3], 30)],
        );
        let schema = vec!["a".to_string()];
        let (sa, sb) = (schema.clone(), schema.clone());
        let (a, b, _) = run_protocol(
            move |ch| {
                let mut s = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 1);
                let mut r = SecureRelation::load(&mut s, Role::Alice, sa, Some(&rel));
                let plain = r.plain_annots.clone();
                r.ensure_shared(&mut s);
                (r, plain)
            },
            move |ch| {
                let mut s = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 2);
                let mut r = SecureRelation::load(&mut s, Role::Alice, sb, None);
                r.ensure_shared(&mut s);
                r
            },
        );
        let (a, plain) = a;
        assert_eq!(a.size, 3);
        assert_eq!(b.size, 3);
        assert!(a.tuples.is_some());
        assert!(b.tuples.is_none());
        assert!(!a.is_plain && !b.is_plain);
        assert_eq!(plain.as_deref(), Some(&[10u64, 20, 30][..]));
        let ring = RingCtx::new(32);
        let got = ring.reconstruct_vec(&a.annot_shares, &b.annot_shares);
        assert_eq!(got, vec![10, 20, 30]);
        // Shares alone are blinded.
        assert_ne!(a.annot_shares, vec![10, 20, 30]);
    }

    #[test]
    fn join_keys_distinguish_dummies() {
        let k1 = key64([1, 2]);
        let k2 = key64([1, 3]);
        assert_ne!(k1, k2);
        assert_ne!(dummy_key(5, 0), dummy_key(5, 1));
        assert_ne!(dummy_key(5, 0), k1);
    }

    #[test]
    fn load_bool_annotations_reduce_into_ring() {
        // NaturalRing values beyond the ring mask get reduced at load.
        let ring = NaturalRing(RingCtx::new(8));
        let rel = Relation::from_rows(ring, vec!["a".into()], vec![(vec![1], 300)]);
        let schema = vec!["a".to_string()];
        let (sa, sb) = (schema.clone(), schema.clone());
        let (a, b, _) = run_protocol(
            move |ch| {
                let mut s = Session::new(ch, RingCtx::new(8), TweakHasher::Sha256, 3);
                let mut r = SecureRelation::load(&mut s, Role::Alice, sa, Some(&rel));
                r.ensure_shared(&mut s);
                r
            },
            move |ch| {
                let mut s = Session::new(ch, RingCtx::new(8), TweakHasher::Sha256, 4);
                let mut r = SecureRelation::load(&mut s, Role::Alice, sb, None);
                r.ensure_shared(&mut s);
                r
            },
        );
        let ring = RingCtx::new(8);
        assert_eq!(
            ring.reconstruct(a.annot_shares[0], b.annot_shares[0]),
            300 % 256
        );
    }
}
