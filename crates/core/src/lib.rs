//! **Secure Yannakakis** — the paper's primary contribution (§6).
//!
//! A two-party protocol evaluating any free-connex join-aggregate query
//! with Õ(IN + OUT) time and communication, revealing nothing beyond the
//! query results. Both parties run the *same* driver over the public query
//! plan; all data-dependent state lives in owner-held tuple lists and
//! secret-shared annotations.
//!
//! Layout (one module per §6 subsection):
//! * [`session`] — per-party protocol state: channel, ring, hasher, and
//!   both directions of OT/OPRF machinery, set up once and amortized.
//! * [`srel`] — [`srel::SecureRelation`]: tuples held by one party,
//!   annotations additively shared, dummies tracked owner-side.
//! * [`agg`] — oblivious projection-aggregation π⊕ and π¹ (§6.1): local
//!   sort + shared OEP + a merge-gate garbled circuit.
//! * [`semijoin`] — the reduce-join R_F ⋈⊗ R_{F'} (F′ ⊆ F) and the
//!   annotated semijoin R_F ⋉⊗ R_{F'} (§6.2), in cross-party (via PSI
//!   with secret-shared payloads) and same-party (via OEP only) variants.
//! * [`join`] — the oblivious join (§6.3): reveal nonzero support, local
//!   Yannakakis join, OEP + product circuit for the annotations.
//! * [`protocol`] — the three-phase driver (§6.4) with the §6.5
//!   optimizations (local aggregation and plain-payload PSI while
//!   annotations are still owner-known).
//! * [`ext`] — §7 extensions: selection handling, query composition
//!   (avg/ratio via a final division circuit), and differentially private
//!   noise on revealed aggregates.

pub mod agg;
pub mod ext;
pub mod join;
pub mod preproc;
pub mod protocol;
pub mod query;
pub mod semijoin;
pub mod session;
pub mod shape;
pub mod srel;

pub use preproc::{run_offline, run_online, run_online_pooled, PreprocPool, QueryMaterial};
pub use protocol::{secure_yannakakis, QueryResult};
pub use query::SecureQuery;
/// Intra-party data parallelism (deterministic worker pool); see the
/// `secyan-par` crate and DESIGN.md §9.
pub use secyan_par as par;
pub use session::Session;
pub use shape::{PlannedCircuit, QueryShape, ShapeKey};
pub use srel::SecureRelation;
