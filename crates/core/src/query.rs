//! Public query descriptions for the secure protocol.

use secyan_relation::{check_free_connex, Hypergraph, JoinTree};
use secyan_transport::Role;

/// The public part of a free-connex join-aggregate query: schemas, who
/// owns which relation, a rooted join tree witnessing free-connexity, and
/// the output (group-by) attributes. Both parties construct this
/// identically; only the tuple data is private.
#[derive(Debug, Clone)]
pub struct SecureQuery {
    pub schemas: Vec<Vec<String>>,
    pub owners: Vec<Role>,
    pub tree: JoinTree,
    pub output: Vec<String>,
}

impl SecureQuery {
    /// Build and validate a query: the tree must be a join tree of the
    /// schemas and its rooting must witness free-connexity.
    pub fn new(
        schemas: Vec<Vec<String>>,
        owners: Vec<Role>,
        tree: JoinTree,
        output: Vec<String>,
    ) -> SecureQuery {
        assert_eq!(schemas.len(), owners.len());
        assert_eq!(schemas.len(), tree.len());
        let h = Hypergraph::new(schemas.clone());
        assert!(
            check_free_connex(&h, &tree, &output),
            "query is not free-connex under the supplied join tree"
        );
        SecureQuery {
            schemas,
            owners,
            tree,
            output,
        }
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when the query has no relations (never valid once built).
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn example_1_1_validates() {
        let q = SecureQuery::new(
            vec![
                strings(&["person"]),
                strings(&["person", "disease"]),
                strings(&["disease", "class"]),
            ],
            vec![Role::Alice, Role::Bob, Role::Alice],
            JoinTree::chain(3),
            strings(&["class"]),
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not free-connex")]
    fn bad_rooting_rejected() {
        // Rooting the chain at R1 puts TOP(person) above TOP(class).
        let tree = JoinTree::new(vec![None, Some(0), Some(1)]);
        SecureQuery::new(
            vec![
                strings(&["person"]),
                strings(&["person", "disease"]),
                strings(&["disease", "class"]),
            ],
            vec![Role::Alice, Role::Bob, Role::Alice],
            tree,
            strings(&["class"]),
        );
    }
}
