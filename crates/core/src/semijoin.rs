//! Oblivious semijoin and reduce-join (paper §6.2).
//!
//! The reduce-join `R ← R_F ⋈⊗ R_G` (with `R_G`'s attributes contained in
//! `R_F`'s, as in the reduce phase) keeps exactly `R_F`'s tuples and
//! replaces each annotation by `v_F(t) ⊗ v_G(t')` for the unique joining
//! `t' ∈ R_G` — or by 0 if none exists. The annotated semijoin
//! `R_F ⋉⊗ R_G` is the same thing applied to the support projection
//! π¹(R_G).
//!
//! Two variants, exactly as in the paper:
//! * **cross-party** — `R_F` and `R_G` owned by different parties: PSI
//!   (with plain payloads while `R_G`'s annotations are still owner-known,
//!   §6.5; with secret-shared payloads otherwise, §5.5) aligns `R_G`'s
//!   annotations with `R_F`'s cuckoo bins, then an OEP and a product
//!   circuit finish the job;
//! * **same-party** — no PSI needed: the owner matches tuples locally and
//!   a single OEP + product circuit does the rest.

use crate::agg::{oblivious_project_agg, AggKind};
use crate::session::Session;
use crate::srel::{dummy_key, SecureRelation};
use secyan_circuit::{u64_to_bits, Circuit, Word};
use secyan_gc::{with_shared_outputs, SharedOutputSpec};
use secyan_oep::{
    shared_oep_other, shared_oep_perm_holder, shared_oep_perm_holder_begin,
    shared_oep_perm_holder_finish,
};
use secyan_psi::{
    psi_receiver_begin, psi_receiver_finish, psi_sender, shared_payload_psi_receiver_begin,
    shared_payload_psi_receiver_finish, shared_payload_psi_sender, CuckooTable,
};
use std::collections::HashMap;

/// The product circuit: out_i = v_i ⊗ z_i as fresh shares. When
/// `v_plain`, the garbler (the `R_F` owner) feeds v_i in the clear (§6.5);
/// otherwise v_i enters as shares from both parties. z_i always enters as
/// shares.
pub(crate) fn product_circuit(n: usize, ell: usize, v_plain: bool) -> (Circuit, SharedOutputSpec) {
    let spec = SharedOutputSpec::uniform(n, ell);
    let circuit = with_shared_outputs(&spec, |b| {
        let va: Vec<Word> = (0..n).map(|_| b.alice_word(ell)).collect();
        let za: Vec<Word> = (0..n).map(|_| b.alice_word(ell)).collect();
        let (vb, zb): (Vec<Word>, Vec<Word>) = if v_plain {
            (Vec::new(), (0..n).map(|_| b.bob_word(ell)).collect())
        } else {
            (
                (0..n).map(|_| b.bob_word(ell)).collect(),
                (0..n).map(|_| b.bob_word(ell)).collect(),
            )
        };
        (0..n)
            .map(|i| {
                let v = if v_plain {
                    va[i].clone()
                } else {
                    b.add_words(&va[i], &vb[i])
                };
                let z = b.add_words(&za[i], &zb[i]);
                b.mul_words(&v, &z)
            })
            .collect()
    });
    (circuit, spec)
}

/// Map each R_F row to the cuckoo bin holding its join key (bin 0 for
/// dummy rows — their annotation is 0, so the product kills the payload).
fn route_rows(cuckoo: &CuckooTable, key_of_row: &[Option<u64>]) -> Vec<usize> {
    let mut bin_of_key: HashMap<u64, usize> = HashMap::new();
    for (b, slot) in cuckoo.bins.iter().enumerate() {
        if let Some(e) = slot {
            bin_of_key.insert(*e, b);
        }
    }
    key_of_row
        .iter()
        .map(|k| match k {
            Some(k) => *bin_of_key.get(k).expect("key was cuckoo-placed"),
            None => 0,
        })
        .collect()
}

/// Run the product circuit. `my_v`: my v-inputs (plain values for the
/// owner when `v_plain`, else my shares; empty on the non-owner side when
/// `v_plain`). `my_z`: my z-shares. The `R_F` owner garbles.
fn run_product(
    sess: &mut Session,
    i_am_garbler: bool,
    n: usize,
    v_plain: bool,
    my_v: &[u64],
    my_z: &[u64],
) -> Vec<u64> {
    let ell = sess.ring.bits() as usize;
    let (circuit, spec) = product_circuit(n, ell, v_plain);
    let mut bits = Vec::with_capacity(n * 2 * ell);
    if i_am_garbler {
        for &v in my_v {
            bits.extend(u64_to_bits(v, ell));
        }
        for &z in my_z {
            bits.extend(u64_to_bits(z, ell));
        }
        sess.garble_shared(&circuit, &spec, &bits)
    } else {
        if !v_plain {
            for &v in my_v {
                bits.extend(u64_to_bits(v, ell));
            }
        }
        for &z in my_z {
            bits.extend(u64_to_bits(z, ell));
        }
        sess.evaluate_shared(&circuit, &spec, &bits)
    }
}

/// Oblivious reduce-join `R_F ⋈⊗ R_G` (see module docs). The real tuples
/// of `R_G` must be distinct on the shared attributes — guaranteed when
/// `R_G` is a projection-aggregation output, which is the only way the
/// Yannakakis driver calls this.
pub fn oblivious_reduce_join(
    sess: &mut Session,
    rf: &mut SecureRelation,
    rg: &mut SecureRelation,
) -> SecureRelation {
    let join_attrs: Vec<String> = rf
        .schema
        .iter()
        .filter(|a| rg.schema.contains(a))
        .cloned()
        .collect();
    let n = rf.size;
    let i_own_f = rf.is_mine(sess);
    let same_owner = rf.owner == rg.owner;
    // The product needs R_F's annotations; keep them plain only when the
    // owner garbles with cleartext v (always possible — the garbler is the
    // R_F owner).
    let v_plain = rf.is_plain;

    // Obtain my z-shares aligned with R_F's rows.
    let my_z: Vec<u64> = if same_owner {
        rg.ensure_shared(sess);
        // Owner matches locally; one extra dummy slot catches non-matches.
        let mut g_shares = rg.annot_shares.clone();
        g_shares.push(0);
        if i_own_f {
            let pos_g = rg.positions(&join_attrs);
            let g_dummy = rg.dummy.as_ref().expect("owner side");
            let mut index: HashMap<u64, usize> = HashMap::new();
            let nonce = sess.random_u64();
            for (j, dummy) in g_dummy.iter().enumerate().take(rg.size) {
                if !dummy {
                    let k = rg.join_key(j, &pos_g, nonce);
                    assert!(
                        index.insert(k, j).is_none(),
                        "reduce-join requires distinct join keys in R_G"
                    );
                }
            }
            let pos_f = rf.positions(&join_attrs);
            let f_dummy = rf.dummy.as_ref().expect("owner side");
            let xi: Vec<usize> = (0..n)
                .map(|i| {
                    if f_dummy[i] {
                        rg.size // dummy slot
                    } else {
                        let k = rf.join_key(i, &pos_f, nonce);
                        index.get(&k).copied().unwrap_or(rg.size)
                    }
                })
                .collect();
            shared_oep_perm_holder(sess.ch, &xi, &g_shares, sess.ring, &mut sess.ot_recv)
        } else {
            shared_oep_other(
                sess.ch,
                &g_shares,
                n,
                sess.ring,
                &mut sess.ot_send,
                &mut sess.rng,
            )
        }
    } else {
        // Cross-party: PSI aligns R_G's annotations to R_F's cuckoo bins.
        let nonce = sess.random_u64();
        if i_own_f {
            // Build X: distinct join keys of real R_F rows, padded to n.
            let pos_f = rf.positions(&join_attrs);
            let f_dummy = rf.dummy.as_ref().expect("owner side");
            let mut seen: HashMap<u64, ()> = HashMap::new();
            let mut x: Vec<u64> = Vec::with_capacity(n);
            let mut key_of_row: Vec<Option<u64>> = vec![None; n];
            for i in 0..n {
                if f_dummy[i] {
                    continue;
                }
                let k = rf.join_key(i, &pos_f, nonce);
                key_of_row[i] = Some(k);
                if seen.insert(k, ()).is_none() {
                    x.push(k);
                }
            }
            let mut pad = 0u64;
            while x.len() < n {
                x.push(dummy_key(nonce ^ 0x5eed, pad));
                pad += 1;
            }
            // Begin the PSI: once the cuckoo table is fixed (before the
            // PSI completes), ξ is derivable, so the ξ-OEP's OT
            // corrections ride the same outbound super-frame as the PSI's.
            // The sender consumes them in this order: PSI first, outer
            // OEP last — matching the staging order here.
            if rg.is_plain {
                let psi = psi_receiver_begin(
                    sess.ch,
                    &x,
                    rg.size,
                    sess.ring,
                    &mut sess.kkrt_recv,
                    &mut sess.ot_recv,
                    &mut sess.gc_eval,
                );
                let bins = psi.cuckoo().bins.len();
                let xi = route_rows(psi.cuckoo(), &key_of_row);
                let oep = shared_oep_perm_holder_begin(sess.ch, &xi, bins, &mut sess.ot_recv);
                let psi = psi_receiver_finish(sess.ch, psi, &mut sess.ot_recv, sess.hasher);
                shared_oep_perm_holder_finish(
                    sess.ch,
                    oep,
                    &psi.payload_shares,
                    sess.ring,
                    &mut sess.ot_recv,
                )
            } else {
                let psi = shared_payload_psi_receiver_begin(
                    sess.ch,
                    &x,
                    &rg.annot_shares,
                    sess.ring,
                    &mut sess.kkrt_recv,
                    &mut sess.ot_recv,
                    &mut sess.ot_send,
                    sess.hasher,
                    &mut sess.rng,
                    &mut sess.gc_eval,
                );
                let bins = psi.cuckoo().bins.len();
                let xi = route_rows(psi.cuckoo(), &key_of_row);
                let oep = shared_oep_perm_holder_begin(sess.ch, &xi, bins, &mut sess.ot_recv);
                let psi =
                    shared_payload_psi_receiver_finish(sess.ch, psi, sess.ring, &mut sess.ot_recv);
                shared_oep_perm_holder_finish(
                    sess.ch,
                    oep,
                    &psi.payload_shares,
                    sess.ring,
                    &mut sess.ot_recv,
                )
            }
        } else {
            // R_G owner: PSI sender.
            debug_assert!(rg.is_mine(sess));
            let pos_g = rg.positions(&join_attrs);
            let g_dummy = rg.dummy.as_ref().expect("owner side");
            let keys: Vec<u64> = (0..rg.size)
                .map(|j| {
                    if g_dummy[j] {
                        dummy_key(nonce ^ 0x60, j as u64)
                    } else {
                        rg.join_key(j, &pos_g, nonce)
                    }
                })
                .collect();
            let psi = if rg.is_plain {
                let plain = rg.plain_annots.as_ref().expect("plain annots");
                let items: Vec<(u64, u64)> =
                    keys.iter().copied().zip(plain.iter().copied()).collect();
                psi_sender(
                    sess.ch,
                    &items,
                    n,
                    sess.ring,
                    &mut sess.kkrt_send,
                    &mut sess.ot_send,
                    sess.hasher,
                    &mut sess.rng,
                    &mut sess.gc_garble,
                )
            } else {
                shared_payload_psi_sender(
                    sess.ch,
                    &keys,
                    n,
                    &rg.annot_shares,
                    sess.ring,
                    &mut sess.kkrt_send,
                    &mut sess.ot_send,
                    &mut sess.ot_recv,
                    sess.hasher,
                    &mut sess.rng,
                    &mut sess.gc_garble,
                )
            };
            shared_oep_other(
                sess.ch,
                &psi.payload_shares,
                n,
                sess.ring,
                &mut sess.ot_send,
                &mut sess.rng,
            )
        }
    };

    // Product circuit: new annotations [v ⊗ z]. The R_F owner garbles.
    let my_v: Vec<u64> = if i_own_f {
        if v_plain {
            rf.plain_annots.clone().expect("plain on owner")
        } else {
            rf.annot_shares.clone()
        }
    } else if v_plain {
        Vec::new()
    } else {
        rf.annot_shares.clone()
    };
    let out_shares = run_product(sess, i_own_f, n, v_plain, &my_v, &my_z);
    SecureRelation {
        schema: rf.schema.clone(),
        owner: rf.owner,
        tuples: rf.tuples.clone(),
        dummy: rf.dummy.clone(),
        size: n,
        annot_shares: out_shares,
        is_plain: false,
        plain_annots: None,
    }
}

/// Oblivious annotated semijoin `R_F ⋉⊗ R_G` (paper §6.2): the support
/// projection of `R_G` on the shared attributes, then a reduce-join.
pub fn oblivious_semijoin(
    sess: &mut Session,
    rf: &mut SecureRelation,
    rg: &mut SecureRelation,
) -> SecureRelation {
    let join_attrs: Vec<String> = rf
        .schema
        .iter()
        .filter(|a| rg.schema.contains(a))
        .cloned()
        .collect();
    let mut support = oblivious_project_agg(sess, rg, &join_attrs, AggKind::Support);
    oblivious_reduce_join(sess, rf, &mut support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_crypto::{RingCtx, TweakHasher};
    use secyan_relation::{NaturalRing, Relation};
    use secyan_transport::{run_protocol, Role};

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Drive a reduce-join with R_F owned by Alice and R_G owned by
    /// `g_owner`; returns reconstructed output annotations in R_F order.
    fn run_reduce_join(
        f_rows: Vec<(Vec<u64>, u64)>,
        g_rows: Vec<(Vec<u64>, u64)>,
        f_schema: Vec<&str>,
        g_schema: Vec<&str>,
        g_owner: Role,
        force_shared: bool,
    ) -> Vec<u64> {
        let ring = NaturalRing::paper_default();
        let f_rel = Relation::from_rows(ring, strings(&f_schema), f_rows);
        let g_rel = Relation::from_rows(ring, strings(&g_schema), g_rows);
        let (fs, gs) = (strings(&f_schema), strings(&g_schema));
        let (fs2, gs2) = (fs.clone(), gs.clone());
        let g_rel2 = g_rel.clone();
        let (a_sh, b_sh, _) = run_protocol(
            move |ch| {
                let mut sess =
                    crate::session::Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 81);
                let mut rf = SecureRelation::load(&mut sess, Role::Alice, fs, Some(&f_rel));
                let mut rg = SecureRelation::load(
                    &mut sess,
                    g_owner,
                    gs,
                    (g_owner == Role::Alice).then_some(&g_rel),
                );
                if force_shared {
                    rf.ensure_shared(&mut sess);
                    rg.ensure_shared(&mut sess);
                }
                let out = oblivious_reduce_join(&mut sess, &mut rf, &mut rg);
                out.annot_shares
            },
            move |ch| {
                let mut sess =
                    crate::session::Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 82);
                let mut rf = SecureRelation::load(&mut sess, Role::Alice, fs2, None);
                let mut rg = SecureRelation::load(
                    &mut sess,
                    g_owner,
                    gs2,
                    (g_owner == Role::Bob).then_some(&g_rel2),
                );
                if force_shared {
                    rf.ensure_shared(&mut sess);
                    rg.ensure_shared(&mut sess);
                }
                let out = oblivious_reduce_join(&mut sess, &mut rf, &mut rg);
                out.annot_shares
            },
        );
        let ring = RingCtx::new(32);
        ring.reconstruct_vec(&a_sh, &b_sh)
    }

    #[test]
    fn cross_party_reduce_join() {
        for force_shared in [false, true] {
            let got = run_reduce_join(
                vec![
                    (vec![1, 100], 2),
                    (vec![2, 200], 3),
                    (vec![3, 300], 5),
                    (vec![1, 400], 7),
                ],
                vec![(vec![1], 10), (vec![3], 20)],
                vec!["k", "x"],
                vec!["k"],
                Role::Bob,
                force_shared,
            );
            // k=1 matches (×10), k=2 no match (→0), k=3 matches (×20).
            assert_eq!(got, vec![20, 0, 100, 70], "force_shared={force_shared}");
        }
    }

    #[test]
    fn same_party_reduce_join() {
        for force_shared in [false, true] {
            let got = run_reduce_join(
                vec![(vec![5, 1], 4), (vec![6, 2], 6)],
                vec![(vec![5], 100), (vec![7], 9)],
                vec!["k", "x"],
                vec!["k"],
                Role::Alice,
                force_shared,
            );
            assert_eq!(got, vec![400, 0], "force_shared={force_shared}");
        }
    }

    #[test]
    fn semijoin_zeroes_danglings_only() {
        // Semijoin keeps annotations where a nonzero partner exists.
        let ring = NaturalRing::paper_default();
        let f_rel = Relation::from_rows(
            ring,
            strings(&["k"]),
            vec![(vec![1], 11), (vec![2], 22), (vec![3], 33)],
        );
        // R_G has duplicate k values (semijoin aggregates them first) and
        // one zero-annotated partner.
        let g_rel = Relation::from_rows(
            ring,
            strings(&["k", "y"]),
            vec![(vec![1, 7], 1), (vec![1, 8], 1), (vec![2, 9], 0)],
        );
        let (a_sh, b_sh, _) = run_protocol(
            move |ch| {
                let mut sess =
                    crate::session::Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 83);
                let mut rf =
                    SecureRelation::load(&mut sess, Role::Alice, strings(&["k"]), Some(&f_rel));
                let mut rg = SecureRelation::load(&mut sess, Role::Bob, strings(&["k", "y"]), None);
                rf.ensure_shared(&mut sess);
                rg.ensure_shared(&mut sess);
                oblivious_semijoin(&mut sess, &mut rf, &mut rg).annot_shares
            },
            move |ch| {
                let mut sess =
                    crate::session::Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 84);
                let mut rf = SecureRelation::load(&mut sess, Role::Alice, strings(&["k"]), None);
                let mut rg =
                    SecureRelation::load(&mut sess, Role::Bob, strings(&["k", "y"]), Some(&g_rel));
                rf.ensure_shared(&mut sess);
                rg.ensure_shared(&mut sess);
                oblivious_semijoin(&mut sess, &mut rf, &mut rg).annot_shares
            },
        );
        let ring = RingCtx::new(32);
        let got = ring.reconstruct_vec(&a_sh, &b_sh);
        // k=1 kept (11), k=2 partner zero-annotated → 0, k=3 dangling → 0.
        assert_eq!(got, vec![11, 0, 0]);
    }
}
