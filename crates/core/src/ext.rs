//! The paper's §7 extensions.
//!
//! * **Selections** — the three privacy options for a per-relation filter:
//!   public selectivity (drop rows), private selectivity (dummy them out),
//!   or a public upper bound (drop + pad).
//! * **Query composition** — aggregates that no single semiring expresses
//!   (avg, ratios): run two secure Yannakakis instances to shared results,
//!   then one garbled division circuit reveals only the quotient. Used by
//!   TPC-H Q8 and the avg example.
//! * **Differential privacy** — Laplace-style noise added to the revealed
//!   aggregates before the receiver sees them, following the
//!   Johnson-et-al. sensitivity recipe the paper cites.

use crate::session::Session;
use rand::Rng;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit};
use secyan_gc::OutputMode;
use secyan_relation::{NaturalRing, Relation, Semiring};
use secyan_transport::Role;

/// How to treat a selection's selectivity (paper §7, options 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Selectivity is public: drop non-matching rows, shrinking IN.
    Public,
    /// Selectivity is private: replace non-matching rows with dummies
    /// (zero-annotated); IN is unchanged.
    Private,
    /// Only an upper bound is public: drop, then pad with dummies up to
    /// the bound.
    UpperBound(usize),
}

/// Apply a selection to an owner-local relation before loading it.
/// Non-matching rows become dummies (annotation 0 on a reserved dummy
/// value) or are dropped, depending on the policy.
pub fn apply_selection(
    rel: &Relation<NaturalRing>,
    pred: impl Fn(&[u64]) -> bool,
    policy: SelectionPolicy,
) -> Relation<NaturalRing> {
    let mut out = Relation::new(rel.semiring, rel.schema.clone());
    match policy {
        SelectionPolicy::Public => {
            for (t, a) in rel.tuples.iter().zip(&rel.annots) {
                if pred(t) {
                    out.push(t.clone(), *a);
                }
            }
        }
        SelectionPolicy::Private => {
            for (t, a) in rel.tuples.iter().zip(&rel.annots) {
                if pred(t) {
                    out.push(t.clone(), *a);
                } else {
                    // Dummy: zero annotation. The tuple values stay —
                    // revealing them to nobody, since only the owner sees
                    // its own relation — but contribute nothing.
                    out.push(t.clone(), rel.semiring.zero());
                }
            }
        }
        SelectionPolicy::UpperBound(bound) => {
            for (t, a) in rel.tuples.iter().zip(&rel.annots) {
                if pred(t) {
                    out.push(t.clone(), *a);
                }
            }
            assert!(out.len() <= bound, "selection exceeded its public bound");
            while out.len() < bound {
                out.push(vec![u64::MAX; rel.schema.len()], rel.semiring.zero());
            }
        }
    }
    out
}

/// Division circuit for composition: per row, reconstruct numerator and
/// denominator shares, divide, reveal `scale·num/den` to the evaluator.
fn ratio_circuit(n: usize, ell: usize, scale: u64) -> Circuit {
    let mut b = Builder::new();
    let na: Vec<_> = (0..n).map(|_| b.alice_word(ell)).collect();
    let da: Vec<_> = (0..n).map(|_| b.alice_word(ell)).collect();
    let nb: Vec<_> = (0..n).map(|_| b.bob_word(ell)).collect();
    let db: Vec<_> = (0..n).map(|_| b.bob_word(ell)).collect();
    let scale_w = b.const_word(scale, ell);
    for i in 0..n {
        let num = b.add_words(&na[i], &nb[i]);
        let den = b.add_words(&da[i], &db[i]);
        let scaled = b.mul_words(&num, &scale_w);
        let q = b.div_words(&scaled, &den);
        b.output_word(&q);
    }
    b.finish()
}

/// Query composition (§7): given aligned shares of numerators and
/// denominators (one pair per group, e.g. SUM and COUNT shares from two
/// `secure_yannakakis_shared` runs), reveal `scale·num/den` per group to
/// `receiver` and nothing else. `scale` implements fixed-point precision
/// (e.g. 100 for two decimal digits). Returns the quotients on the
/// receiver side, an empty vector on the other.
pub fn reveal_ratios(
    sess: &mut Session,
    num_shares: &[u64],
    den_shares: &[u64],
    scale: u64,
    receiver: Role,
) -> Vec<u64> {
    assert_eq!(num_shares.len(), den_shares.len());
    let n = num_shares.len();
    if n == 0 {
        return Vec::new();
    }
    let ell = sess.ring.bits() as usize;
    let circuit = ratio_circuit(n, ell, scale);
    let mut bits = Vec::with_capacity(2 * n * ell);
    for &s in num_shares {
        bits.extend(u64_to_bits(s, ell));
    }
    for &s in den_shares {
        bits.extend(u64_to_bits(s, ell));
    }
    if sess.role() == receiver {
        let out = sess
            .evaluate(&circuit, &bits, OutputMode::RevealToEvaluator)
            .expect("reveals to evaluator");
        (0..n)
            .map(|i| bits_to_u64(&out[i * ell..(i + 1) * ell]))
            .collect()
    } else {
        sess.garble(&circuit, &bits, OutputMode::RevealToEvaluator);
        Vec::new()
    }
}

/// Align a shared query result onto a *public* group domain (used by the
/// paper's Q8/Q9 rewrites, whose group-by columns — years, nations — have
/// public domains). Returns my shares of the aggregate per domain value
/// (0 for groups absent from the result), via one shared OEP.
pub fn align_shared_groups(
    sess: &mut Session,
    tuples: &[Vec<u64>],
    annot_shares: &[u64],
    domain: &[Vec<u64>],
    receiver: Role,
) -> Vec<u64> {
    // Both parties extend with one zero slot for absent groups.
    let mut shares = annot_shares.to_vec();
    shares.push(0);
    if sess.role() == receiver {
        assert_eq!(tuples.len(), annot_shares.len());
        let xi: Vec<usize> = domain
            .iter()
            .map(|g| {
                tuples
                    .iter()
                    .position(|t| t == g)
                    .unwrap_or(annot_shares.len())
            })
            .collect();
        secyan_oep::shared_oep_perm_holder(sess.ch, &xi, &shares, sess.ring, &mut sess.ot_recv)
    } else {
        secyan_oep::shared_oep_other(
            sess.ch,
            &shares,
            domain.len(),
            sess.ring,
            &mut sess.ot_send,
            &mut sess.rng,
        )
    }
}

/// Open shares toward the receiver (used for final linear post-processing
/// like Q9's per-group difference, which is computed on shares locally and
/// only then revealed — the values are query results, so this is allowed).
pub fn reveal_shares(sess: &mut Session, my_shares: &[u64], receiver: Role) -> Vec<u64> {
    use secyan_transport::{ReadExt, WriteExt};
    if sess.role() == receiver {
        let theirs = sess.ch.recv_u64_vec(my_shares.len());
        my_shares
            .iter()
            .zip(&theirs)
            .map(|(&a, &b)| sess.ring.add(a, b))
            .collect()
    } else {
        sess.ch.send_u64_slice(my_shares);
        Vec::new()
    }
}

/// Sample two-sided geometric noise (the discrete analogue of Laplace)
/// with scale `delta/epsilon`: P[X = k] ∝ exp(−|k|·ε/Δ).
pub fn sample_discrete_laplace<R: Rng + ?Sized>(rng: &mut R, delta: f64, epsilon: f64) -> i64 {
    assert!(delta > 0.0 && epsilon > 0.0);
    let alpha = (-epsilon / delta).exp();
    // Two one-sided geometrics minus each other is two-sided geometric.
    let geo = |rng: &mut R| -> i64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / alpha.ln()).floor() as i64
    };
    geo(rng) - geo(rng)
}

/// §7 "protecting privacy against query results": the non-receiving party
/// perturbs its shares of the final aggregates with discrete-Laplace noise
/// before the reveal, so the receiver only ever sees noisy results. The
/// receiver calls this too (as a no-op) to keep the control flow symmetric.
pub fn add_dp_noise_to_shares(
    sess: &mut Session,
    shares: &mut [u64],
    delta: f64,
    epsilon: f64,
    receiver: Role,
) {
    if sess.role() == receiver {
        return;
    }
    for s in shares.iter_mut() {
        let noise = sample_discrete_laplace(&mut sess.rng, delta, epsilon);
        *s = sess.ring.add(*s, sess.ring.from_signed(noise));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_crypto::{RingCtx, TweakHasher};
    use secyan_transport::run_protocol;

    #[test]
    fn selection_policies() {
        let ring = NaturalRing::paper_default();
        let rel = Relation::from_rows(
            ring,
            vec!["x".into()],
            vec![(vec![1], 10), (vec![2], 20), (vec![3], 30)],
        );
        let keep_odd = |t: &[u64]| t[0] % 2 == 1;
        let public = apply_selection(&rel, keep_odd, SelectionPolicy::Public);
        assert_eq!(public.len(), 2);
        let private = apply_selection(&rel, keep_odd, SelectionPolicy::Private);
        assert_eq!(private.len(), 3);
        assert_eq!(private.annots, vec![10, 0, 30]);
        let bounded = apply_selection(&rel, keep_odd, SelectionPolicy::UpperBound(5));
        assert_eq!(bounded.len(), 5);
        assert_eq!(bounded.annots[3], 0);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn upper_bound_violation_panics() {
        let ring = NaturalRing::paper_default();
        let rel = Relation::from_rows(ring, vec!["x".into()], vec![(vec![1], 1), (vec![3], 1)]);
        apply_selection(&rel, |t| t[0] % 2 == 1, SelectionPolicy::UpperBound(1));
    }

    #[test]
    fn ratio_reveals_scaled_quotients() {
        let ring = RingCtx::new(32);
        use rand::SeedableRng;
        let mut setup = rand::rngs::StdRng::seed_from_u64(5);
        let nums = vec![700u64, 55];
        let dens = vec![7u64, 10];
        let (na, nb) = ring.share_vec(&nums, &mut setup);
        let (da, db) = ring.share_vec(&dens, &mut setup);
        let (got, _, _) = run_protocol(
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 91);
                reveal_ratios(&mut sess, &na, &da, 100, Role::Alice)
            },
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 92);
                reveal_ratios(&mut sess, &nb, &db, 100, Role::Alice)
            },
        );
        // 100·700/7 = 10000; 100·55/10 = 550.
        assert_eq!(got, vec![10_000, 550]);
    }

    #[test]
    fn discrete_laplace_is_centered() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let n = 5000;
        let sum: i64 = (0..n)
            .map(|_| sample_discrete_laplace(&mut rng, 1.0, 1.0))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean} too far from 0");
        // And it actually produces nonzero noise.
        let any_nonzero = (0..100).any(|_| sample_discrete_laplace(&mut rng, 1.0, 0.5) != 0);
        assert!(any_nonzero);
    }
}
