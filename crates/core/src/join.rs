//! The oblivious join (paper §6.3) — the full-join phase.
//!
//! Precondition (established by the semijoin phase): every dangling tuple
//! is zero-annotated, so the nonzero support R*_F of each relation equals
//! its projection of the join result J* and may be revealed to the
//! designated receiver. The receiver then joins locally, announces
//! OUT = |J*| (public per §4), and per-relation OEPs + one product circuit
//! produce J*'s annotations — in shared form, so the result can feed query
//! composition (§7), or revealed when it *is* the final answer.

use crate::session::Session;
use crate::srel::SecureRelation;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit, Word};
use secyan_gc::{with_shared_outputs, OutputMode, SharedOutputSpec};
use secyan_oep::{shared_oep_other, shared_oep_perm_holder};
use secyan_transport::{Role, WriteExt};
use std::collections::HashMap;

/// Result of the oblivious join.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Combined schema (fold order, duplicates removed).
    pub schema: Vec<String>,
    /// Receiver side: the join tuples J*. Empty on the other side.
    pub tuples: Vec<Vec<u64>>,
    /// Annotation shares per output row (both sides), unless revealed.
    pub annot_shares: Vec<u64>,
    /// Revealed annotations (receiver side, only when `reveal` was set).
    pub values: Vec<u64>,
    /// Public output size.
    pub out_size: usize,
}

/// The reveal circuit for one relation: per row, `ind = (v ≠ 0)` plus the
/// tuple words gated by `ind` (only when the receiver does not own the
/// tuples). Garbler = relation owner when it is not the receiver,
/// otherwise the other party; outputs reveal to the receiver-evaluator.
pub(crate) fn reveal_circuit(
    n: usize,
    ell: usize,
    attrs: usize,
    owner_is_garbler: bool,
) -> Circuit {
    let mut b = Builder::new();
    // Garbler inputs: v-shares, plus tuple words when the garbler owns them.
    let va: Vec<Word> = (0..n).map(|_| b.alice_word(ell)).collect();
    let ta: Vec<Vec<Word>> = (0..n)
        .map(|_| {
            if owner_is_garbler {
                (0..attrs).map(|_| b.alice_word(64)).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let vb: Vec<Word> = (0..n).map(|_| b.bob_word(ell)).collect();
    for i in 0..n {
        let v = b.add_words(&va[i], &vb[i]);
        let ind = b.is_nonzero_word(&v);
        b.output(ind);
        if owner_is_garbler {
            for w in &ta[i] {
                let gated = b.and_word_bit(w, ind);
                b.output_word(&gated);
            }
        }
    }
    b.finish()
}

/// Reveal the nonzero support of `rel` to the receiver. Returns, on the
/// receiver side, `Some(rows)` where `rows[i] = Some(tuple)` for real
/// non-dangling rows (indexed by the owner's storage order).
fn reveal_support(
    sess: &mut Session,
    rel: &mut SecureRelation,
    receiver: Role,
) -> Option<Vec<Option<Vec<u64>>>> {
    rel.ensure_shared(sess);
    let n = rel.size;
    let ell = sess.ring.bits() as usize;
    let attrs = rel.schema.len();
    let i_am_receiver = sess.role() == receiver;
    let owner_is_garbler = rel.owner != receiver;
    let circuit = reveal_circuit(n, ell, attrs, owner_is_garbler);
    if i_am_receiver {
        // Receiver evaluates.
        let mut bits = Vec::new();
        for &s in &rel.annot_shares {
            bits.extend(u64_to_bits(s, ell));
        }
        let out = sess
            .evaluate(&circuit, &bits, OutputMode::RevealToEvaluator)
            .expect("reveals to evaluator");
        let stride = 1 + if owner_is_garbler { attrs * 64 } else { 0 };
        let mut rows = Vec::with_capacity(n);
        let my_tuples = rel.tuples.clone();
        for i in 0..n {
            let base = i * stride;
            if !out[base] {
                rows.push(None);
                continue;
            }
            let tuple = if owner_is_garbler {
                (0..attrs)
                    .map(|a| bits_to_u64(&out[base + 1 + a * 64..base + 1 + (a + 1) * 64]))
                    .collect()
            } else {
                my_tuples.as_ref().expect("receiver owns the tuples")[i].clone()
            };
            rows.push(Some(tuple));
        }
        Some(rows)
    } else {
        // Non-receiver garbles; contributes tuples when it owns them.
        // Packing matches the circuit's declaration order: all v-shares
        // first, then all tuple words.
        let mut bits = Vec::new();
        for &s in &rel.annot_shares {
            bits.extend(u64_to_bits(s, ell));
        }
        if owner_is_garbler {
            let tuples = rel.tuples.as_ref().expect("owner side");
            for t in tuples {
                for &v in t {
                    bits.extend(u64_to_bits(v, 64));
                }
            }
        }
        sess.garble(&circuit, &bits, OutputMode::RevealToEvaluator);
        None
    }
}

/// The k-way annotation product circuit over `out_size` rows. Garbler =
/// non-receiver. When `reveal`, outputs go to the receiver in the clear;
/// otherwise they leave as fresh shares.
fn product_tree_circuit(
    n: usize,
    k: usize,
    ell: usize,
    reveal: bool,
) -> (Circuit, Option<SharedOutputSpec>) {
    let build = |b: &mut Builder| -> Vec<Word> {
        let ga: Vec<Vec<Word>> = (0..n)
            .map(|_| (0..k).map(|_| b.alice_word(ell)).collect())
            .collect();
        let gb: Vec<Vec<Word>> = (0..n)
            .map(|_| (0..k).map(|_| b.bob_word(ell)).collect())
            .collect();
        (0..n)
            .map(|i| {
                let mut acc: Option<Word> = None;
                for j in 0..k {
                    let v = b.add_words(&ga[i][j], &gb[i][j]);
                    acc = Some(match acc {
                        None => v,
                        Some(a) => b.mul_words(&a, &v),
                    });
                }
                acc.expect("k >= 1")
            })
            .collect()
    };
    if reveal {
        let mut b = Builder::new();
        let words = build(&mut b);
        for w in &words {
            b.output_word(w);
        }
        (b.finish(), None)
    } else {
        let spec = SharedOutputSpec::uniform(n, ell);
        (with_shared_outputs(&spec, build), Some(spec))
    }
}

/// The oblivious join. `rels` must be ordered so that each prefix is
/// connected (the driver folds bottom-up along the join tree); all
/// dangling tuples must already be zero-annotated. `reveal` controls
/// whether the annotations are opened to the receiver or left shared.
pub fn oblivious_join(
    sess: &mut Session,
    rels: &mut [SecureRelation],
    receiver: Role,
    reveal: bool,
) -> JoinOutput {
    assert!(!rels.is_empty());
    let ell = sess.ring.bits() as usize;
    let i_am_receiver = sess.role() == receiver;
    // Step 1: reveal every relation's nonzero support to the receiver.
    let revealed: Vec<Option<Vec<Option<Vec<u64>>>>> = rels
        .iter_mut()
        .map(|r| reveal_support(sess, r, receiver))
        .collect();
    // Step 2: the receiver joins locally, tracking per-relation provenance.
    let mut schema: Vec<String> = Vec::new();
    for r in rels.iter() {
        for a in &r.schema {
            if !schema.contains(a) {
                schema.push(a.clone());
            }
        }
    }
    let (tuples, prov, out_size) = if i_am_receiver {
        let mut acc: Vec<(HashMap<String, u64>, Vec<usize>)> = Vec::new();
        for (ri, rows) in revealed.iter().enumerate() {
            let rows = rows.as_ref().expect("receiver side");
            let rel_schema = &rels[ri].schema;
            if ri == 0 {
                for (idx, row) in rows.iter().enumerate() {
                    if let Some(t) = row {
                        let vals: HashMap<String, u64> =
                            rel_schema.iter().cloned().zip(t.iter().copied()).collect();
                        acc.push((vals, vec![idx]));
                    }
                }
                continue;
            }
            // Hash the new relation on the shared attributes.
            let common: Vec<String> = rel_schema
                .iter()
                .filter(|a| acc.first().is_some_and(|(m, _)| m.contains_key(*a)))
                .cloned()
                .collect();
            let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
            for (idx, row) in rows.iter().enumerate() {
                if let Some(t) = row {
                    let key: Vec<u64> = common
                        .iter()
                        .map(|a| {
                            let p = rel_schema.iter().position(|s| s == a).expect("common attr");
                            t[p]
                        })
                        .collect();
                    index.entry(key).or_default().push(idx);
                }
            }
            let mut next = Vec::new();
            for (vals, prov) in acc {
                let key: Vec<u64> = common.iter().map(|a| vals[a]).collect();
                if let Some(matches) = index.get(&key) {
                    for &idx in matches {
                        let t = rows[idx].as_ref().expect("indexed row is real");
                        let mut vals2 = vals.clone();
                        for (a, &v) in rel_schema.iter().zip(t.iter()) {
                            vals2.insert(a.clone(), v);
                        }
                        let mut prov2 = prov.clone();
                        prov2.push(idx);
                        next.push((vals2, prov2));
                    }
                }
            }
            acc = next;
        }
        let out_size = acc.len();
        sess.ch.send_u64(out_size as u64);
        let tuples: Vec<Vec<u64>> = acc
            .iter()
            .map(|(vals, _)| schema.iter().map(|a| vals[a]).collect())
            .collect();
        let prov: Vec<Vec<usize>> = acc.into_iter().map(|(_, p)| p).collect();
        (tuples, prov, out_size)
    } else {
        let out_size = crate::session::recv_declared_size(sess.ch, "join output");
        (Vec::new(), Vec::new(), out_size)
    };
    if out_size == 0 {
        return JoinOutput {
            schema,
            tuples,
            annot_shares: Vec::new(),
            values: Vec::new(),
            out_size,
        };
    }
    // Step 3: per-relation OEPs align annotation shares with J* rows.
    let k = rels.len();
    let mut aligned: Vec<Vec<u64>> = Vec::with_capacity(k);
    for (ri, rel) in rels.iter().enumerate() {
        if i_am_receiver {
            let xi: Vec<usize> = prov.iter().map(|p| p[ri]).collect();
            aligned.push(shared_oep_perm_holder(
                sess.ch,
                &xi,
                &rel.annot_shares,
                sess.ring,
                &mut sess.ot_recv,
            ));
        } else {
            aligned.push(shared_oep_other(
                sess.ch,
                &rel.annot_shares,
                out_size,
                sess.ring,
                &mut sess.ot_send,
                &mut sess.rng,
            ));
        }
    }
    // Step 4: product circuit. Garbler = non-receiver.
    let (circuit, spec) = product_tree_circuit(out_size, k, ell, reveal);
    let mut bits = Vec::new();
    for i in 0..out_size {
        for a in aligned.iter() {
            bits.extend(u64_to_bits(a[i], ell));
        }
    }
    let (annot_shares, values) = if i_am_receiver {
        if reveal {
            let out = sess
                .evaluate(&circuit, &bits, OutputMode::RevealToEvaluator)
                .expect("reveals to evaluator");
            let values = (0..out_size)
                .map(|i| bits_to_u64(&out[i * ell..(i + 1) * ell]))
                .collect();
            (Vec::new(), values)
        } else {
            let shares = sess.evaluate_shared(&circuit, &spec.expect("shared mode"), &bits);
            (shares, Vec::new())
        }
    } else if reveal {
        sess.garble(&circuit, &bits, OutputMode::RevealToEvaluator);
        (Vec::new(), Vec::new())
    } else {
        let shares = sess.garble_shared(&circuit, &spec.expect("shared mode"), &bits);
        (shares, Vec::new())
    };
    JoinOutput {
        schema,
        tuples,
        annot_shares,
        values,
        out_size,
    }
}
