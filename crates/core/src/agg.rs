//! Oblivious projection-aggregation (paper §6.1).
//!
//! Computes π⊕_F(R) or the support projection π¹_F(R) of a
//! [`SecureRelation`] whose annotations are secret-shared. The owner sorts
//! locally, a shared OEP re-aligns the annotation shares with the sorted
//! order, and a chain of garbled merge gates sweeps group aggregates into
//! each group's last row — all other rows become dummies with
//! zero-annotation shares, so the output has the *same public size* as the
//! input and leaks nothing about the number of groups.
//!
//! When the annotations are still owner-known (`is_plain`, §6.5) the whole
//! operator collapses to local computation plus dummy padding.

use crate::session::Session;
use crate::srel::SecureRelation;
use secyan_circuit::{u64_to_bits, BitRef, Builder, Circuit, Word};
use secyan_gc::{with_shared_outputs, SharedOutputSpec};
use secyan_oep::{shared_oep_other, shared_oep_perm_holder};

/// Which projection-aggregation to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// π⊕: sum the group's annotations.
    Sum,
    /// π¹: 1 if the group contains any nonzero annotation, else 0.
    Support,
}

/// The merge-gate chain circuit. Garbler = relation owner.
///
/// Inputs (after the shared-output masks): garbler's N−1 equality bits and
/// N share words, then the evaluator's N share words. Outputs: N shared
/// words in sorted order, nonzero only at group ends.
pub(crate) fn merge_circuit(n: usize, ell: usize, kind: AggKind) -> (Circuit, SharedOutputSpec) {
    let spec = SharedOutputSpec::uniform(n, ell);
    let circuit = with_shared_outputs(&spec, |b| {
        let eq_bits: Vec<BitRef> = (0..n.saturating_sub(1)).map(|_| b.alice_input()).collect();
        let a_shares: Vec<Word> = (0..n).map(|_| b.alice_word(ell)).collect();
        let b_shares: Vec<Word> = (0..n).map(|_| b.bob_word(ell)).collect();
        let vs: Vec<Word> = a_shares
            .iter()
            .zip(&b_shares)
            .map(|(x, y)| b.add_words(x, y))
            .collect();
        let mut outs: Vec<Word> = Vec::with_capacity(n);
        match kind {
            AggKind::Sum => {
                let mut z = vs[0].clone();
                for i in 0..n.saturating_sub(1) {
                    let eq = eq_bits[i];
                    let neq = b.not(eq);
                    outs.push(b.and_word_bit(&z, neq));
                    let keep = b.and_word_bit(&z, eq);
                    z = b.add_words(&keep, &vs[i + 1]);
                }
                outs.push(z);
            }
            AggKind::Support => {
                let inds: Vec<BitRef> = vs.iter().map(|v| b.is_nonzero_word(v)).collect();
                let mut acc = inds[0];
                for i in 0..n.saturating_sub(1) {
                    let eq = eq_bits[i];
                    let neq = b.not(eq);
                    let emitted = b.and(acc, neq);
                    outs.push(bit_to_word(b, emitted, ell));
                    let kept = b.and(acc, eq);
                    acc = b.or(kept, inds[i + 1]);
                }
                outs.push(bit_to_word(b, acc, ell));
            }
        }
        outs
    });
    (circuit, spec)
}

/// Embed a single bit as an ℓ-bit ring element (0 or 1).
fn bit_to_word(b: &mut Builder, bit: BitRef, ell: usize) -> Word {
    let mut bits = vec![b.constant(false); ell];
    bits[0] = bit;
    Word(bits)
}

/// Oblivious π⊕_attrs(R) / π¹_attrs(R). Both parties call this with the
/// same public arguments; the output relation keeps the owner and the
/// public size N of the input.
pub fn oblivious_project_agg(
    sess: &mut Session,
    rel: &SecureRelation,
    attrs: &[String],
    kind: AggKind,
) -> SecureRelation {
    // §6.5 fast path: owner-known annotations → purely local computation.
    if rel.is_plain {
        return local_project_agg(sess, rel, attrs, kind);
    }
    let n = rel.size;
    let ell = sess.ring.bits() as usize;
    if n == 0 {
        return SecureRelation {
            schema: attrs.to_vec(),
            owner: rel.owner,
            tuples: rel.is_mine(sess).then(Vec::new),
            dummy: rel.is_mine(sess).then(Vec::new),
            size: 0,
            annot_shares: Vec::new(),
            is_plain: false,
            plain_annots: None,
        };
    }
    // Linear fast path: a grand total (empty grouping) under SUM is linear
    // in the annotations, so each party folds its own shares locally —
    // zero communication, zero rounds. Dummy annotations are shares of 0,
    // so folding them in is harmless. The single real output row sits at
    // the public last position; every other row is a dummy whose shares
    // reconstruct to 0, matching the merge-chain output contract.
    if attrs.is_empty() && kind == AggKind::Sum {
        let total = rel
            .annot_shares
            .iter()
            .fold(0u64, |acc, &v| sess.ring.add(acc, v));
        let mut shares = vec![0u64; n];
        shares[n - 1] = total;
        return SecureRelation {
            schema: Vec::new(),
            owner: rel.owner,
            tuples: rel.is_mine(sess).then(|| vec![Vec::new(); n]),
            dummy: rel.is_mine(sess).then(|| {
                let mut d = vec![true; n];
                d[n - 1] = false;
                d
            }),
            size: n,
            annot_shares: shares,
            is_plain: false,
            plain_annots: None,
        };
    }
    let (circuit, spec) = merge_circuit(n, ell, kind);
    if rel.is_mine(sess) {
        let pos = rel.positions(attrs);
        let tuples = rel.tuples.as_ref().expect("owner side");
        let dummies = rel.dummy.as_ref().expect("owner side");
        // Sort real rows by the projected key; dummies go last, each its
        // own singleton group.
        let mut order: Vec<usize> = (0..n).collect();
        let proj = |i: usize| -> Vec<u64> { pos.iter().map(|&p| tuples[i][p]).collect() };
        order.sort_by(|&i, &j| (dummies[i], proj(i)).cmp(&(dummies[j], proj(j))));
        // Shared OEP: permute the annotation shares into sorted order.
        let my_sorted = shared_oep_perm_holder(
            sess.ch,
            &order,
            &rel.annot_shares,
            sess.ring,
            &mut sess.ot_recv,
        );
        // Equality chain bits over the sorted order.
        let eq: Vec<bool> = (0..n - 1)
            .map(|i| {
                let (a, b) = (order[i], order[i + 1]);
                !dummies[a] && !dummies[b] && proj(a) == proj(b)
            })
            .collect();
        let mut my_bits: Vec<bool> = eq.clone();
        for &s in &my_sorted {
            my_bits.extend(u64_to_bits(s, ell));
        }
        let out_shares = sess.garble_shared(&circuit, &spec, &my_bits);
        // Build the output relation: group-end rows are real, others dummy.
        let mut out_tuples = Vec::with_capacity(n);
        let mut out_dummy = Vec::with_capacity(n);
        for i in 0..n {
            let src = order[i];
            out_tuples.push(proj(src));
            let is_end = i == n - 1 || !eq[i];
            out_dummy.push(dummies[src] || !is_end);
        }
        SecureRelation {
            schema: attrs.to_vec(),
            owner: rel.owner,
            tuples: Some(out_tuples),
            dummy: Some(out_dummy),
            size: n,
            annot_shares: out_shares,
            is_plain: false,
            plain_annots: None,
        }
    } else {
        let my_sorted = shared_oep_other(
            sess.ch,
            &rel.annot_shares,
            n,
            sess.ring,
            &mut sess.ot_send,
            &mut sess.rng,
        );
        let mut my_bits: Vec<bool> = Vec::with_capacity(n * ell);
        for &s in &my_sorted {
            my_bits.extend(u64_to_bits(s, ell));
        }
        let out_shares = sess.evaluate_shared(&circuit, &spec, &my_bits);
        SecureRelation {
            schema: attrs.to_vec(),
            owner: rel.owner,
            tuples: None,
            dummy: None,
            size: n,
            annot_shares: out_shares,
            is_plain: false,
            plain_annots: None,
        }
    }
}

/// §6.5: the owner aggregates locally, padding the result back to the
/// public input size with dummies. No communication.
fn local_project_agg(
    sess: &mut Session,
    rel: &SecureRelation,
    attrs: &[String],
    kind: AggKind,
) -> SecureRelation {
    let n = rel.size;
    if !rel.is_mine(sess) {
        return SecureRelation {
            schema: attrs.to_vec(),
            owner: rel.owner,
            tuples: None,
            dummy: None,
            size: n,
            annot_shares: vec![0; n],
            is_plain: true,
            plain_annots: None,
        };
    }
    let pos = rel.positions(attrs);
    let tuples = rel.tuples.as_ref().expect("owner side");
    let dummies = rel.dummy.as_ref().expect("owner side");
    let plain = rel.plain_annots.as_ref().expect("plain annots");
    let mut groups: std::collections::HashMap<Vec<u64>, u64> = std::collections::HashMap::new();
    let mut order: Vec<Vec<u64>> = Vec::new();
    for i in 0..n {
        if dummies[i] {
            continue;
        }
        let key: Vec<u64> = pos.iter().map(|&p| tuples[i][p]).collect();
        let v = plain[i];
        match groups.get_mut(&key) {
            Some(acc) => {
                *acc = match kind {
                    AggKind::Sum => sess.ring.add(*acc, v),
                    AggKind::Support => {
                        if *acc == 1 || v != 0 {
                            1
                        } else {
                            0
                        }
                    }
                }
            }
            None => {
                let init = match kind {
                    AggKind::Sum => v,
                    AggKind::Support => (v != 0) as u64,
                };
                groups.insert(key.clone(), init);
                order.push(key);
            }
        }
    }
    let mut out_tuples = Vec::with_capacity(n);
    let mut out_dummy = Vec::with_capacity(n);
    let mut out_annots = Vec::with_capacity(n);
    for key in &order {
        out_tuples.push(key.clone());
        out_dummy.push(false);
        out_annots.push(groups[key]);
    }
    while out_tuples.len() < n {
        out_tuples.push(vec![0; attrs.len()]);
        out_dummy.push(true);
        out_annots.push(0);
    }
    SecureRelation {
        schema: attrs.to_vec(),
        owner: rel.owner,
        tuples: Some(out_tuples),
        dummy: Some(out_dummy),
        size: n,
        annot_shares: vec![0; n],
        is_plain: true,
        plain_annots: Some(out_annots),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_crypto::RingCtx;
    use secyan_relation::{NaturalRing, Relation};
    use secyan_transport::{run_protocol, Role};
    use std::collections::HashMap;

    /// Run oblivious aggregation end-to-end and reconstruct (key → value).
    fn run_agg(
        rows: Vec<(Vec<u64>, u64)>,
        schema: Vec<&str>,
        attrs: Vec<&str>,
        kind: AggKind,
        force_shared: bool,
    ) -> HashMap<Vec<u64>, u64> {
        let schema: Vec<String> = schema.into_iter().map(|s| s.to_string()).collect();
        let attrs: Vec<String> = attrs.into_iter().map(|s| s.to_string()).collect();
        let rel = Relation::from_rows(NaturalRing::paper_default(), schema.clone(), rows);
        let (sch_a, sch_b) = (schema.clone(), schema);
        let (at_a, at_b) = (attrs.clone(), attrs);
        let ((out_a, tuples, dummy), out_b, _) = run_protocol(
            move |ch| {
                let mut sess = crate::session::Session::new(
                    ch,
                    RingCtx::new(32),
                    secyan_crypto::TweakHasher::Sha256,
                    71,
                );
                let mut r = SecureRelation::load(&mut sess, Role::Alice, sch_a, Some(&rel));
                if force_shared {
                    r.ensure_shared(&mut sess);
                }
                let mut out = oblivious_project_agg(&mut sess, &r, &at_a, kind);
                out.ensure_shared(&mut sess);
                (
                    out.annot_shares.clone(),
                    out.tuples.clone().unwrap(),
                    out.dummy.clone().unwrap(),
                )
            },
            move |ch| {
                let mut sess = crate::session::Session::new(
                    ch,
                    RingCtx::new(32),
                    secyan_crypto::TweakHasher::Sha256,
                    72,
                );
                let mut r = SecureRelation::load(&mut sess, Role::Alice, sch_b, None);
                if force_shared {
                    r.ensure_shared(&mut sess);
                }
                let mut out = oblivious_project_agg(&mut sess, &r, &at_b, kind);
                out.ensure_shared(&mut sess);
                out.annot_shares.clone()
            },
        );
        let ring = RingCtx::new(32);
        let mut result = HashMap::new();
        for i in 0..tuples.len() {
            let v = ring.reconstruct(out_a[i], out_b[i]);
            if dummy[i] {
                assert_eq!(v, 0, "dummy row {i} must carry a zero annotation");
            } else {
                assert!(result.insert(tuples[i].clone(), v).is_none());
            }
        }
        result
    }

    #[test]
    fn sum_groups_correctly() {
        for force_shared in [false, true] {
            let got = run_agg(
                vec![
                    (vec![1, 10], 5),
                    (vec![2, 20], 7),
                    (vec![1, 30], 11),
                    (vec![2, 40], 1),
                    (vec![3, 50], 9),
                ],
                vec!["g", "x"],
                vec!["g"],
                AggKind::Sum,
                force_shared,
            );
            let want: HashMap<Vec<u64>, u64> = [(vec![1], 16), (vec![2], 8), (vec![3], 9)]
                .into_iter()
                .collect();
            assert_eq!(got, want, "force_shared={force_shared}");
        }
    }

    #[test]
    fn support_is_binary() {
        for force_shared in [false, true] {
            let got = run_agg(
                vec![
                    (vec![1], 0),
                    (vec![1], 0),
                    (vec![2], 3),
                    (vec![2], 4),
                    (vec![3], 0),
                ],
                vec!["g"],
                vec!["g"],
                AggKind::Support,
                force_shared,
            );
            // Group 1: all zero → support 0 (its row reconstructs to 0, so
            // it is indistinguishable from a dummy and dropped from the
            // map only if flagged; the oblivious path flags group ends as
            // real, so key [1] appears with value 0).
            assert_eq!(got.get(&vec![2u64]), Some(&1));
            assert_eq!(got.get(&vec![1u64]).copied().unwrap_or(0), 0);
            assert_eq!(got.get(&vec![3u64]).copied().unwrap_or(0), 0);
        }
    }

    #[test]
    fn grand_total_empty_attrs() {
        let got = run_agg(
            vec![(vec![1], 5), (vec![2], 6), (vec![3], 7)],
            vec!["x"],
            vec![],
            AggKind::Sum,
            true,
        );
        assert_eq!(got.get(&vec![]), Some(&18));
    }

    #[test]
    fn single_row_relation() {
        let got = run_agg(
            vec![(vec![9], 42)],
            vec!["x"],
            vec!["x"],
            AggKind::Sum,
            true,
        );
        assert_eq!(got.get(&vec![9u64]), Some(&42));
    }
}
