//! Query shapes: the public skeleton an offline phase can precompute for.
//!
//! Everything the secure Yannakakis driver *does* — which operator runs on
//! which node, which circuits get garbled, how much OT each step draws —
//! is a function of the public plan: the join tree, the schemas, the
//! per-relation sizes, the annotation ring width, and who receives the
//! result. That is the protocol's obliviousness property, and it is also
//! exactly what makes an offline/online split possible: two queries with
//! the same *shape* consume interchangeable precomputed material, no
//! matter how their private tuples differ.
//!
//! [`QueryShape::derive`] canonicalizes a plan into a [`ShapeKey`] (the
//! pool index) and replays the driver's control flow over size-only
//! stand-ins to produce the ordered list of garbled circuits the online
//! run will execute ([`QueryShape::planned`]) plus a deterministic OT
//! budget. The replay covers the reduce and semijoin phases and the
//! reveal step — everything whose circuit dimensions are fixed by the
//! shape. The full-join product tree is *excluded* deliberately: its row
//! count is the data-dependent join output size, which is only announced
//! online. Unplanned circuits are harmless — consumption is digest-checked
//! ([`secyan_gc::circuit_digest`]) and falls back to inline garbling
//! symmetrically on both parties.

use crate::agg::{merge_circuit, AggKind};
use crate::join::reveal_circuit;
use crate::protocol::{fold_order, reveal_values_circuit};
use crate::query::SecureQuery;
use crate::semijoin::product_circuit;
use secyan_circuit::Circuit;
use secyan_crypto::sha256::{digest_to_u64, Sha256};
use secyan_psi::{k_circuit, matching_circuit, psi_params};
use secyan_transport::Role;

/// Canonical 64-bit fingerprint of a query shape: join-tree topology,
/// schemas, owners, per-relation sizes, annotation bit width, and the
/// receiving party. Two runs with equal keys execute byte-identical
/// public transcript skeletons and can share precomputed material.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeKey(pub u64);

impl ShapeKey {
    /// Compute the key alone, without planning circuits — the cheap lookup
    /// path for pool queries ([`crate::preproc::PreprocPool`]).
    pub fn of(query: &SecureQuery, sizes: &[usize], receiver: Role, ell: usize) -> ShapeKey {
        assert_eq!(sizes.len(), query.len(), "one size per relation");
        shape_key(query, sizes, receiver, ell)
    }
}

/// One garbled circuit the online driver will run, in execution order.
#[derive(Debug, Clone)]
pub struct PlannedCircuit {
    /// The exact circuit (the planner calls the same builders as the
    /// online operators, so the digests match).
    pub circuit: Circuit,
    /// Which party garbles it; the other evaluates.
    pub garbler: Role,
}

/// A derived query shape: the pool key, the plannable circuit schedule,
/// and the OT bank budget.
#[derive(Debug, Clone)]
pub struct QueryShape {
    pub key: ShapeKey,
    /// Garbled circuits of the reduce/semijoin/reveal steps, in the order
    /// the online driver executes them.
    pub planned: Vec<PlannedCircuit>,
    /// Number of offline random OTs to bank per direction. A deterministic
    /// (deliberately generous) function of the shape, so both parties
    /// always build equal-sized banks and their pooled-vs-inline decisions
    /// stay mirrored.
    pub ot_budget: usize,
    /// Number of KKRT OPRF instances to bank per direction (sender and
    /// receiver extensions both sized to this). Exact for the planned
    /// cross-party joins: two OPPRFs of `bins` instances each per join.
    /// Like the OT budget, it is a function of public sizes only, so both
    /// parties' banked-vs-inline decisions stay mirrored.
    pub kkrt_budget: usize,
}

impl QueryShape {
    /// Derive the shape of running `query` with the given public
    /// per-relation sizes, revealing to `receiver`, over an `ell`-bit
    /// annotation ring. Both parties must call this with identical
    /// arguments (all public), and the result is deterministic.
    pub fn derive(query: &SecureQuery, sizes: &[usize], receiver: Role, ell: usize) -> QueryShape {
        assert_eq!(sizes.len(), query.len(), "one size per relation");
        let key = shape_key(query, sizes, receiver, ell);
        let (planned, kkrt_budget) = plan_circuits(query, sizes, receiver, ell);
        let ot_budget = ot_budget(sizes, &planned);
        QueryShape {
            key,
            planned,
            ot_budget,
            kkrt_budget,
        }
    }
}

/// Hash every public component of the plan into the pool key. Length
/// prefixes keep the encoding injective.
fn shape_key(query: &SecureQuery, sizes: &[usize], receiver: Role, ell: usize) -> ShapeKey {
    let mut h = Sha256::new();
    h.update(b"secyan-shape-v1");
    h.update(&(ell as u64).to_le_bytes());
    h.update(&[receiver.is_alice() as u8]);
    h.update(&(query.len() as u64).to_le_bytes());
    for (i, &size) in sizes.iter().enumerate().take(query.len()) {
        h.update(&[query.owners[i].is_alice() as u8]);
        h.update(&(size as u64).to_le_bytes());
        h.update(&(query.schemas[i].len() as u64).to_le_bytes());
        for a in &query.schemas[i] {
            h.update(&(a.len() as u64).to_le_bytes());
            h.update(a.as_bytes());
        }
        // Parent index (or the node's own index for the root) pins the
        // tree topology.
        let p = query.tree.parent(i).unwrap_or(i);
        h.update(&(p as u64).to_le_bytes());
    }
    h.update(&(query.output.len() as u64).to_le_bytes());
    for a in &query.output {
        h.update(&(a.len() as u64).to_le_bytes());
        h.update(a.as_bytes());
    }
    ShapeKey(digest_to_u64(&h.finalize()))
}

/// Size-only stand-in for a [`crate::srel::SecureRelation`]: exactly the
/// fields the driver's control flow reads.
#[derive(Clone)]
struct ShapeRel {
    schema: Vec<String>,
    owner: Role,
    size: usize,
    is_plain: bool,
}

/// Replays the operator plumbing of the online operators, recording every
/// circuit they will build. Each method must mirror its operator's
/// control flow *exactly* — same builders, same parameters, same
/// `is_plain` transitions — or the digests diverge (safe, but wasteful).
struct Planner {
    ell: usize,
    planned: Vec<PlannedCircuit>,
    /// KKRT OPRF instances the planned PSIs will consume (per direction).
    kkrt_instances: usize,
}

impl Planner {
    /// Mirror of [`crate::agg::oblivious_project_agg`].
    fn project_agg(&mut self, rel: &ShapeRel, attrs: &[String], kind: AggKind) -> ShapeRel {
        if rel.is_plain {
            // §6.5 local path: no communication, stays plain.
            return ShapeRel {
                schema: attrs.to_vec(),
                owner: rel.owner,
                size: rel.size,
                is_plain: true,
            };
        }
        if rel.size > 0 {
            let (circuit, _) = merge_circuit(rel.size, self.ell, kind);
            self.planned.push(PlannedCircuit {
                circuit,
                garbler: rel.owner,
            });
        }
        ShapeRel {
            schema: attrs.to_vec(),
            owner: rel.owner,
            size: rel.size,
            is_plain: false,
        }
    }

    /// Mirror of [`crate::semijoin::oblivious_reduce_join`]. Cross-party
    /// joins run a circuit PSI first: the matching circuit (plain `R_G`
    /// payloads, §6.5) or the k-index circuit (shared payloads, §5.5),
    /// garbled by the `R_G` owner, fed by two OPPRFs of `bins` KKRT
    /// instances each. Then the product circuit over `rf`'s rows, garbled
    /// by the `R_F` owner. The OEPs inside draw from the OT banks, not the
    /// circuit schedule.
    fn reduce_join(&mut self, rf: &ShapeRel, rg: &ShapeRel) -> ShapeRel {
        if rf.owner != rg.owner {
            let params = psi_params(rf.size, rg.size);
            let circuit = if rg.is_plain {
                matching_circuit(params.bins, self.ell).0
            } else {
                k_circuit(params.bins, self.ell)
            };
            self.planned.push(PlannedCircuit {
                circuit,
                garbler: rg.owner,
            });
            self.kkrt_instances += 2 * params.bins;
        }
        let (circuit, _) = product_circuit(rf.size, self.ell, rf.is_plain);
        self.planned.push(PlannedCircuit {
            circuit,
            garbler: rf.owner,
        });
        ShapeRel {
            schema: rf.schema.clone(),
            owner: rf.owner,
            size: rf.size,
            is_plain: false,
        }
    }

    /// Mirror of [`crate::semijoin::oblivious_semijoin`].
    fn semijoin(&mut self, rf: &ShapeRel, rg: &ShapeRel) -> ShapeRel {
        let join_attrs: Vec<String> = rf
            .schema
            .iter()
            .filter(|a| rg.schema.contains(a))
            .cloned()
            .collect();
        let support = self.project_agg(rg, &join_attrs, AggKind::Support);
        self.reduce_join(rf, &support)
    }
}

/// Replay [`crate::protocol::secure_yannakakis`]'s public control flow
/// over size-only relations, collecting the circuit schedule.
fn plan_circuits(
    query: &SecureQuery,
    sizes: &[usize],
    receiver: Role,
    ell: usize,
) -> (Vec<PlannedCircuit>, usize) {
    let tree = &query.tree;
    let root = tree.root();
    let mut p = Planner {
        ell,
        planned: Vec::new(),
        kkrt_instances: 0,
    };
    let mut rels: Vec<ShapeRel> = (0..query.len())
        .map(|i| ShapeRel {
            schema: query.schemas[i].clone(),
            owner: query.owners[i],
            size: sizes[i],
            is_plain: true,
        })
        .collect();
    let mut removed = vec![false; query.len()];
    let mut kept_below = vec![false; query.len()];

    // Phase 1: reduce — mirrors `reduce_and_semijoin` line for line.
    for i in tree.bottom_up() {
        if i == root {
            let f_prime: Vec<String> = rels[i]
                .schema
                .iter()
                .filter(|a| query.output.contains(a))
                .cloned()
                .collect();
            if f_prime.len() != rels[i].schema.len() {
                rels[i] = p.project_agg(&rels[i], &f_prime, AggKind::Sum);
            }
            continue;
        }
        let parent = tree.parent(i).expect("non-root");
        let parent_schema = rels[parent].schema.clone();
        let f_prime: Vec<String> = rels[i]
            .schema
            .iter()
            .filter(|a| query.output.contains(a) || parent_schema.contains(a))
            .cloned()
            .collect();
        let mergeable = !kept_below[i] && f_prime.iter().all(|a| parent_schema.contains(a));
        if mergeable {
            let folded = p.project_agg(&rels[i], &f_prime, AggKind::Sum);
            rels[parent] = p.reduce_join(&rels[parent].clone(), &folded);
            removed[i] = true;
        } else {
            if f_prime.len() != rels[i].schema.len() {
                rels[i] = p.project_agg(&rels[i], &f_prime, AggKind::Sum);
            }
            kept_below[parent] = true;
        }
    }
    let survivors: Vec<usize> = (0..query.len()).filter(|&i| !removed[i]).collect();

    // Phase 2: semijoin sweeps.
    if survivors.len() > 1 {
        for i in tree.bottom_up() {
            if removed[i] || i == root {
                continue;
            }
            let parent = tree.parent(i).expect("non-root");
            rels[parent] = p.semijoin(&rels[parent].clone(), &rels[i].clone());
        }
        for i in tree.top_down() {
            if removed[i] || i == root {
                continue;
            }
            let parent = tree.parent(i).expect("non-root");
            rels[i] = p.semijoin(&rels[i].clone(), &rels[parent].clone());
        }
    }

    // Phase 3. Single survivor: the direct reveal circuit. Multiple
    // survivors: one support-reveal circuit per folded relation; the
    // product tree that follows runs at the data-dependent join output
    // size and cannot be planned (online falls back inline).
    if survivors.len() == 1 {
        let r = &rels[survivors[0]];
        let owner_is_garbler = r.owner != receiver;
        p.planned.push(PlannedCircuit {
            circuit: reveal_values_circuit(r.size, ell, r.schema.len(), owner_is_garbler),
            garbler: receiver.peer(),
        });
    } else {
        for i in fold_order(query, &survivors) {
            let r = &rels[i];
            let owner_is_garbler = r.owner != receiver;
            p.planned.push(PlannedCircuit {
                circuit: reveal_circuit(r.size, ell, r.schema.len(), owner_is_garbler),
                garbler: receiver.peer(),
            });
        }
    }
    (p.planned, p.kkrt_instances)
}

/// The per-direction OT bank budget: evaluator input labels for every
/// planned circuit, plus a generous allowance for the OEP switching
/// networks and PSI machinery (≈ 2·w·⌈log₂ w⌉ + w OTs per oblivious
/// switching network of width w, several networks per relation per
/// phase). Over-provisioning only costs offline time; under-provisioning
/// degrades to inline OT extension, symmetrically on both sides.
fn ot_budget(sizes: &[usize], planned: &[PlannedCircuit]) -> usize {
    let labels: usize = planned.iter().map(|pc| pc.circuit.bob_inputs).sum();
    let switches: usize = sizes
        .iter()
        .map(|&n| {
            // OEP widths in the driver top out around 2n + 2 (cuckoo bins
            // and the reduce-join dummy slot); 8 networks per relation
            // covers every aggregation/semijoin sweep that can touch it.
            let w = 2 * n + 2;
            let lg = usize::BITS as usize - w.leading_zeros() as usize;
            8 * (2 * w * lg + w)
        })
        .sum();
    labels + switches + 1024
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_relation::JoinTree;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn chain_query() -> SecureQuery {
        SecureQuery::new(
            vec![
                strings(&["person"]),
                strings(&["person", "disease"]),
                strings(&["disease", "class"]),
            ],
            vec![Role::Alice, Role::Bob, Role::Alice],
            JoinTree::chain(3),
            strings(&["class"]),
        )
    }

    #[test]
    fn key_is_deterministic_and_size_sensitive() {
        let q = chain_query();
        let a = QueryShape::derive(&q, &[3, 4, 3], Role::Alice, 32);
        let b = QueryShape::derive(&q, &[3, 4, 3], Role::Alice, 32);
        assert_eq!(a.key, b.key);
        assert_eq!(a.planned.len(), b.planned.len());
        let c = QueryShape::derive(&q, &[3, 5, 3], Role::Alice, 32);
        assert_ne!(a.key, c.key, "sizes must be part of the key");
        let d = QueryShape::derive(&q, &[3, 4, 3], Role::Bob, 32);
        assert_ne!(a.key, d.key, "receiver must be part of the key");
        let e = QueryShape::derive(&q, &[3, 4, 3], Role::Alice, 16);
        assert_ne!(a.key, e.key, "ring width must be part of the key");
    }

    #[test]
    fn chain_plan_ends_with_a_reveal_and_has_budget() {
        let shape = QueryShape::derive(&chain_query(), &[3, 4, 3], Role::Alice, 32);
        // The paper's chain collapses to a single survivor: the schedule
        // must be non-empty and end with the reveal garbled by Bob (the
        // non-receiver).
        assert!(!shape.planned.is_empty());
        assert_eq!(shape.planned.last().unwrap().garbler, Role::Bob);
        assert!(shape.ot_budget > 0);
    }
}
