//! The secure Yannakakis driver (paper §6.4).
//!
//! Both parties run this function with the same public [`SecureQuery`];
//! each passes its own relations' data. Control flow — which operator runs
//! on which node, in which order — is a function of the public plan only,
//! as obliviousness demands. The three phases mirror
//! `secyan_relation::yannakakis` exactly:
//!
//! 1. **Reduce**: bottom-up, each node is either folded into its parent
//!    (π⊕ + reduce-join) or kept with its non-output attributes
//!    aggregated away.
//! 2. **Semijoin**: bottom-up then top-down passes mark dangling tuples by
//!    zeroing their annotation shares (nothing is physically removed —
//!    sizes are public).
//! 3. **Full join**: reveal supports, local join, OEP + product circuit
//!    (§6.3). When the reduce phase leaves a single node (e.g. TPC-H Q3),
//!    the driver skips phases 2–3 and reveals that node directly.

use crate::agg::{oblivious_project_agg, AggKind};
use crate::join::oblivious_join;
use crate::query::SecureQuery;
use crate::semijoin::{oblivious_reduce_join, oblivious_semijoin};
use crate::session::Session;
use crate::srel::SecureRelation;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit};
use secyan_gc::OutputMode;
use secyan_relation::{NaturalRing, Relation};
use secyan_transport::Role;

/// The receiver-side result of a secure query (the other party's copy has
/// empty tuples/values and only the public `out_size`).
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Vec<String>,
    pub tuples: Vec<Vec<u64>>,
    pub values: Vec<u64>,
    pub out_size: usize,
}

/// Shared-form result used for query composition (§7): the receiver knows
/// the tuples; the aggregate of row i stays split between the parties.
#[derive(Debug, Clone)]
pub struct SharedQueryResult {
    pub schema: Vec<String>,
    pub tuples: Vec<Vec<u64>>,
    pub annot_shares: Vec<u64>,
    pub out_size: usize,
}

/// Run the secure Yannakakis protocol, revealing the results to
/// `receiver`. `my_relations[i]` is `Some` iff this party owns relation i.
pub fn secure_yannakakis(
    sess: &mut Session,
    query: &SecureQuery,
    my_relations: &[Option<Relation<NaturalRing>>],
    receiver: Role,
) -> QueryResult {
    let (mut rels, survivors) = reduce_and_semijoin(sess, query, my_relations);
    if survivors.len() == 1 {
        // Reduce collapsed everything (e.g. Q3): reveal the root directly.
        let root = survivors[0];
        return reveal_result(sess, &mut rels[root], receiver);
    }
    let mut folded: Vec<SecureRelation> = fold_order(query, &survivors)
        .into_iter()
        .map(|i| rels[i].clone())
        .collect();
    let out = oblivious_join(sess, &mut folded, receiver, true);
    QueryResult {
        schema: out.schema,
        tuples: out.tuples,
        values: out.values,
        out_size: out.out_size,
    }
}

/// Like [`secure_yannakakis`] but leaving the aggregates in shared form
/// for composition (§7).
pub fn secure_yannakakis_shared(
    sess: &mut Session,
    query: &SecureQuery,
    my_relations: &[Option<Relation<NaturalRing>>],
    receiver: Role,
) -> SharedQueryResult {
    let (mut rels, survivors) = reduce_and_semijoin(sess, query, my_relations);
    if survivors.len() == 1 {
        let root = survivors[0];
        let rel = &mut rels[root];
        rel.ensure_shared(sess);
        // Reveal only the tuples' support — here the tuples themselves are
        // part of the output, but the aggregates stay shared. We reveal
        // all rows (dummies included) and keep the shares aligned; the
        // caller's composition circuit treats zero-reconstructing rows as
        // padding, exactly like the §7 avg example.
        let out = oblivious_join(sess, std::slice::from_mut(rel), receiver, false);
        return SharedQueryResult {
            schema: out.schema,
            tuples: out.tuples,
            annot_shares: out.annot_shares,
            out_size: out.out_size,
        };
    }
    let mut folded: Vec<SecureRelation> = fold_order(query, &survivors)
        .into_iter()
        .map(|i| rels[i].clone())
        .collect();
    let out = oblivious_join(sess, &mut folded, receiver, false);
    SharedQueryResult {
        schema: out.schema,
        tuples: out.tuples,
        annot_shares: out.annot_shares,
        out_size: out.out_size,
    }
}

/// Phases 1 and 2. Returns the per-node relations (folded nodes left in
/// place but dead) and the surviving node indices.
fn reduce_and_semijoin(
    sess: &mut Session,
    query: &SecureQuery,
    my_relations: &[Option<Relation<NaturalRing>>],
) -> (Vec<SecureRelation>, Vec<usize>) {
    assert_eq!(my_relations.len(), query.len());
    let tree = &query.tree;
    let root = tree.root();
    // Load: one batched declaration round for every relation in the plan.
    let specs: Vec<_> = (0..query.len())
        .map(|i| {
            (
                query.owners[i],
                query.schemas[i].clone(),
                my_relations[i].as_ref(),
            )
        })
        .collect();
    let mut rels: Vec<SecureRelation> = SecureRelation::load_all(sess, specs);
    let mut removed = vec![false; query.len()];
    let mut kept_below = vec![false; query.len()];

    // Phase 1: reduce (public control flow — schemas only).
    for i in tree.bottom_up() {
        if i == root {
            let f_prime: Vec<String> = rels[i]
                .schema
                .iter()
                .filter(|a| query.output.contains(a))
                .cloned()
                .collect();
            if f_prime.len() != rels[i].schema.len() {
                rels[i] = oblivious_project_agg(sess, &rels[i], &f_prime, AggKind::Sum);
            }
            continue;
        }
        let p = tree.parent(i).expect("non-root");
        let parent_schema = rels[p].schema.clone();
        let f_prime: Vec<String> = rels[i]
            .schema
            .iter()
            .filter(|a| query.output.contains(a) || parent_schema.contains(a))
            .cloned()
            .collect();
        let mergeable = !kept_below[i] && f_prime.iter().all(|a| parent_schema.contains(a));
        if mergeable {
            let mut folded = oblivious_project_agg(sess, &rels[i], &f_prime, AggKind::Sum);
            let mut parent = rels[p].clone();
            rels[p] = oblivious_reduce_join(sess, &mut parent, &mut folded);
            removed[i] = true;
        } else {
            if f_prime.len() != rels[i].schema.len() {
                rels[i] = oblivious_project_agg(sess, &rels[i], &f_prime, AggKind::Sum);
            }
            kept_below[p] = true;
        }
    }
    let survivors: Vec<usize> = (0..query.len()).filter(|&i| !removed[i]).collect();

    // Phase 2: semijoins over survivors (skipped when only the root is
    // left).
    if survivors.len() > 1 {
        for i in tree.bottom_up() {
            if removed[i] || i == root {
                continue;
            }
            let p = tree.parent(i).expect("non-root");
            let mut parent = rels[p].clone();
            let mut child = rels[i].clone();
            rels[p] = oblivious_semijoin(sess, &mut parent, &mut child);
            rels[i] = child;
        }
        for i in tree.top_down() {
            if removed[i] || i == root {
                continue;
            }
            let p = tree.parent(i).expect("non-root");
            let mut parent = rels[p].clone();
            let mut child = rels[i].clone();
            rels[i] = oblivious_semijoin(sess, &mut child, &mut parent);
            rels[p] = parent;
        }
    }
    (rels, survivors)
}

/// Bottom-up fold order over the surviving nodes, starting from the
/// deepest leaf so every prefix of the fold is connected in the tree.
pub(crate) fn fold_order(query: &SecureQuery, survivors: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = query
        .tree
        .top_down()
        .into_iter()
        .filter(|i| survivors.contains(i))
        .collect();
    // Top-down from the root keeps every prefix connected; the join is
    // commutative so this is as good as bottom-up and simpler to compute.
    order.dedup();
    order
}

/// Reveal a single relation's real rows (tuples + aggregate values) to the
/// receiver — the fast path when the reduce phase ends with one node.
fn reveal_result(sess: &mut Session, rel: &mut SecureRelation, receiver: Role) -> QueryResult {
    rel.ensure_shared(sess);
    let n = rel.size;
    let ell = sess.ring.bits() as usize;
    let attrs = rel.schema.len();
    let i_am_receiver = sess.role() == receiver;
    let owner_is_garbler = rel.owner != receiver;
    let circuit = reveal_values_circuit(n, ell, attrs, owner_is_garbler);
    if i_am_receiver {
        let mut bits = Vec::new();
        for &s in &rel.annot_shares {
            bits.extend(u64_to_bits(s, ell));
        }
        let out = sess
            .evaluate(&circuit, &bits, OutputMode::RevealToEvaluator)
            .expect("reveals to evaluator");
        let stride = ell + if owner_is_garbler { attrs * 64 } else { 0 };
        let mut tuples = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            let base = i * stride;
            let v = bits_to_u64(&out[base..base + ell]);
            if v == 0 {
                continue; // dummy or dangling
            }
            let tuple = if owner_is_garbler {
                (0..attrs)
                    .map(|a| bits_to_u64(&out[base + ell + a * 64..base + ell + (a + 1) * 64]))
                    .collect()
            } else {
                rel.tuples.as_ref().expect("receiver owns tuples")[i].clone()
            };
            tuples.push(tuple);
            values.push(v);
        }
        let out_size = tuples.len();
        QueryResult {
            schema: rel.schema.clone(),
            tuples,
            values,
            out_size,
        }
    } else {
        // Packing matches the circuit declaration: all v-shares first,
        // then all tuple words.
        let mut bits = Vec::new();
        for &s in &rel.annot_shares {
            bits.extend(u64_to_bits(s, ell));
        }
        if owner_is_garbler {
            for t in rel.tuples.as_ref().expect("owner side") {
                for &v in t {
                    bits.extend(u64_to_bits(v, 64));
                }
            }
        }
        sess.garble(&circuit, &bits, OutputMode::RevealToEvaluator);
        QueryResult {
            schema: rel.schema.clone(),
            tuples: Vec::new(),
            values: Vec::new(),
            out_size: 0,
        }
    }
}

/// Per row: the reconstructed aggregate v, and the tuple gated by
/// `v ≠ 0` when the garbler owns the tuples. Zero-valued rows are
/// indistinguishable from dummies, exactly as the paper notes (a zero
/// aggregate contributes nothing to the result).
pub(crate) fn reveal_values_circuit(
    n: usize,
    ell: usize,
    attrs: usize,
    owner_is_garbler: bool,
) -> Circuit {
    let mut b = Builder::new();
    let va: Vec<_> = (0..n).map(|_| b.alice_word(ell)).collect();
    let ta: Vec<Vec<_>> = (0..n)
        .map(|_| {
            if owner_is_garbler {
                (0..attrs).map(|_| b.alice_word(64)).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let vb: Vec<_> = (0..n).map(|_| b.bob_word(ell)).collect();
    for i in 0..n {
        let v = b.add_words(&va[i], &vb[i]);
        b.output_word(&v);
        if owner_is_garbler {
            let ind = b.is_nonzero_word(&v);
            for w in &ta[i] {
                let gated = b.and_word_bit(w, ind);
                b.output_word(&gated);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_crypto::{RingCtx, TweakHasher};
    use secyan_relation::naive::naive_join_aggregate;
    use secyan_relation::JoinTree;
    use secyan_transport::run_protocol;
    use std::collections::HashMap;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Run the secure protocol end-to-end and return the receiver's
    /// (tuple → value) map, canonicalized over the output schema order.
    fn run_secure(
        query: SecureQuery,
        alice_rels: Vec<Option<Relation<NaturalRing>>>,
        bob_rels: Vec<Option<Relation<NaturalRing>>>,
    ) -> (Vec<String>, HashMap<Vec<u64>, u64>) {
        let q2 = query.clone();
        let (res, _, _) = run_protocol(
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 101);
                secure_yannakakis(&mut sess, &query, &alice_rels, Role::Alice)
            },
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 102);
                secure_yannakakis(&mut sess, &q2, &bob_rels, Role::Alice)
            },
        );
        let mut map = HashMap::new();
        for (t, &v) in res.tuples.iter().zip(&res.values) {
            let prev = map.insert(t.clone(), v);
            assert!(prev.is_none(), "duplicate output tuple {t:?}");
        }
        (res.schema, map)
    }

    /// Canonicalize a plaintext result against a given schema order.
    fn expect_map(
        rels: &[Relation<NaturalRing>],
        output: &[String],
        schema: &[String],
    ) -> HashMap<Vec<u64>, u64> {
        let want = naive_join_aggregate(rels, output);
        let pos: Vec<usize> = schema
            .iter()
            .map(|a| want.schema.iter().position(|s| s == a).expect("attr"))
            .collect();
        want.tuples
            .iter()
            .zip(&want.annots)
            .map(|(t, &v)| (pos.iter().map(|&p| t[p]).collect(), v))
            .collect()
    }

    fn example_1_1() -> Vec<Relation<NaturalRing>> {
        let ring = NaturalRing::paper_default();
        vec![
            Relation::from_rows(
                ring,
                strings(&["person"]),
                vec![(vec![1], 80), (vec![2], 50), (vec![3], 70)],
            ),
            Relation::from_rows(
                ring,
                strings(&["person", "disease"]),
                vec![
                    (vec![1, 10], 1000),
                    (vec![1, 11], 500),
                    (vec![2, 10], 2000),
                    (vec![9, 10], 400), // dangling person
                ],
            ),
            Relation::from_rows(
                ring,
                strings(&["disease", "class"]),
                vec![(vec![10, 7], 1), (vec![11, 8], 1), (vec![12, 9], 1)],
            ),
        ]
    }

    #[test]
    fn example_1_1_end_to_end() {
        // Alice = insurance (R1, R3), Bob = hospital (R2) — the paper's
        // exact scenario. The reduce phase collapses the whole chain, so
        // this exercises the single-survivor reveal path.
        let rels = example_1_1();
        let query = SecureQuery::new(
            vec![
                strings(&["person"]),
                strings(&["person", "disease"]),
                strings(&["disease", "class"]),
            ],
            vec![Role::Alice, Role::Bob, Role::Alice],
            JoinTree::chain(3),
            strings(&["class"]),
        );
        let (schema, got) = run_secure(
            query,
            vec![Some(rels[0].clone()), None, Some(rels[2].clone())],
            vec![None, Some(rels[1].clone()), None],
        );
        let want = expect_map(&rels, &strings(&["class"]), &schema);
        assert_eq!(got, want);
    }

    #[test]
    fn group_by_join_attribute_full_join_path() {
        // Output includes attributes from two nodes, so the reduce phase
        // keeps several survivors and the full-join path runs.
        let ring = NaturalRing::paper_default();
        let r1 = Relation::from_rows(
            ring,
            strings(&["a", "b"]),
            vec![(vec![1, 10], 2), (vec![2, 20], 3), (vec![3, 10], 5)],
        );
        let r2 = Relation::from_rows(
            ring,
            strings(&["b", "c"]),
            vec![(vec![10, 100], 7), (vec![20, 200], 11), (vec![30, 300], 13)],
        );
        let out = strings(&["a", "b", "c"]);
        let query = SecureQuery::new(
            vec![strings(&["a", "b"]), strings(&["b", "c"])],
            vec![Role::Alice, Role::Bob],
            JoinTree::chain(2),
            out.clone(),
        );
        let (schema, got) = run_secure(
            query,
            vec![Some(r1.clone()), None],
            vec![None, Some(r2.clone())],
        );
        let want = expect_map(&[r1, r2], &out, &schema);
        assert_eq!(got, want);
    }

    #[test]
    fn three_relations_with_survivors() {
        // Chain of 3 with group-by on the two outer join attributes:
        // exercises reduce + semijoin + full join together.
        let ring = NaturalRing::paper_default();
        let r1 = Relation::from_rows(
            ring,
            strings(&["a", "b"]),
            vec![
                (vec![1, 5], 1),
                (vec![2, 5], 2),
                (vec![3, 6], 3),
                (vec![4, 7], 4),
            ],
        );
        let r2 = Relation::from_rows(
            ring,
            strings(&["b", "c"]),
            vec![(vec![5, 8], 10), (vec![6, 9], 20), (vec![6, 8], 30)],
        );
        let r3 = Relation::from_rows(
            ring,
            strings(&["c", "d"]),
            vec![(vec![8, 1], 100), (vec![9, 1], 200), (vec![9, 2], 300)],
        );
        let out = strings(&["b", "c"]);
        // Rooted at R2(b,c) so both output attributes' TOPs sit at the
        // root, witnessing free-connexity.
        let query = SecureQuery::new(
            vec![
                strings(&["a", "b"]),
                strings(&["b", "c"]),
                strings(&["c", "d"]),
            ],
            vec![Role::Alice, Role::Bob, Role::Alice],
            JoinTree::new(vec![Some(1), None, Some(1)]),
            out.clone(),
        );
        let (schema, got) = run_secure(
            query,
            vec![Some(r1.clone()), None, Some(r3.clone())],
            vec![None, Some(r2.clone()), None],
        );
        let want = expect_map(&[r1, r2, r3], &out, &schema);
        assert_eq!(got, want);
    }

    #[test]
    fn count_star_scalar_query() {
        // O = ∅: the secure COUNT(*)-style scalar aggregate.
        let ring = NaturalRing::paper_default();
        let r1 = Relation::from_rows(
            ring,
            strings(&["a"]),
            vec![(vec![1], 1), (vec![2], 1), (vec![3], 1)],
        );
        let r2 = Relation::from_rows(
            ring,
            strings(&["a", "b"]),
            vec![
                (vec![1, 1], 1),
                (vec![1, 2], 1),
                (vec![3, 1], 1),
                (vec![4, 4], 1),
            ],
        );
        let out: Vec<String> = vec![];
        let query = SecureQuery::new(
            vec![strings(&["a"]), strings(&["a", "b"])],
            vec![Role::Alice, Role::Bob],
            JoinTree::chain(2),
            out.clone(),
        );
        let (_, got) = run_secure(
            query,
            vec![Some(r1.clone()), None],
            vec![None, Some(r2.clone())],
        );
        assert_eq!(got.get(&vec![]), Some(&3));
    }

    #[test]
    fn bob_as_receiver_owner_side_reveal() {
        // The receiver owns the final relation: owner == receiver path.
        let ring = NaturalRing::paper_default();
        let r1 = Relation::from_rows(ring, strings(&["a"]), vec![(vec![1], 5), (vec![2], 6)]);
        let r2 = Relation::from_rows(
            ring,
            strings(&["a", "g"]),
            vec![(vec![1, 77], 10), (vec![2, 88], 100), (vec![2, 77], 1)],
        );
        let out = strings(&["g"]);
        let query = SecureQuery::new(
            vec![strings(&["a"]), strings(&["a", "g"])],
            vec![Role::Alice, Role::Bob],
            JoinTree::chain(2),
            out.clone(),
        );
        let q2 = query.clone();
        let (_, res, _) = run_protocol(
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 103);
                secure_yannakakis(&mut sess, &query, &[Some(r1.clone()), None], Role::Bob)
            },
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 104);
                secure_yannakakis(&mut sess, &q2, &[None, Some(r2.clone())], Role::Bob)
            },
        );
        let mut got: Vec<(Vec<u64>, u64)> = res
            .tuples
            .iter()
            .cloned()
            .zip(res.values.iter().copied())
            .collect();
        got.sort();
        // g=77: 5·10 + 6·1 = 56; g=88: 6·100 = 600.
        assert_eq!(got, vec![(vec![77], 56), (vec![88], 600)]);
    }
}
