//! Per-party protocol session state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_ot::{KkrtReceiver, KkrtSender, OtReceiver, OtSender};
use secyan_transport::{Channel, ProtocolError, ReadExt, Role};

/// Upper bound on any size a peer can declare for a relation or join
/// output. Instances this workspace evaluates are far smaller; anything
/// larger is a malformed (or malicious) peer trying to drive a huge
/// allocation, and is rejected with a typed error before allocating.
pub const MAX_DECLARED_SIZE: u64 = 1 << 28;

/// Receive a peer-declared public size and validate it against
/// [`MAX_DECLARED_SIZE`] before the caller allocates proportionally to it.
/// Raises a typed [`ProtocolError::Malformed`] unwind (caught by
/// `try_run_protocol`) on an absurd declaration.
pub fn recv_declared_size(ch: &mut Channel, what: &str) -> usize {
    let size = ch.recv_u64();
    if size > MAX_DECLARED_SIZE {
        ProtocolError::malformed(format!(
            "peer declared {what} of {size} rows (max {MAX_DECLARED_SIZE})"
        ));
    }
    size as usize
}

/// Everything one party carries through a secure query evaluation: the
/// channel, the annotation ring, the garbling hash, a CSPRNG, and both
/// directions of OT extension and KKRT OPRF (bootstrapped once here, then
/// amortized over every operator, as the paper's cost model assumes).
pub struct Session<'a> {
    pub ch: &'a mut Channel,
    pub ring: RingCtx,
    pub hasher: TweakHasher,
    pub rng: StdRng,
    pub ot_send: OtSender,
    pub ot_recv: OtReceiver,
    pub kkrt_send: KkrtSender,
    pub kkrt_recv: KkrtReceiver,
}

impl<'a> Session<'a> {
    /// Set up a session. Both parties must call this with the same `ring`
    /// and `hasher`; the base-OT bootstraps interleave in a fixed
    /// role-dependent order so the two sides pair correctly.
    pub fn new(
        ch: &'a mut Channel,
        ring: RingCtx,
        hasher: TweakHasher,
        rng_seed: u64,
    ) -> Session<'a> {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let (ot_send, ot_recv, kkrt_send, kkrt_recv) = match ch.role() {
            Role::Alice => {
                let s = OtSender::setup(ch, &mut rng, hasher);
                let r = OtReceiver::setup(ch, &mut rng, hasher);
                let ks = KkrtSender::setup(ch, &mut rng, hasher);
                let kr = KkrtReceiver::setup(ch, &mut rng, hasher);
                (s, r, ks, kr)
            }
            Role::Bob => {
                let r = OtReceiver::setup(ch, &mut rng, hasher);
                let s = OtSender::setup(ch, &mut rng, hasher);
                let kr = KkrtReceiver::setup(ch, &mut rng, hasher);
                let ks = KkrtSender::setup(ch, &mut rng, hasher);
                (s, r, ks, kr)
            }
        };
        Session {
            ch,
            ring,
            hasher,
            rng,
            ot_send,
            ot_recv,
            kkrt_send,
            kkrt_recv,
        }
    }

    /// This party's transport role.
    pub fn role(&self) -> Role {
        self.ch.role()
    }

    /// Convenience: a fresh random ring element.
    pub fn random_ring(&mut self) -> u64 {
        self.ring.random(&mut self.rng)
    }

    /// Convenience: a fresh random u64 (dummy keys etc.).
    pub fn random_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_transport::run_protocol;

    #[test]
    fn sessions_pair_up() {
        // Setting up a session on both sides must not deadlock and leaves
        // the channel clean for subsequent traffic.
        let (a, b, _) = run_protocol(
            |ch| {
                let s = Session::new(ch, RingCtx::new(32), TweakHasher::default(), 1);
                s.role()
            },
            |ch| {
                let s = Session::new(ch, RingCtx::new(32), TweakHasher::default(), 2);
                s.role()
            },
        );
        assert_eq!(a, Role::Alice);
        assert_eq!(b, Role::Bob);
    }
}
