//! Per-party protocol session state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secyan_circuit::Circuit;
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_gc::{
    evaluate_circuit, evaluate_online, evaluate_shared, evaluate_shared_online, garble_circuit,
    garble_online, garble_shared, garble_shared_online, take_eval, take_garble, EvalMaterial,
    GarbleMaterial, OutputMode, SharedOutputSpec,
};
use secyan_ot::{KkrtReceiver, KkrtSender, OtReceiver, OtSender};
use secyan_transport::{Channel, ProtocolError, ReadExt, Role};
use std::collections::VecDeque;

/// Upper bound on any size a peer can declare for a relation or join
/// output. Instances this workspace evaluates are far smaller; anything
/// larger is a malformed (or malicious) peer trying to drive a huge
/// allocation, and is rejected with a typed error before allocating.
/// Tied to the transport's super-frame bound: a declaration the transport
/// could never carry the payload for is rejected at the same threshold.
pub const MAX_DECLARED_SIZE: u64 = secyan_transport::MAX_FRAME_SIZE as u64;

/// Receive a peer-declared public size and validate it against
/// [`MAX_DECLARED_SIZE`] before the caller allocates proportionally to it.
/// Raises a typed [`ProtocolError::Malformed`] unwind (caught by
/// `try_run_protocol`) on an absurd declaration.
pub fn recv_declared_size(ch: &mut Channel, what: &str) -> usize {
    let size = ch.recv_u64();
    if size > MAX_DECLARED_SIZE {
        ProtocolError::malformed(format!(
            "peer declared {what} of {size} rows (max {MAX_DECLARED_SIZE})"
        ));
    }
    size as usize
}

/// Everything one party carries through a secure query evaluation: the
/// channel, the annotation ring, the garbling hash, a CSPRNG, and both
/// directions of OT extension and KKRT OPRF (bootstrapped once here, then
/// amortized over every operator, as the paper's cost model assumes).
pub struct Session<'a> {
    pub ch: &'a mut Channel,
    pub ring: RingCtx,
    pub hasher: TweakHasher,
    pub rng: StdRng,
    pub ot_send: OtSender,
    pub ot_recv: OtReceiver,
    pub kkrt_send: KkrtSender,
    pub kkrt_recv: KkrtReceiver,
    /// Pre-garbled circuits waiting to be consumed (this party garbles),
    /// in plan order. Empty outside the offline/online split.
    pub gc_garble: VecDeque<GarbleMaterial>,
    /// Pre-received garbled tables waiting to be consumed (this party
    /// evaluates), in plan order.
    pub gc_eval: VecDeque<EvalMaterial>,
}

impl<'a> Session<'a> {
    /// Set up a session. Both parties must call this with the same `ring`
    /// and `hasher`; the base-OT bootstraps interleave in a fixed
    /// role-dependent order so the two sides pair correctly.
    pub fn new(
        ch: &'a mut Channel,
        ring: RingCtx,
        hasher: TweakHasher,
        rng_seed: u64,
    ) -> Session<'a> {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let (ot_send, ot_recv, kkrt_send, kkrt_recv) = match ch.role() {
            Role::Alice => {
                let s = OtSender::setup(ch, &mut rng, hasher);
                let r = OtReceiver::setup(ch, &mut rng, hasher);
                let ks = KkrtSender::setup(ch, &mut rng, hasher);
                let kr = KkrtReceiver::setup(ch, &mut rng, hasher);
                (s, r, ks, kr)
            }
            Role::Bob => {
                let r = OtReceiver::setup(ch, &mut rng, hasher);
                let s = OtSender::setup(ch, &mut rng, hasher);
                let kr = KkrtReceiver::setup(ch, &mut rng, hasher);
                let ks = KkrtSender::setup(ch, &mut rng, hasher);
                (s, r, ks, kr)
            }
        };
        Session {
            ch,
            ring,
            hasher,
            rng,
            ot_send,
            ot_recv,
            kkrt_send,
            kkrt_recv,
            gc_garble: VecDeque::new(),
            gc_eval: VecDeque::new(),
        }
    }

    /// This party's transport role.
    pub fn role(&self) -> Role {
        self.ch.role()
    }

    /// Convenience: a fresh random ring element.
    pub fn random_ring(&mut self) -> u64 {
        self.ring.random(&mut self.rng)
    }

    /// Convenience: a fresh random u64 (dummy keys etc.).
    pub fn random_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Garble `circuit`, consuming pre-garbled offline material when the
    /// front of the plan matches (by circuit digest), else inline.
    ///
    /// The pooled-vs-inline decision is symmetric across the two parties:
    /// both plan the same public circuit sequence offline, so their deque
    /// fronts carry the same digest and both fall back together when the
    /// online driver runs a circuit the planner did not foresee (e.g. the
    /// data-dependent full-join product tree).
    pub fn garble(
        &mut self,
        circuit: &Circuit,
        my_inputs: &[bool],
        mode: OutputMode,
    ) -> Option<Vec<bool>> {
        match take_garble(&mut self.gc_garble, circuit) {
            Some(material) => garble_online(
                self.ch,
                circuit,
                material,
                my_inputs,
                &mut self.ot_send,
                mode,
            ),
            None => garble_circuit(
                self.ch,
                circuit,
                my_inputs,
                &mut self.ot_send,
                self.hasher,
                &mut self.rng,
                mode,
            ),
        }
    }

    /// Evaluate `circuit`, consuming pre-received tables when the front of
    /// the plan matches (see [`Session::garble`] for the symmetry
    /// argument).
    pub fn evaluate(
        &mut self,
        circuit: &Circuit,
        my_inputs: &[bool],
        mode: OutputMode,
    ) -> Option<Vec<bool>> {
        match take_eval(&mut self.gc_eval, circuit) {
            Some(material) => evaluate_online(
                self.ch,
                circuit,
                material,
                my_inputs,
                &mut self.ot_recv,
                self.hasher,
                mode,
            ),
            None => evaluate_circuit(
                self.ch,
                circuit,
                my_inputs,
                &mut self.ot_recv,
                self.hasher,
                mode,
            ),
        }
    }

    /// Shared-output garbling through the offline plan (see
    /// [`Session::garble`]).
    pub fn garble_shared(
        &mut self,
        circuit: &Circuit,
        spec: &SharedOutputSpec,
        my_inputs: &[bool],
    ) -> Vec<u64> {
        match take_garble(&mut self.gc_garble, circuit) {
            Some(material) => garble_shared_online(
                self.ch,
                circuit,
                material,
                spec,
                my_inputs,
                &mut self.ot_send,
                &mut self.rng,
            ),
            None => garble_shared(
                self.ch,
                circuit,
                spec,
                my_inputs,
                &mut self.ot_send,
                self.hasher,
                &mut self.rng,
            ),
        }
    }

    /// Shared-output evaluation through the offline plan (see
    /// [`Session::evaluate`]).
    pub fn evaluate_shared(
        &mut self,
        circuit: &Circuit,
        spec: &SharedOutputSpec,
        my_inputs: &[bool],
    ) -> Vec<u64> {
        match take_eval(&mut self.gc_eval, circuit) {
            Some(material) => evaluate_shared_online(
                self.ch,
                circuit,
                material,
                spec,
                my_inputs,
                &mut self.ot_recv,
                self.hasher,
            ),
            None => evaluate_shared(
                self.ch,
                circuit,
                spec,
                my_inputs,
                &mut self.ot_recv,
                self.hasher,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_transport::run_protocol;

    #[test]
    fn sessions_pair_up() {
        // Setting up a session on both sides must not deadlock and leaves
        // the channel clean for subsequent traffic.
        let (a, b, _) = run_protocol(
            |ch| {
                let s = Session::new(ch, RingCtx::new(32), TweakHasher::default(), 1);
                s.role()
            },
            |ch| {
                let s = Session::new(ch, RingCtx::new(32), TweakHasher::default(), 2);
                s.role()
            },
        );
        assert_eq!(a, Role::Alice);
        assert_eq!(b, Role::Bob);
    }
}
