//! The offline/online phase split: precomputed-randomness pools.
//!
//! The paper's cost model (and every MPC deployment) separates *offline*
//! work — input-independent correlated randomness that can be produced at
//! any time — from the *online* critical path that must run once the data
//! arrives. This module packages the offline product per query shape:
//!
//! * [`run_offline`] bootstraps a full [`Session`] (base OTs, OT
//!   extension, KKRT OPRF), banks shape-budgeted random OTs for Beaver
//!   derandomization ([`secyan_ot::OtSendBank`]/[`OtRecvBank`]), and
//!   pre-garbles every circuit the [`QueryShape`] planner can foresee,
//!   shipping the garbled tables ahead of time. The suspended session
//!   state *is* the offline material: a [`QueryMaterial`].
//! * [`run_online`] resumes a session from banked material and runs the
//!   standard driver; every operator transparently consumes banked OTs
//!   and pre-garbled circuits through [`Session`]'s digest-checked
//!   helpers, falling back inline (symmetrically on both parties) on any
//!   plan miss or bank exhaustion.
//! * [`PreprocPool`] keys materials by [`ShapeKey`] with strict
//!   single-use semantics: material is consumed on take and never
//!   revisited — reusing correlated randomness across executions would
//!   void every security argument. Banked secrets are `Secret`-wrapped
//!   throughout (OT pads, choice bits, garbling keys) and zeroize when
//!   consumed or dropped.
//!
//! Offline and online traffic travel under distinct phase tags in the
//! transport framing ([`secyan_transport::Phase`]), so a frame produced by
//! the wrong phase surfaces as a typed [`PhaseMismatch`] error instead of
//! silent misuse, and [`CommStats`] reports the two phases' bytes/rounds
//! separately.
//!
//! [`OtRecvBank`]: secyan_ot::OtRecvBank
//! [`PhaseMismatch`]: secyan_transport::TransportError::PhaseMismatch
//! [`CommStats`]: secyan_transport::CommStats

use crate::protocol::{secure_yannakakis, QueryResult};
use crate::query::SecureQuery;
use crate::session::Session;
use crate::shape::{QueryShape, ShapeKey};
use rand::rngs::StdRng;
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_gc::{evaluate_offline, garble_offline, EvalMaterial, GarbleMaterial};
use secyan_ot::{KkrtReceiver, KkrtSender, OtReceiver, OtSender};
use secyan_relation::{NaturalRing, Relation};
use secyan_transport::{Channel, Phase, ReadExt, Role, WriteExt};
use std::collections::{HashMap, VecDeque};

/// One shape's worth of offline material: a suspended protocol session
/// (bootstrapped OT extension and OPRF state, CSPRNG), the attached OT
/// banks, and the pre-garbled circuit schedule. Strictly single-use — the
/// pool hands it out at most once, and all banked key material zeroizes
/// on drop whether or not it was consumed.
pub struct QueryMaterial {
    key: ShapeKey,
    rng: StdRng,
    ot_send: OtSender,
    ot_recv: OtReceiver,
    kkrt_send: KkrtSender,
    kkrt_recv: KkrtReceiver,
    gc_garble: VecDeque<GarbleMaterial>,
    gc_eval: VecDeque<EvalMaterial>,
}

impl QueryMaterial {
    /// The shape this material was provisioned for.
    pub fn key(&self) -> ShapeKey {
        self.key
    }

    /// Banked random OTs remaining (send direction, receive direction).
    pub fn ot_banked(&self) -> (usize, usize) {
        (self.ot_send.bank_remaining(), self.ot_recv.bank_remaining())
    }

    /// Banked KKRT OPRF instances remaining (sender side, receiver side).
    pub fn kkrt_banked(&self) -> (usize, usize) {
        (
            self.kkrt_send.bank_remaining(),
            self.kkrt_recv.bank_remaining(),
        )
    }

    /// Pre-garbled circuits held (as garbler, as evaluator).
    pub fn circuits_banked(&self) -> (usize, usize) {
        (self.gc_garble.len(), self.gc_eval.len())
    }

    /// Fault-injection hook (used by the differential harness): discard
    /// the first `circuits` entries of each pre-garbled deque and cap each
    /// OT bank at `ot_cap` remaining instances, simulating material
    /// exhausted partway through an online run. Shed entries zeroize on
    /// the way out exactly like consumed ones. Both parties must shed
    /// identically for the per-step fallback decisions to stay mirrored —
    /// party A's `gc_garble[i]` pairs with party B's `gc_eval[i]`, so
    /// popping the front of both deques on both sides keeps the pairing.
    pub fn shed(&mut self, circuits: usize, ot_cap: usize) {
        for _ in 0..circuits.min(self.gc_garble.len().max(self.gc_eval.len())) {
            self.gc_garble.pop_front();
            self.gc_eval.pop_front();
        }
        if let Some(mut b) = self.ot_send.detach_bank() {
            b.shed_to(ot_cap);
            self.ot_send.attach_bank(b);
        }
        if let Some(mut b) = self.ot_recv.detach_bank() {
            b.shed_to(ot_cap);
            self.ot_recv.attach_bank(b);
        }
        if let Some(mut b) = self.kkrt_send.detach_bank() {
            b.shed_to(ot_cap);
            self.kkrt_send.attach_bank(b);
        }
        if let Some(mut b) = self.kkrt_recv.detach_bank() {
            b.shed_to(ot_cap);
            self.kkrt_recv.attach_bank(b);
        }
    }

    /// Capture a session's protocol state, releasing its channel borrow.
    fn suspend(key: ShapeKey, sess: Session) -> QueryMaterial {
        let Session {
            rng,
            ot_send,
            ot_recv,
            kkrt_send,
            kkrt_recv,
            gc_garble,
            gc_eval,
            ..
        } = sess;
        QueryMaterial {
            key,
            rng,
            ot_send,
            ot_recv,
            kkrt_send,
            kkrt_recv,
            gc_garble,
            gc_eval,
        }
    }

    /// Rebuild a live session around `ch`, consuming the material.
    fn resume(self, ch: &mut Channel, ring: RingCtx, hasher: TweakHasher) -> Session<'_> {
        Session {
            ch,
            ring,
            hasher,
            rng: self.rng,
            ot_send: self.ot_send,
            ot_recv: self.ot_recv,
            kkrt_send: self.kkrt_send,
            kkrt_recv: self.kkrt_recv,
            gc_garble: self.gc_garble,
            gc_eval: self.gc_eval,
        }
    }
}

/// Run the offline phase for one execution of `query` at the given public
/// per-relation `sizes`, revealing to `receiver`. Both parties call this
/// with identical public arguments. All traffic is tagged
/// [`Phase::Offline`].
///
/// The returned material covers: session bootstrap (base OTs, KKRT OPRF
/// seeds — the per-session fixed cost), `shape.ot_budget` random OTs per
/// direction (derandomized online via Beaver-style corrections),
/// `shape.kkrt_budget` KKRT OPRF instances per direction (extended against
/// random codes offline, code-corrected online with one 64-byte word per
/// instance), and the pre-garbled tables of every planner-foreseen
/// circuit.
pub fn run_offline(
    ch: &mut Channel,
    query: &SecureQuery,
    sizes: &[usize],
    receiver: Role,
    ring: RingCtx,
    hasher: TweakHasher,
    rng_seed: u64,
) -> QueryMaterial {
    let shape = QueryShape::derive(query, sizes, receiver, ring.bits() as usize);
    ch.set_phase(Phase::Offline);
    let mut sess = Session::new(ch, ring, hasher, rng_seed);
    // Bank random OTs, both directions, in the same role-fixed interleave
    // as the session bootstrap so the two sides pair up.
    let budget = shape.ot_budget;
    let kkrt_budget = shape.kkrt_budget;
    match sess.role() {
        Role::Alice => {
            let sb = sess.ot_send.offline(sess.ch, budget);
            sess.ot_send.attach_bank(sb);
            let rb = sess.ot_recv.offline(sess.ch, budget, &mut sess.rng);
            sess.ot_recv.attach_bank(rb);
            let ksb = sess.kkrt_send.offline(sess.ch, kkrt_budget);
            sess.kkrt_send.attach_bank(ksb);
            let krb = sess.kkrt_recv.offline(sess.ch, kkrt_budget, &mut sess.rng);
            sess.kkrt_recv.attach_bank(krb);
        }
        Role::Bob => {
            let rb = sess.ot_recv.offline(sess.ch, budget, &mut sess.rng);
            sess.ot_recv.attach_bank(rb);
            let sb = sess.ot_send.offline(sess.ch, budget);
            sess.ot_send.attach_bank(sb);
            let krb = sess.kkrt_recv.offline(sess.ch, kkrt_budget, &mut sess.rng);
            sess.kkrt_recv.attach_bank(krb);
            let ksb = sess.kkrt_send.offline(sess.ch, kkrt_budget);
            sess.kkrt_send.attach_bank(ksb);
        }
    }
    // Pre-garble the planned circuit schedule; tables cross the wire now
    // so the online phase only moves input-dependent messages.
    for pc in &shape.planned {
        if sess.role() == pc.garbler {
            let m = garble_offline(sess.ch, &pc.circuit, hasher, &mut sess.rng);
            sess.gc_garble.push_back(m);
        } else {
            sess.gc_eval
                .push_back(evaluate_offline(sess.ch, &pc.circuit));
        }
    }
    let material = QueryMaterial::suspend(shape.key, sess);
    ch.set_phase(Phase::Single);
    material
}

/// Run the online phase against previously provisioned material. All
/// traffic is tagged [`Phase::Online`]. The driver is the unmodified
/// [`secure_yannakakis`]; banked material is consumed transparently and
/// any shortfall degrades to inline computation on both sides at once.
pub fn run_online(
    ch: &mut Channel,
    query: &SecureQuery,
    my_relations: &[Option<Relation<NaturalRing>>],
    receiver: Role,
    ring: RingCtx,
    hasher: TweakHasher,
    material: QueryMaterial,
) -> QueryResult {
    ch.set_phase(Phase::Online);
    let out = {
        let mut sess = material.resume(ch, ring, hasher);
        secure_yannakakis(&mut sess, query, my_relations, receiver)
    };
    ch.set_phase(Phase::Single);
    out
}

/// A shape-keyed pool of offline material. Entries are strictly
/// single-use: [`PreprocPool::take`] removes the material from the pool,
/// and whatever the online run does not consume zeroizes on drop.
#[derive(Default)]
pub struct PreprocPool {
    entries: HashMap<ShapeKey, Vec<QueryMaterial>>,
    hits: u64,
    misses: u64,
}

impl PreprocPool {
    pub fn new() -> PreprocPool {
        PreprocPool::default()
    }

    /// Run one offline phase and bank the material under its shape key.
    /// Returns the key for later lookups.
    #[allow(clippy::too_many_arguments)]
    pub fn provision(
        &mut self,
        ch: &mut Channel,
        query: &SecureQuery,
        sizes: &[usize],
        receiver: Role,
        ring: RingCtx,
        hasher: TweakHasher,
        rng_seed: u64,
    ) -> ShapeKey {
        let material = run_offline(ch, query, sizes, receiver, ring, hasher, rng_seed);
        let key = material.key;
        self.entries.entry(key).or_default().push(material);
        key
    }

    /// Materials currently banked for `key`.
    pub fn available(&self, key: ShapeKey) -> usize {
        self.entries.get(&key).map_or(0, Vec::len)
    }

    /// Take one material for `key` — consumed-on-take; a second `take`
    /// for the same provisioning returns `None`.
    pub fn take(&mut self, key: ShapeKey) -> Option<QueryMaterial> {
        let bank = self.entries.get_mut(&key)?;
        let material = bank.pop()?;
        if bank.is_empty() {
            self.entries.remove(&key);
        }
        self.hits += 1;
        Some(material)
    }

    /// Pool hits so far (successful takes).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pool misses so far (pooled runs that fell back to inline offline
    /// computation).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Run a query online against the pool. Both parties exchange a one-word
/// availability handshake (under the online phase tag) and use pooled
/// material only when *both* hold some for this shape; otherwise the run
/// falls back to a fresh inline session — correct, just without the
/// offline speedup — and the miss is counted.
#[allow(clippy::too_many_arguments)]
pub fn run_online_pooled(
    pool: &mut PreprocPool,
    ch: &mut Channel,
    query: &SecureQuery,
    sizes: &[usize],
    my_relations: &[Option<Relation<NaturalRing>>],
    receiver: Role,
    ring: RingCtx,
    hasher: TweakHasher,
    fallback_seed: u64,
) -> QueryResult {
    let key = ShapeKey::of(query, sizes, receiver, ring.bits() as usize);
    ch.set_phase(Phase::Online);
    ch.send_u64(u64::from(pool.available(key) > 0));
    let peer_has = ch.recv_u64() != 0;
    let out = if peer_has && pool.available(key) > 0 {
        let material = pool.take(key).expect("availability just checked");
        let mut sess = material.resume(ch, ring, hasher);
        secure_yannakakis(&mut sess, query, my_relations, receiver)
    } else {
        pool.misses += 1;
        let mut sess = Session::new(ch, ring, hasher, fallback_seed);
        secure_yannakakis(&mut sess, query, my_relations, receiver)
    };
    ch.set_phase(Phase::Single);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use secyan_crypto::secret::{Secret, Zeroize};
    use secyan_relation::JoinTree;
    use secyan_transport::run_protocol;
    use std::collections::HashMap as StdHashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn example_query() -> SecureQuery {
        SecureQuery::new(
            vec![
                strings(&["person"]),
                strings(&["person", "disease"]),
                strings(&["disease", "class"]),
            ],
            vec![Role::Alice, Role::Bob, Role::Alice],
            JoinTree::chain(3),
            strings(&["class"]),
        )
    }

    fn example_rels() -> Vec<Relation<NaturalRing>> {
        let ring = NaturalRing::paper_default();
        vec![
            Relation::from_rows(
                ring,
                strings(&["person"]),
                vec![(vec![1], 80), (vec![2], 50), (vec![3], 70)],
            ),
            Relation::from_rows(
                ring,
                strings(&["person", "disease"]),
                vec![
                    (vec![1, 10], 1000),
                    (vec![1, 11], 500),
                    (vec![2, 10], 2000),
                    (vec![9, 10], 400),
                ],
            ),
            Relation::from_rows(
                ring,
                strings(&["disease", "class"]),
                vec![(vec![10, 7], 1), (vec![11, 8], 1), (vec![12, 9], 1)],
            ),
        ]
    }

    fn as_map(res: &QueryResult) -> StdHashMap<Vec<u64>, u64> {
        res.tuples
            .iter()
            .cloned()
            .zip(res.values.iter().copied())
            .collect()
    }

    #[test]
    fn offline_then_online_matches_single_phase() {
        let rels = example_rels();
        let query = example_query();
        let sizes = [3usize, 4, 3];
        let alice = vec![Some(rels[0].clone()), None, Some(rels[2].clone())];
        let bob = vec![None, Some(rels[1].clone()), None];
        let (q1, q2) = (query.clone(), query.clone());
        let (a1, b1) = (alice.clone(), bob.clone());
        // Single-phase reference.
        let (want, _, _) = run_protocol(
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 201);
                secure_yannakakis(&mut sess, &q1, &a1, Role::Alice)
            },
            move |ch| {
                let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 202);
                secure_yannakakis(&mut sess, &q2, &b1, Role::Alice)
            },
        );
        // Phase-split run.
        let (q1, q2) = (query.clone(), query);
        let (got, _, _) = run_protocol(
            move |ch| {
                let ring = RingCtx::new(32);
                let m = run_offline(ch, &q1, &sizes, Role::Alice, ring, TweakHasher::Sha256, 203);
                assert!(m.ot_banked().0 > 0 && m.ot_banked().1 > 0);
                assert!(
                    m.kkrt_banked().0 > 0 && m.kkrt_banked().1 > 0,
                    "the chain has cross-party joins, so KKRT must be banked"
                );
                let (g, e) = m.circuits_banked();
                assert!(g + e > 0, "the chain plan must pre-garble something");
                let stats = ch.stats();
                assert!(stats.offline_bytes > 0, "offline traffic must be tagged");
                assert_eq!(stats.online_bytes, 0);
                let res = run_online(ch, &q1, &alice, Role::Alice, ring, TweakHasher::Sha256, m);
                let stats = ch.stats();
                assert!(stats.online_bytes > 0, "online traffic must be tagged");
                assert!(
                    stats.online_bytes < stats.offline_bytes,
                    "precomputation must shift the bulk of the traffic offline \
                     (online {} vs offline {})",
                    stats.online_bytes,
                    stats.offline_bytes
                );
                res
            },
            move |ch| {
                let ring = RingCtx::new(32);
                let m = run_offline(ch, &q2, &sizes, Role::Alice, ring, TweakHasher::Sha256, 204);
                run_online(ch, &q2, &bob, Role::Alice, ring, TweakHasher::Sha256, m)
            },
        );
        assert_eq!(as_map(&got), as_map(&want));
        assert_eq!(got.out_size, want.out_size);
    }

    #[test]
    fn pool_round_trip_hits_then_misses() {
        let rels = example_rels();
        let query = example_query();
        let sizes = [3usize, 4, 3];
        let alice = vec![Some(rels[0].clone()), None, Some(rels[2].clone())];
        let bob = vec![None, Some(rels[1].clone()), None];
        let (q1, q2) = (query.clone(), query);
        let ((first, second, hits, misses), _, _) = run_protocol(
            move |ch| {
                let ring = RingCtx::new(32);
                let mut pool = PreprocPool::new();
                let key =
                    pool.provision(ch, &q1, &sizes, Role::Alice, ring, TweakHasher::Sha256, 301);
                assert_eq!(pool.available(key), 1);
                // First pooled run consumes the material (single-use)…
                let first = run_online_pooled(
                    &mut pool,
                    ch,
                    &q1,
                    &sizes,
                    &alice,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    302,
                );
                assert_eq!(pool.available(key), 0);
                // …and the second run of the same shape falls back inline.
                let second = run_online_pooled(
                    &mut pool,
                    ch,
                    &q1,
                    &sizes,
                    &alice,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    303,
                );
                (first, second, pool.hits(), pool.misses())
            },
            move |ch| {
                let ring = RingCtx::new(32);
                let mut pool = PreprocPool::new();
                pool.provision(ch, &q2, &sizes, Role::Alice, ring, TweakHasher::Sha256, 304);
                run_online_pooled(
                    &mut pool,
                    ch,
                    &q2,
                    &sizes,
                    &bob,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    305,
                );
                run_online_pooled(
                    &mut pool,
                    ch,
                    &q2,
                    &sizes,
                    &bob,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    306,
                );
            },
        );
        assert_eq!(as_map(&first), as_map(&second));
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn asymmetric_pool_state_falls_back_without_hanging() {
        // Alice provisions, Bob does not: the availability handshake must
        // make both sides agree on inline fallback, and the leftover
        // material must stay banked on Alice's side.
        let rels = example_rels();
        let query = example_query();
        let sizes = [3usize, 4, 3];
        let alice = vec![Some(rels[0].clone()), None, Some(rels[2].clone())];
        let bob = vec![None, Some(rels[1].clone()), None];
        let (q1, q2) = (query.clone(), query);
        let ((res, leftover), _, _) = run_protocol(
            move |ch| {
                let ring = RingCtx::new(32);
                let mut pool = PreprocPool::new();
                let key =
                    pool.provision(ch, &q1, &sizes, Role::Alice, ring, TweakHasher::Sha256, 311);
                let res = run_online_pooled(
                    &mut pool,
                    ch,
                    &q1,
                    &sizes,
                    &alice,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    312,
                );
                (res, pool.available(key))
            },
            move |ch| {
                let ring = RingCtx::new(32);
                // Bob must speak the offline phase for Alice's provisioning
                // to complete — he just discards his half of the material.
                let mut pool = PreprocPool::new();
                drop(run_offline(
                    ch,
                    &q2,
                    &sizes,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    313,
                ));
                run_online_pooled(
                    &mut pool,
                    ch,
                    &q2,
                    &sizes,
                    &bob,
                    Role::Alice,
                    ring,
                    TweakHasher::Sha256,
                    314,
                )
            },
        );
        assert_eq!(res.out_size, 2, "example 1.1 has two result classes");
        assert_eq!(leftover, 1, "unused material must stay pooled");
    }

    /// The zeroize-on-drop canary for pool entries. `QueryMaterial` keeps
    /// every banked secret inside `Secret<…>` wrappers (OT pads and choice
    /// bits in the banks, wire keys in pre-garbled material), so scrubbing
    /// reduces to `Secret`'s drop guarantee — which this canary observes
    /// directly: `Secret`'s `Drop` must invoke `Zeroize::zeroize` on the
    /// wrapped value before releasing it.
    #[test]
    fn dropped_secrets_are_zeroized_first() {
        struct Canary {
            scrubbed: Arc<AtomicU64>,
            data: u64,
        }
        impl Zeroize for Canary {
            fn zeroize(&mut self) {
                assert_ne!(self.data, 0, "zeroize must see the live value");
                self.data = 0;
                self.scrubbed.fetch_add(1, Ordering::SeqCst);
            }
        }
        let scrubbed = Arc::new(AtomicU64::new(0));
        let secret = Secret::new(Canary {
            scrubbed: Arc::clone(&scrubbed),
            data: 0xfeed,
        });
        assert_eq!(scrubbed.load(Ordering::SeqCst), 0);
        drop(secret);
        assert_eq!(
            scrubbed.load(Ordering::SeqCst),
            1,
            "dropping a Secret must zeroize its contents exactly once"
        );
    }
}
